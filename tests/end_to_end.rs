//! Cross-crate integration tests: the full paper pipeline at reduced scale —
//! generation → characterization → prediction → scheduling → energy saving.

use helios_core::{CesService, CesServiceConfig, QssfConfig, QssfService};
use helios_energy::node_series_from_trace;
use helios_sim::{jobs_from_trace, schedule_stats, simulate, Placement, Policy, SimConfig};
use helios_trace::{generate, venus_profile, GeneratorConfig, Trace, SECS_PER_DAY};

fn trace() -> Trace {
    generate(
        &venus_profile(),
        &GeneratorConfig {
            scale: 0.06,
            seed: 77,
        },
    )
    .unwrap()
}

#[test]
fn qssf_beats_fifo_and_tracks_sjf() {
    // The paper's headline (Table 3): QSSF >> FIFO and ~ SJF.
    let t = trace();
    let (lo, hi) = t.calendar.month_range(5);
    let base = jobs_from_trace(&t, lo, hi);
    let fifo = schedule_stats(
        &simulate(&t.spec, &base, &SimConfig::new(Policy::Fifo))
            .unwrap()
            .outcomes,
    );
    let sjf = schedule_stats(
        &simulate(&t.spec, &base, &SimConfig::new(Policy::Sjf))
            .unwrap()
            .outcomes,
    );
    let srtf = schedule_stats(
        &simulate(&t.spec, &base, &SimConfig::new(Policy::Srtf))
            .unwrap()
            .outcomes,
    );

    let mut svc = QssfService::new(QssfConfig::default());
    svc.train(&t, 0, lo).unwrap();
    let scored = svc.assign_priorities(&t, lo, hi);
    let qssf = schedule_stats(
        &simulate(&t.spec, &scored, &SimConfig::new(Policy::Priority))
            .unwrap()
            .outcomes,
    );

    assert!(
        qssf.avg_jct < 0.6 * fifo.avg_jct,
        "QSSF {} vs FIFO {}",
        qssf.avg_jct,
        fifo.avg_jct
    );
    assert!(
        qssf.avg_queue_delay < 0.5 * fifo.avg_queue_delay,
        "QSSF {} vs FIFO {}",
        qssf.avg_queue_delay,
        fifo.avg_queue_delay
    );
    // QSSF is within a factor ~2.5 of the non-preemptive oracle.
    assert!(
        qssf.avg_jct < 2.5 * sjf.avg_jct,
        "QSSF {} vs SJF {}",
        qssf.avg_jct,
        sjf.avg_jct
    );
    // The preemptive oracle is the lower bound.
    assert!(srtf.avg_jct <= sjf.avg_jct * 1.05);
}

#[test]
fn short_jobs_gain_most_but_long_jobs_still_gain() {
    // Table 4 ordering.
    let t = trace();
    let (lo, hi) = t.calendar.month_range(5);
    let base = jobs_from_trace(&t, lo, hi);
    let fifo = simulate(&t.spec, &base, &SimConfig::new(Policy::Fifo))
        .unwrap()
        .outcomes;
    let mut svc = QssfService::new(QssfConfig::default());
    svc.train(&t, 0, lo).unwrap();
    let scored = svc.assign_priorities(&t, lo, hi);
    let qssf = simulate(&t.spec, &scored, &SimConfig::new(Policy::Priority))
        .unwrap()
        .outcomes;
    let ratios = helios_sim::group_delay_ratios(&fifo, &qssf);
    assert!(
        ratios[0] > ratios[2],
        "short-term gain {} must exceed long-term gain {}",
        ratios[0],
        ratios[2]
    );
    assert!(ratios[0] > 2.0, "short-term ratio {}", ratios[0]);
    assert!(
        ratios[2] > 0.8,
        "long jobs must not be sacrificed: {}",
        ratios[2]
    );
}

#[test]
fn ces_pipeline_improves_utilization_with_few_wakeups() {
    // Table 5's shape on one cluster.
    let t = trace();
    let series = node_series_from_trace(&t, 600, Placement::Consolidate).unwrap();
    let mut cfg = CesServiceConfig::default();
    cfg.control.buffer_nodes = 1.0;
    cfg.control.xi_hist = 0.25;
    cfg.control.xi_future = 0.25;
    let mut svc = CesService::new(cfg);
    let start = t.calendar.month_start(5);
    let eval = svc
        .evaluate(&t, &series, start, start + 21 * SECS_PER_DAY)
        .unwrap();

    assert!(eval.smape < 15.0, "forecast SMAPE {}", eval.smape);
    let baseline = eval.guided.baseline_utilization();
    let with_ces = eval.guided.utilization_with_drs();
    assert!(
        with_ces > baseline,
        "CES utilization {with_ces} must beat baseline {baseline}"
    );
    assert!(
        eval.guided.daily_wakeups() <= eval.vanilla.daily_wakeups(),
        "guided {} vs vanilla {} wakeups/day",
        eval.guided.daily_wakeups(),
        eval.vanilla.daily_wakeups()
    );
    // Demand is always met.
    for (a, r) in eval.guided.active.iter().zip(&eval.guided.running) {
        assert!(a + 1e-9 >= *r);
    }
}

#[test]
fn trace_roundtrips_through_csv() {
    let t = trace();
    let mut buf = Vec::new();
    helios_trace::io::write_csv(&mut buf, &t.jobs[..5_000], &t.names).unwrap();
    let (jobs, names) = helios_trace::io::read_csv(buf.as_slice()).unwrap();
    assert_eq!(jobs.len(), 5_000);
    for (a, b) in t.jobs[..5_000].iter().zip(&jobs) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.status, b.status);
        assert_eq!(t.names.base(a.name), names.base(b.name));
    }
}

#[test]
fn framework_runs_both_services() {
    use helios_core::{Framework, Service};
    use std::sync::Arc;
    let t = Arc::new(trace());
    let mut fw = Framework::new(t.clone(), 7 * SECS_PER_DAY).unwrap();
    fw.register(Box::new(QssfService::new(QssfConfig::default())));
    fw.register(Box::new(CesService::new(CesServiceConfig::default())));
    assert_eq!(
        fw.service_names(),
        vec!["qssf".to_string(), "ces".to_string()]
    );
    // Tick through two months weekly; both services must produce actions
    // without panicking.
    let mut total_actions = 0;
    for week in 4..9 {
        let actions = fw.tick(week * 7 * SECS_PER_DAY).unwrap();
        total_actions += actions.iter().map(|a| a.len()).sum::<usize>();
    }
    assert!(total_actions > 0);
    let _ = QssfService::new(QssfConfig::default()).name();
}
