//! Integration tests for the `Helios` builder/session façade: the
//! acceptance surface of the unified API — end-to-end pipelines on
//! multiple cluster presets, parallel fan-out, and the guarantee that
//! invalid user input surfaces as typed [`HeliosError`]s, never panics.

use helios::prelude::*;

/// End-to-end small-scale session on two presets: generate →
/// characterize → train QSSF → schedule → report, asserting the paper's
/// headline (QSSF beats FIFO on average JCT) on each cluster.
#[test]
fn end_to_end_session_qssf_beats_fifo_on_two_presets() {
    for preset in [Preset::Venus, Preset::Saturn] {
        let mut session = Helios::cluster(preset)
            .scale(0.05)
            .seed(77)
            .build()
            .unwrap();
        let report = session
            .generate()
            .unwrap()
            .characterize()
            .unwrap()
            .train_qssf()
            .unwrap()
            .schedule(SchedulePolicy::Fifo)
            .unwrap()
            .schedule(SchedulePolicy::Qssf)
            .unwrap()
            .report()
            .unwrap();

        assert_eq!(report.cluster, preset.name());
        assert!(
            report.gpu_jobs > 1_000,
            "{preset}: {} GPU jobs",
            report.gpu_jobs
        );

        let stats = |p: SchedulePolicy| {
            report
                .schedules
                .iter()
                .find(|s| s.label == p.label())
                .unwrap_or_else(|| panic!("{preset}: missing {p:?}"))
        };
        let fifo = stats(SchedulePolicy::Fifo);
        let qssf = stats(SchedulePolicy::Qssf);
        assert!(
            qssf.avg_jct < fifo.avg_jct,
            "{preset}: QSSF avg JCT {} must beat FIFO {}",
            qssf.avg_jct,
            fifo.avg_jct
        );
        let gain = report.qssf_vs_fifo.expect("both policies scheduled");
        assert!(gain.jct > 1.0, "{preset}: JCT gain {}", gain.jct);

        // Characterization rode along.
        let c = report.characterization.as_ref().expect("characterized");
        assert!(c.summary.gpu_jobs > 0);
        assert!((0.0..=1.0).contains(&c.single_gpu_share));

        // The rendered report mentions both policies.
        let text = report.render();
        assert!(text.contains("FIFO") && text.contains("QSSF"), "{text}");
    }
}

/// `Helios::all_clusters()` runs Venus/Earth/Saturn/Uranus/Philly across
/// threads and returns one report per cluster, in Table 1 order, from a
/// single call.
#[test]
fn all_clusters_parallel_session_returns_five_reports() {
    let reports = Helios::all_clusters()
        .scale(0.02)
        .seed(5)
        .run(|session| session.generate()?.schedule(SchedulePolicy::Fifo)?.report())
        .unwrap();
    let names: Vec<&str> = reports.iter().map(|r| r.cluster.as_str()).collect();
    assert_eq!(names, ["Venus", "Earth", "Saturn", "Uranus", "Philly"]);
    for r in &reports {
        assert!(r.jobs > 0, "{}: empty trace", r.cluster);
        assert_eq!(r.schedules.len(), 1);
    }
}

/// `FleetBuilder::seeds` sweeps clusters × seeds in one rayon fan-out:
/// one session per (preset, seed) pair, preset-major, each report
/// stamped with its seed.
#[test]
fn fleet_seed_sweep_fans_out_preset_major() {
    let reports = Helios::clusters([Preset::Venus, Preset::Earth])
        .scale(0.02)
        .seeds([3, 4, 5])
        .run(|session| session.generate()?.report())
        .unwrap();
    assert_eq!(reports.len(), 6);
    let order: Vec<(&str, u64)> = reports
        .iter()
        .map(|r| (r.cluster.as_str(), r.seed))
        .collect();
    assert_eq!(
        order,
        [
            ("Venus", 3),
            ("Venus", 4),
            ("Venus", 5),
            ("Earth", 3),
            ("Earth", 4),
            ("Earth", 5),
        ]
    );
    for r in &reports {
        assert!(r.jobs > 0, "{}@{}: empty trace", r.cluster, r.seed);
    }
}

/// The CES stage produces a Table 5-shaped summary through the façade.
#[test]
fn ces_stage_reports_energy_summary() {
    let mut session = Helios::cluster(Preset::Venus)
        .scale(0.05)
        .seed(13)
        .build()
        .unwrap();
    session.generate().unwrap().train_ces().unwrap();
    let report = session.report().unwrap();
    let ces = report.ces.expect("train_ces ran");
    assert!(ces.smape < 25.0, "forecast SMAPE {}", ces.smape);
    assert!(ces.utilization_with_ces >= ces.baseline_utilization);
    assert!(ces.annual_kwh_saved >= 0.0);
    assert!(ces.daily_wakeups <= ces.vanilla_daily_wakeups + 1e-9);
}

// ---------------------------------------------------------------------------
// Invalid input surfaces as typed errors, never panics.
// ---------------------------------------------------------------------------

#[test]
fn invalid_scale_is_a_config_error() {
    for scale in [0.0, -3.0, 1.0001, f64::NAN, f64::INFINITY] {
        let result = Helios::cluster(Preset::Earth).scale(scale).build();
        assert!(
            matches!(
                result,
                Err(HeliosError::InvalidConfig { field: "scale", .. })
            ),
            "scale {scale} must be rejected",
        );
    }
}

#[test]
fn empty_job_set_is_an_empty_input_error() {
    // Train QSSF on an empty window: errors, does not panic.
    use helios::core::{QssfConfig, QssfService};
    let trace = helios::trace::generate(
        &helios::trace::venus_profile(),
        &GeneratorConfig {
            scale: 0.02,
            seed: 3,
        },
    )
    .unwrap();
    let mut svc = QssfService::new(QssfConfig::default());
    // A window before any submission has no jobs.
    let err = svc.train(&trace, -1_000, -1).unwrap_err();
    assert!(
        matches!(
            err,
            HeliosError::EmptyInput {
                what: "training jobs",
                ..
            }
        ),
        "{err}"
    );
    // Inverted window is a config error.
    assert!(matches!(
        svc.train(&trace, 100, 50),
        Err(HeliosError::InvalidConfig { .. })
    ));
}

#[test]
fn backwards_history_cursor_is_a_regression_error() {
    use helios::core::{Framework, HistoryStore};
    use std::sync::Arc;
    let trace = Arc::new(
        helios::trace::generate(
            &helios::trace::venus_profile(),
            &GeneratorConfig {
                scale: 0.02,
                seed: 3,
            },
        )
        .unwrap(),
    );
    let mut store = HistoryStore::new(trace.clone());
    store.advance_to(500).unwrap();
    assert_eq!(
        store.advance_to(400),
        Err(HeliosError::HistoryRegression {
            current: 500,
            requested: 400
        })
    );

    // The same guarantee holds through the Framework clock.
    let mut fw = Framework::new(trace, 3_600).unwrap();
    fw.tick(1_000).unwrap();
    assert!(matches!(
        fw.tick(999),
        Err(HeliosError::HistoryRegression { .. })
    ));
}

#[test]
fn unschedulable_job_is_an_invalid_job_error() {
    use helios::sim::{simulate, SimConfig, SimJob};
    let spec = helios::trace::venus();
    let giant = SimJob {
        id: 7,
        vc: 0,
        gpus: u32::MAX,
        submit: 0,
        duration: 10,
        priority: 1.0,
    };
    let err = simulate(&spec, &[giant], &SimConfig::new(Policy::Fifo)).unwrap_err();
    assert!(
        matches!(err, HeliosError::InvalidJob { job_id: 7, .. }),
        "{err}"
    );

    let bad_vc = SimJob {
        id: 8,
        vc: u16::MAX,
        gpus: 1,
        submit: 0,
        duration: 10,
        priority: 1.0,
    };
    assert!(simulate(&spec, &[bad_vc], &SimConfig::new(Policy::Fifo)).is_err());
}

#[test]
fn fleet_errors_are_tagged_with_the_cluster() {
    // Force a failure inside the fan-out; the error names the cluster.
    let err = Helios::clusters([Preset::Venus])
        .scale(0.02)
        .run(|session| {
            session.generate()?;
            // Asking for QSSF without training fails inside the worker.
            session.schedule(SchedulePolicy::Qssf)?;
            session.report()
        })
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("Venus"), "{text}");
    assert!(text.contains("train_qssf"), "{text}");
}

/// Re-running a policy replaces its outcome with an identical one: QSSF
/// scoring works on a snapshot of the trained service, so the causal
/// eval-window replay does not leak observations between runs.
#[test]
fn rescheduling_qssf_is_idempotent() {
    let mut session = Helios::cluster(Preset::Venus)
        .scale(0.02)
        .seed(7)
        .build()
        .unwrap();
    session.generate().unwrap().train_qssf().unwrap();
    session.schedule(SchedulePolicy::Qssf).unwrap();
    let first = session.schedule_outcomes()[0].stats.avg_jct;
    session.schedule(SchedulePolicy::Qssf).unwrap();
    assert_eq!(
        session.schedule_outcomes().len(),
        1,
        "replaced, not appended"
    );
    let second = session.schedule_outcomes()[0].stats.avg_jct;
    assert_eq!(first, second, "re-running QSSF must reproduce the outcome");
}

#[test]
fn report_before_generate_is_a_missing_stage_error() {
    let session = Helios::cluster(Preset::Uranus).build().unwrap();
    assert!(matches!(
        session.report(),
        Err(HeliosError::MissingStage {
            stage: "report",
            requires: "generate"
        })
    ));
}

/// `Session::schedule_with` runs a user-defined `SchedulingPolicy` trait
/// object through the full pipeline, records it under its own label, and
/// streams the run through registered observers.
#[test]
fn schedule_with_accepts_custom_policy_objects_and_observers() {
    use helios::sim::OccupancyObserver;

    struct LongestFirst;
    impl SchedulingPolicy for LongestFirst {
        fn name(&self) -> &str {
            "LONGEST-FIRST"
        }
        fn queue_key(&mut self, job: &JobView<'_>) -> f64 {
            -(job.job.duration as f64)
        }
    }

    let mut session = Helios::cluster(Preset::Venus)
        .scale(0.02)
        .seed(3)
        .build()
        .unwrap();
    session.generate().unwrap();
    let mut occ = OccupancyObserver::new(3_600).unwrap();
    session
        .schedule(SchedulePolicy::Fifo)
        .unwrap()
        .schedule_observed(Box::new(LongestFirst), vec![Box::new(&mut occ)])
        .unwrap();

    let outcomes = session.schedule_outcomes();
    let labels: Vec<&str> = outcomes.iter().map(|o| o.label.as_str()).collect();
    assert_eq!(labels, vec!["FIFO", "LONGEST-FIRST"]);
    assert_eq!(outcomes[0].policy, Some(SchedulePolicy::Fifo));
    assert_eq!(outcomes[1].policy, None, "custom run has no builtin tag");
    assert_eq!(
        outcomes[0].outcomes.len(),
        outcomes[1].outcomes.len(),
        "both policies schedule the same job set"
    );
    assert!(!occ.series().is_empty(), "observer streamed the run");
    // A longest-first oracle must do no better than FIFO on avg JCT.
    assert!(outcomes[1].stats.avg_jct >= outcomes[0].stats.avg_jct * 0.99);
    // The custom label shows up in the rendered report.
    let report = session.report().unwrap();
    assert!(report.render().contains("LONGEST-FIRST"));
}

/// The two policies shipped on the open kernel (Tiresias LAS and the
/// CES-gated energy policy) run as built-in constructors.
#[test]
fn tiresias_and_energy_builtins_schedule() {
    let mut session = Helios::cluster(Preset::Venus)
        .scale(0.02)
        .seed(11)
        .build()
        .unwrap();
    session.generate().unwrap();
    session
        .schedule(SchedulePolicy::Tiresias)
        .unwrap()
        .schedule(SchedulePolicy::EnergyAware)
        .unwrap();
    let outcomes = session.schedule_outcomes();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].label, "TIRESIAS");
    assert_eq!(outcomes[1].label, "ENERGY");
    for o in outcomes {
        assert!(o.stats.jobs > 0, "{}: scheduled nothing", o.label);
        assert!(o.stats.avg_jct > 0.0);
    }
}

/// `Session::pipeline` (characterize ∥ train_qssf ∥ train_ces over rayon)
/// must produce exactly what the sequential stage chain produces, and
/// record per-stage wall times.
#[test]
fn pipeline_fast_path_matches_sequential_stages() {
    let build = || {
        Helios::cluster(Preset::Venus)
            .scale(0.04)
            .seed(11)
            .build()
            .unwrap()
    };
    let mut seq = build();
    seq.generate()
        .unwrap()
        .characterize()
        .unwrap()
        .train_qssf()
        .unwrap()
        .train_ces()
        .unwrap()
        .schedule(SchedulePolicy::Fifo)
        .unwrap()
        .schedule(SchedulePolicy::Qssf)
        .unwrap();
    let mut par = build();
    par.pipeline()
        .unwrap()
        .schedule(SchedulePolicy::Fifo)
        .unwrap()
        .schedule(SchedulePolicy::Qssf)
        .unwrap();

    // Characterization equal field for field.
    let (a, b) = (
        seq.characterization().unwrap(),
        par.characterization().unwrap(),
    );
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.gpu_status_shares, b.gpu_status_shares);
    assert_eq!(a.single_gpu_share, b.single_gpu_share);
    assert_eq!(a.single_gpu_time_share, b.single_gpu_time_share);
    assert_eq!(a.top5_user_gpu_share, b.top5_user_gpu_share);
    assert_eq!(a.peak_hourly_submissions, b.peak_hourly_submissions);

    // CES evaluation equal.
    let (ca, cb) = (seq.ces_evaluation().unwrap(), par.ces_evaluation().unwrap());
    assert_eq!(ca.smape, cb.smape);
    assert_eq!(ca.forecast, cb.forecast);
    assert_eq!(ca.guided.drs_node_seconds, cb.guided.drs_node_seconds);

    // QSSF-trained scheduling outcomes identical job for job.
    for (sa, sb) in seq
        .schedule_outcomes()
        .iter()
        .zip(par.schedule_outcomes().iter())
    {
        assert_eq!(sa.label, sb.label);
        assert_eq!(sa.outcomes, sb.outcomes);
    }

    // Stage perf: every stage recorded, pipeline span present.
    let stages: Vec<&str> = par.stage_perf().iter().map(|s| s.stage.as_str()).collect();
    for expect in [
        "generate",
        "characterize",
        "train_qssf",
        "train_ces",
        "pipeline",
        "schedule:FIFO",
        "schedule:QSSF",
    ] {
        assert!(stages.contains(&expect), "missing stage record {expect}");
    }
    assert!(par.stage_perf().iter().all(|s| s.wall_secs >= 0.0));
    let report = par.report().unwrap();
    assert_eq!(
        report.stage_perf.last().map(|s| s.stage.as_str()),
        Some("report")
    );
}
