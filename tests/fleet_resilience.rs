//! Fleet self-healing properties, driven by the deterministic chaos
//! harness: supervised workers recover from injected panics with
//! byte-identical outcome streams, a corrupt newest checkpoint
//! generation falls back to the previous one, decoder fuzzing never
//! panics, `submit_with_retry` rides out stalled admission cycles, and
//! `Fleet::recover` rebuilds a fleet from the on-disk checkpoint ring
//! after whole-process death.

use helios_fleet::{
    ChaosConfig, CheckpointConfig, ClusterConfig, Fleet, FleetConfig, RetryConfig, WorkerState,
};
use helios_sim::{ByteWriter, JobOutcome, Policy, SimJob, SimSnapshot, Simulator};
use helios_trace::{preset, ClusterId, HeliosError};
use std::time::Duration;

/// FNV-1a over the schedule-relevant outcome fields — the same
/// fingerprint `BENCH_*.json` trajectory records use, so "digests match"
/// here means exactly what bench-record equality means.
fn outcome_digest(outcomes: &[JobOutcome]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.start as u64);
        mix(o.end as u64);
        mix(o.preemptions as u64);
    }
    format!("{h:016x}")
}

fn sorted_digest(mut outcomes: Vec<JobOutcome>) -> (usize, String) {
    outcomes.sort_by_key(|o| o.id);
    (outcomes.len(), outcome_digest(&outcomes))
}

/// The deterministic synthetic job for slot `k` of wave `w` — the same
/// stream every fleet in a comparison pair sees.
fn wave_job(id: u64, w: u64, k: u64, nvcs: usize) -> SimJob {
    SimJob {
        id,
        vc: ((k + w) % nvcs as u64) as u16,
        gpus: 1 + (k % 2) as u32,
        submit: w as i64 * 600,
        duration: 30 + (k % 7) as i64 * 60,
        priority: 0.0,
    }
}

/// Stream `waves × per_wave` jobs into a single-cluster fleet, draining
/// after every advance (so crash replays must suppress already-delivered
/// outcomes), then shut down. Returns the full outcome stream and the
/// final pre-shutdown health.
fn run_streamed(
    fleet: &Fleet,
    cluster: ClusterId,
    waves: std::ops::Range<u64>,
    per_wave: u64,
) -> Vec<JobOutcome> {
    let nvcs = fleet.statuses()[0].vcs.len();
    let mut outcomes = Vec::new();
    for w in waves {
        for k in 0..per_wave {
            fleet
                .submit(cluster, wave_job(w * per_wave + k, w, k, nvcs))
                .expect("synthetic job is valid");
        }
        fleet.advance((w as i64 + 1) * 600).expect("advance");
        outcomes.extend(fleet.drain(cluster).expect("drain"));
    }
    outcomes
}

fn single_cluster_config(cluster: ClusterId, policy: Policy) -> FleetConfig {
    FleetConfig::new()
        .with_cluster(ClusterConfig::new(cluster, policy))
        .with_checkpoint(CheckpointConfig::default().every_cycles(1).generations(4))
}

#[test]
fn chaos_recovery_digests_match_uninterrupted_run() {
    // The tentpole acceptance property: with >= 1 injected worker panic
    // and >= 1 corrupted newest checkpoint generation mid-stream, the
    // recovered fleet's outcome stream is byte-identical to an
    // uninterrupted twin's — across 3 chaos seeds x 2 presets.
    const WAVES: u64 = 4;
    const PER_WAVE: u64 = 40;
    for seed in [1u64, 2, 3] {
        for (cluster, policy) in [
            (ClusterId::Venus, Policy::Fifo),
            (ClusterId::Saturn, Policy::Srtf),
        ] {
            let calm = Fleet::launch(&single_cluster_config(cluster, policy)).unwrap();
            let mut baseline = run_streamed(&calm, cluster, 0..WAVES, PER_WAVE);
            baseline.extend(calm.shutdown().unwrap().pop().unwrap().1);

            // Panic 1 lands inside cycle 1 or 2; panic 2 lands in cycle
            // 2+ after corrupted generations exist, so at least one
            // recovery must fall back past damaged blobs. Periodic
            // generations 2 and 3 are corrupted the moment they are
            // written (post-recovery re-baselines are never damaged, so
            // recovery always has a clean generation within the ring).
            let chaos = ChaosConfig::seeded(seed)
                .panic_at(70 + seed * 10)
                .panic_at(200 + seed * 15)
                .corrupt_generation(2)
                .corrupt_generation(3);
            let stormy =
                Fleet::launch(&single_cluster_config(cluster, policy).with_chaos(chaos)).unwrap();
            let mut recovered = run_streamed(&stormy, cluster, 0..WAVES, PER_WAVE);
            let health = stormy.statuses()[0].health;
            recovered.extend(stormy.shutdown().unwrap().pop().unwrap().1);

            assert!(
                health.restarts >= 1,
                "seed {seed} {cluster:?}: no chaos panic was caught (restarts 0)"
            );
            assert!(
                health.fallbacks >= 1,
                "seed {seed} {cluster:?}: no recovery fell back past a corrupt generation"
            );
            assert_eq!(health.state, WorkerState::Healthy);
            let (n_base, d_base) = sorted_digest(baseline);
            let (n_rec, d_rec) = sorted_digest(recovered);
            assert_eq!(n_base, (WAVES * PER_WAVE) as usize);
            assert_eq!(
                n_rec, n_base,
                "seed {seed} {cluster:?}: outcomes lost or duplicated"
            );
            assert_eq!(
                d_rec, d_base,
                "seed {seed} {cluster:?}: recovered stream diverged from the uninterrupted run"
            );
        }
    }
}

#[test]
fn corrupt_newest_generation_falls_back_to_previous() {
    // Deterministic narrow case: wave 1 produces at most 90 kernel
    // events (30 jobs x submit/start/finish), so the panic scheduled at
    // event 100 fires during cycle 2 — when the newest generation is the
    // corrupted periodic checkpoint 1 — and recovery must fall back to
    // the launch generation.
    const PER_WAVE: u64 = 30;
    let cluster = ClusterId::Venus;
    let calm = Fleet::launch(&single_cluster_config(cluster, Policy::Fifo)).unwrap();
    let mut baseline = run_streamed(&calm, cluster, 0..3, PER_WAVE);
    baseline.extend(calm.shutdown().unwrap().pop().unwrap().1);

    let chaos = ChaosConfig::seeded(11).panic_at(100).corrupt_generation(1);
    let stormy =
        Fleet::launch(&single_cluster_config(cluster, Policy::Fifo).with_chaos(chaos)).unwrap();
    let mut recovered = run_streamed(&stormy, cluster, 0..3, PER_WAVE);
    let health = stormy.statuses()[0].health;
    recovered.extend(stormy.shutdown().unwrap().pop().unwrap().1);

    assert_eq!(health.restarts, 1, "exactly one scheduled panic");
    assert_eq!(
        health.fallbacks, 1,
        "recovery must skip the corrupted newest generation exactly once"
    );
    assert_eq!(health.state, WorkerState::Healthy);
    assert!(
        health.checkpoint_writes >= 4,
        "launch + periodic + re-baseline generations"
    );
    assert_eq!(sorted_digest(recovered), sorted_digest(baseline));
}

#[test]
fn exhausted_restart_budget_is_a_typed_crash_and_statuses_stay_infallible() {
    // max_restarts = 0: the first caught panic is terminal. Every
    // fallible call answers with the typed WorkerCrashed error, while
    // `statuses()` keeps serving the degraded-mode view.
    let config = single_cluster_config(ClusterId::Earth, Policy::Fifo)
        .with_max_restarts(0)
        .with_chaos(ChaosConfig::seeded(5).panic_at(1));
    let fleet = Fleet::launch(&config).unwrap();
    let nvcs = fleet.statuses()[0].vcs.len();
    fleet
        .submit(ClusterId::Earth, wave_job(0, 0, 0, nvcs))
        .unwrap();

    let err = fleet.advance(600).unwrap_err();
    match &err {
        HeliosError::WorkerCrashed { cluster, restarts } => {
            assert_eq!(cluster, "Earth");
            assert_eq!(*restarts, 0, "budget 0 means no restart was attempted");
        }
        other => panic!("expected WorkerCrashed, got {other}"),
    }

    // Fallible surfaces all report the same typed condition...
    assert!(matches!(
        fleet.status(ClusterId::Earth),
        Err(HeliosError::WorkerCrashed { .. })
    ));
    assert!(matches!(
        fleet.drain(ClusterId::Earth),
        Err(HeliosError::WorkerCrashed { .. })
    ));
    assert!(matches!(
        fleet.submit(ClusterId::Earth, wave_job(1, 0, 1, nvcs)),
        Err(HeliosError::WorkerCrashed { .. })
    ));
    // ...while the dashboard view stays infallible and degraded.
    let statuses = fleet.statuses();
    assert_eq!(statuses.len(), 1);
    assert_eq!(statuses[0].health.state, WorkerState::Crashed);
    assert_eq!(statuses[0].health.restarts, 0);
}

/// Truncation offsets for a frame of `len` bytes: every byte of the
/// header region, then a stride across the body, and the final byte —
/// cheap enough to run on every test invocation while still hitting
/// every decoder state transition.
fn truncation_offsets(len: usize) -> Vec<usize> {
    let mut cuts: Vec<usize> = (0..len.min(512)).collect();
    if len > 512 {
        let stride = (len / 256).max(1);
        cuts.extend((512..len).step_by(stride));
        cuts.push(len - 1);
    }
    cuts.dedup();
    cuts
}

#[test]
fn fleet_frame_fuzz_truncation_and_header_bitflips_stay_typed() {
    let fleet = Fleet::launch(
        &FleetConfig::new().with_cluster(ClusterConfig::new(ClusterId::Earth, Policy::Fifo)),
    )
    .unwrap();
    let frame = fleet.snapshot().unwrap();
    drop(fleet);
    assert!(Fleet::restore(&frame).is_ok());

    for cut in truncation_offsets(frame.len()) {
        let err = Fleet::restore(&frame[..cut]).unwrap_err();
        assert!(
            matches!(err, HeliosError::Snapshot { .. }),
            "cut at {cut}: expected a typed snapshot error, got {err}"
        );
    }
    // Magic (8 bytes) + version (4 bytes): any single-bit flip must be
    // rejected, never reinterpreted.
    for byte in 0..12 {
        for bit in 0..8 {
            let mut bent = frame.clone();
            bent[byte] ^= 1 << bit;
            let err = Fleet::restore(&bent).unwrap_err();
            assert!(
                matches!(err, HeliosError::Snapshot { .. }),
                "flip {byte}.{bit}: {err}"
            );
        }
    }
}

#[test]
fn kernel_snapshot_fuzz_truncation_and_header_bitflips_stay_typed() {
    let spec = preset(ClusterId::Venus);
    let mut sim = Simulator::new(&spec, Policy::Fifo.build());
    let jobs: Vec<SimJob> = (0..24).map(|k| wave_job(k, 0, k, spec.vcs.len())).collect();
    sim.push_jobs(&jobs).unwrap();
    sim.run_until(300);
    let blob = sim.snapshot().to_bytes();
    assert!(SimSnapshot::from_bytes(&blob).is_ok());

    for cut in truncation_offsets(blob.len()) {
        let err = SimSnapshot::from_bytes(&blob[..cut]).unwrap_err();
        assert!(
            matches!(err, HeliosError::Snapshot { .. }),
            "cut at {cut}: expected a typed snapshot error, got {err}"
        );
    }
    for byte in 0..12 {
        for bit in 0..8 {
            let mut bent = blob.clone();
            bent[byte] ^= 1 << bit;
            let err = SimSnapshot::from_bytes(&bent).unwrap_err();
            assert!(
                matches!(err, HeliosError::Snapshot { .. }),
                "flip {byte}.{bit}: {err}"
            );
        }
    }
}

#[test]
fn absurd_length_prefix_is_rejected_without_allocating() {
    // A hand-built fleet frame whose per-cluster blob claims u64::MAX
    // bytes: the reader's length guard must reject it as a typed error
    // instead of attempting the allocation.
    let mut w = ByteWriter::new();
    w.raw(b"HELFLEET");
    w.u32(1); // frame version
    w.u64(64); // shard capacity
    w.u32(1); // one hosted cluster
    w.u8(0); // cluster code: Venus
    w.u8(0); // policy code: Fifo
    w.u64(u64::MAX); // blob length prefix with no body
    let frame = w.into_bytes();
    let err = Fleet::restore(&frame).unwrap_err();
    assert!(matches!(err, HeliosError::Snapshot { .. }), "{err}");
}

#[test]
fn submit_with_retry_absorbs_stalled_admission_cycles() {
    // Cycle 1 is chaos-stalled (admission skipped), so the 2-deep shard
    // stays full through the first pump; the retrying producer must ride
    // out the overflow until cycle 2 drains it.
    let config = FleetConfig::new()
        .with_cluster(ClusterConfig::new(ClusterId::Venus, Policy::Fifo))
        .with_shard_capacity(2)
        .with_chaos(ChaosConfig::seeded(3).stall_cycle(1));
    let fleet = Fleet::launch(&config).unwrap();
    for id in 0..2 {
        fleet
            .submit(ClusterId::Venus, wave_job(id, 0, 0, 1))
            .unwrap();
    }
    assert!(matches!(
        fleet.submit(ClusterId::Venus, wave_job(2, 0, 0, 1)),
        Err(HeliosError::FleetOverflow { .. })
    ));

    let retry = RetryConfig::seeded(7)
        .base_backoff(Duration::from_millis(1))
        .max_backoff(Duration::from_millis(10))
        .deadline(Duration::from_secs(30));
    std::thread::scope(|scope| {
        let pump = scope.spawn(|| {
            // Cycle 1 stalls; keep pumping until the shard drains.
            for c in 1..200 {
                fleet.advance(c * 60).unwrap();
                if fleet.statuses()[0].pending_ingest == 0 {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            panic!("shard never drained");
        });
        fleet
            .submit_with_retry(ClusterId::Venus, wave_job(2, 0, 0, 1), &retry)
            .expect("retry must succeed once admission resumes");
        pump.join().unwrap();
    });
    let outcomes = fleet.shutdown().unwrap().pop().unwrap().1;
    assert_eq!(outcomes.len(), 3, "all three submissions were admitted");

    // Without anyone pumping, the deadline is honored and the last
    // overflow error surfaces.
    let jam = Fleet::launch(
        &FleetConfig::new()
            .with_cluster(ClusterConfig::new(ClusterId::Venus, Policy::Fifo))
            .with_shard_capacity(1),
    )
    .unwrap();
    jam.submit(ClusterId::Venus, wave_job(0, 0, 0, 1)).unwrap();
    let tight = RetryConfig::seeded(9)
        .base_backoff(Duration::from_millis(2))
        .max_backoff(Duration::from_millis(4))
        .deadline(Duration::from_millis(25));
    let err = jam
        .submit_with_retry(ClusterId::Venus, wave_job(1, 0, 0, 1), &tight)
        .unwrap_err();
    assert!(matches!(err, HeliosError::FleetOverflow { .. }), "{err}");
}

#[test]
fn fleet_recovers_from_disk_ring_after_process_death() {
    const PER_WAVE: u64 = 30;
    let dir = std::env::temp_dir().join(format!(
        "helios-fleet-recover-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = ClusterId::Venus;
    let config = FleetConfig::new()
        .with_cluster(ClusterConfig::new(cluster, Policy::Fifo))
        .with_checkpoint(
            CheckpointConfig::default()
                .every_cycles(1)
                .generations(3)
                .dir(&dir),
        );

    // The uninterrupted twin for the digest comparison.
    let calm = Fleet::launch(&single_cluster_config(cluster, Policy::Fifo)).unwrap();
    let mut baseline = run_streamed(&calm, cluster, 0..4, PER_WAVE);
    baseline.extend(calm.shutdown().unwrap().pop().unwrap().1);
    let (n_base, d_base) = sorted_digest(baseline);
    assert_eq!(n_base, 4 * PER_WAVE as usize);

    // First incarnation: two waves, drained, then dropped without
    // shutdown — the process-death analog.
    let first = Fleet::launch(&config).unwrap();
    let delivered_before = run_streamed(&first, cluster, 0..2, PER_WAVE);
    drop(first);

    // Damage the newest on-disk generation (index 2 after two periodic
    // checkpoints, slot 2 of a 3-deep ring): recovery must fall back to
    // generation 1 and close the gap from its journal.
    let newest = dir.join(format!("{}-slot2.ckpt", cluster.name()));
    let mut bytes = std::fs::read(&newest).expect("newest generation exists on disk");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("corruption applied");

    // Second incarnation resumes from disk and finishes the stream.
    let second = Fleet::recover(&config).unwrap();
    let mut replayed = run_streamed(&second, cluster, 2..4, PER_WAVE);
    replayed.extend(second.shutdown().unwrap().pop().unwrap().1);

    // Disk recovery is at-least-once: outcomes the dead process already
    // delivered come back. Deterministic replay means every duplicate is
    // bit-identical, so a by-id dedupe restores exactly-once.
    let mut union: Vec<JobOutcome> = delivered_before.into_iter().chain(replayed).collect();
    union.sort_by_key(|o| o.id);
    for pair in union.windows(2) {
        if pair[0].id == pair[1].id {
            assert_eq!(
                pair[0], pair[1],
                "replayed duplicate diverged from the original"
            );
        }
    }
    union.dedup_by_key(|o| o.id);
    assert_eq!(
        (union.len(), outcome_digest(&union)),
        (n_base, d_base),
        "disk-recovered stream diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_needs_a_checkpoint_dir_and_a_populated_ring() {
    // No dir configured: a typed configuration error, not a panic.
    let bare = FleetConfig::new().with_cluster(ClusterConfig::new(ClusterId::Earth, Policy::Fifo));
    assert!(matches!(
        Fleet::recover(&bare),
        Err(HeliosError::InvalidConfig { .. })
    ));

    // Empty dir: a typed snapshot error naming the missing ring.
    let dir = std::env::temp_dir().join(format!(
        "helios-fleet-recover-empty-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = bare.with_checkpoint(CheckpointConfig::default().dir(&dir));
    assert!(matches!(
        Fleet::recover(&config),
        Err(HeliosError::Snapshot { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
