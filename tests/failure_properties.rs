//! Failure-injection invariants: an armed-but-quiet fault model must not
//! perturb scheduling, an injected run must survive a mid-run
//! checkpoint/restore byte-identically (same failure sequence, same
//! outcomes), goodput must be a bounded fraction of raw progress, and
//! every misconfiguration must surface as a typed error — never a panic.

use helios_faults::{goodput, DrainConfig, DrainPolicy};
use helios_sim::{
    jobs_from_trace, FaultConfig, JobOutcome, Policy, SimJob, SimSnapshot, Simulator,
};
use helios_trace::{generate, profile_for, ClusterId, GeneratorConfig, HeliosError, Trace};

/// FNV-1a over the schedule-relevant outcome fields — the same
/// fingerprint the bench trajectory records use.
fn outcome_digest(outcomes: &[JobOutcome]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.start as u64);
        mix(o.end as u64);
        mix(o.preemptions as u64);
    }
    format!("{h:016x}")
}

/// One cluster's trace plus its September jobs.
fn september(cluster: ClusterId, seed: u64, scale: f64) -> (Trace, Vec<SimJob>, i64, i64) {
    let trace = generate(&profile_for(cluster), &GeneratorConfig { scale, seed }).unwrap();
    let (lo, hi) = trace.calendar.month_range(5);
    let jobs = jobs_from_trace(&trace, lo, hi);
    assert!(!jobs.is_empty(), "empty September window at scale {scale}");
    (trace, jobs, lo, hi)
}

fn run_outcomes(sim: &mut Simulator) -> Vec<JobOutcome> {
    sim.run_to_completion();
    let mut out = sim.drain_outcomes();
    out.sort_by_key(|o| o.id);
    out
}

#[test]
fn armed_but_quiet_fault_model_is_byte_identical_to_legacy() {
    // A fault model whose first time-to-failure draw lands far beyond the
    // trace horizon must not change a single scheduling decision: the
    // extra event class, the per-node telemetry, and the placement-index
    // plumbing have to be invisible until a failure actually fires.
    for cluster in [ClusterId::Venus, ClusterId::Saturn] {
        let (trace, jobs, _, _) = september(cluster, 2020, 0.1);

        let mut legacy = Simulator::new(&trace.spec, Policy::Fifo.build());
        legacy.push_jobs(&jobs).unwrap();
        let legacy_digest = outcome_digest(&run_outcomes(&mut legacy));

        // ~11k years between failures per node: silent within any window.
        let quiet = FaultConfig::with_mtbf_hours(1e8).burst_prob(0.0);
        let mut armed = Simulator::new(&trace.spec, Policy::Fifo.build());
        armed.enable_faults(&quiet).unwrap();
        armed.push_jobs(&jobs).unwrap();
        let armed_digest = outcome_digest(&run_outcomes(&mut armed));
        let stats = armed.fault_stats().expect("faults were enabled");
        assert_eq!(stats.failures, 0, "quiet model must stay quiet");
        assert_eq!(
            legacy_digest, armed_digest,
            "armed-but-quiet fault model perturbed {cluster:?}"
        );
    }
}

/// Uninterrupted injected baseline vs. checkpoint-at-`cut`, serialize,
/// drop, restore-from-bytes, resume — both under the same fault model.
/// Returns (baseline digest, resumed digest) and asserts the failure
/// sequence itself (stats) round-tripped.
fn run_both_faulty(
    cluster: ClusterId,
    seed: u64,
    scale: f64,
    faults: &FaultConfig,
) -> (String, String) {
    let (trace, jobs, lo, hi) = september(cluster, seed, scale);

    let mut baseline = Simulator::new(&trace.spec, Policy::Fifo.build());
    baseline.enable_faults(faults).unwrap();
    baseline.push_jobs(&jobs).unwrap();
    let base_sorted = run_outcomes(&mut baseline);
    let base_stats = baseline.fault_stats().unwrap();
    assert!(
        base_stats.failures > 0,
        "matrix point ({cluster:?}, seed {seed}) injected no failures — not a meaningful check"
    );

    let mut first = Simulator::new(&trace.spec, Policy::Fifo.build());
    first.enable_faults(faults).unwrap();
    first.push_jobs(&jobs).unwrap();
    let cut = lo + (hi - lo) / 2;
    first.run_until(cut);
    let mut resumed_outcomes = first.drain_outcomes();
    let bytes = first.snapshot().to_bytes();
    drop(first);

    let snap = SimSnapshot::from_bytes(&bytes).unwrap();
    // `restore` rebuilds the failure state from the snapshot itself;
    // re-enabling injection on a restored kernel is the double-enable
    // error, so the fault model travels only through the bytes.
    let mut second = Simulator::restore(&trace.spec, Policy::Fifo.build(), &snap).unwrap();
    assert_eq!(second.now(), cut);
    resumed_outcomes.extend(run_outcomes(&mut second));
    resumed_outcomes.sort_by_key(|o| o.id);
    let resumed_stats = second
        .fault_stats()
        .expect("restored kernel keeps injection on");

    assert_eq!(base_sorted.len(), resumed_outcomes.len());
    assert_eq!(
        base_stats, resumed_stats,
        "failure sequence diverged after restore ({cluster:?}, seed {seed})"
    );
    (
        outcome_digest(&base_sorted),
        outcome_digest(&resumed_outcomes),
    )
}

#[test]
fn injected_digests_survive_checkpoint_kill_requeue_matrix() {
    // The acceptance matrix, kill-and-requeue half: 3 seeds x 2 presets.
    // Kill-requeue restarts jobs from scratch, so the MTBF must dwarf the
    // 50-day duration ceiling or long jobs never complete — ~83 days per
    // node still injects a steady failure trickle at cluster width.
    let faults = FaultConfig::with_mtbf_hours(2000.0);
    for cluster in [ClusterId::Venus, ClusterId::Saturn] {
        for seed in [2020u64, 2021, 2022] {
            let (base, resumed) = run_both_faulty(cluster, seed, 0.1, &faults);
            assert_eq!(
                base, resumed,
                "digest diverged after restore ({cluster:?}, seed {seed}, kill-requeue)"
            );
        }
    }
}

#[test]
fn injected_digests_survive_checkpoint_checkpoint_restart_matrix() {
    // Checkpoint-restart half: periodic checkpoints change the kill
    // arithmetic (kept work), so the snapshot must carry it too. Banked
    // progress keeps even a daily-failure regime terminating.
    let faults = FaultConfig::with_mtbf_hours(24.0).checkpoint_hours(1.0);
    for cluster in [ClusterId::Venus, ClusterId::Saturn] {
        for seed in [2020u64, 2021, 2022] {
            let (base, resumed) = run_both_faulty(cluster, seed, 0.05, &faults);
            assert_eq!(
                base, resumed,
                "digest diverged after restore ({cluster:?}, seed {seed}, checkpoint-restart)"
            );
        }
    }
}

#[test]
fn goodput_is_bounded_by_raw_progress() {
    let (trace, jobs, _, _) = september(ClusterId::Venus, 2020, 0.05);
    let faults = FaultConfig::with_mtbf_hours(24.0).checkpoint_hours(1.0);
    let mut sim = Simulator::new(&trace.spec, Policy::Fifo.build());
    sim.enable_faults(&faults).unwrap();
    sim.push_jobs(&jobs).unwrap();
    let outcomes = run_outcomes(&mut sim);
    let stats = sim.fault_stats().unwrap();
    assert!(stats.killed_jobs > 0, "no kills — weak test point");

    let g = goodput(&outcomes, Some(stats));
    assert!(g.useful_gpu_hours > 0.0);
    assert!(g.lost_gpu_hours > 0.0, "kills must bill lost work");
    // Goodput <= raw progress: the ratio is a proper fraction, and the
    // useful share never exceeds useful + lost (raw GPU time spent).
    assert!(g.ratio() > 0.0 && g.ratio() < 1.0, "ratio {}", g.ratio());
    assert!(g.useful_gpu_hours <= g.useful_gpu_hours + g.lost_gpu_hours);

    // Failure-free accounting: nothing lost, ratio exactly 1.
    let clean = goodput(&outcomes, None);
    assert_eq!(clean.lost_gpu_hours, 0.0);
    assert_eq!(clean.ratio(), 1.0);
}

#[test]
fn invalid_fault_configs_are_typed_errors() {
    let bad = [
        FaultConfig::with_mtbf_hours(0.0),
        FaultConfig::with_mtbf_hours(-3.0),
        FaultConfig::with_mtbf_hours(f64::NAN),
        FaultConfig::with_mtbf_hours(24.0).repair_hours(-1.0),
        FaultConfig::with_mtbf_hours(24.0).shape(0.0),
        FaultConfig::with_mtbf_hours(24.0).rack_size(0),
        FaultConfig::with_mtbf_hours(24.0).burst_prob(1.5),
        FaultConfig::with_mtbf_hours(24.0).checkpoint_hours(0.0),
    ];
    let trace = generate(
        &profile_for(ClusterId::Venus),
        &GeneratorConfig {
            scale: 0.05,
            seed: 1,
        },
    )
    .unwrap();
    for cfg in bad {
        let err = cfg.validate().expect_err("non-physical config must fail");
        assert!(matches!(err, HeliosError::InvalidConfig { .. }), "{err}");
        let mut sim = Simulator::new(&trace.spec, Policy::Fifo.build());
        let err = sim
            .enable_faults(&cfg)
            .expect_err("enable_faults must validate");
        assert!(matches!(err, HeliosError::InvalidConfig { .. }), "{err}");
    }

    // Double-enable is a typed error too, not a silent reseed.
    let mut sim = Simulator::new(&trace.spec, Policy::Fifo.build());
    let cfg = FaultConfig::with_mtbf_hours(24.0);
    sim.enable_faults(&cfg).unwrap();
    let err = sim.enable_faults(&cfg).expect_err("double enable");
    assert!(matches!(err, HeliosError::InvalidConfig { .. }), "{err}");
}

#[test]
fn unknown_failure_codec_version_is_a_snapshot_error() {
    let (trace, jobs, lo, hi) = september(ClusterId::Venus, 3, 0.05);
    let mut sim = Simulator::new(&trace.spec, Policy::Fifo.build());
    sim.enable_faults(&FaultConfig::with_mtbf_hours(24.0))
        .unwrap();
    sim.push_jobs(&jobs).unwrap();
    sim.run_until(lo + (hi - lo) / 2);

    // The failure frame is the snapshot's final section: stripping the
    // fault payload from a second copy of the same snapshot tells us
    // exactly where the frame (and its leading codec-version u32) begins.
    let snap = sim.snapshot();
    let mut bytes = snap.to_bytes();
    let mut stripped = sim.snapshot();
    assert!(
        stripped.fault.is_some(),
        "fault-enabled kernel must snapshot its failure state"
    );
    stripped.fault = None;
    let frame_start = stripped.to_bytes().len();
    assert!(frame_start + 4 <= bytes.len());
    bytes[frame_start..frame_start + 4].copy_from_slice(&0xEEu32.to_le_bytes());

    let err = SimSnapshot::from_bytes(&bytes).expect_err("corrupt codec version must fail");
    assert!(matches!(err, HeliosError::Snapshot { .. }), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("failure-codec"), "unexpected message: {msg}");
}

#[test]
fn drain_policy_state_rejects_truncated_blobs() {
    let mut policy =
        DrainPolicy::uptime(Policy::Fifo.build(), 24.0, DrainConfig::default()).unwrap();
    let err = helios_sim::SchedulingPolicy::load_state(&mut policy, &[0u8; 4])
        .expect_err("truncated drain state must fail");
    assert!(matches!(err, HeliosError::Snapshot { .. }), "{err}");
}

#[test]
fn drain_config_validation_is_typed() {
    for cfg in [
        DrainConfig {
            risk_threshold: -0.1,
            ..DrainConfig::default()
        },
        DrainConfig {
            rescan_secs: 0,
            ..DrainConfig::default()
        },
        DrainConfig {
            max_drain_frac: 1.5,
            ..DrainConfig::default()
        },
    ] {
        let err = cfg.validate().expect_err("bad drain config must fail");
        assert!(matches!(err, HeliosError::InvalidConfig { .. }), "{err}");
    }
    let err = match DrainPolicy::uptime(Policy::Fifo.build(), 0.0, DrainConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("zero uptime threshold must be rejected"),
    };
    assert!(matches!(err, HeliosError::InvalidConfig { .. }), "{err}");
}

#[test]
fn checkpoint_semantics_lose_no_more_than_kill_requeue() {
    // Same fault stream, same jobs: hourly checkpoints can only shrink
    // the recompute bill relative to losing every running segment. The
    // kill-requeue arm never finishes its 50-day jobs at this MTBF, so
    // both arms run to a fixed horizon instead of completion.
    let (trace, jobs, _, hi) = september(ClusterId::Venus, 2020, 0.05);
    let horizon = hi + 30 * 86_400;
    let mut lost = Vec::new();
    for cfg in [
        FaultConfig::with_mtbf_hours(24.0),
        FaultConfig::with_mtbf_hours(24.0).checkpoint_hours(1.0),
    ] {
        let mut sim = Simulator::new(&trace.spec, Policy::Fifo.build());
        sim.enable_faults(&cfg).unwrap();
        sim.push_jobs(&jobs).unwrap();
        sim.run_until(horizon);
        lost.push(sim.fault_stats().unwrap().lost_gpu_secs);
    }
    assert!(
        lost[1] <= lost[0],
        "checkpointing increased lost work: {} > {}",
        lost[1],
        lost[0]
    );
}
