//! Failure-injection and degenerate-input tests across the workspace:
//! behaviours that only show up at the boundaries (empty windows, saturated
//! pools, one-job clusters, malformed CSV).

use helios_sim::{simulate, Placement, Policy, SimConfig, SimJob};
use helios_trace::{
    generate, venus_profile, ClusterId, ClusterSpec, GeneratorConfig, GpuModel, VcSpec,
};

fn tiny_spec() -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Venus,
        nodes: 1,
        gpus_per_node: 8,
        cpu_threads_per_node: 48,
        ram_gb_per_node: 376,
        network: "IB",
        gpu_model: GpuModel::Volta,
        vcs: vec![VcSpec {
            id: 0,
            name: "vc000".into(),
            nodes: 1,
        }],
    }
}

#[test]
fn simulator_handles_empty_job_list() {
    let r = simulate(&tiny_spec(), &[], &SimConfig::new(Policy::Fifo)).unwrap();
    assert!(r.outcomes.is_empty());
    // Observers on an empty run stay empty too.
    let mut occ = helios_sim::OccupancyObserver::new(60).unwrap();
    let mut sim = helios_sim::Simulator::new(&tiny_spec(), Box::new(helios_sim::FifoPolicy));
    sim.observe(Box::new(&mut occ));
    sim.run_to_completion();
    drop(sim);
    assert!(occ.series().is_empty());
}

#[test]
fn simulator_handles_single_job() {
    let jobs = vec![SimJob {
        id: 0,
        vc: 0,
        gpus: 8,
        submit: 1_000,
        duration: 42,
        priority: 0.0,
    }];
    for policy in [Policy::Fifo, Policy::Sjf, Policy::Srtf, Policy::Priority] {
        let r = simulate(&tiny_spec(), &jobs, &SimConfig::new(policy)).unwrap();
        assert_eq!(r.outcomes[0].start, 1_000, "{policy:?}");
        assert_eq!(r.outcomes[0].end, 1_042, "{policy:?}");
        assert_eq!(r.outcomes[0].queue_delay(), 0, "{policy:?}");
    }
}

#[test]
fn simulator_mass_simultaneous_arrivals() {
    // 100 whole-node jobs arriving at the same instant serialize cleanly.
    let jobs: Vec<SimJob> = (0..100)
        .map(|i| SimJob {
            id: i,
            vc: 0,
            gpus: 8,
            submit: 0,
            duration: 10,
            priority: i as f64,
        })
        .collect();
    let r = simulate(&tiny_spec(), &jobs, &SimConfig::new(Policy::Priority)).unwrap();
    let mut starts: Vec<i64> = r.outcomes.iter().map(|o| o.start).collect();
    starts.sort_unstable();
    for (k, s) in starts.iter().enumerate() {
        assert_eq!(*s, 10 * k as i64);
    }
}

#[test]
fn srtf_preemption_storm_terminates() {
    // Strictly decreasing durations arriving back-to-back: every arrival
    // preempts the current runner; all jobs must still finish exactly once.
    let jobs: Vec<SimJob> = (0..50)
        .map(|i| SimJob {
            id: i,
            vc: 0,
            gpus: 8,
            submit: i as i64,
            duration: 10_000 - 100 * i as i64,
            priority: 0.0,
        })
        .collect();
    let r = simulate(&tiny_spec(), &jobs, &SimConfig::new(Policy::Srtf)).unwrap();
    assert_eq!(r.outcomes.len(), 50);
    for (o, j) in r.outcomes.iter().zip(&jobs) {
        assert!(o.end >= o.start + j.duration);
    }
    // The last (shortest) arrival finishes first.
    let last = &r.outcomes[49];
    assert!(r.outcomes[..49].iter().all(|o| o.end > last.end - 1));
}

#[test]
fn backfill_with_empty_queue_is_noop() {
    let jobs = vec![SimJob {
        id: 0,
        vc: 0,
        gpus: 8,
        submit: 0,
        duration: 100,
        priority: 0.0,
    }];
    let cfg = SimConfig {
        policy: Policy::Fifo,
        placement: Placement::Consolidate,
        backfill: true,
    };
    let r = simulate(&tiny_spec(), &jobs, &cfg).unwrap();
    assert_eq!(r.outcomes[0].start, 0);
}

#[test]
fn csv_reader_rejects_truncated_rows() {
    use helios_trace::io::{read_csv, CSV_HEADER};
    let body = format!("{CSV_HEADER}\n1,2,3\n");
    assert!(read_csv(body.as_bytes()).is_err());
    // Empty body (header only) is fine.
    let (jobs, _) = read_csv(format!("{CSV_HEADER}\n").as_bytes()).unwrap();
    assert!(jobs.is_empty());
}

#[test]
fn generator_rejects_invalid_scale() {
    // Invalid configuration surfaces as a typed error, not a panic.
    for scale in [0.0, -1.0, 1.5, f64::NAN] {
        let result = generate(&venus_profile(), &GeneratorConfig { scale, seed: 1 });
        assert!(
            matches!(
                result,
                Err(helios_trace::HeliosError::InvalidConfig { field: "scale", .. })
            ),
            "scale {scale} must be rejected"
        );
    }
}

#[test]
fn analysis_handles_gpu_only_window() {
    // A trace window with zero CPU jobs must not break the status split.
    let t = generate(
        &venus_profile(),
        &GeneratorConfig {
            scale: 0.02,
            seed: 5,
        },
    )
    .unwrap();
    let gpu_only: Vec<helios_trace::JobRecord> = t.gpu_jobs().cloned().collect();
    let mut t2 = t.clone();
    t2.jobs = gpu_only;
    let (cpu, gpu) = helios_analysis::jobs::status_by_job_class(&[&t2]);
    assert_eq!(cpu, [0.0; 3]);
    assert!((gpu.iter().sum::<f64>() - 100.0).abs() < 1e-9);
}

#[test]
fn rolling_estimator_is_robust_to_unicode_names() {
    use helios_predict::RollingEstimator;
    let mut e = RollingEstimator::default();
    e.observe(1, "训练_模型_1", 4, 500.0);
    let est = e.estimate(1, "训练_模型_2", 4);
    assert!(est > 0.0);
}

#[test]
fn ces_control_loop_with_flat_zero_demand() {
    use helios_energy::{run_control_loop, CesConfig, DrsPolicy, NodeSeries};
    let s = NodeSeries {
        t0: 0,
        bin: 600,
        running: vec![0.0; 100],
        total_nodes: 50,
        arrivals: vec![0.0; 100],
    };
    let out = run_control_loop(
        &s,
        &vec![0.0; 100],
        DrsPolicy::Vanilla,
        &CesConfig::default(),
    );
    // Everything except the buffer sleeps; no wake-ups ever.
    assert!(out.avg_drs_nodes() > 45.0);
    assert!(out.wakeup_bins.is_empty());
    assert_eq!(out.affected_jobs, 0.0);
}
