//! Property-based cross-crate tests (proptest): invariants of the core data
//! structures under arbitrary inputs.

use helios_analysis::cdf::Cdf;
use helios_analysis::quantiles::BoxStats;
use helios_predict::text::{levenshtein, normalized_distance};
use helios_sim::{simulate, Policy, SimConfig, SimJob};
use helios_trace::{ClusterId, ClusterSpec, GpuModel, VcSpec};
use proptest::prelude::*;

fn one_vc_spec(nodes: u32) -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Venus,
        nodes,
        gpus_per_node: 8,
        cpu_threads_per_node: 48,
        ram_gb_per_node: 376,
        network: "IB",
        gpu_model: GpuModel::Volta,
        vcs: vec![VcSpec {
            id: 0,
            name: "vc000".into(),
            nodes,
        }],
    }
}

fn arb_jobs() -> impl Strategy<Value = Vec<SimJob>> {
    prop::collection::vec(
        (0u8..5, 0i64..50_000, 1i64..5_000, 0u64..1_000_000),
        1..80,
    )
    .prop_map(|raw| {
        let mut jobs: Vec<SimJob> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (g, submit, duration, prio))| SimJob {
                id: i as u64,
                vc: 0,
                gpus: [1, 2, 4, 8, 16][g as usize],
                submit,
                duration,
                priority: prio as f64,
            })
            .collect();
        jobs.sort_by_key(|j| j.submit);
        jobs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_conserves_jobs_and_capacity(jobs in arb_jobs(), policy in 0usize..4) {
        let policy = [Policy::Fifo, Policy::Sjf, Policy::Srtf, Policy::Priority][policy];
        let spec = one_vc_spec(3); // 24 GPUs
        let result = simulate(&spec, &jobs, &SimConfig::new(policy));
        prop_assert_eq!(result.outcomes.len(), jobs.len());
        let mut events: Vec<(i64, i64)> = Vec::new();
        for (o, j) in result.outcomes.iter().zip(&jobs) {
            prop_assert!(o.start >= j.submit);
            prop_assert!(o.end >= o.start + j.duration);
            if policy != Policy::Srtf {
                // Non-preemptive: contiguous execution.
                prop_assert_eq!(o.end - o.start, j.duration);
                events.push((o.start, j.gpus as i64));
                events.push((o.end, -(j.gpus as i64)));
            }
        }
        if policy != Policy::Srtf {
            events.sort();
            let mut load = 0i64;
            for (_, d) in events {
                load += d;
                prop_assert!(load <= 24);
            }
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalized(mut values in prop::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        values.retain(|v| v.is_finite());
        prop_assume!(!values.is_empty());
        let cdf = Cdf::new(values.clone());
        let lo = cdf.min();
        let hi = cdf.max();
        prop_assert!((cdf.fraction_at(hi) - 1.0).abs() < 1e-12);
        prop_assert!(cdf.fraction_at(lo - 1.0) == 0.0);
        // Monotone on a fixed grid.
        let mut last = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let f = cdf.fraction_at(x);
            prop_assert!(f + 1e-12 >= last);
            last = f;
        }
        // Quantiles stay within range.
        for q in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let v = cdf.quantile(q.max(0.01));
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn boxstats_ordering(values in prop::collection::vec(-1.0e4f64..1.0e4, 1..120)) {
        let b = BoxStats::from_samples(&values);
        prop_assert!(b.min <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.max + 1e-9);
        prop_assert!(b.whisker_lo >= b.min - 1e-9);
        prop_assert!(b.whisker_hi <= b.max + 1e-9);
        prop_assert_eq!(b.n, values.len());
    }

    #[test]
    fn levenshtein_metric_properties(a in "[a-z_]{0,12}", b in "[a-z_]{0,12}", c in "[a-z_]{0,12}") {
        // Symmetry.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Identity.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounds.
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
        // Normalized distance in [0, 1].
        let nd = normalized_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&nd));
    }

    #[test]
    fn gbdt_predictions_bounded_by_targets(seed in 0u64..1_000) {
        use helios_predict::gbdt::{Gbdt, GbdtParams};
        // Squared-loss leaf values are gradient means: predictions cannot
        // escape the convex hull of the targets (with shrinkage <= 1).
        let xs: Vec<f64> = (0..120).map(|i| ((i * 37 + seed as usize) % 60) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 0.3).sin() * 50.0).collect();
        let lo = ys.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ys.iter().cloned().fold(f64::MIN, f64::max);
        let model = Gbdt::fit(&[xs.clone()], &ys, &GbdtParams {
            num_trees: 40,
            seed,
            early_stopping: 0,
            ..Default::default()
        }, None);
        for x in 0..60 {
            let p = model.predict_row(&[x as f64]);
            prop_assert!(p >= lo - 1.0 && p <= hi + 1.0, "pred {p} outside [{lo}, {hi}]");
        }
    }
}
