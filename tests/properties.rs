//! Randomized cross-crate invariant tests: the same properties the original
//! proptest suite checked, driven by seeded ChaCha12 generation (the
//! offline environment has no proptest; see vendor/README.md). Each test
//! sweeps many deterministic seeds, so failures reproduce exactly.

use helios_analysis::cdf::Cdf;
use helios_analysis::quantiles::BoxStats;
use helios_predict::text::{levenshtein, normalized_distance};
use helios_sim::{simulate, Policy, SimConfig, SimJob};
use helios_trace::{ClusterId, ClusterSpec, GpuModel, VcSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn one_vc_spec(nodes: u32) -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Venus,
        nodes,
        gpus_per_node: 8,
        cpu_threads_per_node: 48,
        ram_gb_per_node: 376,
        network: "IB",
        gpu_model: GpuModel::Volta,
        vcs: vec![VcSpec {
            id: 0,
            name: "vc000".into(),
            nodes,
        }],
    }
}

fn arb_jobs(rng: &mut ChaCha12Rng) -> Vec<SimJob> {
    let n = rng.gen_range(1..80usize);
    let mut jobs: Vec<SimJob> = (0..n)
        .map(|i| SimJob {
            id: i as u64,
            vc: 0,
            gpus: [1, 2, 4, 8, 16][rng.gen_range(0..5usize)],
            submit: rng.gen_range(0..50_000i64),
            duration: rng.gen_range(1..5_000i64),
            priority: rng.gen_range(0..1_000_000i64) as f64,
        })
        .collect();
    jobs.sort_by_key(|j| j.submit);
    jobs
}

#[test]
fn simulator_conserves_jobs_and_capacity() {
    for seed in 0..64u64 {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let jobs = arb_jobs(&mut rng);
        let policy =
            [Policy::Fifo, Policy::Sjf, Policy::Srtf, Policy::Priority][(seed % 4) as usize];
        let spec = one_vc_spec(3); // 24 GPUs
        let result = simulate(&spec, &jobs, &SimConfig::new(policy)).unwrap();
        assert_eq!(result.outcomes.len(), jobs.len(), "seed {seed}");
        let mut events: Vec<(i64, i64)> = Vec::new();
        for (o, j) in result.outcomes.iter().zip(&jobs) {
            assert!(o.start >= j.submit, "seed {seed}");
            assert!(o.end >= o.start + j.duration, "seed {seed}");
            if policy != Policy::Srtf {
                // Non-preemptive: contiguous execution.
                assert_eq!(o.end - o.start, j.duration, "seed {seed}");
                events.push((o.start, j.gpus as i64));
                events.push((o.end, -(j.gpus as i64)));
            }
        }
        if policy != Policy::Srtf {
            events.sort();
            let mut load = 0i64;
            for (_, d) in events {
                load += d;
                assert!(load <= 24, "seed {seed}: capacity exceeded ({load})");
            }
        }
    }
}

#[test]
fn cdf_is_monotone_and_normalized() {
    for seed in 0..64u64 {
        let mut rng = ChaCha12Rng::seed_from_u64(1000 + seed);
        let n = rng.gen_range(1..200usize);
        let values: Vec<f64> = (0..n).map(|_| (rng.gen::<f64>() - 0.5) * 2.0e6).collect();
        let cdf = Cdf::new(values.clone());
        let lo = cdf.min();
        let hi = cdf.max();
        assert!((cdf.fraction_at(hi) - 1.0).abs() < 1e-12, "seed {seed}");
        assert!(cdf.fraction_at(lo - 1.0) == 0.0, "seed {seed}");
        // Monotone on a fixed grid.
        let mut last = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let f = cdf.fraction_at(x);
            assert!(f + 1e-12 >= last, "seed {seed}");
            last = f;
        }
        // Quantiles stay within range.
        for q in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let v = cdf.quantile(q.max(0.01));
            assert!(v >= lo && v <= hi, "seed {seed}");
        }
    }
}

#[test]
fn boxstats_ordering() {
    for seed in 0..64u64 {
        let mut rng = ChaCha12Rng::seed_from_u64(2000 + seed);
        let n = rng.gen_range(1..120usize);
        let values: Vec<f64> = (0..n).map(|_| (rng.gen::<f64>() - 0.5) * 2.0e4).collect();
        let b = BoxStats::from_samples(&values);
        assert!(b.min <= b.q1 + 1e-9, "seed {seed}");
        assert!(b.q1 <= b.median + 1e-9, "seed {seed}");
        assert!(b.median <= b.q3 + 1e-9, "seed {seed}");
        assert!(b.q3 <= b.max + 1e-9, "seed {seed}");
        assert!(b.whisker_lo >= b.min - 1e-9, "seed {seed}");
        assert!(b.whisker_hi <= b.max + 1e-9, "seed {seed}");
        assert_eq!(b.n, values.len(), "seed {seed}");
    }
}

fn arb_name(rng: &mut ChaCha12Rng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
    let len = rng.gen_range(0..=12usize);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

#[test]
fn levenshtein_metric_properties() {
    for seed in 0..200u64 {
        let mut rng = ChaCha12Rng::seed_from_u64(3000 + seed);
        let a = arb_name(&mut rng);
        let b = arb_name(&mut rng);
        let c = arb_name(&mut rng);
        // Symmetry.
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Identity.
        assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounds.
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        assert!(d >= la.abs_diff(lb));
        assert!(d <= la.max(lb));
        // Normalized distance in [0, 1].
        let nd = normalized_distance(&a, &b);
        assert!((0.0..=1.0).contains(&nd));
    }
}

#[test]
fn gbdt_predictions_bounded_by_targets() {
    use helios_predict::gbdt::{Gbdt, GbdtParams};
    // Squared-loss leaf values are gradient means: predictions cannot
    // escape the convex hull of the targets (with shrinkage <= 1).
    for seed in (0..1000u64).step_by(37) {
        let xs: Vec<f64> = (0..120)
            .map(|i| ((i * 37 + seed as usize) % 60) as f64)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x * 0.3).sin() * 50.0).collect();
        let lo = ys.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ys.iter().cloned().fold(f64::MIN, f64::max);
        let model = Gbdt::fit(
            std::slice::from_ref(&xs),
            &ys,
            &GbdtParams {
                num_trees: 40,
                seed,
                early_stopping: 0,
                ..Default::default()
            },
            None,
        );
        for x in 0..60 {
            let p = model.predict_row(&[x as f64]);
            assert!(
                p >= lo - 1.0 && p <= hi + 1.0,
                "seed {seed}: pred {p} outside [{lo}, {hi}]"
            );
        }
    }
}
