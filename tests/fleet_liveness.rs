//! Liveness and overload properties of the fleet layer (PR 9): watchdog
//! supervision recovers stalled workers with byte-identical outcome
//! streams, a worker that ignores cancellation degrades to `Hung`
//! without blocking any call, adaptive admission control sheds heavy VCs
//! first with hysteresis, the admission journal acknowledges batches
//! exactly once across mid-admission crashes, status queries stay
//! infallible and monotone during recovery, and the injection-off fleet
//! still reproduces the digests committed in `BENCH_fleet.json`.

use helios_fleet::{
    ChaosConfig, CheckpointConfig, ClusterConfig, Fleet, FleetConfig, RetryConfig, ShedConfig,
    StatusKind, WatchdogConfig, WorkerState,
};
use helios_sim::{JobOutcome, Policy, SimJob};
use helios_trace::{ClusterId, HeliosError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// FNV-1a over the schedule-relevant outcome fields — the same
/// fingerprint `BENCH_*.json` trajectory records use.
fn outcome_digest(outcomes: &[JobOutcome]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.start as u64);
        mix(o.end as u64);
        mix(o.preemptions as u64);
    }
    format!("{h:016x}")
}

fn sorted_digest(mut outcomes: Vec<JobOutcome>) -> (usize, String) {
    outcomes.sort_by_key(|o| o.id);
    (outcomes.len(), outcome_digest(&outcomes))
}

/// The deterministic synthetic job for slot `k` of wave `w` — the same
/// stream every fleet in a comparison pair sees.
fn wave_job(id: u64, w: u64, k: u64, nvcs: usize) -> SimJob {
    SimJob {
        id,
        vc: ((k + w) % nvcs as u64) as u16,
        gpus: 1 + (k % 2) as u32,
        submit: w as i64 * 600,
        duration: 30 + (k % 7) as i64 * 60,
        priority: 0.0,
    }
}

/// Stream `waves × per_wave` jobs into a single-cluster fleet, draining
/// after every advance, then return the accumulated outcome stream.
fn run_streamed(
    fleet: &Fleet,
    cluster: ClusterId,
    waves: std::ops::Range<u64>,
    per_wave: u64,
) -> Vec<JobOutcome> {
    let nvcs = fleet.statuses()[0].vcs.len();
    let mut outcomes = Vec::new();
    for w in waves {
        for k in 0..per_wave {
            fleet
                .submit(cluster, wave_job(w * per_wave + k, w, k, nvcs))
                .expect("synthetic job is valid");
        }
        fleet.advance((w as i64 + 1) * 600).expect("advance");
        outcomes.extend(fleet.drain(cluster).expect("drain"));
    }
    outcomes
}

fn single_cluster_config(cluster: ClusterId, policy: Policy) -> FleetConfig {
    FleetConfig::new()
        .with_cluster(ClusterConfig::new(cluster, policy))
        .with_checkpoint(CheckpointConfig::default().every_cycles(1).generations(4))
}

/// A watchdog tuned for tests: the stall deadline is short enough that a
/// chaos hang is cancelled within tens of milliseconds, the hang grace
/// is generous (soft hangs release the moment cancellation is armed),
/// and the cancellation token is checked at every kernel event so a
/// cancelled run restarts at a deterministic event boundary.
fn test_watchdog() -> WatchdogConfig {
    WatchdogConfig::new()
        .stall_deadline(Duration::from_millis(40))
        .hang_deadline(Duration::from_secs(5))
        .check_events(1)
}

#[test]
fn hang_chaos_recovery_digests_match_uninterrupted_run() {
    // The watchdog tentpole property: a worker stalled mid-pump by the
    // chaos harness (alive but making no kernel progress) is cancelled
    // cooperatively and routed through checkpoint-restore, and the
    // recovered outcome stream is byte-identical to an uninterrupted,
    // watchdog-free twin's — across 3 hang points x 2 presets.
    const WAVES: u64 = 4;
    const PER_WAVE: u64 = 40;
    for seed in [1u64, 2, 3] {
        for (cluster, policy) in [
            (ClusterId::Venus, Policy::Fifo),
            (ClusterId::Saturn, Policy::Srtf),
        ] {
            let calm = Fleet::launch(&single_cluster_config(cluster, policy)).unwrap();
            let mut baseline = run_streamed(&calm, cluster, 0..WAVES, PER_WAVE);
            baseline.extend(calm.shutdown().unwrap().pop().unwrap().1);

            let chaos = ChaosConfig::seeded(seed).hang_at(70 + seed * 10);
            let stormy = Fleet::launch(
                &single_cluster_config(cluster, policy)
                    .with_chaos(chaos)
                    .with_watchdog(test_watchdog()),
            )
            .unwrap();
            let mut recovered = run_streamed(&stormy, cluster, 0..WAVES, PER_WAVE);
            let health = stormy.statuses()[0].health;
            recovered.extend(stormy.shutdown().unwrap().pop().unwrap().1);

            assert!(
                health.restarts >= 1,
                "seed {seed} {cluster:?}: the injected hang never forced a watchdog restart"
            );
            assert_eq!(
                health.state,
                WorkerState::Healthy,
                "seed {seed} {cluster:?}: worker should be healthy after recovery"
            );
            assert_eq!(
                sorted_digest(recovered),
                sorted_digest(baseline),
                "seed {seed} {cluster:?}: watchdog recovery changed the outcome stream"
            );
        }
    }
}

#[test]
fn hard_hang_degrades_to_hung_without_blocking() {
    // A worker that ignores cooperative cancellation past the hard
    // deadline is declared Hung and abandoned: the blocked call returns
    // the typed error, every later command is refused at the door,
    // infallible status surfaces the degraded state, and dropping the
    // fleet does not wedge on the zombie thread.
    let cluster = ClusterId::Venus;
    let config = single_cluster_config(cluster, Policy::Fifo)
        .with_chaos(ChaosConfig::seeded(7).hard_hang_at(50))
        .with_watchdog(
            WatchdogConfig::new()
                .stall_deadline(Duration::from_millis(30))
                .hang_deadline(Duration::from_millis(60))
                .check_events(1),
        );
    let fleet = Fleet::launch(&config).unwrap();
    let nvcs = fleet.statuses()[0].vcs.len();
    for k in 0..40 {
        fleet.submit(cluster, wave_job(k, 0, k, nvcs)).unwrap();
    }
    let err = fleet.advance(600).expect_err("the hard hang must surface");
    assert!(
        matches!(err, HeliosError::WorkerHung { .. }),
        "expected WorkerHung, got {err:?}"
    );

    // Infallible view: the hung worker still reports its last state.
    let statuses = fleet.statuses();
    assert_eq!(statuses.len(), 1);
    assert_eq!(statuses[0].health.state, WorkerState::Hung);

    // Fallible paths are typed errors, never blocking waits.
    assert!(matches!(
        fleet.status(cluster),
        Err(HeliosError::WorkerHung { .. })
    ));
    assert!(matches!(
        fleet.submit(cluster, wave_job(1_000, 0, 0, nvcs)),
        Err(HeliosError::WorkerHung { .. })
    ));
    assert!(matches!(
        fleet.advance(1_200),
        Err(HeliosError::WorkerHung { .. })
    ));

    // The deadline-bounded read still serves data, tagged Degraded.
    let report = fleet
        .status_within(cluster, Duration::from_millis(5))
        .unwrap();
    assert_eq!(report.kind, StatusKind::Degraded);
    assert_eq!(report.status.health.state, WorkerState::Hung);

    // Dropping the fleet must detach, not join, the hung worker; the
    // test completing at all is the liveness assertion.
    drop(fleet);
}

/// A 1-GPU probe job for shedding tests (valid on every VC).
fn probe(id: u64, vc: u16) -> SimJob {
    SimJob {
        id,
        vc,
        gpus: 1,
        submit: 0,
        duration: 60,
        priority: 0.0,
    }
}

#[test]
fn shedding_sheds_heavy_vcs_first_with_hysteresis() {
    let cluster = ClusterId::Venus;
    let config = FleetConfig::new()
        .with_cluster(ClusterConfig::new(cluster, Policy::Fifo))
        .with_shard_capacity(8)
        .with_shedding(ShedConfig::new().high_water(0.10).low_water(0.02));
    let fleet = Fleet::launch(&config).unwrap();
    let nvcs = fleet.statuses()[0].vcs.len();
    assert!(nvcs >= 24, "Venus should host enough VCs for this layout");

    // Spread one job over each of 21 light VCs plus one onto VC 0:
    // backlog 22/216 crosses the 10% high-water mark, so the next
    // submission evaluates under engaged shedding.
    let mut id = 0;
    for vc in 1..=21u16 {
        fleet.submit(cluster, probe(id, vc)).unwrap();
        id += 1;
    }
    fleet.submit(cluster, probe(id, 0)).unwrap();
    id += 1;

    // VC 0 now holds more than the mean backlog: shed, with a usable
    // retry hint. The shard is far from full, so this is admission
    // control, not overflow.
    match fleet.submit(cluster, probe(id, 0)) {
        Err(HeliosError::FleetShedding {
            vc,
            retry_after_cycles,
            ..
        }) => {
            assert_eq!(vc, 0);
            assert!(retry_after_cycles >= 1);
        }
        other => panic!("expected FleetShedding for the heavy VC, got {other:?}"),
    }

    // A light VC (empty backlog) keeps submitting while shedding is
    // engaged — per-VC fairness under overload.
    fleet.submit(cluster, probe(id, 22)).unwrap();
    id += 1;

    let health = fleet.statuses()[0].health;
    assert!(health.shedding, "hysteresis band should be engaged");
    assert!(health.shed_jobs >= 1);

    // submit_with_retry absorbs shedding: a pump thread drains the
    // backlog while the producer backs off by the retry hint.
    let heavy = probe(id, 0);
    id += 1;
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            fleet.advance(600).expect("pump advance");
        });
        fleet
            .submit_with_retry(cluster, heavy, &RetryConfig::seeded(9))
            .expect("retry should absorb the shedding window");
    });

    // Draining below the low-water mark disengages shedding: the
    // previously heavy VC submits freely again.
    fleet.advance(1_200).unwrap();
    fleet.submit(cluster, probe(id, 0)).unwrap();
    assert!(
        !fleet.statuses()[0].health.shedding,
        "shedding should disengage once the backlog drains"
    );
}

#[test]
fn admission_panic_between_drain_and_journal_readmits_exactly_once() {
    // Satellite regression (PR-8 race): a batch drained from the shards
    // but not yet journaled when the worker dies must be re-admitted
    // after restore — exactly once, so the recovered stream matches the
    // calm twin and no job is lost or duplicated.
    const WAVES: u64 = 4;
    const PER_WAVE: u64 = 40;
    for (cluster, policy) in [
        (ClusterId::Venus, Policy::Fifo),
        (ClusterId::Saturn, Policy::Srtf),
    ] {
        let calm = Fleet::launch(&single_cluster_config(cluster, policy)).unwrap();
        let mut baseline = run_streamed(&calm, cluster, 0..WAVES, PER_WAVE);
        baseline.extend(calm.shutdown().unwrap().pop().unwrap().1);

        let chaos = ChaosConfig::seeded(11).panic_admit_at_cycle(2);
        let stormy =
            Fleet::launch(&single_cluster_config(cluster, policy).with_chaos(chaos)).unwrap();
        let mut recovered = run_streamed(&stormy, cluster, 0..WAVES, PER_WAVE);
        let health = stormy.statuses()[0].health;
        recovered.extend(stormy.shutdown().unwrap().pop().unwrap().1);

        assert!(
            health.restarts >= 1,
            "{cluster:?}: the admission-window panic never fired"
        );
        let (jobs, digest) = sorted_digest(recovered);
        let (base_jobs, base_digest) = sorted_digest(baseline);
        assert_eq!(
            jobs,
            (WAVES * PER_WAVE) as usize,
            "{cluster:?}: jobs lost or duplicated across the admission crash"
        );
        assert_eq!(jobs, base_jobs);
        assert_eq!(
            digest, base_digest,
            "{cluster:?}: mid-admission crash changed the outcome stream"
        );
    }
}

#[test]
fn statuses_stay_infallible_and_monotone_during_recovery() {
    // Satellite: a status reader racing in-progress checkpoint restores
    // never errors, never observes the heartbeat running backwards, and
    // sees a fully re-baselined FleetHealth once recovery settles.
    let cluster = ClusterId::Venus;
    let config = single_cluster_config(cluster, Policy::Fifo)
        .with_chaos(ChaosConfig::seeded(3).panic_at(70).panic_at(200))
        // Production-shaped deadlines: heartbeats flow, supervision
        // never fires on a healthy-but-busy worker.
        .with_watchdog(WatchdogConfig::new());
    let fleet = Fleet::launch(&config).unwrap();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut samples = 0u64;
            let mut last_hb = 0u64;
            while !stop.load(Ordering::Acquire) {
                let statuses = fleet.statuses(); // must never panic or block
                assert_eq!(statuses.len(), 1);
                let h = statuses[0].health;
                assert!(
                    h.heartbeat_events >= last_hb,
                    "heartbeat ran backwards: {} -> {}",
                    last_hb,
                    h.heartbeat_events
                );
                last_hb = h.heartbeat_events;
                // The deadline-bounded read must also always answer;
                // Degraded is legal mid-recovery, an error is not.
                let report = fleet
                    .status_within(cluster, Duration::from_millis(2))
                    .expect("status_within only errors on unknown clusters");
                assert!(matches!(
                    report.kind,
                    StatusKind::Fresh | StatusKind::Stale { .. } | StatusKind::Degraded
                ));
                samples += 1;
            }
            samples
        });

        let outcomes = run_streamed(&fleet, cluster, 0..4, 40);
        stop.store(true, Ordering::Release);
        let samples = sampler.join().expect("sampler must not panic");
        assert!(samples > 0, "sampler never ran");
        assert_eq!(outcomes.len() + fleet.drain(cluster).unwrap().len(), 160);
    });

    // Post-recovery health is re-baselined, not stale: both panics were
    // absorbed, the worker is healthy, heartbeats advanced, and the
    // journal restarted from the re-baseline checkpoint.
    let health = fleet.statuses()[0].health;
    assert_eq!(health.state, WorkerState::Healthy);
    assert_eq!(health.restarts, 2);
    assert!(health.heartbeat_events > 0);
    assert!(health.checkpoint_writes > 0);
    fleet.shutdown().unwrap();
}

#[test]
fn injection_off_fleet_reproduces_committed_bench_digests() {
    // The committed BENCH_fleet.json resilience digests pin the
    // fleet-chaos job stream's outcome fingerprints. An injection-off
    // fleet replaying that exact stream must reproduce them — if this
    // fails, either determinism regressed or BENCH_fleet.json was
    // regenerated without updating the chaos stream (or vice versa).
    const WAVES: usize = 10;
    const JOBS_PER_CLUSTER_PER_WAVE: usize = 400;
    const WAVE_SECS: i64 = 600;
    let hosted = [
        (ClusterId::Venus, Policy::Fifo),
        (ClusterId::Saturn, Policy::Srtf),
    ];

    // The vendored serde_json stand-in is serialize-only, so the pins
    // are scanned straight out of the committed text: string values of
    // `cluster` / `outcome_digest` keys, in order, after the
    // `"resilience"` marker.
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fleet.json"))
        .expect("BENCH_fleet.json is committed at the repo root");
    let start = text
        .find("\"resilience\"")
        .expect("resilience section present");
    // Bound the scan at the next top-level section (the `overload`
    // records carry the same keys).
    let end = text[start..]
        .find("\"overload\"")
        .map_or(text.len(), |i| start + i);
    let resilience = &text[start..end];
    let grab = |key: &str| -> Vec<String> {
        let pat = format!("\"{key}\": \"");
        let mut out = Vec::new();
        let mut rest = resilience;
        while let Some(i) = rest.find(&pat) {
            let start = i + pat.len();
            let len = rest[start..].find('"').expect("closing quote");
            out.push(rest[start..start + len].to_string());
            rest = &rest[start + len..];
        }
        out
    };
    let pinned: Vec<(String, String)> = grab("cluster")
        .into_iter()
        .zip(grab("outcome_digest"))
        .collect();
    assert_eq!(
        pinned.len(),
        hosted.len(),
        "BENCH_fleet.json should carry one resilience record per hosted cluster"
    );

    let mut config = FleetConfig::new()
        .with_checkpoint(CheckpointConfig::default().every_cycles(1).generations(4));
    for &(cluster, policy) in &hosted {
        config = config.with_cluster(ClusterConfig::new(cluster, policy));
    }
    let fleet = Fleet::launch(&config).unwrap();
    let clusters = fleet.clusters();
    let nvcs: Vec<usize> = clusters
        .iter()
        .map(|&c| fleet.status(c).unwrap().vcs.len().max(1))
        .collect();
    let mut next_id = 0u64;
    for wave in 0..WAVES {
        let floor = wave as i64 * WAVE_SECS;
        for (ci, &cluster) in clusters.iter().enumerate() {
            for k in 0..JOBS_PER_CLUSTER_PER_WAVE {
                let job = SimJob {
                    id: next_id,
                    vc: ((k + wave) % nvcs[ci]) as u16,
                    gpus: 1 + (k as u32 % 2),
                    submit: floor,
                    duration: 30 + (k as i64 % 7) * 60,
                    priority: 0.0,
                };
                match fleet.submit(cluster, job) {
                    Ok(()) => {}
                    Err(HeliosError::FleetOverflow { .. }) => {
                        fleet.advance_cluster(cluster, floor).unwrap();
                        fleet.submit(cluster, job).unwrap();
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
                next_id += 1;
            }
        }
        fleet.advance((wave as i64 + 1) * WAVE_SECS).unwrap();
    }
    for (i, (cluster, outcomes)) in fleet.shutdown().unwrap().into_iter().enumerate() {
        let (jobs, digest) = sorted_digest(outcomes);
        assert_eq!(jobs, WAVES * JOBS_PER_CLUSTER_PER_WAVE);
        assert_eq!(cluster.name(), pinned[i].0, "cluster order drifted");
        assert_eq!(
            digest, pinned[i].1,
            "{}: injection-off digest no longer matches BENCH_fleet.json",
            pinned[i].0
        );
    }
}
