//! Snapshot/restore equivalence: checkpointing a kernel mid-run, dropping
//! it, and resuming from the serialized bytes must reproduce the
//! uninterrupted run's outcomes **byte-identically** — same digest over
//! `(id, start, end, preemptions)` as the bench trajectory records.

use helios_energy::EnergyAwarePolicy;
use helios_sim::{
    jobs_from_trace, JobOutcome, Policy, SchedulingPolicy, SimSnapshot, Simulator, SrtfPolicy,
    TiresiasPolicy,
};
use helios_trace::{generate, preset, profile_for, ClusterId, GeneratorConfig, HeliosError};

/// FNV-1a over the schedule-relevant outcome fields — the same
/// fingerprint the bench trajectory records use, so "digests match" here
/// means exactly what `BENCH_*.json` equality means.
fn outcome_digest(outcomes: &[JobOutcome]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.start as u64);
        mix(o.end as u64);
        mix(o.preemptions as u64);
    }
    format!("{h:016x}")
}

/// Uninterrupted baseline vs. checkpoint-at-`cut`, serialize, drop,
/// restore-from-bytes, resume. Returns (baseline digest, resumed digest).
fn run_both(
    cluster: ClusterId,
    seed: u64,
    scale: f64,
    make_policy: impl Fn() -> Box<dyn SchedulingPolicy>,
) -> (String, String) {
    let trace = generate(&profile_for(cluster), &GeneratorConfig { scale, seed }).unwrap();
    let (lo, hi) = trace.calendar.month_range(5);
    let jobs = jobs_from_trace(&trace, lo, hi);
    assert!(!jobs.is_empty(), "empty September window at scale {scale}");

    let mut baseline = Simulator::new(&trace.spec, make_policy());
    baseline.push_jobs(&jobs).unwrap();
    baseline.run_to_completion();
    let base_outcomes = baseline.drain_outcomes();

    let mut first = Simulator::new(&trace.spec, make_policy());
    first.push_jobs(&jobs).unwrap();
    let cut = lo + (hi - lo) / 2;
    first.run_until(cut);
    // Drain what finished before the cut: outcomes already surrendered
    // must not reappear after restore, and vice versa.
    let mut resumed_outcomes = first.drain_outcomes();
    let bytes = first.snapshot().to_bytes();
    drop(first);

    let snap = SimSnapshot::from_bytes(&bytes).unwrap();
    let mut second = Simulator::restore(&trace.spec, make_policy(), &snap).unwrap();
    assert_eq!(second.now(), cut);
    second.run_to_completion();
    resumed_outcomes.extend(second.drain_outcomes());
    resumed_outcomes.sort_by_key(|o| o.id);

    let mut base_sorted = base_outcomes;
    base_sorted.sort_by_key(|o| o.id);
    assert_eq!(base_sorted.len(), resumed_outcomes.len());
    (
        outcome_digest(&base_sorted),
        outcome_digest(&resumed_outcomes),
    )
}

#[test]
fn scale_01_digests_survive_checkpoint_three_seeds_two_presets() {
    // The acceptance matrix: 3 seeds x 2 presets at scale 0.1.
    for cluster in [ClusterId::Venus, ClusterId::Saturn] {
        for seed in [2020u64, 2021, 2022] {
            let (base, resumed) = run_both(cluster, seed, 0.1, || Policy::Fifo.build());
            assert_eq!(
                base, resumed,
                "digest diverged after restore ({cluster:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn preemptive_state_survives_checkpoint() {
    // SRTF carries remaining-time ordering and mid-flight preemption
    // state (epochs, stale finish events) across the checkpoint;
    // Tiresias adds discretized-LAS level state.
    let (base, resumed) = run_both(ClusterId::Venus, 7, 0.05, || Box::new(SrtfPolicy));
    assert_eq!(base, resumed, "SRTF diverged after restore");
    let (base, resumed) = run_both(ClusterId::Venus, 8, 0.05, || {
        Box::new(TiresiasPolicy::default())
    });
    assert_eq!(base, resumed, "Tiresias diverged after restore");
}

#[test]
fn stateful_policy_state_round_trips_through_snapshot() {
    // The energy-aware policy's hook-fed utilization gate is dynamic
    // policy state: it must travel through save_state/load_state for the
    // resumed run to take identical FIFO-vs-energy ordering decisions.
    let (base, resumed) = run_both(ClusterId::Venus, 9, 0.05, || {
        Box::new(EnergyAwarePolicy::default())
    });
    assert_eq!(base, resumed, "energy-aware policy diverged after restore");
}

#[test]
fn restore_rejects_mismatched_cluster_and_policy() {
    let trace = generate(
        &profile_for(ClusterId::Venus),
        &GeneratorConfig {
            scale: 0.05,
            seed: 1,
        },
    )
    .unwrap();
    let (lo, hi) = trace.calendar.month_range(5);
    let jobs = jobs_from_trace(&trace, lo, hi);
    let mut sim = Simulator::new(&trace.spec, Policy::Fifo.build());
    sim.push_jobs(&jobs).unwrap();
    sim.run_until(lo + (hi - lo) / 2);
    let snap = sim.snapshot();

    // Wrong cluster: the spec fingerprint catches it.
    let err = Simulator::restore(&preset(ClusterId::Earth), Policy::Fifo.build(), &snap)
        .err()
        .expect("cross-cluster restore must fail");
    assert!(matches!(err, HeliosError::Snapshot { .. }), "{err}");

    // Wrong policy: the recorded discipline name catches it.
    let err = Simulator::restore(&trace.spec, Policy::Sjf.build(), &snap)
        .err()
        .expect("cross-policy restore must fail");
    assert!(matches!(err, HeliosError::Snapshot { .. }), "{err}");
}
