//! Quickstart: generate a small synthetic Helios cluster trace, train the
//! QSSF service, and compare FIFO vs QSSF scheduling on one month of jobs.
//!
//! Run with: `cargo run --release --example quickstart`

use helios_core::{QssfConfig, QssfService};
use helios_sim::{jobs_from_trace, schedule_stats, simulate, Policy, SimConfig};
use helios_trace::{generate, venus_profile, GeneratorConfig};

fn main() {
    // A 10%-scale Venus cluster: ~15k GPU jobs over six months.
    let cfg = GeneratorConfig { scale: 0.1, seed: 42 };
    let trace = generate(&venus_profile(), &cfg);
    println!(
        "generated {} jobs ({} GPU) on {} nodes / {} GPUs",
        trace.jobs.len(),
        trace.gpu_jobs().count(),
        trace.spec.nodes,
        trace.total_gpus()
    );

    // September window.
    let (lo, hi) = trace.calendar.month_range(5);

    // Baseline: the production FIFO scheduler.
    let base = jobs_from_trace(&trace, lo, hi);
    let fifo = schedule_stats(&simulate(&trace.spec, &base, &SimConfig::new(Policy::Fifo)).outcomes);

    // QSSF: train the GPU-time predictor on April-August history, then
    // schedule September by predicted GPU time.
    let mut qssf = QssfService::new(QssfConfig::default());
    qssf.train(&trace, 0, lo);
    let scored = qssf.assign_priorities(&trace, lo, hi);
    let qssf_stats =
        schedule_stats(&simulate(&trace.spec, &scored, &SimConfig::new(Policy::Priority)).outcomes);

    println!("\n               FIFO        QSSF");
    println!("avg JCT      {:>8.0}s  {:>8.0}s", fifo.avg_jct, qssf_stats.avg_jct);
    println!(
        "avg queue    {:>8.0}s  {:>8.0}s",
        fifo.avg_queue_delay, qssf_stats.avg_queue_delay
    );
    println!("queued jobs  {:>9}  {:>9}", fifo.queued_jobs, qssf_stats.queued_jobs);
    println!(
        "\nQSSF improves average JCT by {:.1}x and queueing delay by {:.1}x",
        fifo.avg_jct / qssf_stats.avg_jct,
        fifo.avg_queue_delay / qssf_stats.avg_queue_delay
    );
}
