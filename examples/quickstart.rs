//! Quickstart: one builder pipeline from trace generation to a scheduled
//! report — generate a small synthetic Venus trace, train the QSSF service,
//! and compare FIFO vs QSSF on the September window.
//!
//! Run with: `cargo run --release --example quickstart`

use helios::prelude::*;

fn main() -> helios::error::Result<()> {
    // A 10%-scale Venus cluster: ~15k GPU jobs over six months.
    let mut session = Helios::cluster(Preset::Venus).scale(0.1).seed(42).build()?;
    let report = session
        .generate()?
        .characterize()?
        .train_qssf()?
        .schedule(SchedulePolicy::Fifo)?
        .schedule(SchedulePolicy::Qssf)?
        .report()?;

    println!("{}", report.render());

    let gain = report
        .qssf_vs_fifo
        .expect("both FIFO and QSSF were scheduled");
    println!(
        "QSSF improves average JCT by {:.1}x and queueing delay by {:.1}x",
        gain.jct, gain.queue_delay
    );
    Ok(())
}
