//! A user-defined scheduling policy through the full façade pipeline.
//!
//! Implements a toy *user-fairness* discipline on the pluggable kernel:
//! jobs are ordered by how much GPU time their owner has already consumed
//! in the evaluation window (light users first, FIFO within a user), with
//! consumption tracked live through the policy's `on_finish` hook. The
//! paper's §3.4 finding motivates it: the top 5% of users hold about half
//! of all GPU time, so arrival-order scheduling lets heavy users starve
//! everyone else's queue.
//!
//! Run with: `cargo run --release --example custom_policy`

use helios::prelude::*;
use helios::sim::QueueLengthObserver;
use std::collections::HashMap;

/// Least-consumed-user-first. The kernel re-asks for keys whenever a job
/// (re-)enters a queue, so keys follow consumption as it accrues.
struct UserFairness {
    /// Job id -> owning user (captured from the generated trace; `SimJob`
    /// itself is user-agnostic).
    user_of: HashMap<u64, u32>,
    /// GPU·seconds each user's jobs have finished so far.
    consumed: HashMap<u32, f64>,
}

impl UserFairness {
    fn new(user_of: HashMap<u64, u32>) -> Self {
        UserFairness {
            user_of,
            consumed: HashMap::new(),
        }
    }

    fn user(&self, job: &SimJob) -> u32 {
        self.user_of.get(&job.id).copied().unwrap_or(u32::MAX)
    }
}

impl SchedulingPolicy for UserFairness {
    fn name(&self) -> &str {
        "USER-FAIR"
    }

    fn queue_key(&mut self, job: &JobView<'_>) -> f64 {
        let consumed = self
            .consumed
            .get(&self.user(job.job))
            .copied()
            .unwrap_or(0.0);
        // FIFO within equally-consuming users: submit as a sub-second
        // tie-breaker (submits stay far below 1e9 seconds).
        consumed + job.job.submit as f64 * 1e-9
    }

    fn on_finish(&mut self, job: &SimJob, _now: i64, _cluster: &helios::sim::ClusterView<'_>) {
        *self.consumed.entry(self.user(job)).or_insert(0.0) +=
            job.gpus as f64 * job.duration.max(1) as f64;
    }
}

fn main() -> helios::error::Result<()> {
    let mut session = Helios::cluster(Preset::Venus).scale(0.05).seed(7).build()?;
    session.generate()?;

    // Capture job -> user from the trace (owned, so the session stays free
    // for scheduling).
    let user_of: HashMap<u64, u32> = session
        .trace()?
        .gpu_jobs()
        .map(|j| (j.id, j.user))
        .collect();

    // Baseline FIFO, then the custom policy with a streaming queue-length
    // observer attached to the same run.
    let mut queue_len = QueueLengthObserver::new();
    session.schedule(SchedulePolicy::Fifo)?.schedule_observed(
        Box::new(UserFairness::new(user_of)),
        vec![Box::new(&mut queue_len)],
    )?;

    let report = session.report()?;
    println!("{}", report.render());
    println!(
        "peak cluster-wide queue length under USER-FAIR: {} jobs",
        queue_len.peak()
    );

    // Fairness effect: concentration of queue-delay on the heaviest users.
    let delay_share = |label: &str| {
        let outcome = session
            .schedule_outcomes()
            .iter()
            .find(|s| s.label == label)
            .expect("scheduled above");
        let mut per_user: HashMap<u16, f64> = HashMap::new();
        for o in &outcome.outcomes {
            *per_user.entry(o.vc).or_insert(0.0) += o.queue_delay() as f64;
        }
        let mut delays: Vec<f64> = per_user.into_values().collect();
        delays.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = delays.iter().sum();
        let top: f64 = delays.iter().take(delays.len().div_ceil(10)).sum();
        100.0 * top / total.max(1.0)
    };
    println!(
        "queue-delay share of the hottest 10% of VCs: FIFO {:.0}% vs USER-FAIR {:.0}%",
        delay_share("FIFO"),
        delay_share("USER-FAIR"),
    );
    Ok(())
}
