//! Cluster Energy Saving case study: forecast node demand on Earth,
//! run prediction-guided DRS vs vanilla DRS over three September weeks,
//! and estimate the annual energy savings (the Table 5 pipeline).
//!
//! Run with: `cargo run --release --example energy_saving`

use helios_core::{CesService, CesServiceConfig};
use helios_energy::{annualize, energy_saved_kwh, node_series_from_trace};
use helios_sim::Placement;
use helios_trace::{earth_profile, generate, GeneratorConfig, SECS_PER_DAY};

fn main() {
    let trace = generate(&earth_profile(), &GeneratorConfig { scale: 0.1, seed: 21 });
    let series = node_series_from_trace(&trace, 600, Placement::Consolidate);
    println!(
        "Earth (scaled): {} nodes; mean occupancy {:.1} nodes ({:.0}% baseline utilization)",
        series.total_nodes,
        series.mean_running(),
        100.0 * series.baseline_utilization()
    );

    let mut cfg = CesServiceConfig::default();
    cfg.control.buffer_nodes = 1.0;
    cfg.control.xi_hist = 0.25;
    cfg.control.xi_future = 0.25;
    let mut svc = CesService::new(cfg);
    let eval_start = trace.calendar.month_start(5);
    let eval = svc.evaluate(&trace, &series, eval_start, eval_start + 21 * SECS_PER_DAY);

    println!("\nforecast SMAPE over the 3-week window: {:.2}% (paper ~3.6%)", eval.smape);
    println!("\n                        guided   vanilla");
    println!("avg DRS nodes          {:>7.1}  {:>8.1}", eval.guided.avg_drs_nodes(), eval.vanilla.avg_drs_nodes());
    println!("daily wake-ups         {:>7.1}  {:>8.1}", eval.guided.daily_wakeups(), eval.vanilla.daily_wakeups());
    println!("affected jobs (approx) {:>7.0}  {:>8.0}", eval.guided.affected_jobs, eval.vanilla.affected_jobs);
    println!(
        "node utilization       {:>6.1}%  {:>7.1}%  (baseline {:.1}%)",
        100.0 * eval.guided.utilization_with_drs(),
        100.0 * eval.vanilla.utilization_with_drs(),
        100.0 * eval.guided.baseline_utilization()
    );

    let window = eval.series.len() as f64 * eval.series.bin as f64;
    let annual = annualize(energy_saved_kwh(eval.guided.drs_node_seconds), window);
    println!("\nannualized savings on this (scaled) cluster: {:.0} kWh", annual);
}
