//! Cluster Energy Saving case study on Earth: train the node-demand
//! forecaster, run prediction-guided DRS vs vanilla DRS over three
//! September weeks, and report the annualized savings (the Table 5
//! pipeline) — one façade session.
//!
//! Run with: `cargo run --release --example energy_saving`

use helios::prelude::*;

fn main() -> helios::error::Result<()> {
    let mut session = Helios::cluster(Preset::Earth).scale(0.1).seed(21).build()?;
    session.generate()?.train_ces()?;

    let report = session.report()?;
    println!(
        "Earth (scaled): {} nodes, {} jobs",
        report.nodes, report.jobs
    );

    let eval = session.ces_evaluation().expect("train_ces() ran");
    println!(
        "\nforecast SMAPE over the 3-week window: {:.2}% (paper ~3.6%)",
        eval.smape
    );
    println!("\n                        guided   vanilla");
    println!(
        "avg DRS nodes          {:>7.1}  {:>8.1}",
        eval.guided.avg_drs_nodes(),
        eval.vanilla.avg_drs_nodes()
    );
    println!(
        "daily wake-ups         {:>7.1}  {:>8.1}",
        eval.guided.daily_wakeups(),
        eval.vanilla.daily_wakeups()
    );
    println!(
        "affected jobs (approx) {:>7.0}  {:>8.0}",
        eval.guided.affected_jobs, eval.vanilla.affected_jobs
    );
    println!(
        "node utilization       {:>6.1}%  {:>7.1}%  (baseline {:.1}%)",
        100.0 * eval.guided.utilization_with_drs(),
        100.0 * eval.vanilla.utilization_with_drs(),
        100.0 * eval.guided.baseline_utilization()
    );

    let ces = report.ces.expect("train_ces() ran");
    println!(
        "\nannualized savings on this (scaled) cluster: {:.0} kWh",
        ces.annual_kwh_saved
    );
    Ok(())
}
