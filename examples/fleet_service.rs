//! Fleet service: host all five cluster presets concurrently, stream
//! jobs into sharded per-VC ingestion queues with retry/backoff, answer
//! live status and supervision-health queries (queue depth, utilization,
//! queued-work ETA, checkpoint age) while the simulations run, then
//! checkpoint the whole fleet and resume it from bytes.
//!
//! Run with: `cargo run --release --example fleet_service`

use helios::prelude::*;
use std::time::Duration;

/// A small synthetic wave: `n` mixed-size jobs spread across `vcs`.
fn wave(base_id: u64, n: u64, vcs: u16, submit: i64) -> Vec<SimJob> {
    (0..n)
        .map(|k| SimJob {
            id: base_id + k,
            vc: (k % vcs as u64) as u16,
            gpus: 1 + (k % 2) as u32,
            submit,
            duration: 1_800 + (k as i64 % 7) * 600,
            priority: 0.0,
        })
        .collect()
}

fn main() -> helios::error::Result<()> {
    // One worker thread per preset, each owning its own incremental
    // `Simulator` under supervision (caught panics restore the last good
    // checkpoint); `Helios::fleet_service(policy)` is shorthand for the
    // default topology. Per-cycle auto-checkpointing keeps the in-memory
    // generation ring warm so recovery never replays more than one
    // admission cycle.
    let config = FleetConfig::all_presets(Policy::Fifo)
        .with_checkpoint(CheckpointConfig::default().every_cycles(1));
    let fleet = Fleet::launch(&config)?;

    // Client-side resilience: a full shard surfaces as
    // `HeliosError::FleetOverflow`, and `submit_with_retry` absorbs it
    // with seeded jittered exponential backoff until the deadline.
    let retry = RetryConfig::seeded(7).deadline(Duration::from_secs(5));

    // Stream three waves. `submit` may lag the cluster clock — admission
    // clamps it forward.
    let mut next_id = 0u64;
    for w in 0..3i64 {
        for cluster in fleet.clusters() {
            let vcs = fleet.status(cluster)?.vcs.len() as u16;
            for job in wave(next_id, 40, vcs, w * 600) {
                fleet.submit_with_retry(cluster, job, &retry)?;
            }
            next_id += 40;
        }
        // Advance every cluster to the wave horizon (admits the shards).
        fleet.advance((w + 1) * 600)?;

        // Live reads come from incrementally maintained state — no
        // worker is paused to answer them. `statuses()` stays infallible
        // even with a crashed worker: its `FleetHealth` reports degraded
        // mode instead of erroring, so a dashboard keeps rendering.
        println!("after wave {w}:");
        for s in fleet.statuses() {
            let h = s.health;
            println!(
                "  {:<8} t={:>5}s queue={:<3} running={:<4} util={:>5.1}% \
                 eta(vc0)={:.0}s | {:?} restarts={} ckpt(gen {}, {}s old)",
                format!("{:?}", s.cluster),
                s.now,
                s.queue_depth,
                s.running,
                100.0 * s.utilization(),
                s.eta_secs(0).unwrap_or(0.0),
                h.state,
                h.restarts,
                h.checkpoint_generation,
                h.checkpoint_age_secs,
            );
        }
    }

    // Checkpoint the entire fleet (versioned binary frame wrapping one
    // kernel snapshot per cluster) and resume it from the bytes. The
    // restored fleet schedules byte-identically to the original.
    let frame = fleet.snapshot()?;
    println!("fleet snapshot: {} bytes", frame.len());
    let resumed = Fleet::restore(&frame)?;

    let a = fleet.shutdown()?;
    let b = resumed.shutdown()?;
    let done = |outs: &[(ClusterId, Vec<JobOutcome>)]| -> usize {
        outs.iter().map(|(_, o)| o.len()).sum()
    };
    println!(
        "original fleet finished {} jobs; resumed copy finished {}",
        done(&a),
        done(&b)
    );
    Ok(())
}
