//! Failure-aware scheduling end to end: inject seeded GPU/node failures
//! into a Venus session, train the GPU-failure predictor on the fault
//! model's own telemetry, then compare plain FIFO against the
//! proactive-drain wrapper on goodput (useful vs. recomputed GPU·hours).
//!
//! Run with: `cargo run --release --example failure_aware`

use helios::prelude::*;

fn main() -> helios::error::Result<()> {
    // A harsh month: each node fails about every three days (Weibull
    // aging hazard, 5% of failures burst across the whole rack), repairs
    // take two hours on average. Two-hourly checkpoints keep the 50-day
    // jobs terminating — pure kill-requeue at this MTBF would recompute
    // forever.
    let faults = FaultConfig::with_mtbf_hours(72.0).checkpoint_hours(2.0);

    let mut session = Helios::cluster(Preset::Venus).scale(0.1).seed(11).build()?;
    session.generate()?.with_failures(Some(faults))?;

    // Train P(node fails within 6h) on pre-evaluation telemetry streamed
    // out of the failure model itself.
    session.train_failure_model(&PredictorConfig::default())?;
    let model = session.failure_model().expect("trained above");
    println!(
        "failure predictor: precision {:.2}, recall {:.2} (base rate {:.2})",
        model.precision, model.recall, model.base_rate
    );

    // Same injected failure sequence, two disciplines: bare FIFO vs.
    // FIFO behind the proactive-drain layer consulting the predictor.
    session.schedule(SchedulePolicy::Fifo)?;
    session.schedule_drained(SchedulePolicy::Fifo)?;

    println!();
    for s in session.schedule_outcomes() {
        let stats = s.fault_stats.expect("failures enabled for this session");
        println!(
            "{:<12} goodput {:>7.3}%  lost {:>7.1} GPU·h  (failures {}, kills {})",
            s.label,
            100.0 * s.goodput.ratio(),
            s.goodput.lost_gpu_hours,
            stats.failures,
            stats.killed_jobs,
        );
    }

    // The report table grows a goodput column whenever injection is on.
    println!("\n{}", session.report()?.render());
    Ok(())
}
