//! Trace characterization: reproduce the headline numbers behind the
//! paper's Implications #1-#7, fanning the four Helios clusters out in
//! parallel through the façade and reading each cluster's
//! characterization from its report.
//!
//! Run with: `cargo run --release --example characterize`

use helios::prelude::*;

fn main() -> helios::error::Result<()> {
    // Four clusters, four threads, one characterized report each.
    let reports = Helios::helios_clusters()
        .scale(0.1)
        .seed(7)
        .run(|session| session.generate()?.characterize()?.report())?;

    let total_jobs: u64 = reports.iter().map(|r| r.jobs).sum();
    let total_gpu: u64 = reports.iter().map(|r| r.gpu_jobs).sum();
    println!(
        "jobs: {} ({} GPU) across {} clusters",
        total_jobs,
        total_gpu,
        reports.len()
    );

    for report in &reports {
        let c = report
            .characterization
            .as_ref()
            .expect("characterize() ran in the pipeline");
        // Implication #1: daily submission patterns swing peak-to-trough.
        if report.cluster == "Venus" {
            println!(
                "\n[#1] Venus submissions: peak {:.0}/h, night trough {:.0}/h",
                c.peak_hourly_submissions, c.trough_hourly_submissions
            );
        }
        // Implication #2/#4: single-GPU jobs dominate counts, not GPU time.
        println!(
            "[#4] {:<7} single-GPU jobs {:>4.1}% of count but {:>4.1}% of GPU time",
            report.cluster,
            100.0 * c.single_gpu_share,
            100.0 * c.single_gpu_time_share
        );
    }

    // Implication #5/#6: unsuccessful GPU jobs waste substantial GPU time.
    let venus = &reports[0];
    let c = venus.characterization.as_ref().unwrap();
    println!(
        "\n[#5] Venus unsuccessful GPU jobs: {:.1}% (paper: 37.6% across Helios)",
        100.0 * (c.gpu_status_shares[1] + c.gpu_status_shares[2])
    );

    // Implication #7: a few users dominate consumption.
    println!(
        "[#7] Venus top-5% users: {:.0}% of GPU time (paper 45-60%)",
        100.0 * c.top5_user_gpu_share
    );
    Ok(())
}
