//! Trace characterization: reproduce the headline numbers behind the
//! paper's Implications #1-#7 on a synthetic Helios trace set.
//!
//! Run with: `cargo run --release --example characterize`

use helios_analysis::{clusters, jobs, users};
use helios_trace::{generate_helios, GeneratorConfig, Trace};

fn main() {
    let traces = generate_helios(&GeneratorConfig { scale: 0.1, seed: 7 });
    let refs: Vec<&Trace> = traces.iter().collect();

    // Table 2 style summary.
    let s = jobs::summarize(&refs);
    println!("jobs: {} ({} GPU / {} CPU), avg {:.2} GPUs/job, max {} GPUs",
        s.jobs, s.gpu_jobs, s.cpu_jobs, s.avg_gpus, s.max_gpus);

    // Implication #1: daily patterns.
    let p = clusters::daily_pattern(&traces[0]);
    let peak = p.hourly_submissions.iter().cloned().fold(0.0, f64::max);
    let trough = p.hourly_submissions.iter().cloned().fold(f64::MAX, f64::min);
    println!("\n[#1] Venus submissions: peak {:.0}/h, night trough {:.0}/h", peak, trough);

    // Implication #2/#4: multi-GPU jobs dominate GPU time.
    for t in &traces {
        let (count_cdf, time_cdf) = jobs::job_size_cdfs(t);
        println!(
            "[#4] {:<7} single-GPU jobs {:>4.1}% of count but {:>4.1}% of GPU time",
            t.spec.id.name(),
            100.0 * count_cdf.fraction_at(1.0),
            100.0 * time_cdf.fraction_at(1.0)
        );
    }

    // Implication #5/#6: unsuccessful GPU jobs.
    let (cpu, gpu) = jobs::status_by_job_class(&refs);
    println!(
        "[#5] unsuccessful: GPU {:.1}% vs CPU {:.1}% (paper 37.6% vs 9.1%)",
        gpu[1] + gpu[2],
        cpu[1] + cpu[2]
    );

    // Implication #7: user concentration.
    let stats = users::per_user_stats(&traces[0]);
    let (gpu_curve, cpu_curve) = users::consumption_curves(&stats);
    println!(
        "[#7] Venus top-5% users: {:.0}% of GPU time, {:.0}% of CPU time (paper 45-60% / >90%)",
        100.0 * users::top_share(&gpu_curve, 0.05),
        100.0 * users::top_share(&cpu_curve, 0.20)
    );
}
