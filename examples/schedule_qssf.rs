//! Full scheduling case study on Saturn: the four Fig. 11 policies, the
//! Table 4 duration-group gains, and the hottest per-VC queues (Fig. 12) —
//! all driven through one façade session.
//!
//! Run with: `cargo run --release --example schedule_qssf`

use helios::prelude::*;
use helios::sim::{group_delay_ratios, per_vc_queue_delay, DURATION_GROUPS};

fn main() -> helios::error::Result<()> {
    let mut session = Helios::cluster(Preset::Saturn)
        .scale(0.08)
        .seed(11)
        .build()?;
    session.generate()?.train_qssf()?.schedule_all()?;

    let report = session.report()?;
    println!(
        "Saturn (scaled): {} nodes, {} GPU jobs\n",
        report.nodes, report.gpu_jobs
    );
    println!("{}", report.render());

    // Table 4: every duration group must gain.
    let outcome = |p: SchedulePolicy| {
        session
            .schedule_outcomes()
            .iter()
            .find(|s| s.policy == Some(p))
            .expect("scheduled above")
    };
    let fifo = outcome(SchedulePolicy::Fifo);
    let qssf = outcome(SchedulePolicy::Qssf);
    let ratios = group_delay_ratios(&fifo.outcomes, &qssf.outcomes);
    println!("FIFO/QSSF queue-delay ratio by duration group:");
    for (g, r) in DURATION_GROUPS.iter().zip(ratios) {
        println!("  {g:<18} {r:>6.2}x");
    }

    // Fig 12: the three hottest VCs under FIFO, and what QSSF does to them.
    let trace = session.trace()?;
    let mut vcs: Vec<(u16, f64)> = per_vc_queue_delay(&fifo.outcomes).into_iter().collect();
    vcs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let qssf_vc = per_vc_queue_delay(&qssf.outcomes);
    println!("\nhottest VCs (FIFO vs QSSF avg queue):");
    for (vc, d) in vcs.into_iter().take(3) {
        println!(
            "  {:<6} {:>8.0}s -> {:>8.0}s",
            trace.spec.vcs[vc as usize].name,
            d,
            qssf_vc.get(&vc).copied().unwrap_or(0.0)
        );
    }
    Ok(())
}
