//! Full scheduling case study: four policies on one cluster, per-VC
//! breakdown, and duration-group gains (the Table 3/4 pipeline on Saturn).
//!
//! Run with: `cargo run --release --example schedule_qssf`

use helios_core::{QssfConfig, QssfService};
use helios_sim::{
    group_delay_ratios, jobs_from_trace, per_vc_queue_delay, schedule_stats, simulate, Policy,
    SimConfig, DURATION_GROUPS,
};
use helios_trace::{generate, saturn_profile, GeneratorConfig};

fn main() {
    let trace = generate(&saturn_profile(), &GeneratorConfig { scale: 0.08, seed: 11 });
    let (lo, hi) = trace.calendar.month_range(5);
    println!("Saturn (scaled): {} nodes, September GPU jobs: {}",
        trace.spec.nodes, trace.jobs_in_month(5).filter(|j| j.is_gpu()).count());

    let base = jobs_from_trace(&trace, lo, hi);
    let fifo = simulate(&trace.spec, &base, &SimConfig::new(Policy::Fifo)).outcomes;
    let sjf = simulate(&trace.spec, &base, &SimConfig::new(Policy::Sjf)).outcomes;
    let srtf = simulate(&trace.spec, &base, &SimConfig::new(Policy::Srtf)).outcomes;

    let mut qssf = QssfService::new(QssfConfig::default());
    qssf.train(&trace, 0, lo);
    let scored = qssf.assign_priorities(&trace, lo, hi);
    let qssf_out = simulate(&trace.spec, &scored, &SimConfig::new(Policy::Priority)).outcomes;

    println!("\npolicy  avg JCT     avg queue   queued");
    for (name, out) in [("FIFO", &fifo), ("SJF", &sjf), ("QSSF", &qssf_out), ("SRTF", &srtf)] {
        let s = schedule_stats(out);
        println!("{name:<7} {:>8.0}s  {:>8.0}s  {:>7}", s.avg_jct, s.avg_queue_delay, s.queued_jobs);
    }

    // Table 4: every duration group must gain.
    let ratios = group_delay_ratios(&fifo, &qssf_out);
    println!("\nFIFO/QSSF queue-delay ratio by duration group:");
    for (g, r) in DURATION_GROUPS.iter().zip(ratios) {
        println!("  {g:<18} {r:>6.2}x");
    }

    // Fig 12: the three hottest VCs.
    let mut vcs: Vec<(u16, f64)> = per_vc_queue_delay(&fifo).into_iter().collect();
    vcs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let qssf_vc = per_vc_queue_delay(&qssf_out);
    println!("\nhottest VCs (FIFO vs QSSF avg queue):");
    for (vc, d) in vcs.into_iter().take(3) {
        println!("  {:<6} {:>8.0}s -> {:>8.0}s", trace.spec.vcs[vc as usize].name, d, qssf_vc[&vc]);
    }
}
