//! Per-stage wall times of the full session pipeline.
//!
//! `Session::pipeline` runs characterization and the two predictor
//! trainings concurrently (they only read the generated trace), and every
//! stage records its wall time into `Session::stage_perf` /
//! `SessionReport::stage_perf`.
//!
//! ```text
//! cargo run --release --example pipeline_stages -- [scale]
//! ```

use helios::prelude::*;

fn main() -> helios::error::Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let mut session = Helios::cluster(Preset::Saturn)
        .scale(scale)
        .seed(2020)
        .build()?;
    session
        .pipeline()? // generate + characterize ∥ train_qssf ∥ train_ces
        .schedule(SchedulePolicy::Fifo)?
        .schedule(SchedulePolicy::Qssf)?;
    let report = session.report()?;

    println!("{}", report.render());
    println!("stage            wall");
    println!("---------------------");
    for s in &report.stage_perf {
        println!("{:<16} {:>7.3}s", s.stage, s.wall_secs);
    }
    let total: f64 = report
        .stage_perf
        .iter()
        // The `pipeline` record spans the three overlapped stages; summing
        // it *and* its members would double-count.
        .filter(|s| {
            !matches!(
                s.stage.as_str(),
                "characterize" | "train_qssf" | "train_ces"
            )
        })
        .map(|s| s.wall_secs)
        .sum();
    println!("{:<16} {total:>7.3}s", "total");
    Ok(())
}
