//! Forecaster bake-off on the node-demand series: GBDT (the paper's pick)
//! vs ARIMA, Prophet-style Fourier regression, LSTM and seasonal-naive.
//! The trace and node series come from a façade session; the baseline
//! models use the deep `helios::predict` API directly.
//!
//! Run with: `cargo run --release --example forecast_nodes`

use helios::core::{CesService, CesServiceConfig};
use helios::energy::node_series_from_trace;
use helios::predict::features::series::SeriesFeatureConfig;
use helios::predict::metrics::smape;
use helios::predict::{
    seasonal_naive, Arima, FourierForecaster, FourierParams, LstmForecaster, LstmParams,
};
use helios::prelude::*;

fn main() -> helios::error::Result<()> {
    let mut session = Helios::cluster(Preset::Earth)
        .scale(0.08)
        .seed(33)
        .build()?;
    session.generate()?;
    let trace = session.trace()?;
    let series = node_series_from_trace(trace, 600, Placement::Consolidate)?;

    let cal = &trace.calendar;
    let h = SeriesFeatureConfig::default_10min().horizon; // 3 hours
    let split = series.len() * 4 / 5;
    let v = &series.running;
    let test_idx: Vec<usize> = (split..series.len() - h).collect();
    let actual: Vec<f64> = test_idx.iter().map(|&i| v[i + h]).collect();

    let mut svc = CesService::new(CesServiceConfig::default());
    svc.train(&series, cal, split)?;
    let gbdt = svc.forecast(&series, cal, split, series.len() - h)?;

    let arima = Arima::fit(&v[..split], 12, 1);
    let arima_pred: Vec<f64> = test_idx
        .iter()
        .map(|&i| *arima.forecast(&v[..=i], h).last().unwrap())
        .collect();

    let fourier = FourierForecaster::fit(
        &v[..split],
        series.t0,
        series.bin,
        cal,
        FourierParams::default(),
    );
    let fourier_pred: Vec<f64> = test_idx
        .iter()
        .map(|&i| fourier.predict_at(series.t0 + series.bin * (i + h) as i64, cal))
        .collect();

    let lstm = LstmForecaster::fit(
        &v[..split],
        LstmParams {
            horizon: h,
            epochs: 10,
            ..Default::default()
        },
    );
    let lstm_pred = lstm.forecast_at(v, &test_idx);

    let period = (86_400 / series.bin) as usize;
    let naive: Vec<f64> = test_idx
        .iter()
        .map(|&i| seasonal_naive(&v[..=i], period, h)[h - 1])
        .collect();

    println!("3-hour-ahead node-demand forecast, Earth (scaled) — SMAPE:");
    for (name, pred) in [
        ("GBDT (ours)", &gbdt),
        ("ARIMA(12,1)", &arima_pred),
        ("Fourier/Prophet", &fourier_pred),
        ("LSTM", &lstm_pred),
        ("Seasonal naive", &naive),
    ] {
        println!("  {name:<16} {:>6.2}%", smape(&actual, pred));
    }
    Ok(())
}
