//! The workspace-wide error type, re-exported at the façade.
//!
//! [`HeliosError`] is defined in `helios-trace` (the crate at the bottom of
//! the dependency graph, so every workspace member can return it); library
//! users should name it through this module or the [`crate::prelude`].

pub use helios_trace::error::{HeliosError, HeliosResult};

/// Façade-local result alias: `helios::error::Result<T>`.
pub type Result<T> = HeliosResult<T>;
