//! The workspace-wide error type, re-exported at the façade.
//!
//! [`HeliosError`] is defined in `helios-trace` (the crate at the bottom of
//! the dependency graph, so every workspace member can return it); library
//! users should name it through this module or the [`crate::prelude`].
//!
//! The fleet service layer adds a few variants worth knowing by name:
//! [`HeliosError::FleetOverflow`] — the backpressure signal a bounded
//! ingestion shard returns when full (retry after the next admission
//! cycle); [`HeliosError::FleetShedding`] — adaptive admission control
//! refusing a heavy VC's submission under sustained overload (back off
//! for the carried `retry_after_cycles` hint);
//! [`HeliosError::WorkerCrashed`] / [`HeliosError::WorkerHung`] — a
//! cluster degraded past its restart budget or past the watchdog's hard
//! hang deadline; and [`HeliosError::Snapshot`] — any
//! encode/decode/apply failure of the versioned scheduler checkpoints.

pub use helios_trace::error::{HeliosError, HeliosResult};

/// Façade-local result alias: `helios::error::Result<T>`.
pub type Result<T> = HeliosResult<T>;
