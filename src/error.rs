//! The workspace-wide error type, re-exported at the façade.
//!
//! [`HeliosError`] is defined in `helios-trace` (the crate at the bottom of
//! the dependency graph, so every workspace member can return it); library
//! users should name it through this module or the [`crate::prelude`].
//!
//! The fleet service layer adds two variants worth knowing by name:
//! [`HeliosError::FleetOverflow`] — the backpressure signal a bounded
//! ingestion shard returns when full (retry after the next admission
//! cycle) — and [`HeliosError::Snapshot`] — any encode/decode/apply
//! failure of the versioned scheduler checkpoints.

pub use helios_trace::error::{HeliosError, HeliosResult};

/// Façade-local result alias: `helios::error::Result<T>`.
pub type Result<T> = HeliosResult<T>;
