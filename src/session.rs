//! The unified façade: a fallible builder pipeline over the whole paper —
//! trace generation → characterization → prediction services → scheduling
//! → reporting (§4, Fig. 10) — with parallel multi-cluster × multi-seed
//! fan-out over rayon.
//!
//! ```no_run
//! use helios::prelude::*;
//!
//! # fn main() -> helios::error::Result<()> {
//! let report = Helios::cluster(Preset::Venus)
//!     .scale(0.1)
//!     .seed(42)
//!     .build()?
//!     .generate()?
//!     .characterize()?
//!     .train_qssf()?
//!     .schedule(SchedulePolicy::Fifo)?
//!     .schedule(SchedulePolicy::Qssf)?
//!     .report()?;
//! println!("{}", report.render());
//!
//! // Five clusters in parallel, one call, one report each.
//! let reports = Helios::all_clusters().scale(0.05).reports()?;
//! assert_eq!(reports.len(), 5);
//!
//! // Clusters x seeds: one session per pair, fanned out over rayon.
//! let sweep = Helios::helios_clusters()
//!     .scale(0.05)
//!     .seeds([1, 2, 3])
//!     .run(|session| session.generate()?.schedule(SchedulePolicy::Fifo)?.report())?;
//! assert_eq!(sweep.len(), 12);
//! # Ok(())
//! # }
//! ```

use crate::error::{HeliosError, Result};
use helios_analysis::report::{fmt_count, fmt_secs, TextTable};
use helios_analysis::{jobs, users};
use helios_core::{CesEvaluation, CesService, CesServiceConfig, QssfConfig, QssfService};
use helios_energy::EnergyAwarePolicy;
use helios_energy::{annualize, energy_saved_kwh, node_series_from_trace};
use helios_faults::{
    goodput, train_failure_predictor, DrainConfig, DrainPolicy, FailurePredictor, Goodput,
    PredictorConfig,
};
use helios_sim::{
    jobs_from_trace, schedule_stats, FaultConfig, FaultStats, FifoPolicy, JobOutcome, KernelConfig,
    Placement, PriorityPolicy, ScheduleStats, SchedulingPolicy, SimObserver, Simulator, SjfPolicy,
    SrtfPolicy, TiresiasPolicy,
};
use helios_trace::{
    generate, profile_for, ClusterId, GeneratorConfig, Trace, WorkloadProfile, SECS_PER_DAY,
};
use serde_json::json;
use std::time::Instant;

/// The clusters of the paper (Table 1 plus the Philly comparison cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    Venus,
    Earth,
    Saturn,
    Uranus,
    Philly,
}

impl Preset {
    /// The four Helios clusters plus Philly, Table 1 order.
    pub const ALL: [Preset; 5] = [
        Preset::Venus,
        Preset::Earth,
        Preset::Saturn,
        Preset::Uranus,
        Preset::Philly,
    ];

    /// The four Helios clusters (no Philly).
    pub const HELIOS: [Preset; 4] = [Preset::Venus, Preset::Earth, Preset::Saturn, Preset::Uranus];

    /// Display name ("Venus", ...).
    pub fn name(self) -> &'static str {
        self.cluster_id().name()
    }

    /// The trace-substrate cluster id.
    pub fn cluster_id(self) -> ClusterId {
        match self {
            Preset::Venus => ClusterId::Venus,
            Preset::Earth => ClusterId::Earth,
            Preset::Saturn => ClusterId::Saturn,
            Preset::Uranus => ClusterId::Uranus,
            Preset::Philly => ClusterId::Philly,
        }
    }

    /// Calibrated workload profile for this cluster.
    pub fn profile(self) -> WorkloadProfile {
        profile_for(self.cluster_id())
    }

    /// Parse a cluster name (case-insensitive).
    pub fn parse(name: &str) -> Result<Preset> {
        Preset::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| HeliosError::UnknownName {
                kind: "cluster",
                name: name.to_string(),
                expected: Preset::ALL
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", "),
            })
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Built-in scheduling policies exposed by the façade — constructors over
/// the pluggable `SchedulingPolicy` objects the kernel runs on (user
/// policies go through [`Session::schedule_with`]). `Qssf` is the paper's
/// contribution and requires [`Session::train_qssf`] first; Fifo/Sjf/Srtf
/// are the Fig. 11 baselines; `Tiresias` and `EnergyAware` are the
/// follow-up-survey disciplines shipped on top of the open kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Production FIFO baseline.
    Fifo,
    /// Oracle Shortest-Job-First.
    Sjf,
    /// Oracle preemptive Shortest-Remaining-Time-First.
    Srtf,
    /// Quasi-Shortest-Service-First on predicted GPU time (Algorithm 1).
    Qssf,
    /// Tiresias-style discretized least-attained-service (preemptive,
    /// duration-agnostic).
    Tiresias,
    /// CES-gated energy-aware ordering (FIFO when quiet, cheapest-energy
    /// first when busy).
    EnergyAware,
}

impl SchedulePolicy {
    /// Display label ("FIFO", "QSSF", ...).
    pub fn label(self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "FIFO",
            SchedulePolicy::Sjf => "SJF",
            SchedulePolicy::Srtf => "SRTF",
            SchedulePolicy::Qssf => "QSSF",
            SchedulePolicy::Tiresias => "TIRESIAS",
            SchedulePolicy::EnergyAware => "ENERGY",
        }
    }

    /// Construct the policy object implementing this discipline.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            SchedulePolicy::Fifo => Box::new(FifoPolicy),
            SchedulePolicy::Sjf => Box::new(SjfPolicy),
            SchedulePolicy::Srtf => Box::new(SrtfPolicy),
            SchedulePolicy::Qssf => Box::new(PriorityPolicy::named("QSSF")),
            SchedulePolicy::Tiresias => Box::new(TiresiasPolicy::default()),
            SchedulePolicy::EnergyAware => Box::new(EnergyAwarePolicy::default()),
        }
    }
}

/// Entry point of the façade. Every pipeline starts here.
pub struct Helios;

impl Helios {
    /// Configure a session on one cluster.
    pub fn cluster(preset: Preset) -> SessionBuilder {
        SessionBuilder::new(preset)
    }

    /// Configure a parallel fan-out across all five clusters
    /// (Venus, Earth, Saturn, Uranus, Philly).
    pub fn all_clusters() -> FleetBuilder {
        FleetBuilder::new(Preset::ALL.to_vec())
    }

    /// Configure a parallel fan-out across the four Helios clusters.
    pub fn helios_clusters() -> FleetBuilder {
        FleetBuilder::new(Preset::HELIOS.to_vec())
    }

    /// Configure a fan-out over an explicit cluster list.
    pub fn clusters(presets: impl IntoIterator<Item = Preset>) -> FleetBuilder {
        FleetBuilder::new(presets.into_iter().collect())
    }

    /// Launch the scheduler-as-a-service layer: all five presets hosted
    /// concurrently, each on its own worker thread, fed through sharded
    /// per-VC ingestion queues with live status/ETA queries and
    /// whole-fleet snapshot/restore. This is the streaming counterpart
    /// of the batch pipelines above — see [`crate::fleet`] for the
    /// architecture and `examples/fleet_service.rs` for a tour.
    pub fn fleet_service(policy: helios_sim::Policy) -> Result<helios_fleet::Fleet> {
        helios_fleet::Fleet::launch(&helios_fleet::FleetConfig::all_presets(policy))
    }
}

/// Validated knobs shared by single- and multi-cluster builders.
#[derive(Debug, Clone)]
struct Knobs {
    scale: f64,
    seed: u64,
    qssf: QssfConfig,
    ces: CesServiceConfig,
    placement: Placement,
    backfill: bool,
    failures: Option<FaultConfig>,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            scale: 0.1,
            seed: 2020,
            qssf: QssfConfig::default(),
            ces: CesServiceConfig::default(),
            placement: Placement::Consolidate,
            backfill: false,
            failures: None,
        }
    }
}

impl Knobs {
    fn validate(&self) -> Result<()> {
        GeneratorConfig {
            scale: self.scale,
            seed: self.seed,
        }
        .validate()?;
        if !(0.0..=1.0).contains(&self.qssf.lambda) || self.qssf.lambda.is_nan() {
            return Err(HeliosError::invalid_config(
                "lambda",
                format!("must be in [0, 1], got {}", self.qssf.lambda),
            ));
        }
        if let Some(f) = &self.failures {
            f.validate()?;
        }
        Ok(())
    }
}

macro_rules! builder_knobs {
    () => {
        /// Trace scale in (0, 1]; 1.0 reproduces the paper-size cluster.
        pub fn scale(mut self, scale: f64) -> Self {
            self.knobs.scale = scale;
            self
        }

        /// Master RNG seed.
        pub fn seed(mut self, seed: u64) -> Self {
            self.knobs.seed = seed;
            self
        }

        /// Algorithm 1's merge coefficient between rolling and GBDT
        /// estimates (default 0.5).
        pub fn lambda(mut self, lambda: f64) -> Self {
            self.knobs.qssf.lambda = lambda;
            self
        }

        /// Full QSSF configuration override.
        pub fn qssf_config(mut self, cfg: QssfConfig) -> Self {
            self.knobs.qssf = cfg;
            self
        }

        /// Full CES configuration override.
        pub fn ces_config(mut self, cfg: CesServiceConfig) -> Self {
            self.knobs.ces = cfg;
            self
        }

        /// Node placement strategy (default: Helios-style consolidation).
        pub fn placement(mut self, placement: Placement) -> Self {
            self.knobs.placement = placement;
            self
        }

        /// Enable EASY backfill in scheduling runs (paper future work).
        pub fn backfill(mut self, on: bool) -> Self {
            self.knobs.backfill = on;
            self
        }

        /// Inject node failures into every scheduling run (see
        /// [`helios_sim::FaultConfig`]); `None` is the failure-free
        /// default. Equivalent to [`Session::with_failures`] at build
        /// time.
        pub fn failures(mut self, cfg: Option<helios_sim::FaultConfig>) -> Self {
            self.knobs.failures = cfg;
            self
        }
    };
}

/// Builder for a single-cluster [`Session`].
pub struct SessionBuilder {
    preset: Preset,
    knobs: Knobs,
}

impl SessionBuilder {
    fn new(preset: Preset) -> Self {
        SessionBuilder {
            preset,
            knobs: Knobs::default(),
        }
    }

    builder_knobs!();

    /// Validate the configuration and produce a [`Session`]. No work
    /// happens yet; [`Session::generate`] materializes the trace.
    pub fn build(self) -> Result<Session> {
        self.knobs.validate()?;
        Ok(Session::with_knobs(self.preset, self.knobs))
    }
}

/// Wall time of one executed pipeline stage, recorded by every stage
/// method (and by [`Session::pipeline`] for its overlapped run). The
/// `repro --bench-json` trajectory serializes these records.
#[derive(Debug, Clone)]
pub struct StagePerf {
    /// Stage label: `generate`, `characterize`, `train_qssf`, `train_ces`,
    /// `schedule:<policy>`, `report`, or `pipeline` (the overlapped
    /// characterize/train span).
    pub stage: String,
    /// Wall-clock seconds of this stage execution.
    pub wall_secs: f64,
}

/// One cluster's end-to-end pipeline state. Stages chain through
/// `Result<&mut Session>`, so a pipeline reads as
/// `session.generate()?.characterize()?.train_qssf()?...`. `Clone` forks
/// the full state (trace, trained services, recorded outcomes), so
/// divergent what-if chains can share one generated trace.
#[derive(Clone)]
pub struct Session {
    preset: Preset,
    knobs: Knobs,
    trace: Option<Trace>,
    characterization: Option<Characterization>,
    qssf: Option<QssfService>,
    ces_eval: Option<CesEvaluation>,
    failure_model: Option<FailurePredictor>,
    schedules: Vec<ScheduleOutcome>,
    stage_perf: Vec<StagePerf>,
}

/// Characterization highlights (§3), computed by [`Session::characterize`].
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Table 2-style summary.
    pub summary: jobs::TraceSummary,
    /// Peak hourly GPU-job submissions (Fig. 2b).
    pub peak_hourly_submissions: f64,
    /// Trough hourly GPU-job submissions (Fig. 2b).
    pub trough_hourly_submissions: f64,
    /// Share of GPU jobs requesting a single GPU (Fig. 6a).
    pub single_gpu_share: f64,
    /// Share of GPU *time* held by single-GPU jobs (Fig. 6b).
    pub single_gpu_time_share: f64,
    /// GPU-job final-status shares [completed, canceled, failed] as
    /// fractions in \[0, 1\] (Fig. 7a).
    pub gpu_status_shares: [f64; 3],
    /// GPU-time share of the top 5% of users (Fig. 8).
    pub top5_user_gpu_share: f64,
}

/// One scheduling run's outcome, kept with its per-job detail so reports
/// can compute cross-policy ratios. Runs are identified by `label` (the
/// policy object's name); `policy` is additionally set for the built-in
/// constructors so callers can match on the enum.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The policy object's display name ("FIFO", "QSSF", a custom name...).
    pub label: String,
    /// The built-in constructor, when the run came from
    /// [`Session::schedule`]; `None` for [`Session::schedule_with`] runs.
    pub policy: Option<SchedulePolicy>,
    pub stats: ScheduleStats,
    pub outcomes: Vec<JobOutcome>,
    /// Useful vs. failure-destroyed GPU time (ratio 1.0 when the session
    /// runs failure-free).
    pub goodput: Goodput,
    /// The failure process totals of this run (`None` without injection).
    pub fault_stats: Option<FaultStats>,
}

impl Session {
    fn with_knobs(preset: Preset, knobs: Knobs) -> Session {
        Session {
            preset,
            knobs,
            trace: None,
            characterization: None,
            qssf: None,
            ces_eval: None,
            failure_model: None,
            schedules: Vec::new(),
            stage_perf: Vec::new(),
        }
    }

    /// The cluster preset this session runs on.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// Wall-time records of every stage executed so far, in execution
    /// order (see [`StagePerf`]).
    pub fn stage_perf(&self) -> &[StagePerf] {
        &self.stage_perf
    }

    fn record_stage(&mut self, stage: impl Into<String>, started: Instant) {
        self.stage_perf.push(StagePerf {
            stage: stage.into(),
            wall_secs: started.elapsed().as_secs_f64(),
        });
    }

    /// The generated trace (after [`Session::generate`]).
    pub fn trace(&self) -> Result<&Trace> {
        self.trace.as_ref().ok_or(HeliosError::MissingStage {
            stage: "trace access",
            requires: "generate",
        })
    }

    /// Characterization results (after [`Session::characterize`]).
    pub fn characterization(&self) -> Option<&Characterization> {
        self.characterization.as_ref()
    }

    /// CES evaluation (after [`Session::train_ces`]).
    pub fn ces_evaluation(&self) -> Option<&CesEvaluation> {
        self.ces_eval.as_ref()
    }

    /// Scheduling outcomes recorded so far, in execution order.
    pub fn schedule_outcomes(&self) -> &[ScheduleOutcome] {
        &self.schedules
    }

    /// The evaluation window: the calendar's final month (September for
    /// Helios clusters, December for Philly). History before it is the
    /// training window.
    pub fn eval_window(&self) -> Result<(i64, i64)> {
        let trace = self.trace()?;
        Ok(trace.calendar.month_range(trace.calendar.num_months() - 1))
    }

    /// Stage 1: synthesize the cluster trace.
    pub fn generate(&mut self) -> Result<&mut Session> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let cfg = GeneratorConfig {
            scale: self.knobs.scale,
            seed: self.knobs.seed,
        };
        let trace = generate(&self.preset.profile(), &cfg)
            .map_err(|e| e.for_cluster(self.preset.name()))?;
        self.trace = Some(trace);
        self.record_stage("generate", started);
        Ok(self)
    }

    /// Stage 2: compute the §3 characterization highlights (fused
    /// single-pass engine; equals the legacy per-figure scans exactly).
    pub fn characterize(&mut self) -> Result<&mut Session> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let trace = self.trace.as_ref().ok_or(HeliosError::MissingStage {
            stage: "characterize",
            requires: "generate",
        })?;
        self.characterization = Some(compute_characterization(trace));
        self.record_stage("characterize", started);
        Ok(self)
    }

    /// Stage 3a: train the QSSF duration predictor on everything before
    /// the evaluation window (the paper trains on April–August and
    /// schedules September).
    pub fn train_qssf(&mut self) -> Result<&mut Session> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let (lo, _) = self.eval_window()?;
        let trace = self.trace.as_ref().expect("eval_window checked generate");
        let svc = compute_qssf(trace, self.knobs.qssf, lo)
            .map_err(|e| e.for_cluster(self.preset.name()))?;
        self.qssf = Some(svc);
        self.record_stage("train_qssf", started);
        Ok(self)
    }

    /// Stage 3b: train the CES node-demand forecaster and run the paper's
    /// DRS evaluation (first three weeks of the evaluation window,
    /// Fig. 14/15, Table 5).
    pub fn train_ces(&mut self) -> Result<&mut Session> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let (lo, hi) = self.eval_window()?;
        let trace = self.trace.as_ref().expect("eval_window checked generate");
        let eval = compute_ces(trace, &self.knobs, lo, hi)
            .map_err(|e| e.for_cluster(self.preset.name()))?;
        self.ces_eval = Some(eval);
        self.record_stage("train_ces", started);
        Ok(self)
    }

    /// Fast path through the analysis stages: run [`Session::characterize`],
    /// [`Session::train_qssf`] and [`Session::train_ces`] **concurrently**
    /// over rayon — all three depend only on the generated trace, so on a
    /// multi-core host the wall time of this span collapses to the slowest
    /// stage instead of their sum. Generates the trace first if needed.
    ///
    /// Results are identical to running the stages sequentially (each
    /// stage is a pure function of the trace); per-stage wall times are
    /// recorded under their usual labels plus a `pipeline` record for the
    /// overlapped span.
    ///
    /// ```no_run
    /// use helios::prelude::*;
    ///
    /// # fn main() -> helios::error::Result<()> {
    /// let report = Helios::cluster(Preset::Saturn)
    ///     .scale(0.1)
    ///     .build()?
    ///     .pipeline()? // generate + characterize ∥ train_qssf ∥ train_ces
    ///     .schedule(SchedulePolicy::Fifo)?
    ///     .schedule(SchedulePolicy::Qssf)?
    ///     .report()?;
    /// for s in &report.stage_perf {
    ///     println!("{:<16} {:.3}s", s.stage, s.wall_secs);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn pipeline(&mut self) -> Result<&mut Session> {
        if self.trace.is_none() {
            self.generate()?;
        }
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let (lo, hi) = self.eval_window()?;
        let trace = self.trace.as_ref().expect("generated above");
        let name = self.preset.name();
        #[allow(clippy::large_enum_variant)] // three short-lived carriers
        enum StageOut {
            Char(Characterization),
            Qssf(QssfService),
            Ces(CesEvaluation),
        }
        type Task<'a> = Box<dyn Fn() -> Result<(StageOut, f64)> + Send + Sync + 'a>;
        let timed = |f: &dyn Fn() -> Result<StageOut>| -> Result<(StageOut, f64)> {
            // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
            let t = Instant::now();
            Ok((f()?, t.elapsed().as_secs_f64()))
        };
        let knobs = &self.knobs;
        let tasks: Vec<Task> = vec![
            Box::new(move || timed(&|| Ok(StageOut::Char(compute_characterization(trace))))),
            Box::new(move || {
                timed(&|| {
                    compute_qssf(trace, knobs.qssf, lo)
                        .map(StageOut::Qssf)
                        .map_err(|e| e.for_cluster(name))
                })
            }),
            Box::new(move || {
                timed(&|| {
                    compute_ces(trace, knobs, lo, hi)
                        .map(StageOut::Ces)
                        .map_err(|e| e.for_cluster(name))
                })
            }),
        ];
        use rayon::prelude::*;
        let results: Vec<Result<(StageOut, f64)>> = tasks
            .into_par_iter()
            .with_min_len(1)
            .map(|task| task())
            .collect();
        for result in results {
            let (out, secs) = result?;
            let stage = match out {
                StageOut::Char(c) => {
                    self.characterization = Some(c);
                    "characterize"
                }
                StageOut::Qssf(q) => {
                    self.qssf = Some(q);
                    "train_qssf"
                }
                StageOut::Ces(e) => {
                    self.ces_eval = Some(e);
                    "train_ces"
                }
            };
            self.stage_perf.push(StagePerf {
                stage: stage.into(),
                wall_secs: secs,
            });
        }
        self.record_stage("pipeline", started);
        Ok(self)
    }

    /// Switch failure injection on (or off with `None`) for every
    /// scheduling run of this session — see [`helios_sim::FaultConfig`]
    /// for the model. Validates the configuration eagerly.
    pub fn with_failures(&mut self, cfg: Option<FaultConfig>) -> Result<&mut Session> {
        if let Some(f) = &cfg {
            f.validate()?;
        }
        self.knobs.failures = cfg;
        Ok(self)
    }

    /// The trained failure predictor (after
    /// [`Session::train_failure_model`]).
    pub fn failure_model(&self) -> Option<&FailurePredictor> {
        self.failure_model.as_ref()
    }

    /// Stage 3c: train the per-node GPU-failure predictor. Simulates the
    /// evaluation window under the session's failure model (FIFO
    /// discipline), samples per-node telemetry, and fits a GBDT to
    /// P(failure within the horizon) with a time-ordered train/eval
    /// split. Requires [`Session::generate`] and an active
    /// [`Session::with_failures`] configuration.
    pub fn train_failure_model(&mut self, cfg: &PredictorConfig) -> Result<&mut Session> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let (lo, hi) = self.eval_window()?;
        let trace = self.trace.as_ref().expect("eval_window checked generate");
        let faults = self.knobs.failures.ok_or(HeliosError::MissingStage {
            stage: "train_failure_model",
            requires: "with_failures",
        })?;
        let jobs = jobs_from_trace(trace, lo, hi);
        let model = train_failure_predictor(&trace.spec, &jobs, &faults, cfg)
            .map_err(|e| e.for_cluster(self.preset.name()))?;
        self.failure_model = Some(model);
        self.record_stage("train_failure_model", started);
        Ok(self)
    }

    /// Stage 4, failure-aware form: run a built-in policy wrapped in the
    /// proactive [`DrainPolicy`]. Uses the trained failure predictor when
    /// [`Session::train_failure_model`] ran, otherwise an uptime-threshold
    /// baseline calibrated to the failure model's MTBF. The run is
    /// recorded under `DRAIN+<label>`.
    pub fn schedule_drained(&mut self, inner: SchedulePolicy) -> Result<&mut Session> {
        let faults = self.knobs.failures.ok_or(HeliosError::MissingStage {
            stage: "schedule_drained",
            requires: "with_failures",
        })?;
        let cfg = DrainConfig::default();
        let policy = match self.failure_model.clone() {
            Some(model) => DrainPolicy::with_predictor(inner.build(), model, cfg)?,
            None => {
                let mtbf_hours = faults.mtbf_secs / 3600.0;
                DrainPolicy::uptime(inner.build(), mtbf_hours, cfg)?
            }
        };
        self.run_schedule(None, Box::new(policy), Vec::new())
    }

    /// Stage 4: run one built-in scheduling policy over the evaluation
    /// window and record its outcome. [`SchedulePolicy::Qssf`] requires
    /// [`Session::train_qssf`] first.
    pub fn schedule(&mut self, policy: SchedulePolicy) -> Result<&mut Session> {
        self.run_schedule(Some(policy), policy.build(), Vec::new())
    }

    /// Stage 4, open-kernel form: run a user-defined [`SchedulingPolicy`]
    /// trait object over the evaluation window. The run is recorded under
    /// the policy's [`name`](SchedulingPolicy::name); re-running the same
    /// name replaces the previous outcome. Jobs carry their QSSF-agnostic
    /// defaults (`priority` = submission time) — priority-driven custom
    /// policies should key off job attributes or their own state.
    pub fn schedule_with(
        &mut self,
        policy: Box<dyn SchedulingPolicy + '_>,
    ) -> Result<&mut Session> {
        self.run_schedule(None, policy, Vec::new())
    }

    /// [`Session::schedule_with`] plus streaming observer registration:
    /// every kernel lifecycle event of the run flows through `observers`.
    /// Lend borrowed observers (`Box::new(&mut occ)`) to read their series
    /// after the call returns.
    pub fn schedule_observed<'o>(
        &mut self,
        policy: Box<dyn SchedulingPolicy + 'o>,
        observers: Vec<Box<dyn SimObserver + 'o>>,
    ) -> Result<&mut Session> {
        self.run_schedule(None, policy, observers)
    }

    fn run_schedule<'o>(
        &mut self,
        builtin: Option<SchedulePolicy>,
        policy: Box<dyn SchedulingPolicy + 'o>,
        observers: Vec<Box<dyn SimObserver + 'o>>,
    ) -> Result<&mut Session> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let (lo, hi) = self.eval_window()?;
        let trace = self.trace.as_ref().expect("eval_window checked generate");
        let jobs = match builtin {
            Some(SchedulePolicy::Qssf) => {
                let svc = self.qssf.as_ref().ok_or(HeliosError::MissingStage {
                    stage: "schedule(Qssf)",
                    requires: "train_qssf",
                })?;
                // Score on a snapshot: `assign_priorities` replays the eval
                // window causally (observing each job as it finishes), so
                // working on a clone keeps the trained service pristine and
                // makes re-running the same policy idempotent.
                svc.clone().assign_priorities(trace, lo, hi)
            }
            _ => jobs_from_trace(trace, lo, hi),
        };
        if jobs.is_empty() {
            return Err(HeliosError::empty_input(
                "schedulable jobs",
                format!(
                    "no GPU jobs submitted in [{lo}, {hi}) on {}",
                    self.preset.name()
                ),
            ));
        }
        let label = policy.name().to_string();
        let cfg = KernelConfig {
            placement: self.knobs.placement,
            backfill: self.knobs.backfill,
        };
        let mut sim = Simulator::with_config(&trace.spec, policy, &cfg);
        if let Some(faults) = &self.knobs.failures {
            sim.enable_faults(faults)
                .map_err(|e| e.for_cluster(self.preset.name()))?;
        }
        for obs in observers {
            sim.observe(obs);
        }
        sim.push_jobs(&jobs)
            .map_err(|e| e.for_cluster(self.preset.name()))?;
        sim.run_to_completion();
        let outcomes = sim.drain_outcomes();
        let fault_stats = sim.fault_stats();
        drop(sim);
        let stats = schedule_stats(&outcomes);
        let run_goodput = goodput(&outcomes, fault_stats);
        // Re-running a policy replaces its previous outcome.
        self.schedules.retain(|s| s.label != label);
        self.record_stage(format!("schedule:{label}"), started);
        self.schedules.push(ScheduleOutcome {
            label,
            policy: builtin,
            stats,
            outcomes,
            goodput: run_goodput,
            fault_stats,
        });
        Ok(self)
    }

    /// Run the four Fig. 11 policies in one call (QSSF only if trained).
    pub fn schedule_all(&mut self) -> Result<&mut Session> {
        self.schedule(SchedulePolicy::Fifo)?;
        self.schedule(SchedulePolicy::Sjf)?;
        self.schedule(SchedulePolicy::Srtf)?;
        if self.qssf.is_some() {
            self.schedule(SchedulePolicy::Qssf)?;
        }
        Ok(self)
    }

    /// Final stage: assemble everything computed so far into a
    /// [`SessionReport`]. Requires at least [`Session::generate`].
    pub fn report(&self) -> Result<SessionReport> {
        // guard: allow(determinism, reason = "stage wall-time telemetry for session reports; never feeds kernel state or digests")
        let started = Instant::now();
        let trace = self.trace.as_ref().ok_or(HeliosError::MissingStage {
            stage: "report",
            requires: "generate",
        })?;
        let schedules: Vec<ScheduleSummary> = self
            .schedules
            .iter()
            .map(|s| ScheduleSummary {
                label: s.label.clone(),
                avg_jct: s.stats.avg_jct,
                avg_queue_delay: s.stats.avg_queue_delay,
                queued_jobs: s.stats.queued_jobs,
                goodput: s.goodput.ratio(),
                lost_gpu_hours: s.goodput.lost_gpu_hours,
            })
            .collect();
        let qssf_vs_fifo = {
            let find = |p: SchedulePolicy| self.schedules.iter().find(|s| s.policy == Some(p));
            match (find(SchedulePolicy::Fifo), find(SchedulePolicy::Qssf)) {
                (Some(f), Some(q)) => Some(PolicyGain {
                    jct: f.stats.avg_jct / q.stats.avg_jct.max(1.0),
                    queue_delay: f.stats.avg_queue_delay / q.stats.avg_queue_delay.max(1.0),
                }),
                _ => None,
            }
        };
        let ces = self.ces_eval.as_ref().map(|e| {
            let window = e.series.len() as f64 * e.series.bin as f64;
            CesSummary {
                smape: e.smape,
                avg_drs_nodes: e.guided.avg_drs_nodes(),
                daily_wakeups: e.guided.daily_wakeups(),
                vanilla_daily_wakeups: e.vanilla.daily_wakeups(),
                baseline_utilization: e.guided.baseline_utilization(),
                utilization_with_ces: e.guided.utilization_with_drs(),
                annual_kwh_saved: annualize(energy_saved_kwh(e.guided.drs_node_seconds), window),
            }
        });
        let mut stage_perf = self.stage_perf.clone();
        stage_perf.push(StagePerf {
            stage: "report".into(),
            wall_secs: started.elapsed().as_secs_f64(),
        });
        Ok(SessionReport {
            cluster: self.preset.name().to_string(),
            scale: self.knobs.scale,
            seed: self.knobs.seed,
            nodes: trace.spec.nodes,
            gpus: trace.total_gpus(),
            jobs: trace.jobs.len() as u64,
            gpu_jobs: trace.gpu_jobs().count() as u64,
            users: trace.num_users() as u64,
            characterization: self.characterization.clone(),
            schedules,
            qssf_vs_fifo,
            ces,
            stage_perf,
        })
    }
}

/// The §3 characterization highlights as a pure function of the trace —
/// one fused single-pass traversal (see `helios_analysis::fused`).
fn compute_characterization(trace: &Trace) -> Characterization {
    let f = helios_analysis::characterize(trace);
    let peak = f
        .daily
        .hourly_submissions
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    let trough = f
        .daily
        .hourly_submissions
        .iter()
        .cloned()
        .fold(f64::MAX, f64::min);
    let (gpu_curve, _) = users::consumption_curves(&f.users);
    Characterization {
        peak_hourly_submissions: peak,
        trough_hourly_submissions: trough,
        single_gpu_share: f.job_size_cdf().fraction_at(1.0),
        single_gpu_time_share: f.job_size_time_cdf().fraction_at(1.0),
        // `gpu_status` is in percent; normalize to fractions so every
        // Characterization share field uses the same unit.
        gpu_status_shares: f.gpu_status.map(|p| p / 100.0),
        top5_user_gpu_share: users::top_share(&gpu_curve, 0.05),
        summary: f.summary,
    }
}

/// Trained QSSF service as a pure function of the trace.
fn compute_qssf(trace: &Trace, cfg: QssfConfig, train_hi: i64) -> Result<QssfService> {
    let mut svc = QssfService::new(cfg);
    svc.train(trace, 0, train_hi)?;
    Ok(svc)
}

/// CES evaluation as a pure function of the trace.
fn compute_ces(trace: &Trace, knobs: &Knobs, lo: i64, hi: i64) -> Result<CesEvaluation> {
    let series = node_series_from_trace(trace, 600, knobs.placement)?;
    let eval_end = (lo + 21 * SECS_PER_DAY).min(hi);
    let mut cfg = knobs.ces.clone();
    // Control thresholds scale with cluster size (defaults target the
    // paper's 130–320-node clusters).
    let k = (trace.spec.nodes as f64 / 140.0).clamp(0.05, 3.0);
    cfg.control.buffer_nodes = (cfg.control.buffer_nodes * k).max(1.0);
    cfg.control.xi_hist = (cfg.control.xi_hist * k).max(0.25);
    cfg.control.xi_future = (cfg.control.xi_future * k).max(0.25);
    let mut svc = CesService::new(cfg);
    svc.evaluate(trace, &series, lo, eval_end)
}

/// One policy row of a report, identified by the policy object's name.
#[derive(Debug, Clone)]
pub struct ScheduleSummary {
    pub label: String,
    pub avg_jct: f64,
    pub avg_queue_delay: f64,
    pub queued_jobs: u64,
    /// Fraction of consumed GPU time that reached completed jobs
    /// (exactly 1.0 for a failure-free run).
    pub goodput: f64,
    /// GPU·hours destroyed by node failures during the run.
    pub lost_gpu_hours: f64,
}

/// QSSF improvement over FIFO (Table 3 headline).
#[derive(Debug, Clone, Copy)]
pub struct PolicyGain {
    /// FIFO avg JCT / QSSF avg JCT.
    pub jct: f64,
    /// FIFO avg queue delay / QSSF avg queue delay.
    pub queue_delay: f64,
}

/// CES results (Table 5 column).
#[derive(Debug, Clone, Copy)]
pub struct CesSummary {
    pub smape: f64,
    pub avg_drs_nodes: f64,
    pub daily_wakeups: f64,
    pub vanilla_daily_wakeups: f64,
    pub baseline_utilization: f64,
    pub utilization_with_ces: f64,
    pub annual_kwh_saved: f64,
}

/// Everything one session produced, renderable as text or JSON.
#[derive(Debug, Clone)]
pub struct SessionReport {
    pub cluster: String,
    pub scale: f64,
    pub seed: u64,
    pub nodes: u32,
    pub gpus: u32,
    pub jobs: u64,
    pub gpu_jobs: u64,
    pub users: u64,
    pub characterization: Option<Characterization>,
    pub schedules: Vec<ScheduleSummary>,
    pub qssf_vs_fifo: Option<PolicyGain>,
    pub ces: Option<CesSummary>,
    /// Wall-time records of every executed stage, in execution order.
    pub stage_perf: Vec<StagePerf>,
}

impl SessionReport {
    /// Aligned plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} (scale {}, seed {}): {} nodes / {} GPUs, {} jobs ({} GPU), {} users\n",
            self.cluster,
            self.scale,
            self.seed,
            self.nodes,
            fmt_count(self.gpus as u64),
            fmt_count(self.jobs),
            fmt_count(self.gpu_jobs),
            self.users,
        );
        if let Some(c) = &self.characterization {
            out.push_str(&format!(
                "characterization: avg {:.2} GPUs/job, avg duration {}, \
                 single-GPU {:.0}% of jobs / {:.0}% of GPU time,\n\
                 \x20 statuses {:.0}/{:.0}/{:.0} (done/cancel/fail), \
                 top-5% users hold {:.0}% of GPU time, submissions {:.0}-{:.0}/h\n",
                c.summary.avg_gpus,
                fmt_secs(c.summary.avg_duration_s),
                100.0 * c.single_gpu_share,
                100.0 * c.single_gpu_time_share,
                100.0 * c.gpu_status_shares[0],
                100.0 * c.gpu_status_shares[1],
                100.0 * c.gpu_status_shares[2],
                100.0 * c.top5_user_gpu_share,
                c.trough_hourly_submissions,
                c.peak_hourly_submissions,
            ));
        }
        if !self.schedules.is_empty() {
            let faulty = self.schedules.iter().any(|s| s.goodput < 1.0);
            let mut head = vec!["policy", "avg JCT", "avg queue", "queued jobs"];
            if faulty {
                head.push("goodput");
            }
            let mut t = TextTable::new(head);
            for s in &self.schedules {
                let mut row = vec![
                    s.label.clone(),
                    fmt_secs(s.avg_jct),
                    fmt_secs(s.avg_queue_delay),
                    fmt_count(s.queued_jobs),
                ];
                if faulty {
                    row.push(format!("{:.1}%", 100.0 * s.goodput));
                }
                t.row(row);
            }
            out.push_str(&t.render());
        }
        if let Some(g) = &self.qssf_vs_fifo {
            out.push_str(&format!(
                "QSSF vs FIFO: JCT x{:.1}, queue delay x{:.1}\n",
                g.jct, g.queue_delay
            ));
        }
        if let Some(c) = &self.ces {
            out.push_str(&format!(
                "CES: SMAPE {:.2}%, {:.1} DRS nodes, {:.1} wake-ups/day (vanilla {:.1}), \
                 utilization {:.1}% -> {:.1}%, {:.0} kWh/yr saved\n",
                c.smape,
                c.avg_drs_nodes,
                c.daily_wakeups,
                c.vanilla_daily_wakeups,
                100.0 * c.baseline_utilization,
                100.0 * c.utilization_with_ces,
                c.annual_kwh_saved,
            ));
        }
        out
    }

    /// Machine-readable rendering.
    pub fn to_json(&self) -> serde_json::Value {
        let schedules: Vec<serde_json::Value> = self
            .schedules
            .iter()
            .map(|s| {
                json!({
                    "policy": s.label.clone(),
                    "avg_jct": s.avg_jct,
                    "avg_queue_delay": s.avg_queue_delay,
                    "queued_jobs": s.queued_jobs,
                    "goodput": s.goodput,
                    "lost_gpu_hours": s.lost_gpu_hours,
                })
            })
            .collect();
        let mut root = serde_json::Map::new();
        root.insert("cluster".into(), json!(self.cluster.clone()));
        root.insert("scale".into(), json!(self.scale));
        root.insert("seed".into(), json!(self.seed));
        root.insert("nodes".into(), json!(self.nodes));
        root.insert("gpus".into(), json!(self.gpus));
        root.insert("jobs".into(), json!(self.jobs));
        root.insert("gpu_jobs".into(), json!(self.gpu_jobs));
        root.insert("schedules".into(), json!(schedules));
        root.insert(
            "stages".into(),
            json!(self
                .stage_perf
                .iter()
                .map(|s| json!({"stage": s.stage.clone(), "wall_secs": s.wall_secs}))
                .collect::<Vec<_>>()),
        );
        if let Some(g) = &self.qssf_vs_fifo {
            root.insert(
                "qssf_vs_fifo".into(),
                json!({"jct_gain": g.jct, "queue_gain": g.queue_delay}),
            );
        }
        if let Some(c) = &self.ces {
            root.insert(
                "ces".into(),
                json!({
                    "smape": c.smape,
                    "avg_drs_nodes": c.avg_drs_nodes,
                    "daily_wakeups": c.daily_wakeups,
                    "baseline_utilization": c.baseline_utilization,
                    "utilization_with_ces": c.utilization_with_ces,
                    "annual_kwh_saved": c.annual_kwh_saved,
                }),
            );
        }
        serde_json::Value::Object(root)
    }
}

/// Builder for a parallel multi-cluster (× multi-seed) fan-out.
pub struct FleetBuilder {
    presets: Vec<Preset>,
    seeds: Vec<u64>,
    knobs: Knobs,
}

impl FleetBuilder {
    fn new(presets: Vec<Preset>) -> Self {
        FleetBuilder {
            presets,
            seeds: Vec::new(),
            knobs: Knobs::default(),
        }
    }

    builder_knobs!();

    /// Sweep several generator seeds: the fan-out produces one session
    /// per (cluster, seed) pair, preset-major (`Venus@s1, Venus@s2, …,
    /// Earth@s1, …`). Without this, the single [`Self::seed`] is used.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Build one configured (empty) session per (cluster, seed) pair.
    pub fn build(self) -> Result<Vec<Session>> {
        if self.presets.is_empty() {
            return Err(HeliosError::empty_input(
                "clusters",
                "fan-out over zero presets",
            ));
        }
        self.knobs.validate()?;
        let seeds = if self.seeds.is_empty() {
            vec![self.knobs.seed]
        } else {
            self.seeds
        };
        let mut sessions = Vec::with_capacity(self.presets.len() * seeds.len());
        for preset in self.presets {
            for &seed in &seeds {
                let mut knobs = self.knobs.clone();
                knobs.seed = seed;
                sessions.push(Session::with_knobs(preset, knobs));
            }
        }
        Ok(sessions)
    }

    /// Run `f` on every (cluster, seed) session concurrently — the
    /// fan-out goes through rayon (`par_iter_mut`, one session per
    /// thread) — returning results in preset-major, seed-minor order.
    /// The first error wins and is tagged with its cluster name.
    pub fn run<T, F>(self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Session) -> Result<T> + Send + Sync,
    {
        use rayon::prelude::*;
        let mut sessions = self.build()?;
        let results: Vec<Result<T>> = sessions
            .par_iter_mut()
            .with_min_len(1)
            .map(|session| {
                let name = session.preset().name();
                f(session).map_err(|e| match e {
                    // Already tagged by an inner stage.
                    tagged @ HeliosError::Cluster { .. } => tagged,
                    other => other.for_cluster(name),
                })
            })
            .collect();
        results.into_iter().collect()
    }

    /// The standard paper pipeline on every cluster in parallel:
    /// generate → characterize → train QSSF → schedule FIFO/SJF/SRTF/QSSF
    /// → report. One call, one report per cluster.
    pub fn reports(self) -> Result<Vec<SessionReport>> {
        self.run(|session| {
            session
                .generate()?
                .characterize()?
                .train_qssf()?
                .schedule_all()?
                .report()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_invalid_scale() {
        for scale in [0.0, -0.5, 2.0, f64::NAN] {
            let err = Helios::cluster(Preset::Venus).scale(scale).build();
            assert!(
                matches!(err, Err(HeliosError::InvalidConfig { field: "scale", .. })),
                "scale {scale}"
            );
        }
    }

    #[test]
    fn builder_rejects_invalid_lambda() {
        let err = Helios::cluster(Preset::Venus).lambda(1.5).build();
        assert!(matches!(
            err,
            Err(HeliosError::InvalidConfig {
                field: "lambda",
                ..
            })
        ));
    }

    #[test]
    fn stages_require_generate() {
        let mut s = Helios::cluster(Preset::Venus).build().unwrap();
        assert!(matches!(
            s.characterize(),
            Err(HeliosError::MissingStage {
                requires: "generate",
                ..
            })
        ));
        assert!(s.report().is_err());
        assert!(s.trace().is_err());
    }

    #[test]
    fn qssf_schedule_requires_training() {
        let mut s = Helios::cluster(Preset::Venus)
            .scale(0.02)
            .seed(1)
            .build()
            .unwrap();
        s.generate().unwrap();
        let err = s.schedule(SchedulePolicy::Qssf);
        assert!(matches!(
            err,
            Err(HeliosError::MissingStage {
                requires: "train_qssf",
                ..
            })
        ));
        // Baselines work without training.
        s.schedule(SchedulePolicy::Fifo).unwrap();
        assert_eq!(s.schedule_outcomes().len(), 1);
    }

    #[test]
    fn preset_parsing() {
        assert_eq!(Preset::parse("venus").unwrap(), Preset::Venus);
        assert_eq!(Preset::parse("Philly").unwrap(), Preset::Philly);
        assert!(matches!(
            Preset::parse("pluto"),
            Err(HeliosError::UnknownName {
                kind: "cluster",
                ..
            })
        ));
    }

    #[test]
    fn empty_fleet_is_an_error() {
        assert!(Helios::clusters([]).build().is_err());
    }
}
