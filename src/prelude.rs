//! Curated imports for façade users: `use helios::prelude::*;` pulls in the
//! builder pipeline plus the handful of substrate types its signatures
//! mention. Deep APIs stay behind the re-exported member crates
//! (`helios::trace`, `helios::sim`, ...).

pub use crate::error::{HeliosError, HeliosResult};
pub use crate::session::{
    CesSummary, Characterization, FleetBuilder, Helios, PolicyGain, Preset, ScheduleOutcome,
    SchedulePolicy, ScheduleSummary, Session, SessionBuilder, SessionReport, StagePerf,
};

// Substrate types that appear in façade signatures or configs.
pub use helios_core::{CesEvaluation, CesServiceConfig, QssfConfig};
pub use helios_faults::{DrainConfig, DrainPolicy, FailurePredictor, Goodput, PredictorConfig};
pub use helios_fleet::{
    ChaosConfig, CheckpointConfig, ClusterConfig, ClusterStatus, Fleet, FleetConfig, FleetHealth,
    RetryConfig, ShedConfig, StatusKind, StatusReport, VcStatus, WatchdogConfig, WorkerState,
};
pub use helios_sim::{
    FaultConfig, FaultSemantics, JobOutcome, JobView, Placement, Policy, ScheduleStats,
    SchedulingPolicy, SimJob, SimObserver,
};
pub use helios_trace::{ClusterId, GeneratorConfig, JobRecord, JobStatus, Trace};
