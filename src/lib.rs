//! # helios — umbrella façade for the Helios SC'21 reproduction
//!
//! One typed, fallible pipeline over the paper's whole framework
//! (*Characterization and Prediction of Deep Learning Workloads in
//! Large-Scale GPU Datacenters*, Hu et al., SC'21): synthetic trace
//! generation → §3 characterization → §4 prediction services (QSSF, CES)
//! → trace-driven scheduling → reports.
//!
//! ```no_run
//! use helios::prelude::*;
//!
//! # fn main() -> helios::error::Result<()> {
//! // One cluster, end to end.
//! let report = Helios::cluster(Preset::Venus)
//!     .scale(0.1)
//!     .seed(42)
//!     .build()?
//!     .generate()?
//!     .characterize()?
//!     .train_qssf()?
//!     .schedule(SchedulePolicy::Fifo)?
//!     .schedule(SchedulePolicy::Qssf)?
//!     .report()?;
//! println!("{}", report.render());
//!
//! // All five clusters in parallel, one report each.
//! for report in Helios::all_clusters().scale(0.05).reports()? {
//!     println!("{}", report.render());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Every fallible entry point returns [`error::HeliosError`]; no façade
//! path panics on invalid user input.
//!
//! Scheduling is open: built-in policies go through
//! [`SchedulePolicy`] constructors, and any user-defined
//! `helios_sim::SchedulingPolicy` trait object runs through the same
//! pipeline via [`session::Session::schedule_with`] (with streaming
//! `SimObserver` metrics via [`session::Session::schedule_observed`]).
//! See `examples/custom_policy.rs`.
//!
//! The member crates remain available for deep access:
//! [`trace`] (synthesis), [`analysis`] (§3 statistics), [`predict`]
//! (GBDT/ARIMA/LSTM), [`sim`] (pluggable discrete-event scheduler kernel),
//! [`core`] (service framework), [`energy`] (CES/DRS + energy-aware
//! policy), [`faults`] (failure prediction, proactive drains, goodput
//! over the kernel's failure injection — see
//! [`session::Session::with_failures`]), [`fleet`] (sharded,
//! snapshottable scheduler-as-a-service — launch via
//! [`Helios::fleet_service`]).

pub mod error;
pub mod prelude;
pub mod session;

pub use error::{HeliosError, HeliosResult};
pub use session::{
    Helios, Preset, SchedulePolicy, Session, SessionBuilder, SessionReport, StagePerf,
};

pub use helios_analysis as analysis;
pub use helios_core as core;
pub use helios_energy as energy;
pub use helios_faults as faults;
pub use helios_fleet as fleet;
pub use helios_predict as predict;
pub use helios_sim as sim;
pub use helios_trace as trace;
