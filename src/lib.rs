//! Umbrella crate for the Helios SC'21 reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. Library users should depend on the individual crates
//! (`helios-trace`, `helios-sim`, ...) directly.

pub use helios_analysis as analysis;
pub use helios_core as core;
pub use helios_energy as energy;
pub use helios_predict as predict;
pub use helios_sim as sim;
pub use helios_trace as trace;
