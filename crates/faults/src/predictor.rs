//! GPU-failure prediction on top of the binned GBDT.
//!
//! [`train_failure_predictor`] runs a failure-injected simulation of the
//! supplied workload, samples per-node telemetry through
//! [`NodeSampleObserver`], and fits a gradient
//! boosted model to P(node fails within the horizon). The split is
//! time-ordered (train on the prefix, evaluate on the suffix) so the
//! reported precision/recall are honest out-of-sample numbers.

use crate::telemetry::NodeSampleObserver;
use helios_predict::{Gbdt, GbdtParams};
use helios_sim::{FaultConfig, FifoPolicy, SimJob, Simulator, NODE_FEATURES};
use helios_trace::{ClusterSpec, HeliosError, HeliosResult};

/// Knobs for failure-predictor training.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// Prediction horizon: label a sample positive if the node fails
    /// within this many hours after it.
    pub horizon_hours: f64,
    /// Telemetry sampling cadence in simulated seconds.
    pub sample_secs: i64,
    /// Decision threshold on the predicted risk; `None` picks the
    /// F1-maximizing threshold on the evaluation split.
    pub threshold: Option<f64>,
    /// Time-ordered fraction of samples used for training (the rest
    /// evaluates).
    pub train_frac: f64,
    /// Boosting rounds.
    pub trees: usize,
    /// Tree depth.
    pub depth: usize,
    /// Subsampling seed for the GBDT.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            horizon_hours: 6.0,
            sample_secs: 2 * 3600,
            threshold: None,
            train_frac: 0.7,
            trees: 60,
            depth: 4,
            seed: 2020,
        }
    }
}

impl PredictorConfig {
    fn validate(&self) -> HeliosResult<()> {
        if !self.horizon_hours.is_finite() || self.horizon_hours <= 0.0 {
            return Err(HeliosError::invalid_config(
                "predictor_horizon",
                format!(
                    "horizon must be positive finite hours, got {}",
                    self.horizon_hours
                ),
            ));
        }
        if !(self.train_frac > 0.0 && self.train_frac < 1.0) {
            return Err(HeliosError::invalid_config(
                "predictor_train_frac",
                format!(
                    "train fraction must lie strictly inside (0, 1), got {}",
                    self.train_frac
                ),
            ));
        }
        if self.trees == 0 {
            return Err(HeliosError::invalid_config(
                "predictor_trees",
                "at least one boosting round is required",
            ));
        }
        Ok(())
    }
}

/// A trained per-node failure-risk model with its out-of-sample quality.
#[derive(Debug, Clone)]
pub struct FailurePredictor {
    model: Gbdt,
    /// Decision threshold on [`FailurePredictor::risk`].
    pub threshold: f64,
    /// Horizon the model was trained for, in seconds.
    pub horizon_secs: i64,
    /// Out-of-sample precision at `threshold`.
    pub precision: f64,
    /// Out-of-sample recall at `threshold`.
    pub recall: f64,
    /// Positive-label base rate of the evaluation split.
    pub base_rate: f64,
}

impl FailurePredictor {
    /// P(failure within horizon) for one feature vector, clamped to
    /// [0, 1].
    pub fn risk(&self, features: &[f64]) -> f64 {
        self.model.predict_row(features).clamp(0.0, 1.0)
    }

    /// Whether the model flags this feature vector as failing soon.
    pub fn predicts_failure(&self, features: &[f64]) -> bool {
        self.risk(features) >= self.threshold
    }
}

fn precision_recall(scores: &[f64], labels: &[f64], threshold: f64) -> (f64, f64) {
    let (mut tp, mut fp, mut fnc) = (0u64, 0u64, 0u64);
    for (&s, &y) in scores.iter().zip(labels) {
        let pred = s >= threshold;
        let pos = y >= 0.5;
        match (pred, pos) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnc += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        0.0
    };
    let recall = if tp + fnc > 0 {
        tp as f64 / (tp + fnc) as f64
    } else {
        0.0
    };
    (precision, recall)
}

/// Simulate `jobs` on `spec` under the failure model `faults`, collect
/// labeled per-node telemetry, and fit a GBDT failure-risk model.
/// Returns a typed error when the run produces no positive labels (MTBF
/// too long for the trace) — a model trained on all-negative data would
/// be meaningless.
pub fn train_failure_predictor(
    spec: &ClusterSpec,
    jobs: &[SimJob],
    faults: &FaultConfig,
    cfg: &PredictorConfig,
) -> HeliosResult<FailurePredictor> {
    cfg.validate()?;
    faults.validate()?;
    let mut telemetry = NodeSampleObserver::new(cfg.sample_secs);
    {
        let mut sim = Simulator::new(spec, Box::new(FifoPolicy));
        sim.enable_faults(faults)?;
        sim.observe(Box::new(&mut telemetry));
        sim.push_jobs(jobs)?;
        sim.run_to_completion();
    }
    let horizon_secs = (cfg.horizon_hours * 3600.0) as i64;
    let (samples, labels) = telemetry.labeled(horizon_secs);
    if samples.is_empty() {
        return Err(HeliosError::empty_input(
            "failure telemetry",
            "the simulation produced no usable node samples",
        ));
    }
    let positives = labels.iter().filter(|&&y| y >= 0.5).count();
    if positives == 0 {
        return Err(HeliosError::empty_input(
            "failure labels",
            "no node failed within the horizon over the whole trace; \
             lower the MTBF or lengthen the workload",
        ));
    }
    let split = ((samples.len() as f64 * cfg.train_frac) as usize)
        .max(1)
        .min(samples.len() - 1);
    // Column-major, as the GBDT's binned fitter expects.
    let mut train_cols: Vec<Vec<f64>> = (0..NODE_FEATURES)
        .map(|_| Vec::with_capacity(split))
        .collect();
    let mut eval_cols: Vec<Vec<f64>> = (0..NODE_FEATURES)
        .map(|_| Vec::with_capacity(samples.len() - split))
        .collect();
    for (i, s) in samples.iter().enumerate() {
        let cols = if i < split {
            &mut train_cols
        } else {
            &mut eval_cols
        };
        for (c, &v) in s.features.iter().enumerate() {
            cols[c].push(v);
        }
    }
    let (train_y, eval_y) = labels.split_at(split);
    let params = GbdtParams {
        num_trees: cfg.trees,
        max_depth: cfg.depth,
        seed: cfg.seed,
        ..GbdtParams::default()
    };
    let model = Gbdt::fit(&train_cols, train_y, &params, Some((&eval_cols, eval_y)));
    let eval_rows: Vec<Vec<f64>> = samples[split..]
        .iter()
        .map(|s| s.features.to_vec())
        .collect();
    let scores: Vec<f64> = eval_rows
        .iter()
        .map(|r| model.predict_row(r).clamp(0.0, 1.0))
        .collect();
    let threshold = match cfg.threshold {
        Some(t) => t,
        None => {
            // Grid-search the F1-maximizing threshold on the eval split.
            let mut best = (0.5, -1.0);
            let mut t = 0.05;
            while t < 0.96 {
                let (p, r) = precision_recall(&scores, eval_y, t);
                let f1 = if p + r > 0.0 {
                    2.0 * p * r / (p + r)
                } else {
                    0.0
                };
                if f1 > best.1 {
                    best = (t, f1);
                }
                t += 0.05;
            }
            best.0
        }
    };
    let (precision, recall) = precision_recall(&scores, eval_y, threshold);
    let base_rate =
        eval_y.iter().filter(|&&y| y >= 0.5).count() as f64 / eval_y.len().max(1) as f64;
    Ok(FailurePredictor {
        model,
        threshold,
        horizon_secs,
        precision,
        recall,
        base_rate,
    })
}
