//! Streaming per-node telemetry for failure-prediction training.
//!
//! [`NodeSampleObserver`] rides along a failure-injected simulation and
//! periodically snapshots every up node's feature vector (uptime, prior
//! failures, rolling utilization, occupancy churn, instantaneous busy
//! fraction — see
//! [`NODE_FEATURE_NAMES`](helios_sim::NODE_FEATURE_NAMES)), while
//! recording the ground-truth failure times the labels come from.

use helios_sim::observer::{ClusterView, SimEvent, SimObserver};
use helios_sim::NODE_FEATURES;

/// One feature-vector sample of one node at one instant.
#[derive(Debug, Clone, Copy)]
pub struct NodeSample {
    /// Global node index (across VCs, in spec order).
    pub node: u32,
    /// Sample time (epoch seconds).
    pub time: i64,
    /// Feature vector, ordered as
    /// [`NODE_FEATURE_NAMES`](helios_sim::NODE_FEATURE_NAMES).
    pub features: [f64; NODE_FEATURES],
}

/// Observer sampling every up node's features on a fixed cadence and
/// logging node failures, to be turned into a labeled dataset after the
/// run via [`NodeSampleObserver::labeled`].
pub struct NodeSampleObserver {
    sample_secs: i64,
    last_sample: Option<i64>,
    last_seen: i64,
    samples: Vec<NodeSample>,
    failures: Vec<Vec<i64>>,
}

impl NodeSampleObserver {
    /// Sample every `sample_secs` of simulated time (clamped to >= 1).
    pub fn new(sample_secs: i64) -> Self {
        NodeSampleObserver {
            sample_secs: sample_secs.max(1),
            last_sample: None,
            last_seen: i64::MIN,
            samples: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Raw samples collected so far (time-ordered).
    pub fn samples(&self) -> &[NodeSample] {
        &self.samples
    }

    /// Recorded failure instants per global node.
    pub fn failures(&self) -> &[Vec<i64>] {
        &self.failures
    }

    /// Build the labeled dataset: each retained sample is labeled 1.0 if
    /// its node failed within `horizon_secs` after the sample instant.
    /// Samples too close to the end of the observed window to know their
    /// label (right-censored) are dropped. Returns `(samples, labels)`
    /// in time order.
    pub fn labeled(&self, horizon_secs: i64) -> (Vec<NodeSample>, Vec<f64>) {
        let cutoff = self.last_seen.saturating_sub(horizon_secs);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for s in &self.samples {
            if s.time > cutoff {
                continue; // censored: the horizon extends past the trace
            }
            let failed = self
                .failures
                .get(s.node as usize)
                .is_some_and(|ts| ts.iter().any(|&t| t > s.time && t <= s.time + horizon_secs));
            rows.push(*s);
            labels.push(if failed { 1.0 } else { 0.0 });
        }
        (rows, labels)
    }
}

impl SimObserver for NodeSampleObserver {
    fn on_clock(&mut self, now: i64, cluster: &ClusterView<'_>) {
        self.last_seen = self.last_seen.max(now);
        if !cluster.fault_active() {
            return;
        }
        let due = match self.last_sample {
            None => true,
            Some(last) => now.saturating_sub(last) >= self.sample_secs,
        };
        if !due {
            return;
        }
        self.last_sample = Some(now);
        let n = cluster.fault_nodes();
        if self.failures.len() < n {
            self.failures.resize(n, Vec::new());
        }
        for node in 0..n as u32 {
            if cluster.node_is_up(node) != Some(true) {
                continue; // down nodes produce no actionable sample
            }
            if let Some(features) = cluster.node_features(node, now) {
                self.samples.push(NodeSample {
                    node,
                    time: now,
                    features,
                });
            }
        }
    }

    fn on_event(&mut self, event: &SimEvent, _cluster: &ClusterView<'_>) {
        if let SimEvent::NodeFail { node, now, .. } = *event {
            let idx = node as usize;
            if self.failures.len() <= idx {
                self.failures.resize(idx + 1, Vec::new());
            }
            self.failures[idx].push(now);
            self.last_seen = self.last_seen.max(now);
        }
    }
}
