//! Proactive drain scheduling: a policy wrapper that fences
//! predicted-bad nodes off from new placements.
//!
//! [`DrainPolicy`] composes with **any**
//! [`SchedulingPolicy`]: every queue/
//! preemption decision is forwarded to the wrapped inner policy
//! untouched, while the wrapper periodically scores every up node with a
//! [`RiskModel`] and emits drain/undrain directives through the kernel's
//! per-event [`drain_directives`](helios_sim::SchedulingPolicy::drain_directives)
//! poll. Draining never kills a running gang — it only blocks new
//! placements — so a wrong prediction costs capacity, not work. Under
//! checkpoint-restart semantics a drained node also checkpoints
//! proactively at drain time, bounding the work a correctly-predicted
//! failure destroys.

use crate::predictor::FailurePredictor;
use helios_sim::fault::DrainDirective;
use helios_sim::observer::ClusterView;
use helios_sim::policy::{JobView, SchedulingPolicy};
use helios_sim::SimJob;
use helios_trace::{HeliosError, HeliosResult};

/// How the wrapper scores a node's failure risk.
pub enum RiskModel {
    /// A trained GBDT failure predictor; risk is its calibrated score.
    Predictor(FailurePredictor),
    /// A transparent baseline: risk = uptime_hours / `hours`, so a node
    /// passes the (1.0) threshold once it has been up `hours` hours.
    /// Useful for aging (Weibull shape > 1) failure models when no
    /// trained predictor is at hand.
    UptimeThreshold {
        /// Uptime at which a node is considered due for failure.
        hours: f64,
    },
}

/// Drain-wrapper knobs.
#[derive(Debug, Clone, Copy)]
pub struct DrainConfig {
    /// Drain a node once its risk reaches this value.
    pub risk_threshold: f64,
    /// Re-score the fleet at most every this many simulated seconds.
    pub rescan_secs: i64,
    /// Never hold more than this fraction of the fleet in drain at once
    /// (the riskiest nodes win).
    pub max_drain_frac: f64,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            risk_threshold: 1.0,
            rescan_secs: 1800,
            max_drain_frac: 0.08,
        }
    }
}

impl DrainConfig {
    /// Reject non-physical settings with typed errors (never panics);
    /// called by every [`DrainPolicy`] constructor.
    pub fn validate(&self) -> HeliosResult<()> {
        if !self.risk_threshold.is_finite() || self.risk_threshold <= 0.0 {
            return Err(HeliosError::invalid_config(
                "drain_threshold",
                format!(
                    "risk threshold must be positive and finite, got {}",
                    self.risk_threshold
                ),
            ));
        }
        if self.rescan_secs <= 0 {
            return Err(HeliosError::invalid_config(
                "drain_rescan",
                format!("rescan cadence must be positive, got {}", self.rescan_secs),
            ));
        }
        if !(0.0..=1.0).contains(&self.max_drain_frac) {
            return Err(HeliosError::invalid_config(
                "drain_max_frac",
                format!(
                    "max drain fraction must lie in [0, 1], got {}",
                    self.max_drain_frac
                ),
            ));
        }
        Ok(())
    }
}

/// Policy wrapper adding proactive drains on top of any scheduling
/// discipline. Display name is `DRAIN+<inner>`.
pub struct DrainPolicy {
    inner: Box<dyn SchedulingPolicy>,
    model: RiskModel,
    cfg: DrainConfig,
    name: String,
    next_scan: i64,
    drained: Vec<bool>,
    pending: Vec<DrainDirective>,
    scratch: Vec<(f64, u32)>,
}

impl DrainPolicy {
    /// Wrap `inner` with a trained failure predictor; the drain threshold
    /// defaults to the predictor's own F1-optimal decision threshold.
    pub fn with_predictor(
        inner: Box<dyn SchedulingPolicy>,
        predictor: FailurePredictor,
        mut cfg: DrainConfig,
    ) -> HeliosResult<DrainPolicy> {
        cfg.risk_threshold = predictor.threshold;
        Self::new(inner, RiskModel::Predictor(predictor), cfg)
    }

    /// Wrap `inner` with the uptime-threshold baseline: drain nodes once
    /// they have been up `hours` hours.
    pub fn uptime(
        inner: Box<dyn SchedulingPolicy>,
        hours: f64,
        cfg: DrainConfig,
    ) -> HeliosResult<DrainPolicy> {
        if !hours.is_finite() || hours <= 0.0 {
            return Err(HeliosError::invalid_config(
                "drain_uptime_hours",
                format!("uptime threshold must be positive finite hours, got {hours}"),
            ));
        }
        Self::new(inner, RiskModel::UptimeThreshold { hours }, cfg)
    }

    fn new(
        inner: Box<dyn SchedulingPolicy>,
        model: RiskModel,
        cfg: DrainConfig,
    ) -> HeliosResult<DrainPolicy> {
        cfg.validate()?;
        let name = format!("DRAIN+{}", inner.name());
        Ok(DrainPolicy {
            inner,
            model,
            cfg,
            name,
            next_scan: i64::MIN,
            drained: Vec::new(),
            pending: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// The wrapped policy's display name.
    pub fn inner_name(&self) -> &str {
        self.inner.name()
    }

    fn risk_of(&self, features: &[f64]) -> f64 {
        match &self.model {
            RiskModel::Predictor(p) => p.risk(features),
            RiskModel::UptimeThreshold { hours } => features[0] / hours,
        }
    }

    /// Re-score the fleet if the rescan cadence elapsed, and queue the
    /// drain-set diff as pending directives. Runs inside the job hooks
    /// (the only policy callbacks that carry a [`ClusterView`]); the
    /// kernel polls [`SchedulingPolicy::drain_directives`] after every
    /// event, so pending directives apply before the next decision.
    fn scan(&mut self, now: i64, cluster: &ClusterView<'_>) {
        if !cluster.fault_active() || now < self.next_scan {
            return;
        }
        self.next_scan = now.saturating_add(self.cfg.rescan_secs);
        let n = cluster.fault_nodes();
        if self.drained.len() != n {
            self.drained.resize(n, false);
        }
        let mut risky = std::mem::take(&mut self.scratch);
        risky.clear();
        for node in 0..n as u32 {
            if cluster.node_is_up(node) != Some(true) {
                continue; // down nodes are the kernel's problem
            }
            let Some(features) = cluster.node_features(node, now) else {
                continue;
            };
            let risk = self.risk_of(&features);
            if risk >= self.cfg.risk_threshold {
                risky.push((risk, node));
            }
        }
        // Riskiest first; ties break on node index for determinism.
        risky.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let cap = ((n as f64) * self.cfg.max_drain_frac).floor() as usize;
        risky.truncate(cap);
        // Diff the desired set against the current one.
        let mut desired = vec![false; n];
        for &(_, node) in &risky {
            desired[node as usize] = true;
        }
        for (node, (cur, &want)) in self.drained.iter_mut().zip(&desired).enumerate() {
            if *cur != want {
                *cur = want;
                self.pending.push(DrainDirective {
                    node: node as u32,
                    drain: want,
                });
            }
        }
        risky.clear();
        self.scratch = risky;
    }
}

impl SchedulingPolicy for DrainPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn queue_key(&mut self, job: &JobView<'_>) -> f64 {
        self.inner.queue_key(job)
    }

    fn preemptive(&self) -> bool {
        self.inner.preemptive()
    }

    fn preempt_rank(&mut self, job: &JobView<'_>) -> f64 {
        self.inner.preempt_rank(job)
    }

    fn preempt_rank_with_validity(&mut self, job: &JobView<'_>, now: i64) -> (f64, Option<i64>) {
        self.inner.preempt_rank_with_validity(job, now)
    }

    fn on_submit(&mut self, job: &SimJob, now: i64, cluster: &ClusterView<'_>) {
        self.inner.on_submit(job, now, cluster);
        self.scan(now, cluster);
    }

    fn on_start(&mut self, job: &SimJob, now: i64, cluster: &ClusterView<'_>) {
        self.inner.on_start(job, now, cluster);
        self.scan(now, cluster);
    }

    fn on_finish(&mut self, job: &SimJob, now: i64, cluster: &ClusterView<'_>) {
        self.inner.on_finish(job, now, cluster);
        self.scan(now, cluster);
    }

    fn on_preempt(&mut self, job: &SimJob, now: i64, cluster: &ClusterView<'_>) {
        self.inner.on_preempt(job, now, cluster);
        self.scan(now, cluster);
    }

    fn drain_directives(&mut self, out: &mut Vec<DrainDirective>) {
        out.append(&mut self.pending);
        self.inner.drain_directives(out);
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        // The kernel pulls directives after every event, so `pending` is
        // empty at any snapshot boundary.
        debug_assert!(self.pending.is_empty());
        out.extend_from_slice(&self.next_scan.to_le_bytes());
        out.extend_from_slice(&(self.drained.len() as u32).to_le_bytes());
        out.extend(self.drained.iter().map(|&d| d as u8));
        self.inner.save_state(out);
    }

    fn load_state(&mut self, bytes: &[u8]) -> HeliosResult<()> {
        let err = || {
            HeliosError::snapshot(
                "restoring drain-policy state",
                "truncated or malformed drain wrapper section",
            )
        };
        if bytes.len() < 12 {
            return Err(err());
        }
        let next_scan = i64::from_le_bytes(bytes[..8].try_into().expect("checked length"));
        let n = u32::from_le_bytes(bytes[8..12].try_into().expect("checked length")) as usize;
        let rest = &bytes[12..];
        if rest.len() < n {
            return Err(err());
        }
        self.next_scan = next_scan;
        self.drained = rest[..n].iter().map(|&b| b != 0).collect();
        self.pending.clear();
        self.inner.load_state(&rest[n..])
    }
}
