//! Goodput accounting: how much of the GPU time a schedule consumed
//! actually advanced jobs.
//!
//! Under failure injection a run burns GPU·hours twice — once for the
//! work that survived to completion and once for progress destroyed by
//! kills (everything since the last checkpoint, or the whole attempt
//! under kill-and-requeue). Goodput is the surviving fraction; it is
//! `<= 1` by construction and exactly `1` when injection is off.

use helios_sim::fault::FaultStats;
use helios_sim::JobOutcome;

/// Useful vs. wasted GPU time for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Goodput {
    /// GPU·hours that reached completed jobs.
    pub useful_gpu_hours: f64,
    /// GPU·hours destroyed by failures (work since the last durable
    /// checkpoint at each kill).
    pub lost_gpu_hours: f64,
}

impl Goodput {
    /// useful / (useful + lost); `1.0` for an empty or failure-free run.
    pub fn ratio(&self) -> f64 {
        let total = self.useful_gpu_hours + self.lost_gpu_hours;
        if total > 0.0 {
            self.useful_gpu_hours / total
        } else {
            1.0
        }
    }
}

/// Join job outcomes with the kernel's failure accounting. `stats` is
/// [`Simulator::fault_stats`](helios_sim::Simulator::fault_stats) —
/// `None` (injection off) yields zero loss and ratio 1.
pub fn goodput(outcomes: &[JobOutcome], stats: Option<FaultStats>) -> Goodput {
    let useful: f64 = outcomes
        .iter()
        .map(|o| f64::from(o.gpus) * o.duration as f64)
        .sum();
    let lost = stats.map_or(0.0, |s| s.lost_gpu_secs);
    Goodput {
        useful_gpu_hours: useful / 3600.0,
        lost_gpu_hours: lost / 3600.0,
    }
}
