//! # helios-faults
//!
//! Failure-aware scheduling on top of the Helios kernel: telemetry and
//! training for a per-node **GPU-failure predictor**, a **proactive
//! drain** policy wrapper that fences predicted-bad nodes off from new
//! placements, and **goodput** accounting joining completed work with
//! the GPU time failures destroyed.
//!
//! The failure *process* itself (seeded Weibull renewal MTBF draws,
//! correlated rack bursts, repair timers, kill-requeue vs.
//! checkpoint-restart semantics) lives in the kernel — see
//! [`helios_sim::fault`] and
//! [`Simulator::enable_faults`](helios_sim::Simulator::enable_faults).
//! This crate is the layer above it: everything that *reacts* to
//! failures rather than generating them.
//!
//! ```
//! use helios_faults::{goodput, DrainConfig, DrainPolicy};
//! use helios_sim::{FaultConfig, FifoPolicy, Simulator, SimJob};
//! use helios_trace::venus;
//!
//! let spec = venus();
//! // Age-based proactive drains over a 50h-MTBF failure model.
//! let policy = DrainPolicy::uptime(Box::new(FifoPolicy), 40.0, DrainConfig::default())?;
//! let mut sim = Simulator::new(&spec, Box::new(policy));
//! sim.enable_faults(&FaultConfig::with_mtbf_hours(50.0))?;
//! sim.push_jobs(&[SimJob { id: 0, vc: 0, gpus: 8, submit: 0, duration: 3600, priority: 1.0 }])?;
//! sim.run_to_completion();
//! let g = goodput(&sim.drain_outcomes(), sim.fault_stats());
//! assert!(g.ratio() <= 1.0);
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod drain;
pub mod goodput;
pub mod predictor;
pub mod telemetry;

pub use drain::{DrainConfig, DrainPolicy, RiskModel};
pub use goodput::{goodput, Goodput};
pub use predictor::{train_failure_predictor, FailurePredictor, PredictorConfig};
pub use telemetry::{NodeSample, NodeSampleObserver};
