//! The token-pattern rules: panic-freedom, determinism, and the
//! atomics audit. (Codec pinning lives in [`crate::codec`] — it is a
//! whole-file fingerprint, not a token pattern.)
//!
//! All rules operate on the *active* token stream: tokens inside
//! `#[cfg(test)]` items and `#[test]` functions are masked out first,
//! since test code is supposed to panic loudly and never feeds digests.

use crate::annotations::Annotations;
use crate::config::GuardConfig;
use crate::lexer::{Scan, Tok, TokKind};
use crate::report::{Rule, Violation};

/// Panic-bang macros flagged on service paths.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// `std::sync::atomic::Ordering` variants (distinguishes the memory
/// orderings from `std::cmp::Ordering::{Less, Equal, Greater}`).
const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, `for [k, v] in …`).
const NON_INDEX_KEYWORDS: [&str; 30] = [
    "as", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "where",
];

fn ident(tok: &Tok) -> Option<&str> {
    match &tok.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Tok, c: char) -> bool {
    tok.kind == TokKind::Punct(c)
}

/// Mask out tokens belonging to `#[cfg(test, …)]` / `#[test]` items.
/// Returns one flag per token: `true` = active (linted).
pub fn active_mask(toks: &[Tok]) -> Vec<bool> {
    let mut active = vec![true; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if is_punct(&toks[i], '#') && i + 1 < toks.len() && is_punct(&toks[i + 1], '[') {
            // Walk the attribute's balanced brackets, collecting idents.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < toks.len() {
                if is_punct(&toks[j], '[') {
                    depth += 1;
                } else if is_punct(&toks[j], ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(name) = ident(&toks[j]) {
                    if name == "test" {
                        is_test_attr = true;
                    }
                }
                j += 1;
            }
            if is_test_attr {
                // Mask the attribute itself plus the item it decorates:
                // any further attributes, then everything to the end of
                // the first brace-balanced block (or a bare `;`).
                let end = item_end(toks, j + 1);
                for flag in active.iter_mut().take(end).skip(i) {
                    *flag = false;
                }
                i = end;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    active
}

/// Find the exclusive end of the item starting at `start` (skipping
/// leading attributes): past the matching `}` of its first block, or
/// past a terminating `;`, whichever comes first.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip any further attributes.
    while i + 1 < toks.len() && is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[') {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            if is_punct(&toks[j], '[') {
                depth += 1;
            } else if is_punct(&toks[j], ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    while i < toks.len() {
        if is_punct(&toks[i], ';') {
            return i + 1;
        }
        if is_punct(&toks[i], '{') {
            let mut depth = 0usize;
            while i < toks.len() {
                if is_punct(&toks[i], '{') {
                    depth += 1;
                } else if is_punct(&toks[i], '}') {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return toks.len();
        }
        i += 1;
    }
    toks.len()
}

/// Run every token-pattern rule applicable to `rel` over one scanned
/// file, appending violations (annotation-suppressed sites excluded).
pub fn check_file(
    cfg: &GuardConfig,
    rel: &str,
    scan: &Scan,
    ann: &Annotations,
    out: &mut Vec<Violation>,
) {
    let toks = &scan.tokens;
    let active = active_mask(toks);

    // Malformed annotations are violations in their own right — a typo
    // must not silently disable a check.
    for bad in &ann.bad {
        out.push(Violation {
            rule: Rule::Annotation,
            file: rel.to_string(),
            line: bad.line,
            message: bad.message.clone(),
        });
    }

    let mut push = |rule: Rule, line: u32, message: String| {
        if !ann.allowed(scan, rule, line) {
            out.push(Violation {
                rule,
                file: rel.to_string(),
                line,
                message,
            });
        }
    };

    let in_panic = cfg.panic_paths.contains(rel);
    let in_container = cfg.container_paths.contains(rel);
    let in_time = cfg.time_paths.contains(rel);
    let in_atomics = cfg.atomics_paths.contains(rel);
    if !(in_panic || in_container || in_time || in_atomics) {
        return;
    }

    // `use …;` statements never iterate or panic; masking them keeps
    // one import from demanding the same annotation as a real use-site.
    let mut in_use = false;
    for i in 0..toks.len() {
        if !active[i] {
            continue;
        }
        let t = &toks[i];
        if in_use {
            if is_punct(t, ';') {
                in_use = false;
            }
            continue;
        }
        if ident(t) == Some("use") {
            in_use = true;
            continue;
        }

        if in_panic {
            // `.unwrap(` / `.expect(`
            if is_punct(t, '.') {
                if let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if let Some(m) = ident(name) {
                        if (m == "unwrap" || m == "expect") && is_punct(paren, '(') {
                            push(
                                Rule::Panic,
                                name.line,
                                format!(
                                    "`.{m}()` on a service path — return a typed `HeliosError` \
                                     (or `// guard: allow(panic, reason = \"…\")` a proven invariant)"
                                ),
                            );
                        }
                    }
                }
            }
            // `panic!` family.
            if let Some(m) = ident(t) {
                if PANIC_MACROS.contains(&m) && toks.get(i + 1).is_some_and(|n| is_punct(n, '!')) {
                    push(
                        Rule::Panic,
                        t.line,
                        format!("`{m}!` on a service path — degrade with a typed error instead"),
                    );
                }
            }
            // Slice/array index without `get`: `expr[…]` where the token
            // before `[` closes an expression.
            if is_punct(t, '[') && i > 0 && active[i - 1] {
                let prev = &toks[i - 1];
                // A lifetime's identifier (`&'a [u8]`) is not an
                // indexable expression.
                let lifetime = i >= 2 && is_punct(&toks[i - 2], '\'');
                let indexes = match &prev.kind {
                    TokKind::Ident(s) => !lifetime && !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    TokKind::Num(_) => true,
                    _ => false,
                };
                if indexes {
                    push(
                        Rule::Panic,
                        t.line,
                        "slice/array index on a service path — prefer `.get(…)` \
                         (or annotate the bounds invariant)"
                            .to_string(),
                    );
                }
            }
        }

        if in_container {
            if let Some(m) = ident(t) {
                if m == "HashMap" || m == "HashSet" {
                    push(
                        Rule::Determinism,
                        t.line,
                        format!(
                            "`{m}` in a digest/report/snapshot-feeding module — iteration order \
                             is seed-dependent; use `BTreeMap`/sorted `Vec` or annotate why \
                             ordering never escapes"
                        ),
                    );
                }
            }
        }

        if in_time {
            if let Some(m) = ident(t) {
                if (m == "Instant" || m == "SystemTime")
                    && toks.get(i + 1).is_some_and(|a| is_punct(a, ':'))
                    && toks.get(i + 2).is_some_and(|b| is_punct(b, ':'))
                    && toks.get(i + 3).and_then(ident) == Some("now")
                {
                    push(
                        Rule::Determinism,
                        t.line,
                        format!(
                            "`{m}::now()` outside bench code — wall-clock reads are a \
                             seeded-replay hazard; annotate if the value never feeds \
                             kernel state or digests"
                        ),
                    );
                }
                if m == "RandomState" {
                    push(
                        Rule::Determinism,
                        t.line,
                        "`RandomState` outside bench code — per-process hash seeds break \
                         seeded replay"
                            .to_string(),
                    );
                }
            }
        }

        if in_atomics
            && ident(t) == Some("Ordering")
            && toks.get(i + 1).is_some_and(|a| is_punct(a, ':'))
            && toks.get(i + 2).is_some_and(|b| is_punct(b, ':'))
            && toks
                .get(i + 3)
                .and_then(ident)
                .is_some_and(|v| MEMORY_ORDERINGS.contains(&v))
            && !ann.synced(scan, t.line)
        {
            let variant = ident(&toks[i + 3]).unwrap_or("?");
            push(
                Rule::Atomics,
                t.line,
                format!(
                    "`Ordering::{variant}` without an adjacent `// sync:` comment naming \
                     its happens-before partner"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::extract;
    use crate::lexer::scan;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let mut cfg = GuardConfig::helios("/tmp");
        cfg.panic_paths = crate::config::PathSet::new(["svc"]);
        cfg.container_paths = crate::config::PathSet::new(["det"]);
        cfg.time_paths = crate::config::PathSet::new(["det", "svc"]);
        cfg.atomics_paths = crate::config::PathSet::new(["."]);
        let s = scan(src);
        let ann = extract(&s);
        let mut out = Vec::new();
        check_file(&cfg, rel, &s, &ann, &mut out);
        out
    }

    #[test]
    fn panic_family_fires_only_in_scope() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(run("svc/a.rs", src).len(), 1);
        assert!(run("other/a.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); a[1]; panic!(\"t\") }\n}\n";
        assert!(run("svc/a.rs", src).is_empty());
        let src2 = "#[test]\nfn t() { x.unwrap() }\nfn live() { y.expect(\"m\") }";
        let v = run("svc/a.rs", src2);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("expect"));
    }

    #[test]
    fn index_heuristic() {
        // Flagged: identifier, call-result, and chained indexing.
        assert_eq!(
            run("svc/a.rs", "fn f() { a[i]; g()[0]; m[1][2]; }").len(),
            4
        );
        // Not flagged: destructuring, array literals/types, attributes,
        // macro brackets.
        let clean = "#[derive(Clone)]\nstruct S([u8; 4]);\nfn f() { let [a, b] = p; \
                     let v = vec![1, 2]; let t: [u8; 2] = [0, 1]; for [x, y] in pairs {} }";
        assert!(run("svc/a.rs", clean).is_empty());
    }

    #[test]
    fn determinism_rules() {
        let v = run(
            "det/a.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); \
             let t = Instant::now(); let s = RandomState::new(); }",
        );
        // The `use` line is masked; both HashMap mentions + Instant +
        // RandomState fire.
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|v| v.rule == Rule::Determinism));
    }

    #[test]
    fn atomics_need_sync_comments() {
        let bad = "fn f() { x.load(Ordering::Acquire); }";
        let v = run("any/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Atomics);
        let good = "fn f() {\n // sync: pairs with the Release store in publish()\n \
                    x.load(Ordering::Acquire);\n}";
        assert!(run("any/a.rs", good).is_empty());
        // cmp::Ordering is not an atomic ordering.
        assert!(run("any/a.rs", "fn f() { let o = Ordering::Less; }").is_empty());
    }

    #[test]
    fn allow_annotations_suppress() {
        let src = "fn f() {\n // guard: allow(panic, reason = \"validated at the door\")\n \
                   x.unwrap();\n}";
        assert!(run("svc/a.rs", src).is_empty());
    }

    #[test]
    fn malformed_annotation_is_reported() {
        let v = run("svc/a.rs", "// guard: allow(panic)\nfn f() { x.unwrap(); }");
        assert!(v.iter().any(|v| v.rule == Rule::Annotation));
        assert!(
            v.iter().any(|v| v.rule == Rule::Panic),
            "allow must not apply"
        );
    }
}
