//! Rule scoping: which workspace paths each rule family patrols.
//!
//! Scopes are lists of workspace-relative path prefixes (`/`-separated).
//! A file is in scope when any prefix matches it exactly or as a leading
//! directory. The committed Helios scoping lives in [`GuardConfig::helios`];
//! the fixture tests build their own configs against a fixture root.

use std::path::{Path, PathBuf};

/// A set of path prefixes, matched against workspace-relative paths.
#[derive(Debug, Clone, Default)]
pub struct PathSet {
    prefixes: Vec<String>,
}

impl PathSet {
    pub fn new<S: Into<String>>(prefixes: impl IntoIterator<Item = S>) -> Self {
        PathSet {
            prefixes: prefixes.into_iter().map(Into::into).collect(),
        }
    }

    /// Does `rel` (workspace-relative, `/`-separated) fall under any
    /// prefix? `"."` matches everything.
    pub fn contains(&self, rel: &str) -> bool {
        self.prefixes.iter().any(|p| {
            p == "."
                || rel == p
                || (rel.len() > p.len()
                    && rel.starts_with(p.as_str())
                    && rel.as_bytes()[p.len()] == b'/')
        })
    }

    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

/// One pinned codec: a source file whose ByteWriter/ByteReader call
/// sequence is fingerprinted, plus the version constants that must be
/// bumped when the sequence changes.
#[derive(Debug, Clone)]
pub struct CodecSpec {
    /// Manifest key (conventionally the wire magic, e.g. `HSIMSNAP`).
    pub name: &'static str,
    /// Workspace-relative file owning the codec.
    pub file: &'static str,
    /// `const` names in that file whose integer values are pinned
    /// alongside the fingerprint (the "bump me" knobs).
    pub version_consts: &'static [&'static str],
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Workspace root all scopes are relative to.
    pub root: PathBuf,
    /// Panic-freedom scope: designated service-path modules.
    pub panic_paths: PathSet,
    /// Determinism (hash-container) scope: modules whose iteration
    /// order feeds digests, reports, or snapshots.
    pub container_paths: PathSet,
    /// Determinism (wall-clock / RandomState) scope: everything that
    /// participates in seeded replay — i.e. all non-bench library code.
    pub time_paths: PathSet,
    /// Atomics-audit scope.
    pub atomics_paths: PathSet,
    /// Path prefixes excluded from every rule (vendored code, build
    /// output, tests, benches, examples).
    pub excludes: Vec<String>,
    /// Pinned codecs.
    pub codecs: Vec<CodecSpec>,
    /// Baseline file (workspace-relative).
    pub baseline_path: String,
    /// Codec manifest file (workspace-relative).
    pub manifest_path: String,
}

impl GuardConfig {
    /// The committed Helios workspace scoping.
    ///
    /// * **panic** — the fleet service layer end to end (submit /
    ///   status / advance / checkpoint recovery live there), the kernel
    ///   event loop, and the snapshot codec (whose contract is
    ///   "decoding never panics").
    /// * **determinism / containers** — metrics and report assembly,
    ///   snapshot state, the digest-emitting bench experiments, and the
    ///   characterization reports.
    /// * **determinism / time** — every library crate; bench code and
    ///   the repro binary are the sanctioned wall-clock users.
    /// * **atomics** — all first-party source.
    pub fn helios(root: impl Into<PathBuf>) -> Self {
        GuardConfig {
            root: root.into(),
            panic_paths: PathSet::new([
                "crates/fleet/src",
                "crates/sim/src/engine.rs",
                "crates/sim/src/snapshot.rs",
            ]),
            container_paths: PathSet::new([
                "crates/sim/src/metrics.rs",
                "crates/sim/src/snapshot.rs",
                "crates/fleet/src",
                "crates/bench/src/experiments.rs",
                "crates/analysis/src",
                "src/session.rs",
            ]),
            time_paths: PathSet::new([
                "crates/analysis/src",
                "crates/core/src",
                "crates/energy/src",
                "crates/faults/src",
                "crates/fleet/src",
                "crates/predict/src",
                "crates/sim/src",
                "crates/trace/src",
                "src",
            ]),
            atomics_paths: PathSet::new(["crates", "src"]),
            excludes: default_excludes(),
            codecs: vec![
                CodecSpec {
                    name: "HSIMSNAP",
                    file: "crates/sim/src/snapshot.rs",
                    version_consts: &["SNAPSHOT_VERSION", "SNAPSHOT_VERSION_FAULTS"],
                },
                CodecSpec {
                    name: "HELFLEET",
                    file: "crates/fleet/src/service.rs",
                    version_consts: &["FLEET_SNAPSHOT_VERSION"],
                },
                CodecSpec {
                    name: "HELCKPT",
                    file: "crates/fleet/src/checkpoint.rs",
                    version_consts: &["CHECKPOINT_VERSION"],
                },
                CodecSpec {
                    name: "FAULTSNAP",
                    file: "crates/sim/src/fault.rs",
                    version_consts: &["FAULT_CODEC_VERSION"],
                },
            ],
            baseline_path: ".guard/baseline.txt".to_string(),
            manifest_path: ".guard/codecs.txt".to_string(),
        }
    }

    /// Is `rel` excluded from scanning entirely?
    pub fn excluded(&self, rel: &str) -> bool {
        self.excludes.iter().any(|e| {
            rel == e
                || rel.starts_with(&format!("{e}/"))
                || rel.contains(&format!("/{e}/"))
                || rel.ends_with(&format!("/{e}"))
        })
    }

    /// Is `rel` interesting to any rule (or codec pin)?
    pub fn in_any_scope(&self, rel: &str) -> bool {
        self.panic_paths.contains(rel)
            || self.container_paths.contains(rel)
            || self.time_paths.contains(rel)
            || self.atomics_paths.contains(rel)
            || self.codecs.iter().any(|c| c.file == rel)
    }

    /// Resolve a workspace-relative path against the root.
    pub fn abs(&self, rel: &str) -> PathBuf {
        let mut p = self.root.clone();
        for seg in rel.split('/') {
            p.push(seg);
        }
        p
    }
}

/// Directory names excluded from every rule: third-party stand-ins,
/// build output, and code that is *supposed* to panic loudly (tests,
/// benches, examples — including guard's own seeded-violation
/// fixtures under `crates/guard/tests/`).
pub fn default_excludes() -> Vec<String> {
    [
        "vendor", "target", "tests", "benches", "examples", ".git", ".guard",
    ]
    .map(String::from)
    .to_vec()
}

/// Workspace-relative `/`-separated form of `path` under `root`.
pub fn relativize(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_is_component_wise() {
        let s = PathSet::new(["crates/fleet/src", "src/session.rs"]);
        assert!(s.contains("crates/fleet/src/worker.rs"));
        assert!(s.contains("src/session.rs"));
        assert!(!s.contains("crates/fleet/srcx/worker.rs"));
        assert!(!s.contains("crates/fleet"));
        assert!(PathSet::new(["."]).contains("anything/at/all.rs"));
    }

    #[test]
    fn helios_scoping_spot_checks() {
        let cfg = GuardConfig::helios("/tmp");
        assert!(cfg.panic_paths.contains("crates/fleet/src/service.rs"));
        assert!(cfg.panic_paths.contains("crates/sim/src/engine.rs"));
        assert!(!cfg.panic_paths.contains("crates/sim/src/pool.rs"));
        assert!(cfg.excluded("vendor/serde/src/lib.rs"));
        assert!(cfg.excluded("crates/guard/tests/guard_fixtures/panic.rs"));
        assert!(cfg.excluded("crates/sim/benches/simulator.rs"));
        assert!(!cfg.excluded("crates/sim/src/engine.rs"));
    }
}
