//! Violation types and the human / JSON report renderers.

use std::fmt;

/// The rule families `helios-guard` enforces. `Annotation` is the
/// engine's own meta-rule: a malformed `guard:`/`sync:` comment is
/// reported instead of silently ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!` / slice-index-without-`get` on service-path
    /// modules.
    Panic,
    /// `HashMap`/`HashSet` in digest-feeding modules; wall-clock and
    /// `RandomState` outside bench code (seeded-replay hazards).
    Determinism,
    /// `Ordering::` use-sites missing an adjacent `// sync:` comment
    /// naming the happens-before partner.
    Atomics,
    /// Codec field-sequence fingerprint drift without a version bump
    /// (or without re-pinning the committed manifest).
    Codec,
    /// Malformed `guard:` / `sync:` annotation.
    Annotation,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::Atomics => "atomics",
            Rule::Codec => "codec",
            Rule::Annotation => "annotation",
        }
    }

    /// Parse a rule name as written in `guard: allow(<rule>, …)`.
    /// `annotation` and `codec` are deliberately not allowable: a codec
    /// drift must be resolved through the manifest, and a broken
    /// annotation by fixing it.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "panic" => Some(Rule::Panic),
            "determinism" => Some(Rule::Determinism),
            "atomics" => Some(Rule::Atomics),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line (0 for file-level findings like codec drift).
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Outcome of a full `check` run, ready to render.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations NOT covered by the baseline — these fail the run.
    pub new: Vec<Violation>,
    /// Per `(rule, file)` counts suppressed by the baseline.
    pub suppressed: u64,
    /// Baseline entries whose recorded count exceeds the current count:
    /// the ratchet demands the baseline shrink (`--write-baseline`).
    pub stale: Vec<(String, String, u64, u64)>,
    /// Total violations found before baseline filtering.
    pub total: u64,
    /// Files scanned.
    pub files: u64,
}

impl Report {
    /// Did the run pass (exit 0)?
    pub fn clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Render the human-readable report.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for v in &self.new {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (rule, file, base, cur) in &self.stale {
            out.push_str(&format!(
                "{file}: [{rule}] baseline is stale: records {base} grandfathered \
                 violations but only {cur} remain — ratchet down with \
                 `helios-guard check --workspace --write-baseline`\n"
            ));
        }
        out.push_str(&format!(
            "guard: {} file(s), {} violation(s) ({} new, {} baselined{})\n",
            self.files,
            self.total,
            self.new.len(),
            self.suppressed,
            if self.stale.is_empty() {
                String::new()
            } else {
                format!(", {} stale baseline entr(ies)", self.stale.len())
            }
        ));
        out.push_str(if self.clean() {
            "guard: PASS\n"
        } else {
            "guard: FAIL\n"
        });
        out
    }

    /// Render the `--json` report (hand-rolled: the vendored serde
    /// stand-in cannot serialize, and guard takes no dependencies).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.new.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.rule.name()),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            ));
        }
        out.push_str("\n  ],\n  \"stale_baseline\": [");
        for (i, (rule, file, base, cur)) in self.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"baseline\": {base}, \"current\": {cur}}}",
                json_str(rule),
                json_str(file)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"files\": {},\n  \"total\": {},\n  \"new\": {},\n  \"suppressed\": {},\n  \"pass\": {}\n}}\n",
            self.files,
            self.total,
            self.new.len(),
            self.suppressed,
            self.clean()
        ));
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_renders() {
        let mut r = Report {
            total: 1,
            files: 2,
            ..Report::default()
        };
        r.new.push(Violation {
            rule: Rule::Panic,
            file: "a/b.rs".into(),
            line: 7,
            message: "said \"no\"\n".into(),
        });
        let j = r.json();
        assert!(j.contains("\\\"no\\\"\\n"));
        assert!(j.contains("\"pass\": false"));
        assert!(r.human().contains("guard: FAIL"));
    }

    #[test]
    fn clean_report_passes() {
        let r = Report::default();
        assert!(r.clean());
        assert!(r.human().contains("guard: PASS"));
        assert!(r.json().contains("\"pass\": true"));
    }
}
