//! A lightweight Rust scanner: just enough lexing to drive the rule
//! engine without a real parser.
//!
//! The scanner splits a source file into *code tokens* (identifiers,
//! punctuation, literals) and *comments*, each stamped with its 1-based
//! line. Rules pattern-match short token sequences (`.` `unwrap` `(`,
//! `Ordering` `::` `Acquire`, …); comments feed the annotation grammar
//! ([`crate::annotations`]). String/char/raw-string literals are lexed
//! as opaque units so `"unwrap()"` inside a string can never trip a
//! rule, and lifetimes (`'a`) are distinguished from char literals.

/// One code token.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokKind,
}

/// Code-token kinds. Literal payloads are dropped — no rule needs them.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Numeric literal (text kept: version constants are read off it).
    Num(String),
}

/// One comment (line `//…` or block `/* … */`), with its text and the
/// line it starts on. Doc comments are plain comments to the scanner.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    pub line: u32,
    /// Comment text without the `//` / `/*` framing, trimmed.
    pub text: String,
}

/// A scanned file: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Scan {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Lines (1-based) that carry at least one code token.
    pub code_lines: Vec<bool>,
}

impl Scan {
    /// True when `line` holds any code token (false ⇒ blank or
    /// comment-only — the annotation grammar walks such lines upward).
    pub fn has_code(&self, line: u32) -> bool {
        self.code_lines.get(line as usize).copied().unwrap_or(false)
    }
}

/// Scan `src` into tokens and comments. The scanner never fails: bytes
/// it cannot classify are skipped (a linter must degrade gracefully on
/// source that rustc itself will reject later).
pub fn scan(src: &str) -> Scan {
    let b = src.as_bytes();
    let mut out = Scan::default();
    let lines = src.lines().count() + 2;
    out.code_lines = vec![false; lines];
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Record a code token and mark its line.
    macro_rules! push {
        ($line:expr, $kind:expr) => {{
            if let Some(slot) = out.code_lines.get_mut($line as usize) {
                *slot = true;
            }
            out.tokens.push(Tok {
                line: $line,
                kind: $kind,
            });
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (also doc `///` / `//!`).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..j].trim().to_string(),
                });
                i = j;
            }
            // Block comment, nested per Rust rules.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].trim().to_string(),
                });
                i = j;
            }
            // Raw / byte / raw-byte strings, or an identifier starting
            // with r/b. Peek the full prefix before deciding.
            b'r' | b'b' if is_string_prefix(b, i) => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                push!(tok_line, TokKind::Literal);
            }
            b'"' => {
                let tok_line = line;
                i = skip_plain_string(b, i, &mut line);
                push!(tok_line, TokKind::Literal);
            }
            // Char literal vs lifetime: `'a` followed by an identifier
            // char and *no* closing quote is a lifetime.
            b'\'' => {
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    // Lifetime: the quote and its identifier both lex as
                    // ordinary tokens.
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    push!(line, TokKind::Punct('\''));
                    push!(line, TokKind::Ident(src[start..j].to_string()));
                    i = j;
                } else {
                    let tok_line = line;
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            b'\n' => break, // unterminated; bail
                            _ => j += 1,
                        }
                    }
                    push!(tok_line, TokKind::Literal);
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                push!(line, TokKind::Ident(src[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                // Numbers: digits, underscores, dots, exponent chars,
                // radix prefixes, and type suffixes — precision beyond
                // "this is one numeric literal" is not needed.
                while j < b.len()
                    && (b[j].is_ascii_alphanumeric()
                        || b[j] == b'_'
                        || (b[j] == b'.' && b.get(j + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    j += 1;
                }
                push!(line, TokKind::Num(src[start..j].to_string()));
                i = j;
            }
            c => {
                push!(line, TokKind::Punct(c as char));
                i += 1;
            }
        }
    }
    out
}

/// Does `b[i..]` start a raw/byte string (`r"`, `r#"`, `br"`, `b"`,
/// `b'`, `rb…` is not valid Rust)?
fn is_string_prefix(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    // b"..." / b'...'
    b[i] == b'b' && j < b.len() && (b[j] == b'"' || b[j] == b'\'')
}

/// Skip a raw/byte/plain string starting at the `r`/`b` prefix.
/// Returns the index just past the closing delimiter.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        // Opening quote.
        j += 1;
        // Scan for `"` followed by `hashes` hashes.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
            } else if b[j] == b'"'
                && b[j + 1..].iter().take_while(|&&h| h == b'#').count() >= hashes
            {
                return j + 1 + hashes;
            } else {
                j += 1;
            }
        }
        return j;
    }
    if j < b.len() && b[j] == b'\'' {
        // Byte char literal b'x'.
        j += 1;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return j + 1,
                _ => j += 1,
            }
        }
        return j;
    }
    skip_plain_string(b, j, line)
}

/// Skip a `"…"` string starting at the opening quote, handling escapes
/// and embedded newlines. Returns the index just past the closing quote.
fn skip_plain_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(scan: &Scan) -> Vec<&str> {
        scan.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let s = scan(
            r####"let x = "unwrap()"; // unwrap() in comment
let y = r#"panic!("no")"#; /* expect( */ let z = 'a';"####,
        );
        assert_eq!(idents(&s), ["let", "x", "let", "y", "let", "z"]);
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].text, "unwrap() in comment");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        // Both lifetimes lex as punct + ident, the char as a literal.
        assert_eq!(idents(&s), ["fn", "f", "a", "x", "a", "str", "char"]);
        assert_eq!(
            s.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let s = scan("let a = \"x\ny\";\n/* c\nc */\nlet b = 1;");
        let b_tok = s
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .expect("b token");
        assert_eq!(b_tok.line, 5);
        assert!(s.has_code(1));
        assert!(!s.has_code(3));
        assert!(!s.has_code(4));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scan("/* outer /* inner */ still */ let q = 2;");
        assert_eq!(idents(&s), ["let", "q"]);
    }
}
