//! `helios-guard` CLI.
//!
//! ```text
//! helios-guard check [--workspace | --root <dir>] [--json] [--write-baseline]
//! helios-guard pin-codecs [--root <dir>]
//! ```
//!
//! Exit codes: `0` clean, `1` violations / stale baseline, `2` usage or
//! I/O error.

use helios_guard::{engine, GuardConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
helios-guard: workspace invariant linter (panic-freedom, determinism, atomics, codecs)

USAGE:
    helios-guard check [--workspace | --root <dir>] [--json] [--write-baseline]
    helios-guard pin-codecs [--root <dir>]

COMMANDS:
    check            Run every rule family; exit 1 on new violations or a stale baseline
    pin-codecs       Re-pin the codec fingerprint manifest (.guard/codecs.txt)

OPTIONS:
    --workspace      Lint the enclosing cargo workspace (found from the cwd; default)
    --root <dir>     Lint an explicit workspace root instead
    --json           Emit the machine-readable report on stdout
    --write-baseline Re-derive .guard/baseline.txt from the current tree (the ratchet)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "pin-codecs" if cmd.is_none() => cmd = Some(a.clone()),
            "--workspace" => {}
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unrecognized argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else {
        return usage_error("missing command");
    };
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("helios-guard: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = GuardConfig::helios(root);
    let result = match cmd.as_str() {
        "pin-codecs" => match engine::pin_codecs(&cfg) {
            Ok(path) => {
                println!(
                    "helios-guard: pinned {} codec(s) to {path}",
                    cfg.codecs.len()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => Err(e),
        },
        _ => {
            if write_baseline {
                match engine::write_baseline(&cfg) {
                    Ok(path) => println!("helios-guard: baseline written to {path}"),
                    Err(e) => {
                        eprintln!("helios-guard: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            engine::check(&cfg).map(|report| {
                if json {
                    print!("{}", report.json());
                } else {
                    print!("{}", report.human());
                }
                if report.clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            })
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("helios-guard: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("helios-guard: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walk upward from the cwd to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_workspace_root() -> std::io::Result<PathBuf> {
    let mut dir = std::env::current_dir()?;
    loop {
        if is_workspace_root(&dir) {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no enclosing cargo workspace found (run from inside the repo \
                 or pass --root)",
            ));
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}
