//! `helios-guard`: the workspace invariant linter.
//!
//! Every determinism and robustness guarantee this repo ships —
//! byte-identical outcome digests, panic-free fleet service paths,
//! lock-free handshakes, versioned snapshot codecs — is a *source-level
//! discipline* before it is a test. This crate machine-checks that
//! discipline on every change, with its own lightweight Rust scanner
//! and zero dependencies, via four rule families:
//!
//! 1. **panic-freedom** (`panic`) — no `unwrap()` / `expect()` /
//!    `panic!`-family macros / unchecked indexing in designated
//!    service-path modules (the fleet layer, the kernel event loop, the
//!    snapshot codec).
//! 2. **determinism** (`determinism`) — no `HashMap`/`HashSet` in
//!    digest/report/snapshot-feeding modules; no `Instant::now` /
//!    `SystemTime::now` / `RandomState` outside bench code.
//! 3. **atomics audit** (`atomics`) — every memory `Ordering::` use-site
//!    carries an adjacent `// sync:` comment naming its happens-before
//!    partner.
//! 4. **codec pinning** (`codec`) — the ByteWriter/ByteReader call
//!    sequences of the `HSIMSNAP`/`HELFLEET`/`HELCKPT`/`FAULTSNAP`
//!    codecs are fingerprinted and pinned in a committed manifest;
//!    changing a field sequence without bumping the version constant
//!    (and re-pinning) fails the lint.
//!
//! Justified exceptions use the annotation grammar (see
//! [`annotations`]): `// guard: allow(<rule>, reason = "…")`.
//! Pre-existing violations are grandfathered in a committed baseline
//! whose counts may only shrink (see [`baseline`]).
//!
//! ```no_run
//! use helios_guard::{engine, GuardConfig};
//! let report = engine::check(&GuardConfig::helios("/path/to/workspace")).unwrap();
//! assert!(report.clean(), "{}", report.human());
//! ```

pub mod annotations;
pub mod baseline;
pub mod codec;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{CodecSpec, GuardConfig, PathSet};
pub use report::{Report, Rule, Violation};
