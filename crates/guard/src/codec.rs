//! Codec version pinning: fingerprint the ByteWriter/ByteReader call
//! sequences of the wire codecs and pin them in a committed manifest.
//!
//! The fingerprint is an order-sensitive FNV-64 over every
//! `.<codec-method>(` call in the codec's file (test code masked out) —
//! `u8`, `u32`, `u64`, `i64`, `f64`, `raw`, `bytes`, `str`, `job`.
//! Writer and reader sides both count: a field added to either changes
//! the sequence. The manifest additionally pins the integer values of
//! the codec's version constants, so the lint distinguishes "sequence
//! changed, version untouched" (the bug this rule exists to catch) from
//! "sequence and version changed, manifest not re-pinned" (run
//! `helios-guard pin-codecs` so review sees the new shape).

use crate::config::{CodecSpec, GuardConfig};
use crate::lexer::{Scan, TokKind};
use crate::report::{Rule, Violation};
use crate::rules::active_mask;
use std::collections::BTreeMap;

/// Methods whose call sequence defines a codec's wire shape.
const CODEC_METHODS: [&str; 9] = [
    "u8", "u32", "u64", "i64", "f64", "raw", "bytes", "str", "job",
];

/// The measured shape of one codec file.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecShape {
    pub fingerprint: u64,
    /// `(const name, value)` pairs, in spec order.
    pub versions: Vec<(String, u64)>,
}

/// Measure a codec file's shape from its scan.
pub fn shape(spec: &CodecSpec, scan: &Scan) -> CodecShape {
    let toks = &scan.tokens;
    let active = active_mask(toks);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for i in 0..toks.len() {
        if !active[i] || toks[i].kind != TokKind::Punct('.') {
            continue;
        }
        let (Some(name), Some(paren)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if let TokKind::Ident(m) = &name.kind {
            if CODEC_METHODS.contains(&m.as_str()) && paren.kind == TokKind::Punct('(') {
                fnv(m.as_bytes());
                fnv(b";");
            }
        }
    }
    let mut versions = Vec::new();
    for &name in spec.version_consts {
        versions.push((
            name.to_string(),
            const_value(scan, name).unwrap_or(u64::MAX),
        ));
    }
    CodecShape {
        fingerprint: h,
        versions,
    }
}

/// Find `const <name>: … = <int>` and return the integer.
fn const_value(scan: &Scan, name: &str) -> Option<u64> {
    let toks = &scan.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident(name.to_string()) {
            continue;
        }
        // Walk a few tokens forward looking for `= <num>`.
        for j in i + 1..(i + 8).min(toks.len()) {
            if toks[j].kind == TokKind::Punct('=') {
                if let Some(TokKind::Num(text)) = toks.get(j + 1).map(|t| &t.kind) {
                    let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
                    return digits.parse().ok();
                }
            }
            if toks[j].kind == TokKind::Punct(';') {
                break;
            }
        }
    }
    None
}

/// Parsed manifest: codec name → pinned shape.
pub type Manifest = BTreeMap<String, CodecShape>;

/// Parse the committed manifest (see [`render_manifest`] for the format).
pub fn parse_manifest(text: &str) -> Manifest {
    let mut out = Manifest::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(name) = parts.next() else { continue };
        let mut fingerprint = None;
        let mut versions = Vec::new();
        for kv in parts {
            let Some((k, v)) = kv.split_once('=') else {
                continue;
            };
            if k == "fingerprint" {
                fingerprint = u64::from_str_radix(v, 16).ok();
            } else if let Ok(n) = v.parse() {
                versions.push((k.to_string(), n));
            }
        }
        if let Some(fingerprint) = fingerprint {
            out.insert(
                name.to_string(),
                CodecShape {
                    fingerprint,
                    versions,
                },
            );
        }
    }
    out
}

/// Render the manifest deterministically (sorted by codec name).
pub fn render_manifest(entries: &Manifest) -> String {
    let mut out = String::from(
        "# helios-guard codec manifest v1\n\
         # <codec> fingerprint=<fnv64 of the ByteWriter/ByteReader call sequence> <VERSION_CONST>=<value>…\n\
         # Changing a codec's field sequence without bumping its version constant fails the\n\
         # `codec` lint; after a legitimate bump, re-pin with `helios-guard pin-codecs`.\n",
    );
    for (name, shape) in entries {
        out.push_str(&format!("{name} fingerprint={:016x}", shape.fingerprint));
        for (k, v) in &shape.versions {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    out
}

/// Check every pinned codec against the manifest, appending violations.
/// `scans` maps workspace-relative paths to their scans.
pub fn check(
    cfg: &GuardConfig,
    manifest: &Manifest,
    scans: &BTreeMap<String, Scan>,
    out: &mut Vec<Violation>,
) {
    for spec in &cfg.codecs {
        let Some(scan) = scans.get(spec.file) else {
            out.push(Violation {
                rule: Rule::Codec,
                file: spec.file.to_string(),
                line: 0,
                message: format!("codec {} file is missing or unreadable", spec.name),
            });
            continue;
        };
        let current = shape(spec, scan);
        let Some(pinned) = manifest.get(spec.name) else {
            out.push(Violation {
                rule: Rule::Codec,
                file: spec.file.to_string(),
                line: 0,
                message: format!(
                    "codec {} is not pinned in {} — run `helios-guard pin-codecs`",
                    spec.name, cfg.manifest_path
                ),
            });
            continue;
        };
        if current == *pinned {
            continue;
        }
        let version_bumped = current.versions != pinned.versions;
        let message = if current.fingerprint != pinned.fingerprint && !version_bumped {
            format!(
                "codec {} field sequence changed but {} did not — a snapshot written by the \
                 old build would decode wrongly under the same version; bump the version \
                 constant and re-pin with `helios-guard pin-codecs`",
                spec.name,
                spec.version_consts.join("/"),
            )
        } else if current.fingerprint != pinned.fingerprint {
            format!(
                "codec {} changed (version constants were bumped) — re-pin the manifest with \
                 `helios-guard pin-codecs` so the new shape is committed for review",
                spec.name
            )
        } else {
            format!(
                "codec {} version constants changed without a field-sequence change — re-pin \
                 with `helios-guard pin-codecs` (and double-check the bump was intended)",
                spec.name
            )
        };
        out.push(Violation {
            rule: Rule::Codec,
            file: spec.file.to_string(),
            line: 0,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    const SPEC: CodecSpec = CodecSpec {
        name: "TESTCDC",
        file: "codec.rs",
        version_consts: &["VER"],
    };

    #[test]
    fn fingerprint_tracks_field_sequence_not_formatting() {
        let a = scan("const VER: u32 = 1;\nfn enc(w: &mut W) { w.u32(VER); w.u64(x); }");
        let b = scan(
            "const VER: u32 = 1;\n// reformatted + renamed receiver\nfn enc(q: &mut W) {\n    \
             q.u32(VER);\n    q.u64(y);\n}",
        );
        let c = scan("const VER: u32 = 1;\nfn enc(w: &mut W) { w.u32(VER); w.u64(x); w.u8(f); }");
        assert_eq!(shape(&SPEC, &a), shape(&SPEC, &b));
        assert_ne!(shape(&SPEC, &a).fingerprint, shape(&SPEC, &c).fingerprint);
    }

    #[test]
    fn version_consts_are_read() {
        let s = scan("pub const VER: u32 = 42;");
        assert_eq!(shape(&SPEC, &s).versions, vec![("VER".to_string(), 42)]);
    }

    #[test]
    fn manifest_round_trips() {
        let s = scan("const VER: u32 = 3;\nfn enc(w: &mut W) { w.i64(t); w.bytes(b); }");
        let mut m = Manifest::new();
        m.insert("TESTCDC".to_string(), shape(&SPEC, &s));
        let parsed = parse_manifest(&render_manifest(&m));
        assert_eq!(parsed, m);
    }
}
