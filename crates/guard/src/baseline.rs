//! The grandfather baseline: a committed, monotone-non-increasing
//! ledger of pre-existing violations.
//!
//! The baseline maps `(rule, file)` to a violation count. `check`
//! compares current counts against it:
//!
//! * current > baseline — **new violations**: the run fails and every
//!   violation in that `(rule, file)` bucket is listed.
//! * current == baseline — suppressed (grandfathered).
//! * current < baseline — **stale baseline**: the run fails until the
//!   baseline is ratcheted down with `--write-baseline`, so burn-down
//!   progress is locked in by git history and can never regress
//!   silently.
//!
//! Codec violations are never baselinable: a codec drift is resolved
//! through the manifest, not grandfathered.

use crate::report::{Report, Rule, Violation};
use std::collections::BTreeMap;

/// `(rule name, file)` → count.
pub type Baseline = BTreeMap<(String, String), u64>;

/// Parse the committed baseline (lines of `<rule>\t<count>\t<file>`).
pub fn parse(text: &str) -> Baseline {
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(count), Some(file)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if let Ok(count) = count.parse::<u64>() {
            if count > 0 {
                out.insert((rule.to_string(), file.to_string()), count);
            }
        }
    }
    out
}

/// Render a baseline deterministically (sorted; zero counts dropped).
pub fn render(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# helios-guard baseline v1 — grandfathered violations.\n\
         # <rule> <count> <file>; counts may only shrink. A fix that drops a count fails\n\
         # `check` until the baseline is ratcheted down with `--write-baseline`.\n",
    );
    for ((rule, file), count) in baseline {
        if *count > 0 {
            out.push_str(&format!("{rule} {count} {file}\n"));
        }
    }
    out
}

/// Build a baseline from the current violation set (codec drift is
/// never grandfathered — it must be resolved through the manifest).
pub fn from_violations(violations: &[Violation]) -> Baseline {
    let mut out = Baseline::new();
    for v in violations {
        if v.rule == Rule::Codec {
            continue;
        }
        *out.entry((v.rule.name().to_string(), v.file.clone()))
            .or_insert(0) += 1;
    }
    out
}

/// Compare current violations against the baseline, producing the
/// report's pass/fail partition.
pub fn compare(violations: Vec<Violation>, baseline: &Baseline, files: u64) -> Report {
    let mut report = Report {
        total: violations.len() as u64,
        files,
        ..Report::default()
    };
    let mut buckets: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in violations {
        if v.rule == Rule::Codec {
            // Codec findings bypass the baseline entirely.
            report.new.push(v);
            continue;
        }
        buckets
            .entry((v.rule.name().to_string(), v.file.clone()))
            .or_default()
            .push(v);
    }
    for (key, bucket) in &mut buckets {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        let current = bucket.len() as u64;
        if current > allowed {
            report.new.append(bucket);
        } else {
            report.suppressed += current;
            if current < allowed {
                report
                    .stale
                    .push((key.0.clone(), key.1.clone(), allowed, current));
            }
        }
    }
    // Baseline entries for files that now have zero violations.
    for ((rule, file), &count) in baseline {
        if count > 0 && !buckets.contains_key(&(rule.clone(), file.clone())) {
            report.stale.push((rule.clone(), file.clone(), count, 0));
        }
    }
    report
        .new
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn round_trip() {
        let vs = vec![
            v(Rule::Panic, "a.rs", 1),
            v(Rule::Panic, "a.rs", 2),
            v(Rule::Atomics, "b.rs", 3),
        ];
        let b = from_violations(&vs);
        let parsed = parse(&render(&b));
        assert_eq!(parsed, b);
        assert_eq!(parsed[&("panic".to_string(), "a.rs".to_string())], 2);
    }

    #[test]
    fn exact_match_passes_excess_fails() {
        let vs = vec![v(Rule::Panic, "a.rs", 1), v(Rule::Panic, "a.rs", 2)];
        let base = from_violations(&vs);
        let r = compare(vs.clone(), &base, 1);
        assert!(r.clean());
        assert_eq!(r.suppressed, 2);

        let mut grown = vs;
        grown.push(v(Rule::Panic, "a.rs", 9));
        let r = compare(grown, &base, 1);
        assert!(!r.clean());
        assert_eq!(r.new.len(), 3, "the whole bucket is listed");
    }

    #[test]
    fn shrinkage_is_stale_until_ratcheted() {
        let base = from_violations(&[v(Rule::Panic, "a.rs", 1), v(Rule::Panic, "a.rs", 2)]);
        let r = compare(vec![v(Rule::Panic, "a.rs", 1)], &base, 1);
        assert!(!r.clean());
        assert_eq!(r.stale, vec![("panic".into(), "a.rs".into(), 2, 1)]);
        // Ratchet: re-derive the baseline from what's left.
        let r2 = compare(
            vec![v(Rule::Panic, "a.rs", 1)],
            &from_violations(&[v(Rule::Panic, "a.rs", 1)]),
            1,
        );
        assert!(r2.clean());
        // Fully fixed file with a lingering entry is also stale.
        let r3 = compare(vec![], &base, 1);
        assert_eq!(r3.stale.len(), 1);
    }

    #[test]
    fn codec_findings_bypass_the_baseline() {
        let vs = vec![v(Rule::Codec, "c.rs", 0)];
        assert!(from_violations(&vs).is_empty());
        let r = compare(vs, &Baseline::new(), 1);
        assert_eq!(r.new.len(), 1);
    }
}
