//! The orchestration layer: walk the workspace, scan every in-scope
//! file, run all rule families, and fold the results through the
//! baseline into a [`Report`].

use crate::annotations::extract;
use crate::baseline::{self, Baseline};
use crate::codec::{self, Manifest};
use crate::config::{relativize, GuardConfig};
use crate::lexer::{scan, Scan};
use crate::report::{Report, Violation};
use crate::rules::check_file;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// Everything one full scan of the workspace produced, before baseline
/// filtering.
pub struct WorkspaceScan {
    pub violations: Vec<Violation>,
    pub files: u64,
    /// Scans of the codec files, for manifest pinning.
    pub codec_scans: BTreeMap<String, Scan>,
}

/// Scan every in-scope `.rs` file under the config's root and run the
/// token-pattern rules. Codec checking is left to the caller (it needs
/// the manifest).
pub fn scan_workspace(cfg: &GuardConfig) -> io::Result<WorkspaceScan> {
    let mut files = Vec::new();
    walk(cfg, &cfg.root, &mut files)?;
    files.sort();
    let mut out = WorkspaceScan {
        violations: Vec::new(),
        files: 0,
        codec_scans: BTreeMap::new(),
    };
    for rel in files {
        let src = fs::read_to_string(cfg.abs(&rel))?;
        let scanned = scan(&src);
        let ann = extract(&scanned);
        check_file(cfg, &rel, &scanned, &ann, &mut out.violations);
        out.files += 1;
        if cfg.codecs.iter().any(|c| c.file == rel) {
            out.codec_scans.insert(rel, scanned);
        }
    }
    Ok(out)
}

/// Recursive workspace walk, honoring the config's excludes. Collects
/// workspace-relative paths of in-scope `.rs` files.
fn walk(cfg: &GuardConfig, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let Some(rel) = relativize(&cfg.root, &path) else {
            continue;
        };
        if cfg.excluded(&rel) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk(cfg, &path, out)?;
        } else if rel.ends_with(".rs") && cfg.in_any_scope(&rel) {
            out.push(rel);
        }
    }
    Ok(())
}

/// Run a full `check`: scan, codec-pin comparison, baseline fold.
/// Reads the baseline and manifest from their configured paths; both
/// are optional files (absent == empty).
pub fn check(cfg: &GuardConfig) -> io::Result<Report> {
    let ws = scan_workspace(cfg)?;
    let manifest = read_manifest(cfg)?;
    let mut violations = ws.violations;
    codec::check(cfg, &manifest, &ws.codec_scans, &mut violations);
    let base = read_baseline(cfg)?;
    Ok(baseline::compare(violations, &base, ws.files))
}

/// Re-derive the baseline from the current tree and write it. Returns
/// the path written. Codec violations are not baselinable and will
/// still fail a subsequent `check` until the manifest is re-pinned.
pub fn write_baseline(cfg: &GuardConfig) -> io::Result<String> {
    let ws = scan_workspace(cfg)?;
    let base = baseline::from_violations(&ws.violations);
    write_rel(cfg, &cfg.baseline_path, &baseline::render(&base))?;
    Ok(cfg.baseline_path.clone())
}

/// Re-pin every codec's current shape into the manifest. Returns the
/// path written.
pub fn pin_codecs(cfg: &GuardConfig) -> io::Result<String> {
    let ws = scan_workspace(cfg)?;
    let mut manifest = Manifest::new();
    for spec in &cfg.codecs {
        let Some(scanned) = ws.codec_scans.get(spec.file) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("codec {} file {} not found", spec.name, spec.file),
            ));
        };
        manifest.insert(spec.name.to_string(), codec::shape(spec, scanned));
    }
    write_rel(cfg, &cfg.manifest_path, &codec::render_manifest(&manifest))?;
    Ok(cfg.manifest_path.clone())
}

fn read_baseline(cfg: &GuardConfig) -> io::Result<Baseline> {
    match fs::read_to_string(cfg.abs(&cfg.baseline_path)) {
        Ok(text) => Ok(baseline::parse(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::new()),
        Err(e) => Err(e),
    }
}

fn read_manifest(cfg: &GuardConfig) -> io::Result<Manifest> {
    match fs::read_to_string(cfg.abs(&cfg.manifest_path)) {
        Ok(text) => Ok(codec::parse_manifest(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Manifest::new()),
        Err(e) => Err(e),
    }
}

fn write_rel(cfg: &GuardConfig, rel: &str, content: &str) -> io::Result<()> {
    let path = cfg.abs(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}
