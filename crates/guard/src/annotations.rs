//! The annotation grammar: justified exemptions and documented atomics.
//!
//! Two comment forms carry meaning for the rule engine:
//!
//! * `// guard: allow(<rule>, reason = "...")` — suppress one rule at
//!   the annotated site. Trailing on the offending line, or standalone
//!   on the line(s) directly above it. The reason is mandatory and must
//!   be non-trivial; a malformed annotation is itself reported (rule
//!   `annotation`), so a typo can never silently disable a check.
//! * `// sync: <partner description>` — required adjacent to every
//!   atomic `Ordering::` use-site, naming the happens-before partner
//!   the ordering pairs with (same placement rules as `allow`).

use crate::lexer::Scan;
use crate::report::Rule;

/// A parsed `guard: allow` annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    pub rule: Rule,
    pub reason: String,
    pub line: u32,
}

/// A malformed annotation attempt: reported as a violation so review
/// sees it instead of a silently dead exemption.
#[derive(Debug, Clone, PartialEq)]
pub struct BadAnnotation {
    pub line: u32,
    pub message: String,
}

/// All annotations extracted from one file's comments.
#[derive(Debug, Default)]
pub struct Annotations {
    pub allows: Vec<Allow>,
    pub syncs: Vec<u32>,
    pub bad: Vec<BadAnnotation>,
}

/// Minimum length of a meaningful reason / sync partner description.
const MIN_TEXT: usize = 8;

/// Extract annotations from a scanned file.
pub fn extract(scan: &Scan) -> Annotations {
    let mut out = Annotations::default();
    for c in &scan.comments {
        let text = c.text.trim();
        if let Some(rest) = text.strip_prefix("guard:") {
            match parse_allow(rest.trim()) {
                Ok((rule, reason)) => out.allows.push(Allow {
                    rule,
                    reason,
                    line: c.line,
                }),
                Err(msg) => out.bad.push(BadAnnotation {
                    line: c.line,
                    message: msg,
                }),
            }
        } else if let Some(rest) = text.strip_prefix("sync:") {
            if rest.trim().len() >= MIN_TEXT {
                out.syncs.push(c.line);
            } else {
                out.bad.push(BadAnnotation {
                    line: c.line,
                    message: "`sync:` must name the happens-before partner \
                              (e.g. `// sync: pairs with the Release store in publish()`)"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Parse `allow(<rule>, reason = "...")`.
fn parse_allow(s: &str) -> Result<(Rule, String), String> {
    let grammar = "expected `guard: allow(<rule>, reason = \"...\")`";
    let body = s
        .strip_prefix("allow")
        .and_then(|r| r.trim_start().strip_prefix('('))
        .and_then(|r| r.trim_end().strip_suffix(')'))
        .ok_or_else(|| grammar.to_string())?;
    let (rule_part, reason_part) = body.split_once(',').ok_or_else(|| grammar.to_string())?;
    let rule = Rule::parse(rule_part.trim())
        .ok_or_else(|| format!("unknown rule `{}`; {grammar}", rule_part.trim()))?;
    let reason = reason_part
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| grammar.to_string())?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| grammar.to_string())?;
    if reason.len() < MIN_TEXT {
        return Err(format!(
            "reason {reason:?} is too short to justify anything; say why the site is safe"
        ));
    }
    Ok((rule, reason.to_string()))
}

impl Annotations {
    /// Is a violation of `rule` at `line` covered by an allow?
    ///
    /// Placement: the annotation sits on the violating line itself
    /// (trailing comment) or on the comment-only line block directly
    /// above it.
    pub fn allowed(&self, scan: &Scan, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && covers(scan, a.line, line))
    }

    /// Does a `sync:` comment sit adjacent to `line` (same line or the
    /// comment block directly above)?
    pub fn synced(&self, scan: &Scan, line: u32) -> bool {
        self.syncs.iter().any(|&s| covers(scan, s, line))
    }
}

/// Does an annotation on `ann_line` cover a site on `site_line`?
/// Same line always covers; an annotation above covers when every line
/// strictly between (and the annotation's own line) is comment-only.
fn covers(scan: &Scan, ann_line: u32, site_line: u32) -> bool {
    if ann_line == site_line {
        return true;
    }
    if ann_line > site_line {
        return false;
    }
    // Walk from the annotation down to the site: all intermediate lines
    // (annotation's own included) must carry no code.
    (ann_line..site_line).all(|l| !scan.has_code(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn parses_well_formed_allow() {
        let s = scan("// guard: allow(panic, reason = \"checked two lines up\")\nx.unwrap();");
        let a = extract(&s);
        assert_eq!(a.allows.len(), 1);
        assert_eq!(a.allows[0].rule, Rule::Panic);
        assert!(a.allowed(&s, Rule::Panic, 2));
        assert!(!a.allowed(&s, Rule::Determinism, 2));
        assert!(a.bad.is_empty());
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let s = scan("x.unwrap(); // guard: allow(panic, reason = \"len checked above\")");
        let a = extract(&s);
        assert!(a.allowed(&s, Rule::Panic, 1));
    }

    #[test]
    fn allow_does_not_leak_past_code() {
        let s = scan(
            "// guard: allow(panic, reason = \"covers only next line\")\nfine();\nx.unwrap();",
        );
        let a = extract(&s);
        assert!(a.allowed(&s, Rule::Panic, 2));
        assert!(!a.allowed(&s, Rule::Panic, 3));
    }

    #[test]
    fn malformed_annotations_are_reported() {
        for bad in [
            "// guard: allow(panic)",
            "// guard: allow(panic, reason = \"short\")",
            "// guard: allow(bogus, reason = \"unknown rule name\")",
            "// guard: alow(panic, reason = \"typo in allow\")",
        ] {
            let s = scan(bad);
            let a = extract(&s);
            assert!(a.allows.is_empty(), "{bad} must not parse");
            assert_eq!(a.bad.len(), 1, "{bad} must be reported");
        }
    }

    #[test]
    fn sync_comment_needs_substance() {
        let s = scan("// sync: pairs with Release store in publish()\nx.load(Ordering::Acquire);");
        let a = extract(&s);
        assert!(a.synced(&s, 2));
        let s2 = scan("// sync: yes\nx.load(Ordering::Acquire);");
        let a2 = extract(&s2);
        assert!(!a2.synced(&s2, 2));
        assert_eq!(a2.bad.len(), 1);
    }
}
