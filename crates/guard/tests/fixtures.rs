//! Fixture-driven integration tests for `helios-guard`.
//!
//! Each file under `guard_fixtures/` seeds violations at lines marked
//! `//~ <rule>…`; the harness strips the markers, scans the cleaned
//! source, and asserts every rule fires exactly at its annotated lines
//! (and nowhere else). The baseline ratchet and the codec manifest are
//! exercised end-to-end through the engine against a throwaway tree,
//! and the committed workspace itself must check clean.

use helios_guard::{codec, engine, lexer, rules, CodecSpec, GuardConfig, PathSet, Rule};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("guard_fixtures")
}

const RULE_NAMES: &[&str] = &["panic", "determinism", "atomics", "codec", "annotation"];

/// `(expected (rule, line) pairs, marker-stripped source)`. A `//~` is
/// only a marker when every word after it is a rule name — fixture doc
/// comments may mention the literal `//~` syntax.
fn parse_markers(raw: &str) -> (Vec<(String, u32)>, String) {
    let mut expected = Vec::new();
    let mut cleaned = String::new();
    for (i, line) in raw.lines().enumerate() {
        let lineno = i as u32 + 1;
        let marker = line.find("//~").filter(|&pos| {
            let words: Vec<&str> = line[pos + 3..].split_whitespace().collect();
            !words.is_empty() && words.iter().all(|w| RULE_NAMES.contains(w))
        });
        if let Some(pos) = marker {
            for rule in line[pos + 3..].split_whitespace() {
                expected.push((rule.to_string(), lineno));
            }
            cleaned.push_str(line[..pos].trim_end());
        } else {
            cleaned.push_str(line);
        }
        cleaned.push('\n');
    }
    expected.sort();
    (expected, cleaned)
}

/// An everything-in-scope config rooted at the fixture dir, with the
/// named rule families active.
fn fixture_config(panic: bool, determinism: bool, atomics: bool) -> GuardConfig {
    let all = || PathSet::new(["."]);
    let none = PathSet::default;
    GuardConfig {
        root: fixture_dir(),
        panic_paths: if panic { all() } else { none() },
        container_paths: if determinism { all() } else { none() },
        time_paths: if determinism { all() } else { none() },
        atomics_paths: if atomics { all() } else { none() },
        excludes: Vec::new(),
        codecs: Vec::new(),
        baseline_path: ".guard/baseline.txt".to_string(),
        manifest_path: ".guard/codecs.txt".to_string(),
    }
}

type RuleLines = Vec<(String, u32)>;

/// `(expected, actual)` sorted `(rule, line)` pairs for one fixture.
fn violations_for(file: &str, cfg: &GuardConfig) -> (RuleLines, RuleLines) {
    let raw = fs::read_to_string(fixture_dir().join(file)).expect("fixture readable");
    let (expected, cleaned) = parse_markers(&raw);
    let scan = lexer::scan(&cleaned);
    let ann = helios_guard::annotations::extract(&scan);
    let mut out = Vec::new();
    rules::check_file(cfg, file, &scan, &ann, &mut out);
    let mut actual: Vec<(String, u32)> = out
        .iter()
        .map(|v| (v.rule.name().to_string(), v.line))
        .collect();
    actual.sort();
    (expected, actual)
}

#[test]
fn panic_fixture_fires_exactly_at_markers() {
    let (expected, actual) = violations_for("panic.rs", &fixture_config(true, false, false));
    assert_eq!(actual, expected);
    assert!(expected.iter().any(|(r, _)| r == "annotation"));
    assert!(expected.iter().filter(|(r, _)| r == "panic").count() >= 6);
}

#[test]
fn determinism_fixture_fires_exactly_at_markers() {
    let (expected, actual) = violations_for("determinism.rs", &fixture_config(false, true, false));
    assert_eq!(actual, expected);
    assert_eq!(
        expected.iter().filter(|(r, _)| r == "determinism").count(),
        7
    );
}

#[test]
fn atomics_fixture_fires_exactly_at_markers() {
    let (expected, actual) = violations_for("atomics.rs", &fixture_config(false, false, true));
    assert_eq!(actual, expected);
    assert_eq!(
        expected.len(),
        2,
        "synced and cmp::Ordering sites stay quiet"
    );
}

#[test]
fn fixtures_are_quiet_outside_their_scope() {
    // With no rule family in scope the seeded files go silent — except
    // the `annotation` meta-rule, which reports malformed annotations
    // wherever the scanner sees them.
    let cfg = fixture_config(false, false, false);
    for file in ["panic.rs", "determinism.rs", "atomics.rs"] {
        let (_, actual) = violations_for(file, &cfg);
        let non_meta: Vec<_> = actual.iter().filter(|(r, _)| r != "annotation").collect();
        assert_eq!(non_meta, Vec::<&(String, u32)>::new(), "{file}");
    }
}

const FIX_SPEC: CodecSpec = CodecSpec {
    name: "FIXSNAP",
    file: "codec.rs",
    version_consts: &["FIXSNAP_VERSION"],
};

fn codec_check_against_v1(current_file: &str) -> Vec<helios_guard::Violation> {
    let v1 = fs::read_to_string(fixture_dir().join("codec_v1.rs")).expect("fixture");
    let cur = fs::read_to_string(fixture_dir().join(current_file)).expect("fixture");
    let mut manifest = codec::Manifest::new();
    manifest.insert(
        FIX_SPEC.name.to_string(),
        codec::shape(&FIX_SPEC, &lexer::scan(&v1)),
    );
    let mut scans = BTreeMap::new();
    scans.insert(FIX_SPEC.file.to_string(), lexer::scan(&cur));
    let mut cfg = fixture_config(false, false, false);
    cfg.codecs = vec![FIX_SPEC];
    let mut out = Vec::new();
    codec::check(&cfg, &manifest, &scans, &mut out);
    out
}

#[test]
fn codec_unchanged_shape_passes() {
    assert!(codec_check_against_v1("codec_v1.rs").is_empty());
}

#[test]
fn codec_field_added_without_bump_fails_loudly() {
    let out = codec_check_against_v1("codec_v2_unbumped.rs");
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, Rule::Codec);
    assert!(
        out[0].message.contains("FIXSNAP_VERSION did not"),
        "wrong message: {}",
        out[0].message
    );
}

#[test]
fn codec_field_added_with_bump_demands_repin() {
    let out = codec_check_against_v1("codec_v2_bumped.rs");
    assert_eq!(out.len(), 1);
    assert!(
        out[0].message.contains("version constants were bumped"),
        "wrong message: {}",
        out[0].message
    );
}

/// A throwaway workspace tree for end-to-end baseline ratchet tests.
struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("helios-guard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).expect("temp tree");
        TempTree(dir)
    }

    fn write_lib(&self, body: &str) {
        fs::write(self.0.join("src").join("lib.rs"), body).expect("write fixture lib");
    }

    fn config(&self) -> GuardConfig {
        let mut cfg = fixture_config(false, false, false);
        cfg.root = self.0.clone();
        cfg.panic_paths = PathSet::new(["src"]);
        cfg
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn baseline_ratchet_round_trip() {
    let tree = TempTree::new("ratchet");
    tree.write_lib("pub fn f(xs: &[u64]) -> u64 { xs[0] + xs[1] }\n");
    let cfg = tree.config();

    // Two fresh violations fail the check.
    let r = engine::check(&cfg).expect("check");
    assert!(!r.clean());
    assert_eq!(r.new.len(), 2);

    // Grandfather them; the check now passes with both suppressed.
    engine::write_baseline(&cfg).expect("write baseline");
    let r = engine::check(&cfg).expect("check");
    assert!(r.clean());
    assert_eq!(r.suppressed, 2);

    // A new violation on top of the baseline fails again.
    tree.write_lib("pub fn f(xs: &[u64]) -> u64 { xs[0] + xs[1] + xs[2] }\n");
    let r = engine::check(&cfg).expect("check");
    assert!(!r.clean());
    assert_eq!(r.new.len(), 3, "the whole regressed bucket is listed");

    // Fixing below the baseline is STALE until ratcheted down…
    tree.write_lib("pub fn f(xs: &[u64]) -> u64 { xs[0] }\n");
    let r = engine::check(&cfg).expect("check");
    assert!(!r.clean());
    assert_eq!(r.stale.len(), 1);

    // …and clean after the ratchet.
    engine::write_baseline(&cfg).expect("ratchet");
    let r = engine::check(&cfg).expect("check");
    assert!(r.clean());
    assert_eq!(r.suppressed, 1);
}

#[test]
fn missing_codec_pin_is_not_baselinable() {
    let tree = TempTree::new("codecpin");
    tree.write_lib("pub const V: u32 = 1;\npub fn e(w: &mut W) { w.u32(V); }\n");
    let mut cfg = tree.config();
    cfg.codecs = vec![CodecSpec {
        name: "TEMPSNAP",
        file: "src/lib.rs",
        version_consts: &["V"],
    }];
    cfg.panic_paths = PathSet::default();

    // Unpinned codec fails even after a baseline write.
    engine::write_baseline(&cfg).expect("write baseline");
    let r = engine::check(&cfg).expect("check");
    assert!(!r.clean());
    assert!(r.new[0].message.contains("pin-codecs"));

    // Pinning resolves it.
    engine::pin_codecs(&cfg).expect("pin");
    let r = engine::check(&cfg).expect("check");
    assert!(r.clean());
}

/// The committed workspace must check clean with the committed
/// baseline and manifest — the dogfooding acceptance criterion.
#[test]
fn committed_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = engine::check(&GuardConfig::helios(root)).expect("workspace check");
    assert!(
        report.clean(),
        "workspace has new violations:\n{}",
        report.human()
    );
    assert!(report.files > 50, "workspace scan looks truncated");
}

/// CLI exit codes: 0 on the committed tree, 1 on a seeded-violation
/// tree, 2 on usage errors.
#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_helios-guard");
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");

    let ok = std::process::Command::new(bin)
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("run helios-guard");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    let tree = TempTree::new("cli");
    fs::create_dir_all(tree.0.join("crates/fleet/src")).expect("tree");
    fs::write(
        tree.0.join("crates/fleet/src/bad.rs"),
        "pub fn f(xs: &[u64]) -> u64 { xs.first().unwrap() + 1 }\n",
    )
    .expect("seed violation");
    let fail = std::process::Command::new(bin)
        .args(["check", "--root"])
        .arg(&tree.0)
        .output()
        .expect("run helios-guard");
    assert_eq!(fail.status.code(), Some(1));
    let report = String::from_utf8_lossy(&fail.stdout);
    assert!(report.contains("unwrap"), "unexpected report: {report}");

    let usage = std::process::Command::new(bin)
        .arg("--bogus")
        .output()
        .expect("run helios-guard");
    assert_eq!(usage.status.code(), Some(2));

    // --json emits a machine-readable failure with the same findings.
    let json = std::process::Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(&tree.0)
        .output()
        .expect("run helios-guard");
    assert_eq!(json.status.code(), Some(1));
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(
        body.contains("\"rule\": \"panic\""),
        "unexpected json: {body}"
    );
}
