//! Seeded determinism-rule violations: hash containers in a
//! digest-feeding module, and wall-clock / RandomState reads outside
//! bench code. Markers as in `panic.rs`.

fn digest_feed() -> usize {
    let m: std::collections::HashMap<u32, u64> = std::collections::HashMap::new(); //~ determinism determinism
    let s: std::collections::HashSet<u32> = std::collections::HashSet::new(); //~ determinism determinism
    m.len() + s.len()
}

fn stamps() -> u64 {
    let t = std::time::Instant::now(); //~ determinism
    let w = std::time::SystemTime::now(); //~ determinism
    let _state = std::collections::hash_map::RandomState::new(); //~ determinism
    let _ = w;
    t.elapsed().as_secs()
}

fn sanctioned_telemetry() -> f64 {
    // guard: allow(determinism, reason = "fixture: wall time is telemetry only")
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}

fn ordered() -> usize {
    // BTreeMap never trips the container rule.
    let m: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked_test_code_may_use_hash_containers() {
        let m: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        assert!(m.is_empty());
    }
}
