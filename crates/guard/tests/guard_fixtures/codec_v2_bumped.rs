//! Fixture codec, legitimately evolved shape: the same field addition
//! as `codec_v2_unbumped.rs`, but the version constant was bumped. The
//! lint still fails until the manifest is re-pinned, with a message
//! pointing at `pin-codecs` instead of at a missing bump.

pub const FIXSNAP_VERSION: u32 = 2;

pub fn encode(w: &mut ByteWriter, state: &State) {
    w.u32(FIXSNAP_VERSION);
    w.u64(state.jobs);
    w.i64(state.clock);
    w.u8(state.flags);
    w.str(&state.name);
}

pub fn decode(r: &mut ByteReader) -> State {
    let _version = r.u32();
    State {
        jobs: r.u64(),
        clock: r.i64(),
        flags: r.u8(),
        name: r.str(),
    }
}
