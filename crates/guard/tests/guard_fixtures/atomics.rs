//! Seeded atomics-audit violations: `Ordering::` use-sites with and
//! without an adjacent `// sync:` comment. Markers as in `panic.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn unsynced_load() -> u64 {
    COUNTER.load(Ordering::Acquire) //~ atomics
}

fn unsynced_store() {
    COUNTER.store(1, Ordering::SeqCst); //~ atomics
}

fn synced_inline() -> u64 {
    COUNTER.load(Ordering::Acquire) // sync: acquires the Release store in `synced_above`
}

fn synced_above() {
    // sync: publishes the counter to the Acquire load in `synced_inline`
    COUNTER.store(2, Ordering::Release);
}

fn comparison_ordering(a: u32, b: u32) -> std::cmp::Ordering {
    // `cmp::Ordering` variants are not memory orderings; no audit.
    if a < b {
        std::cmp::Ordering::Less
    } else {
        a.cmp(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_test_code_needs_no_sync_comments() {
        assert_eq!(COUNTER.load(Ordering::Relaxed) < u64::MAX, true);
    }
}
