//! Seeded panic-rule violations. `//~ <rule>` markers name the rule(s)
//! expected to fire on that line; the harness strips the markers before
//! scanning, so they never influence the lint itself.

fn service_path(xs: &[u64], m: &std::collections::BTreeMap<u32, u64>) -> u64 {
    let a = xs.first().unwrap(); //~ panic
    let b = m.get(&0).expect("present"); //~ panic
    if xs.is_empty() {
        panic!("boom"); //~ panic
    }
    let c = xs[0]; //~ panic
    a + b + c
}

fn never(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!(), //~ panic
    }
}

fn chained(rows: &[Vec<u64>]) -> u64 {
    rows[0][1] //~ panic panic
}

fn proven_inline(xs: &[u64]) -> u64 {
    xs[0] // guard: allow(panic, reason = "fixture: trailing-annotation form suppresses")
}

fn proven_above(xs: &[u64]) -> u64 {
    // guard: allow(panic, reason = "fixture: comment-block-above form suppresses")
    xs[0]
}

// guard: allow(panic) //~ annotation
fn sloppy(xs: &[u64]) -> u64 {
    xs.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked_test_code_panics_freely() {
        let v: Vec<u64> = vec![1];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
