//! Fixture codec, drifted shape: a field was added to the wire format
//! but the version constant was NOT bumped — the exact bug the codec
//! rule exists to catch.

pub const FIXSNAP_VERSION: u32 = 1;

pub fn encode(w: &mut ByteWriter, state: &State) {
    w.u32(FIXSNAP_VERSION);
    w.u64(state.jobs);
    w.i64(state.clock);
    w.u8(state.flags);
    w.str(&state.name);
}

pub fn decode(r: &mut ByteReader) -> State {
    let _version = r.u32();
    State {
        jobs: r.u64(),
        clock: r.i64(),
        flags: r.u8(),
        name: r.str(),
    }
}
