//! Fixture codec, baseline shape: the pinned manifest is derived from
//! this file.

pub const FIXSNAP_VERSION: u32 = 1;

pub fn encode(w: &mut ByteWriter, state: &State) {
    w.u32(FIXSNAP_VERSION);
    w.u64(state.jobs);
    w.i64(state.clock);
    w.str(&state.name);
}

pub fn decode(r: &mut ByteReader) -> State {
    let _version = r.u32();
    State {
        jobs: r.u64(),
        clock: r.i64(),
        name: r.str(),
    }
}
