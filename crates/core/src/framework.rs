//! The prediction-based management framework (§4.1, Fig. 10).
//!
//! A centralized manager atop one GPU cluster. Plug-and-play `Service`s
//! share a common workflow: the **Model Update Engine** periodically
//! refreshes each service's model from the history store; the **Resource
//! Orchestrator** invokes the services to turn predictions into management
//! actions. Services are independent; operators register the ones they
//! need (§4.1: "the cluster operators can select services based on their
//! demands").

use helios_trace::{HeliosError, HeliosResult, Trace};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An action recommended/taken by a service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Set a job's scheduling priority (QSSF).
    SetJobPriority { job_id: u64, priority: f64 },
    /// Power off `nodes` nodes (CES / DRS).
    SleepNodes { nodes: u32 },
    /// Power on `nodes` nodes (CES wake-up).
    WakeNodes { nodes: u32 },
    /// Informational/no-op (service had nothing to do).
    None,
}

/// The shared historical data a cluster accumulates: job logs and node
/// states (§4.1 "Data Collection"). In this reproduction the store wraps
/// the synthetic trace plus a cursor marking how much history is visible.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    trace: Arc<Trace>,
    /// Everything strictly before this timestamp is "collected".
    now: i64,
}

impl HistoryStore {
    /// New store over a trace, starting with no visible history.
    pub fn new(trace: Arc<Trace>) -> Self {
        HistoryStore { trace, now: 0 }
    }

    /// Advance the data-collection cursor. Moving backwards is a logic
    /// error in the caller's clock and is reported, not panicked on.
    pub fn advance_to(&mut self, now: i64) -> HeliosResult<()> {
        if now < self.now {
            return Err(HeliosError::HistoryRegression {
                current: self.now,
                requested: now,
            });
        }
        self.now = now;
        Ok(())
    }

    /// Current cursor.
    pub fn now(&self) -> i64 {
        self.now
    }

    /// The backing trace (services must only read jobs that *ended* before
    /// [`HistoryStore::now`] when training).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Jobs that terminated before the cursor (the training view).
    pub fn finished_jobs(&self) -> impl Iterator<Item = &helios_trace::JobRecord> {
        let now = self.now;
        self.trace.jobs.iter().filter(move |j| j.end() <= now)
    }
}

/// A pluggable prediction-based service (§4.1). Both workflow methods are
/// fallible: a service that cannot (re)train or act reports why instead of
/// panicking inside the framework loop.
pub trait Service: Send + Sync {
    /// Service name for logs/registry.
    fn name(&self) -> &str;

    /// Refresh the service's model from history (Model Update Engine).
    fn update_model(&mut self, history: &HistoryStore) -> HeliosResult<()>;

    /// One orchestration step at time `now` (Resource Orchestrator).
    fn orchestrate(&mut self, history: &HistoryStore, now: i64) -> HeliosResult<Vec<Action>>;
}

/// The centralized framework: history store + service registry + update
/// schedule.
pub struct Framework {
    history: HistoryStore,
    services: Vec<Box<dyn Service>>,
    /// Model refresh period, seconds (the paper fine-tunes periodically).
    update_period: i64,
    /// Timestamp of the last model refresh. Only written through `&mut self`
    /// in [`Framework::tick`], so a plain value suffices — no lock.
    last_update: i64,
}

impl Framework {
    /// Create a framework over one cluster trace.
    pub fn new(trace: Arc<Trace>, update_period: i64) -> HeliosResult<Self> {
        if update_period <= 0 {
            return Err(HeliosError::invalid_config(
                "update_period",
                format!("must be > 0 seconds, got {update_period}"),
            ));
        }
        Ok(Framework {
            history: HistoryStore::new(trace),
            services: Vec::new(),
            update_period,
            last_update: i64::MIN,
        })
    }

    /// Register a service (plug-and-play).
    pub fn register(&mut self, service: Box<dyn Service>) {
        self.services.push(service);
    }

    /// Registered service names.
    pub fn service_names(&self) -> Vec<String> {
        self.services.iter().map(|s| s.name().to_string()).collect()
    }

    /// Advance simulated time: collect new data, refresh models when the
    /// update period elapsed, and run every service's orchestration step.
    /// Returns actions per service (aligned with [`Framework::service_names`]).
    /// A failing service aborts the tick with its error tagged by name.
    pub fn tick(&mut self, now: i64) -> HeliosResult<Vec<Vec<Action>>> {
        self.history.advance_to(now)?;
        if now.saturating_sub(self.last_update) >= self.update_period {
            for s in &mut self.services {
                s.update_model(&self.history)
                    .map_err(|e| e.for_service(s.name()))?;
            }
            self.last_update = now;
        }
        self.services
            .iter_mut()
            .map(|s| {
                s.orchestrate(&self.history, now)
                    .map_err(|e| e.for_service(s.name()))
            })
            .collect()
    }

    /// Shared history accessor.
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{generate, venus_profile, GeneratorConfig};

    struct CountingService {
        name: String,
        updates: usize,
        steps: usize,
    }

    impl Service for CountingService {
        fn name(&self) -> &str {
            &self.name
        }
        fn update_model(&mut self, _history: &HistoryStore) -> HeliosResult<()> {
            self.updates += 1;
            Ok(())
        }
        fn orchestrate(&mut self, _history: &HistoryStore, _now: i64) -> HeliosResult<Vec<Action>> {
            self.steps += 1;
            Ok(vec![Action::None])
        }
    }

    fn tiny_trace() -> Arc<Trace> {
        Arc::new(
            generate(
                &venus_profile(),
                &GeneratorConfig {
                    scale: 0.02,
                    seed: 1,
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn update_engine_fires_periodically() {
        let mut fw = Framework::new(tiny_trace(), 3_600).unwrap();
        fw.register(Box::new(CountingService {
            name: "svc".into(),
            updates: 0,
            steps: 0,
        }));
        // 4 ticks over 2 hours, update period 1h -> updates at t=0, 3600, 7200.
        for t in [0, 1_800, 3_600, 7_200] {
            fw.tick(t).unwrap();
        }
        assert_eq!(fw.service_names(), vec!["svc".to_string()]);
        // The boxed service is owned by the framework; verify via a fresh
        // instance driven the same way.
        let mut svc = CountingService {
            name: "svc".into(),
            updates: 0,
            steps: 0,
        };
        let mut history = HistoryStore::new(tiny_trace());
        let mut last = i64::MIN;
        for t in [0i64, 1_800, 3_600, 7_200] {
            history.advance_to(t).unwrap();
            if t.saturating_sub(last) >= 3_600 {
                svc.update_model(&history).unwrap();
                last = t;
            }
            svc.orchestrate(&history, t).unwrap();
        }
        assert_eq!(svc.updates, 3);
        assert_eq!(svc.steps, 4);
    }

    struct FailingService;

    impl Service for FailingService {
        fn name(&self) -> &str {
            "flaky"
        }
        fn update_model(&mut self, _history: &HistoryStore) -> HeliosResult<()> {
            Err(HeliosError::empty_input("model data", "always fails"))
        }
        fn orchestrate(&mut self, _history: &HistoryStore, _now: i64) -> HeliosResult<Vec<Action>> {
            Ok(vec![Action::None])
        }
    }

    #[test]
    fn tick_errors_are_tagged_with_the_service() {
        let mut fw = Framework::new(tiny_trace(), 3_600).unwrap();
        fw.register(Box::new(FailingService));
        let err = fw.tick(0).unwrap_err();
        assert!(
            matches!(&err, HeliosError::Service { service, .. } if service == "flaky"),
            "{err}"
        );
        assert!(err.to_string().contains("flaky"), "{err}");
    }

    #[test]
    fn invalid_update_period_is_an_error() {
        assert!(matches!(
            Framework::new(tiny_trace(), 0),
            Err(HeliosError::InvalidConfig {
                field: "update_period",
                ..
            })
        ));
        assert!(Framework::new(tiny_trace(), -5).is_err());
    }

    #[test]
    fn history_visibility_is_causal() {
        let trace = tiny_trace();
        let mut h = HistoryStore::new(trace.clone());
        h.advance_to(30 * 86_400).unwrap();
        for j in h.finished_jobs() {
            assert!(j.end() <= h.now());
        }
        let early = h.finished_jobs().count();
        h.advance_to(60 * 86_400).unwrap();
        assert!(h.finished_jobs().count() > early);
    }

    #[test]
    fn cursor_is_monotone() {
        // A backwards cursor is a typed error, not a panic; the store is
        // left unchanged.
        let mut h = HistoryStore::new(tiny_trace());
        h.advance_to(100).unwrap();
        assert_eq!(
            h.advance_to(50),
            Err(HeliosError::HistoryRegression {
                current: 100,
                requested: 50
            })
        );
        assert_eq!(h.now(), 100);
        // Re-advancing to the same instant is fine.
        h.advance_to(100).unwrap();
    }
}
