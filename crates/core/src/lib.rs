//! # helios-core
//!
//! The paper's primary contribution: a prediction-based GPU-cluster
//! management framework (§4, Fig. 10). A plug-and-play [`Service`] registry
//! is driven by a Model Update Engine (periodic refits from the history
//! store) and a Resource Orchestrator (predictions → actions). Two services
//! reproduce the paper's case studies:
//!
//! * [`QssfService`] — Quasi-Shortest-Service-First scheduling
//!   (Algorithm 1): GBDT + rolling-history GPU-time prediction feeding the
//!   `helios-sim` Priority policy;
//! * [`CesService`] — Cluster Energy Saving (Algorithm 2): GBDT node-demand
//!   forecasting feeding the `helios-energy` DRS control loop.
//!
//! ```
//! use helios_core::{QssfConfig, QssfService};
//! use helios_trace::{generate, venus_profile, GeneratorConfig};
//!
//! let trace = generate(&venus_profile(), &GeneratorConfig { scale: 0.02, seed: 1 })?;
//! let mut qssf = QssfService::new(QssfConfig::default());
//! // Train on the first four months; an empty window would be an error.
//! qssf.train(&trace, 0, trace.calendar.month_end(3))?;
//! assert!(qssf.is_trained());
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod ces;
pub mod framework;
pub mod qssf;

pub use ces::{CesEvaluation, CesService, CesServiceConfig};
pub use framework::{Action, Framework, HistoryStore, Service};
pub use qssf::{noisy_oracle_priorities, QssfConfig, QssfService};
