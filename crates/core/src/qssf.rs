//! The Quasi-Shortest-Service-First scheduling service (§4.2, Algorithm 1).
//!
//! Priority of a new job J:
//! `P = N * (lambda * P_R + (1 - lambda) * P_M)` where `P_R` is the rolling
//! historical estimate (three fallback tiers), `P_M` the GBDT estimate over
//! encoded job attributes, and `N` the requested GPU count — i.e. expected
//! *GPU time*, so large short jobs don't starve fleets of small ones.
//! Jobs are then scheduled lowest-P-first without preemption.

use crate::framework::{Action, HistoryStore, Service};
use helios_predict::features::job::{build_training_matrix, FeatureExtractor};
use helios_predict::gbdt::{Gbdt, GbdtParams};
use helios_predict::rolling::RollingEstimator;
use helios_predict::text::strip_run_suffix;
use helios_sim::{PriorityPolicy, SchedulingPolicy, SimJob};
use helios_trace::{HeliosError, HeliosResult, JobRecord, NameId, Trace};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// QSSF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QssfConfig {
    /// Merge coefficient λ between rolling and model estimates
    /// (Algorithm 1 line 20).
    pub lambda: f64,
    /// GBDT hyper-parameters for P_M.
    pub gbdt: GbdtParams,
}

impl Default for QssfConfig {
    fn default() -> Self {
        QssfConfig {
            lambda: 0.5,
            gbdt: GbdtParams {
                num_trees: 120,
                learning_rate: 0.12,
                max_depth: 7,
                min_leaf: 40,
                lambda: 1.0,
                subsample: 0.8,
                colsample: 0.9,
                max_bins: 128,
                early_stopping: 0,
                seed: 17,
            },
        }
    }
}

/// The QSSF service: a trained duration model plus online rolling state.
/// `Clone` snapshots the full state (model + rolling statistics), so a
/// trained service can be replayed over an evaluation window without
/// mutating the original.
#[derive(Clone)]
pub struct QssfService {
    cfg: QssfConfig,
    extractor: FeatureExtractor,
    rolling: RollingEstimator,
    model: Option<Gbdt>,
    /// Stripped name stem per interned template name — the rolling
    /// estimator's key depends only on the template (the display name's
    /// run suffix is stripped), so it is computed once per template
    /// instead of allocating a display string per job.
    stems: HashMap<NameId, String>,
}

impl QssfService {
    /// Create an untrained service.
    pub fn new(cfg: QssfConfig) -> Self {
        QssfService {
            cfg,
            extractor: FeatureExtractor::new(),
            rolling: RollingEstimator::default(),
            model: None,
            stems: HashMap::new(),
        }
    }

    /// The job's rolling-estimator stem (`strip_run_suffix` of its display
    /// name, which equals the stripped base name), cached per template.
    fn stem<'a>(stems: &'a mut HashMap<NameId, String>, job: &JobRecord, trace: &Trace) -> &'a str {
        stems.entry(job.name).or_insert_with(|| {
            // display_name = "{base}_{run}" with a numeric run suffix, so
            // stripping the display equals stripping the base.
            strip_run_suffix(trace.names.base(job.name)).to_string()
        })
    }

    /// Train from the jobs of `trace` submitted in `[t_lo, t_hi)`:
    /// fits the GBDT on encoded attributes → ln(duration), and warms the
    /// rolling estimator and feature state with the same history. An empty
    /// training window is an error, not a panic.
    pub fn train(&mut self, trace: &Trace, t_lo: i64, t_hi: i64) -> HeliosResult<()> {
        if t_lo >= t_hi {
            return Err(HeliosError::invalid_config(
                "train window",
                format!("t_lo {t_lo} must precede t_hi {t_hi}"),
            ));
        }
        let (cols, targets, extractor) = build_training_matrix(trace, t_lo, t_hi);
        if targets.is_empty() {
            return Err(HeliosError::empty_input(
                "training jobs",
                format!("no GPU jobs submitted in [{t_lo}, {t_hi})"),
            ));
        }
        self.model = Some(Gbdt::fit(&cols, &targets, &self.cfg.gbdt, None));
        self.extractor = extractor;
        // Warm the rolling estimator with every job that *ended* before the
        // end of the training window.
        self.rolling = RollingEstimator::default();
        for j in trace.gpu_jobs() {
            if j.end() <= t_hi {
                let stem = Self::stem(&mut self.stems, j, trace);
                self.rolling
                    .observe_stem(j.user, stem, j.gpus, j.duration as f64);
            }
        }
        Ok(())
    }

    /// Predicted duration (seconds) for an incoming job — the merged
    /// estimate `lambda * P_R + (1 - lambda) * P_M`.
    pub fn predict_duration(&mut self, job: &JobRecord, trace: &Trace) -> f64 {
        let stem = Self::stem(&mut self.stems, job, trace);
        let p_r = self.rolling.estimate_stem(job.user, stem, job.gpus);
        let p_m = match &self.model {
            Some(m) => {
                let row = self.extractor.extract(job, &trace.names, &trace.calendar);
                m.predict_row(&row).exp()
            }
            None => p_r,
        };
        (self.cfg.lambda * p_r + (1.0 - self.cfg.lambda) * p_m).max(1.0)
    }

    /// Algorithm 1's priority value: expected GPU time `N * duration`.
    pub fn priority(&mut self, job: &JobRecord, trace: &Trace) -> f64 {
        job.gpus as f64 * self.predict_duration(job, trace)
    }

    /// Record a finished job (updates rolling state and feature statistics —
    /// the Model Update Engine's per-termination data collection).
    pub fn observe(&mut self, job: &JobRecord, trace: &Trace) {
        let stem = Self::stem(&mut self.stems, job, trace);
        self.rolling
            .observe_stem(job.user, stem, job.gpus, job.duration as f64);
        self.extractor.observe(job, &trace.names);
    }

    /// Causally assign priorities to every schedulable GPU job submitted in
    /// `[t_lo, t_hi)`, returning simulator jobs ready for the `Priority`
    /// policy. Finished jobs are observed as the clock passes their end
    /// times, exactly as the online service would see them.
    pub fn assign_priorities(&mut self, trace: &Trace, t_lo: i64, t_hi: i64) -> Vec<SimJob> {
        let mut out = Vec::new();
        let mut pending: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        for (idx, job) in trace.jobs.iter().enumerate() {
            if !job.is_gpu() || job.submit < t_lo {
                continue;
            }
            if job.submit >= t_hi {
                break;
            }
            while let Some(&Reverse((end, j))) = pending.peek() {
                if end > job.submit {
                    break;
                }
                pending.pop();
                let done = trace.jobs[j];
                self.observe(&done, trace);
            }
            if job.gpus <= trace.spec.vc_gpus(job.vc) {
                let priority = self.priority(job, trace);
                out.push(SimJob {
                    id: job.id,
                    vc: job.vc,
                    gpus: job.gpus,
                    submit: job.submit,
                    duration: job.duration.max(1),
                    priority,
                });
            }
            pending.push(Reverse((job.end(), idx)));
        }
        out
    }

    /// True once a model has been trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// The queue discipline QSSF drives on the pluggable kernel: the
    /// priorities this service writes into [`SimJob::priority`] (via
    /// [`QssfService::assign_priorities`]), ordered lowest-first by the
    /// kernel's [`PriorityPolicy`]. Hand the boxed policy to
    /// `Simulator::new` or `Session::schedule_with`.
    pub fn scheduling_policy(&self) -> Box<dyn SchedulingPolicy> {
        Box::new(PriorityPolicy::named("QSSF"))
    }
}

impl Service for QssfService {
    fn name(&self) -> &str {
        "qssf"
    }

    fn update_model(&mut self, history: &HistoryStore) -> HeliosResult<()> {
        let now = history.now();
        if now > 0 && history.finished_jobs().any(|j| j.is_gpu()) {
            self.train(history.trace(), 0, now)?;
        }
        Ok(())
    }

    fn orchestrate(&mut self, history: &HistoryStore, now: i64) -> HeliosResult<Vec<Action>> {
        if !self.is_trained() {
            return Ok(vec![Action::None]);
        }
        // Score jobs submitted in the last orchestration window (1 min).
        let trace = history.trace().clone();
        Ok(trace
            .gpu_jobs()
            .filter(|j| j.submit >= now - 60 && j.submit < now)
            .map(|j| Action::SetJobPriority {
                job_id: j.id,
                priority: self.priority(j, &trace),
            })
            .collect())
    }
}

/// Synthetic priorities for traces lacking the attributes QSSF needs — the
/// paper's Philly evaluation assumes "priority values generated randomly
/// with a similar error distribution as Helios estimation" (§4.2.3). We
/// perturb the true GPU time by a log-normal error of the given sigma.
pub fn noisy_oracle_priorities(
    trace: &Trace,
    t_lo: i64,
    t_hi: i64,
    sigma: f64,
    seed: u64,
) -> Vec<SimJob> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let mut jobs = helios_sim::jobs_from_trace(trace, t_lo, t_hi);
    for j in &mut jobs {
        let noise = (helios_trace::dist::standard_normal(&mut rng) * sigma).exp();
        j.priority = j.duration as f64 * j.gpus as f64 * noise;
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_predict::metrics;
    use helios_trace::{generate, venus_profile, GeneratorConfig};

    fn trace() -> Trace {
        generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.05,
                seed: 9,
            },
        )
        .unwrap()
    }

    #[test]
    fn trains_and_scores() {
        let t = trace();
        let mut svc = QssfService::new(QssfConfig::default());
        let split = t.calendar.month_end(3);
        svc.train(&t, 0, split).unwrap();
        assert!(svc.is_trained());
        let job = t.gpu_jobs().find(|j| j.submit >= split).unwrap();
        let p = svc.priority(job, &t);
        assert!(p >= job.gpus as f64, "priority {p} below 1s of GPU time");
    }

    #[test]
    fn predictions_beat_constant_baseline() {
        // The merged estimator must out-predict "always the global mean" on
        // held-out September jobs (in log space).
        let t = trace();
        let split = t.calendar.month_end(4); // train Apr-Aug
        let mut svc = QssfService::new(QssfConfig::default());
        svc.train(&t, 0, split).unwrap();
        let sims = svc.assign_priorities(&t, split, t.calendar.total_seconds());
        assert!(sims.len() > 500);
        let actual_log: Vec<f64> = sims.iter().map(|s| (s.duration as f64).ln()).collect();
        let pred_log: Vec<f64> = sims
            .iter()
            .map(|s| (s.priority / s.gpus as f64).max(1.0).ln())
            .collect();
        let mean = actual_log.iter().sum::<f64>() / actual_log.len() as f64;
        let const_pred = vec![mean; actual_log.len()];
        let model_rmse = metrics::rmse(&actual_log, &pred_log);
        let const_rmse = metrics::rmse(&actual_log, &const_pred);
        assert!(
            model_rmse < 0.8 * const_rmse,
            "model {model_rmse} vs constant {const_rmse}"
        );
    }

    #[test]
    fn lambda_extremes_change_estimates() {
        let t = trace();
        let split = t.calendar.month_end(3);
        let mut pure_rolling = QssfService::new(QssfConfig {
            lambda: 1.0,
            ..Default::default()
        });
        let mut pure_model = QssfService::new(QssfConfig {
            lambda: 0.0,
            ..Default::default()
        });
        pure_rolling.train(&t, 0, split).unwrap();
        pure_model.train(&t, 0, split).unwrap();
        let job = t.gpu_jobs().find(|j| j.submit >= split).unwrap();
        let a = pure_rolling.predict_duration(job, &t);
        let b = pure_model.predict_duration(job, &t);
        // Different estimators: values differ (they agree only by chance).
        assert!(a > 0.0 && b > 0.0);
        assert!((a - b).abs() > 1e-9);
    }

    #[test]
    fn noisy_oracle_matches_job_set() {
        let t = trace();
        let (lo, hi) = t.calendar.month_range(5);
        let exact = helios_sim::jobs_from_trace(&t, lo, hi);
        let noisy = noisy_oracle_priorities(&t, lo, hi, 0.6, 3);
        assert_eq!(exact.len(), noisy.len());
        // Priorities correlate with true GPU time but are perturbed.
        let mut same = 0;
        for (e, n) in exact.iter().zip(&noisy) {
            assert_eq!(e.id, n.id);
            if (n.priority - e.duration as f64 * e.gpus as f64).abs() < 1e-9 {
                same += 1;
            }
        }
        assert!(same < exact.len() / 10, "noise must perturb priorities");
    }

    #[test]
    fn scheduling_policy_object_matches_priority_enum() {
        // QSSF routed through the pluggable kernel must reproduce the
        // legacy Priority-enum path outcome for outcome.
        use helios_sim::{simulate, simulate_with, KernelConfig, Policy, SimConfig};
        let t = trace();
        let (lo, hi) = t.calendar.month_range(5);
        let mut svc = QssfService::new(QssfConfig::default());
        svc.train(&t, 0, lo).unwrap();
        let scored = svc.assign_priorities(&t, lo, hi);
        let legacy = simulate(&t.spec, &scored, &SimConfig::new(Policy::Priority)).unwrap();
        let pluggable = simulate_with(
            &t.spec,
            &scored,
            svc.scheduling_policy(),
            &KernelConfig::default(),
        )
        .unwrap();
        assert_eq!(legacy.outcomes, pluggable.outcomes);
    }

    #[test]
    fn service_trait_flow() {
        use crate::framework::HistoryStore;
        use std::sync::Arc;
        let t = Arc::new(trace());
        let mut h = HistoryStore::new(t.clone());
        h.advance_to(t.calendar.month_end(2)).unwrap();
        let mut svc = QssfService::new(QssfConfig::default());
        svc.update_model(&h).unwrap();
        assert!(svc.is_trained());
        let actions = svc.orchestrate(&h, h.now()).unwrap();
        // Either scored some jobs or had none in the last minute.
        assert!(actions
            .iter()
            .all(|a| matches!(a, Action::SetJobPriority { .. } | Action::None)));
    }
}
