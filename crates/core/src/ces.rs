//! The Cluster Energy Saving service (§4.3): GBDT node-demand forecasting
//! over the occupancy series, driving the prediction-guided DRS control
//! loop of `helios-energy`.

use crate::framework::{Action, HistoryStore, Service};
use helios_energy::{run_control_loop, CesConfig, CesOutcome, DrsPolicy, NodeSeries};
use helios_predict::features::series::{build_series_dataset, features_at, SeriesFeatureConfig};
use helios_predict::gbdt::{Gbdt, GbdtParams};
use helios_predict::metrics::smape;
use helios_trace::{HeliosError, HeliosResult, Trace};
use serde::{Deserialize, Serialize};

/// CES service configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CesServiceConfig {
    /// DRS control knobs (Algorithm 2).
    pub control: CesConfig,
    /// Feature extraction over the node series.
    pub features: SeriesFeatureConfig,
    /// Forecaster hyper-parameters.
    pub gbdt: GbdtParams,
}

impl Default for CesServiceConfig {
    fn default() -> Self {
        let features = SeriesFeatureConfig::default_10min();
        CesServiceConfig {
            control: CesConfig {
                future_window: features.horizon,
                ..Default::default()
            },
            features,
            gbdt: GbdtParams {
                num_trees: 150,
                learning_rate: 0.08,
                max_depth: 5,
                min_leaf: 20,
                lambda: 1.0,
                subsample: 0.9,
                colsample: 0.9,
                max_bins: 64,
                early_stopping: 0,
                seed: 23,
            },
        }
    }
}

/// Evaluation artifacts for one cluster (the data behind Fig. 14/15 and a
/// Table 5 column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CesEvaluation {
    /// Forecast SMAPE over the evaluation window, percent.
    pub smape: f64,
    /// Outcome under the prediction-guided policy (Algorithm 2).
    pub guided: CesOutcome,
    /// Outcome under vanilla DRS.
    pub vanilla: CesOutcome,
    /// The evaluation sub-series.
    pub series: NodeSeries,
    /// Aligned forecast (`forecast[t]` predicts `running[t + horizon]`).
    pub forecast: Vec<f64>,
}

/// The CES service: a trained node-demand forecaster.
pub struct CesService {
    cfg: CesServiceConfig,
    model: Option<Gbdt>,
}

impl CesService {
    /// Create an untrained service.
    pub fn new(cfg: CesServiceConfig) -> Self {
        CesService { cfg, model: None }
    }

    /// Train the forecaster on the node series bins `[0, train_end_bin)`.
    /// A series too short to yield one training row is an error.
    pub fn train(
        &mut self,
        series: &NodeSeries,
        cal: &helios_trace::Calendar,
        train_end_bin: usize,
    ) -> HeliosResult<()> {
        let train = &series.running[..train_end_bin.min(series.len())];
        let (cols, targets, _) =
            build_series_dataset(train, series.t0, series.bin, cal, &self.cfg.features);
        if targets.is_empty() {
            return Err(HeliosError::empty_input(
                "node-series training rows",
                format!(
                    "series of {} bins is too short for the feature window (min {})",
                    train.len(),
                    self.cfg.features.min_index() + self.cfg.features.horizon
                ),
            ));
        }
        self.model = Some(Gbdt::fit(&cols, &targets, &self.cfg.gbdt, None));
        Ok(())
    }

    /// Forecast `running[t + horizon]` for every bin `t` in
    /// `[from_bin, to_bin)` using only values up to `t` (causal direct
    /// forecasting).
    pub fn forecast(
        &self,
        series: &NodeSeries,
        cal: &helios_trace::Calendar,
        from_bin: usize,
        to_bin: usize,
    ) -> HeliosResult<Vec<f64>> {
        let model = self
            .model
            .as_ref()
            .ok_or(HeliosError::NotTrained { service: "ces" })?;
        Ok((from_bin..to_bin)
            .map(|t| {
                let row = features_at(
                    &series.running,
                    t,
                    series.t0,
                    series.bin,
                    cal,
                    &self.cfg.features,
                );
                model.predict_row(&row).max(0.0)
            })
            .collect())
    }

    /// Full paper evaluation on one cluster trace: train the forecaster on
    /// everything before `eval_start` (seconds), then run prediction-guided
    /// and vanilla DRS over `[eval_start, eval_end)` (Fig. 14: a 3-week
    /// September window with "the previous records all used for training").
    pub fn evaluate(
        &mut self,
        trace: &Trace,
        series: &NodeSeries,
        eval_start: i64,
        eval_end: i64,
    ) -> HeliosResult<CesEvaluation> {
        if eval_start >= eval_end {
            return Err(HeliosError::invalid_config(
                "evaluation window",
                format!("eval_start {eval_start} must precede eval_end {eval_end}"),
            ));
        }
        let bin = series.bin;
        let start_bin = ((eval_start - series.t0) / bin).max(0) as usize;
        let end_bin = (((eval_end - series.t0) / bin) as usize).min(series.len());
        if start_bin + self.cfg.features.min_index() >= end_bin {
            return Err(HeliosError::empty_input(
                "evaluation bins",
                format!(
                    "window [{eval_start}, {eval_end}) leaves no bins after the \
                     feature warm-up ({} bins)",
                    self.cfg.features.min_index()
                ),
            ));
        }

        self.train(series, &trace.calendar, start_bin)?;
        let forecast = self.forecast(series, &trace.calendar, start_bin, end_bin)?;

        // Forecast quality: forecast[t] vs running[t + horizon].
        let h = self.cfg.features.horizon;
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for (k, t) in (start_bin..end_bin).enumerate() {
            if t + h < series.len() {
                actual.push(series.running[t + h]);
                predicted.push(forecast[k]);
            }
        }
        let quality = smape(&actual, &predicted);

        let window = series.window(start_bin, end_bin);
        let guided = run_control_loop(
            &window,
            &forecast,
            DrsPolicy::PredictionGuided,
            &self.cfg.control,
        );
        let vanilla = run_control_loop(&window, &forecast, DrsPolicy::Vanilla, &self.cfg.control);
        Ok(CesEvaluation {
            smape: quality,
            guided,
            vanilla,
            series: window,
            forecast,
        })
    }

    /// True once trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }
}

impl Service for CesService {
    fn name(&self) -> &str {
        "ces"
    }

    fn update_model(&mut self, history: &HistoryStore) -> HeliosResult<()> {
        let now = history.now();
        let bin = 600;
        if now < 30 * bin {
            return Ok(());
        }
        let series = helios_energy::node_series_from_trace(
            history.trace(),
            bin,
            helios_sim::Placement::Consolidate,
        )?;
        let train_end = ((now - series.t0) / bin) as usize;
        if train_end > self.cfg.features.min_index() + self.cfg.features.horizon + 10 {
            self.train(&series, &history.trace().calendar, train_end)?;
        }
        Ok(())
    }

    fn orchestrate(&mut self, history: &HistoryStore, now: i64) -> HeliosResult<Vec<Action>> {
        if !self.is_trained() {
            return Ok(vec![Action::None]);
        }
        let bin = 600;
        let series = helios_energy::node_series_from_trace(
            history.trace(),
            bin,
            helios_sim::Placement::Consolidate,
        )?;
        let t = ((now - series.t0) / bin) as usize;
        if t < self.cfg.features.min_index() || t >= series.len() {
            return Ok(vec![Action::None]);
        }
        let f = self.forecast(&series, &history.trace().calendar, t, t + 1)?[0];
        let running = series.running[t];
        Ok(
            if f + self.cfg.control.buffer_nodes < running - self.cfg.control.xi_future {
                let sleep = (running - f - self.cfg.control.buffer_nodes).max(0.0) as u32;
                vec![Action::SleepNodes { nodes: sleep }]
            } else if f > running {
                vec![Action::WakeNodes {
                    nodes: (f - running).ceil() as u32,
                }]
            } else {
                vec![Action::None]
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_energy::node_series_from_trace;
    use helios_sim::Placement;
    use helios_trace::{earth_profile, generate, GeneratorConfig};

    fn setup() -> (Trace, NodeSeries) {
        let t = generate(
            &earth_profile(),
            &GeneratorConfig {
                scale: 0.05,
                seed: 13,
            },
        )
        .unwrap();
        let s = node_series_from_trace(&t, 600, Placement::Consolidate).unwrap();
        (t, s)
    }

    /// Control thresholds scaled to the tiny test cluster (~20 nodes); the
    /// defaults target the 130-260-node paper clusters.
    fn test_cfg() -> CesServiceConfig {
        let mut cfg = CesServiceConfig::default();
        cfg.control.buffer_nodes = 1.0;
        cfg.control.xi_hist = 0.25;
        cfg.control.xi_future = 0.25;
        cfg
    }

    #[test]
    fn forecaster_tracks_the_series() {
        // On the tiny (~20-node, heavily quantized) test cluster the
        // forecast must stay in the low-single-digit SMAPE regime the paper
        // reports (~3.6% on the full Earth series, §4.3.2). The
        // model-vs-baseline comparison lives in the pred-ces experiment at
        // repro scale.
        let (t, s) = setup();
        let mut svc = CesService::new(test_cfg());
        let eval_start = t.calendar.month_end(3);
        let eval_end = t.calendar.month_end(4);
        let eval = svc.evaluate(&t, &s, eval_start, eval_end).unwrap();
        assert!(eval.smape < 12.0, "GBDT SMAPE {}", eval.smape);
        assert_eq!(eval.forecast.len(), eval.series.len());
    }

    #[test]
    fn guided_wakes_less_than_vanilla() {
        let (t, s) = setup();
        let mut svc = CesService::new(test_cfg());
        let eval_start = t.calendar.month_end(3);
        let eval_end = t.calendar.month_end(4);
        let eval = svc.evaluate(&t, &s, eval_start, eval_end).unwrap();
        // Table 5's headline: prediction-guided DRS needs far fewer
        // wake-ups than vanilla DRS while still saving energy.
        assert!(
            eval.guided.daily_wakeups() < eval.vanilla.daily_wakeups(),
            "guided {} vs vanilla {}",
            eval.guided.daily_wakeups(),
            eval.vanilla.daily_wakeups()
        );
        assert!(eval.guided.avg_drs_nodes() > 0.0);
        // Utilization improves over the baseline.
        assert!(eval.guided.utilization_with_drs() > eval.guided.baseline_utilization());
    }

    #[test]
    fn demand_always_met_after_wakeups() {
        let (t, s) = setup();
        let mut svc = CesService::new(test_cfg());
        let eval = svc
            .evaluate(&t, &s, t.calendar.month_end(3), t.calendar.month_end(4))
            .unwrap();
        for (a, r) in eval.guided.active.iter().zip(&eval.guided.running) {
            assert!(a + 1e-9 >= *r, "active {a} < running {r}");
        }
    }
}
