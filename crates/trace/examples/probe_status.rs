//! Status-share probe (Fig. 1b / Fig. 7a targets).
use helios_trace::*;
fn main() {
    let cfg = GeneratorConfig {
        scale: 0.1,
        seed: 2020,
    };
    let mut gpu_time = [0.0f64; 3];
    let mut gpu_n = [0u64; 3];
    let mut cpu_n = [0u64; 3];
    for p in helios_profiles() {
        let t = generate(&p, &cfg).expect("valid config");
        for j in &t.jobs {
            let i = match j.status {
                JobStatus::Completed => 0,
                JobStatus::Canceled => 1,
                JobStatus::Failed => 2,
            };
            if j.is_gpu() {
                gpu_time[i] += j.gpu_time() as f64;
                gpu_n[i] += 1;
            } else {
                cpu_n[i] += 1;
            }
        }
    }
    let tt: f64 = gpu_time.iter().sum();
    let tn: u64 = gpu_n.iter().sum();
    let tc: u64 = cpu_n.iter().sum();
    println!(
        "GPU-time shares: completed={:.3} canceled={:.3} failed={:.3}  (paper .513/.394/.093)",
        gpu_time[0] / tt,
        gpu_time[1] / tt,
        gpu_time[2] / tt
    );
    println!(
        "GPU-count shares: completed={:.3} canceled={:.3} failed={:.3} (paper .624/.221/.155)",
        gpu_n[0] as f64 / tn as f64,
        gpu_n[1] as f64 / tn as f64,
        gpu_n[2] as f64 / tn as f64
    );
    println!(
        "CPU-count shares: completed={:.3} canceled={:.3} failed={:.3} (paper .909/.030/.061)",
        cpu_n[0] as f64 / tc as f64,
        cpu_n[1] as f64 / tc as f64,
        cpu_n[2] as f64 / tc as f64
    );
}
