use helios_trace::*;
fn main() {
    for seed in [2020u64, 1, 7, 42, 99] {
        let cfg = GeneratorConfig { scale: 0.1, seed };
        let traces = generate_helios(&cfg).expect("valid config");
        let (mut s, mut n) = (0.0f64, 0u64);
        for t in &traces {
            for j in t.gpu_jobs() {
                s += j.gpus as f64;
                n += 1;
            }
        }
        // Per-cluster means too
        let per: Vec<String> = traces
            .iter()
            .map(|t| {
                let (mut s2, mut n2) = (0.0, 0u64);
                for j in t.gpu_jobs() {
                    s2 += j.gpus as f64;
                    n2 += 1;
                }
                format!("{}={:.2}(n={})", t.spec.id.name(), s2 / n2 as f64, n2)
            })
            .collect();
        println!("seed {seed}: avg {:.3}  {}", s / n as f64, per.join(" "));
    }
}
