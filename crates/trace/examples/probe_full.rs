//! Full-scale calibration probe for one cluster.
use helios_trace::*;
fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "venus".into());
    let p = match arg.as_str() {
        "venus" => venus_profile(),
        "earth" => earth_profile(),
        "saturn" => saturn_profile(),
        "uranus" => uranus_profile(),
        _ => philly_profile(),
    };
    let t = generate(&p, &GeneratorConfig::default()).expect("valid config");
    let durs: Vec<f64> = t.gpu_jobs().map(|j| j.duration as f64).collect();
    let mut sorted = durs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let util = replayed_utilization(
        &t.jobs,
        t.total_gpus() as u64,
        0,
        t.calendar.total_seconds(),
    );
    let qd: f64 = t.gpu_jobs().map(|j| j.queue_delay() as f64).sum::<f64>() / durs.len() as f64;
    let avg_g: f64 = t.gpu_jobs().map(|j| j.gpus as f64).sum::<f64>() / durs.len() as f64;
    let singles = t.gpu_jobs().filter(|j| j.gpus == 1).count() as f64 / durs.len() as f64;
    let total_gt: f64 = t.gpu_jobs().map(|j| j.gpu_time() as f64).sum();
    let single_gt: f64 = t
        .gpu_jobs()
        .filter(|j| j.gpus == 1)
        .map(|j| j.gpu_time() as f64)
        .sum();
    let large_gt: f64 = t
        .gpu_jobs()
        .filter(|j| j.gpus >= 8)
        .map(|j| j.gpu_time() as f64)
        .sum();
    println!("{} full-scale: jobs={} mean_dur={:.0} med_dur={:.0} avg_gpus={:.2} util={:.3} mean_qd={:.0}",
        p.cluster.name(), t.jobs.len(), durs.iter().sum::<f64>()/durs.len() as f64, sorted[durs.len()/2], avg_g, util, qd);
    println!(
        "  singles={:.2} single_gt={:.3} large_gt={:.3} max_gpus={}",
        singles,
        single_gt / total_gt,
        large_gt / total_gt,
        t.gpu_jobs().map(|j| j.gpus).max().unwrap()
    );
}
