//! Calibration probe: per-cluster and per-VC load/queue diagnostics.
use helios_trace::*;
use std::collections::HashMap;

fn main() {
    let cfg = GeneratorConfig {
        scale: 0.1,
        seed: 2020,
    };
    for p in helios_profiles().into_iter().chain([philly_profile()]) {
        let t = generate(&p, &cfg).expect("valid config");
        let cap = t.total_gpus() as f64 * t.calendar.total_seconds() as f64;
        let total: f64 = t.gpu_jobs().map(|j| j.gpu_time() as f64).sum();
        let clipped = replayed_utilization(
            &t.jobs,
            t.total_gpus() as u64,
            0,
            t.calendar.total_seconds(),
        );
        println!(
            "== {:<8} offered={:.3} clipped={:.3} target={:.2}",
            p.cluster.name(),
            total / cap,
            clipped,
            p.target_util
        );
        // per-VC
        let mut per_vc: HashMap<u16, (f64, f64, u64, f64)> = HashMap::new(); // (gpu_time, qd_sum, n, over_cap_time)
        for j in t.gpu_jobs() {
            let e = per_vc.entry(j.vc).or_default();
            let vc_cap = t.spec.vc_gpus(j.vc);
            if j.gpus <= vc_cap {
                e.0 += j.gpu_time() as f64;
            } else {
                e.3 += j.gpu_time() as f64;
            }
            e.1 += j.queue_delay() as f64;
            e.2 += 1;
        }
        let mut vcs: Vec<_> = per_vc.into_iter().collect();
        vcs.sort_by_key(|x| x.0);
        for (vc, (gt, qd, n, oc)) in vcs {
            let c = t.spec.vc_gpus(vc) as f64 * t.calendar.total_seconds() as f64;
            println!(
                "  vc{vc:<3} gpus={:<4} rho={:.2} overcap_share={:.2} mean_qd={:>9.0} n={n}",
                t.spec.vc_gpus(vc),
                gt / c,
                oc / (gt + oc + 1e-9),
                qd / n as f64
            );
        }
    }
}
