//! Per-VC duration vs queuing probe.
use helios_trace::*;
fn main() {
    let t = generate(
        &earth_profile(),
        &GeneratorConfig {
            scale: 0.12,
            seed: 3,
        },
    )
    .expect("valid config");
    let (lo, hi) = t.calendar.month_range(1);
    for vc in 0..t.spec.num_vcs() as u16 {
        let jobs: Vec<_> = t
            .gpu_jobs()
            .filter(|j| j.vc == vc && j.submit >= lo && j.submit < hi)
            .collect();
        if jobs.is_empty() {
            continue;
        }
        let n = jobs.len() as f64;
        let dur: f64 = jobs.iter().map(|j| j.duration as f64).sum::<f64>() / n;
        let qd: f64 = jobs.iter().map(|j| j.queue_delay() as f64).sum::<f64>() / n;
        let load: f64 = t
            .gpu_jobs()
            .filter(|j| j.vc == vc)
            .map(|j| j.gpu_time() as f64)
            .sum::<f64>()
            / (t.spec.vc_gpus(vc) as f64 * t.calendar.total_seconds() as f64);
        println!(
            "vc{vc:<3} gpus={:<4} n={:<6} dur={:>9.0} qd={:>9.0} rho={:.2}",
            t.spec.vc_gpus(vc),
            jobs.len(),
            dur,
            qd,
            load
        );
    }
}
