//! Pin: k-way-merge generation == global-sort generation, byte for byte.
//!
//! The generator's finalization sorts per-user emission streams and k-way
//! merges them instead of globally sorting one multi-million-entry `Vec`.
//! Because every job's sort key `(submit, user, name, run)` is unique (the
//! run counter separates same-template resubmissions), the key order is a
//! *total* order — so any procedure that outputs the jobs in key order is
//! byte-identical to the historical stable global sort. These tests verify
//! exactly that, across seeds and presets: the emitted job multiset is in
//! strictly increasing key order, with dense submission-ordered ids.

use helios_trace::{earth_profile, generate, venus_profile, GeneratorConfig};

#[test]
fn merged_output_is_the_unique_global_sort_order() {
    for profile in [venus_profile(), earth_profile()] {
        for seed in [3, 17, 2020] {
            let cfg = GeneratorConfig { scale: 0.05, seed };
            let t = generate(&profile, &cfg).unwrap();
            let tag = format!("{} seed {seed}", t.spec.id.name());
            assert!(!t.jobs.is_empty(), "{tag}: empty trace");
            // Strictly increasing keys: simultaneously proves (a) the merge
            // emitted key-sorted order — i.e. exactly what the global
            // stable sort produced — and (b) key uniqueness, without which
            // the orders could differ.
            for (i, w) in t.jobs.windows(2).enumerate() {
                let ka = (w[0].submit, w[0].user, w[0].name, w[0].run);
                let kb = (w[1].submit, w[1].user, w[1].name, w[1].run);
                assert!(ka < kb, "{tag}: keys not strictly increasing at {i}");
            }
            // Ids dense in merged order.
            for (i, j) in t.jobs.iter().enumerate() {
                assert_eq!(j.id, i as u64, "{tag}: id gap at {i}");
            }
        }
    }
}

#[test]
fn merge_is_deterministic() {
    let cfg = GeneratorConfig {
        scale: 0.05,
        seed: 7,
    };
    let a = generate(&venus_profile(), &cfg).unwrap();
    let b = generate(&venus_profile(), &cfg).unwrap();
    assert_eq!(a.jobs, b.jobs);
}
