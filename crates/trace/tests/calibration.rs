//! Calibration tests: the synthetic traces must reproduce the paper's
//! published marginal statistics (within tolerances appropriate for a
//! statistical substrate). Run at 0.1 scale for speed; `--ignored` tests
//! check the full-scale Table 1/2 numbers.

use helios_trace::{
    generate, generate_helios, generate_philly, helios_profiles, replayed_utilization,
    GeneratorConfig, JobStatus, Trace,
};

fn cfg() -> GeneratorConfig {
    GeneratorConfig {
        scale: 0.1,
        seed: 2020,
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[test]
fn gpu_job_duration_moments_match_table2() {
    // Table 2: average GPU-job duration 6 652 s; §3.2.1: median 206 s.
    let traces = generate_helios(&cfg()).unwrap();
    let durations: Vec<f64> = traces
        .iter()
        .flat_map(|t| t.gpu_jobs().map(|j| j.duration as f64))
        .collect();
    let m = mean(durations.iter().copied());
    let med = median(durations);
    assert!(
        (2_500.0..18_000.0).contains(&m),
        "mean GPU duration {m} out of band (paper 6 652)"
    );
    assert!(
        (60.0..900.0).contains(&med),
        "median GPU duration {med} out of band (paper 206)"
    );
}

#[test]
fn cpu_jobs_are_an_order_of_magnitude_shorter() {
    // §3.2.1: GPU-job mean 10.6x the CPU-job mean; >50% of CPU jobs < 2 s.
    let traces = generate_helios(&cfg()).unwrap();
    let gpu_mean = mean(
        traces
            .iter()
            .flat_map(|t| t.gpu_jobs().map(|j| j.duration as f64)),
    );
    let cpu: Vec<f64> = traces
        .iter()
        .flat_map(|t| t.cpu_jobs().map(|j| j.duration as f64))
        .collect();
    let cpu_mean = mean(cpu.iter().copied());
    assert!(gpu_mean / cpu_mean > 4.0, "ratio {}", gpu_mean / cpu_mean);
    let short = cpu.iter().filter(|&&d| d <= 2.0).count() as f64 / cpu.len() as f64;
    assert!(short > 0.5, "share of <=2s CPU jobs {short}");
}

#[test]
fn average_gpu_demand_matches_table2() {
    // Table 2: average 3.72 GPUs per GPU job, maximum 2 048.
    let traces = generate_helios(&cfg()).unwrap();
    let avg = mean(
        traces
            .iter()
            .flat_map(|t| t.gpu_jobs().map(|j| j.gpus as f64)),
    );
    // Paper (full scale): 3.72. At scale 0.1 the per-VC caps (half the
    // scaled VC) exclude the 64-128-GPU requests that carry much of the
    // full-scale mean, so the scaled statistic sits lower and varies
    // noticeably with the seed (~2.2-3.7 across seeds under the offline
    // ChaCha12 stack — see vendor/README.md on stream compatibility).
    assert!(
        (2.0..5.2).contains(&avg),
        "avg GPUs {avg} (paper 3.72 at full scale)"
    );
    let max = traces
        .iter()
        .flat_map(|t| t.gpu_jobs().map(|j| j.gpus))
        .max()
        .unwrap();
    assert_eq!(max, 2_048, "Saturn mega request must appear");
}

#[test]
fn single_gpu_majority_but_large_jobs_own_gpu_time() {
    // Fig. 6 / Implication #4: >50% of jobs use 1 GPU but hold only 3–12%
    // of GPU time; jobs with >= 8 GPUs hold ~60%.
    for t in generate_helios(&cfg()).unwrap() {
        let total: f64 = t.gpu_jobs().map(|j| j.gpu_time() as f64).sum();
        let n = t.gpu_jobs().count() as f64;
        let singles = t.gpu_jobs().filter(|j| j.gpus == 1).count() as f64;
        let single_time: f64 = t
            .gpu_jobs()
            .filter(|j| j.gpus == 1)
            .map(|j| j.gpu_time() as f64)
            .sum();
        let large_time: f64 = t
            .gpu_jobs()
            .filter(|j| j.gpus >= 8)
            .map(|j| j.gpu_time() as f64)
            .sum();
        let id = t.spec.id;
        assert!(singles / n > 0.5, "{id}: single share {}", singles / n);
        // Paper: 3-12% (Fig. 6b). At test scale the VC-size cap shrinks
        // large jobs, inflating the single-GPU share; the full-scale values
        // (recorded in EXPERIMENTS.md) sit at 4-21%.
        assert!(
            single_time / total < 0.35,
            "{id}: single GPU-time share {}",
            single_time / total
        );
        assert!(
            large_time / total > 0.40,
            "{id}: >=8-GPU time share {}",
            large_time / total
        );
    }
}

#[test]
fn gpu_time_by_status_matches_fig1b() {
    // Fig. 1b Helios: completed 51.3%, canceled 39.4%, failed 9.3%.
    let traces = generate_helios(&cfg()).unwrap();
    let mut by_status = [0.0f64; 3];
    for t in &traces {
        for j in t.gpu_jobs() {
            let i = match j.status {
                JobStatus::Completed => 0,
                JobStatus::Canceled => 1,
                JobStatus::Failed => 2,
            };
            by_status[i] += j.gpu_time() as f64;
        }
    }
    let total: f64 = by_status.iter().sum();
    let shares: Vec<f64> = by_status.iter().map(|s| s / total).collect();
    assert!((shares[0] - 0.513).abs() < 0.15, "completed {}", shares[0]);
    assert!((shares[1] - 0.394).abs() < 0.15, "canceled {}", shares[1]);
    assert!(shares[2] < 0.25, "failed {}", shares[2]);
}

#[test]
fn utilization_in_paper_band() {
    // Fig. 2a: cluster utilization ranges ~65–90%.
    for t in generate_helios(&cfg()).unwrap() {
        let horizon = t.calendar.total_seconds();
        // Skip the first two weeks (ramp-up) like any steady-state window.
        let u = replayed_utilization(&t.jobs, t.total_gpus() as u64, 14 * 86_400, horizon);
        assert!((0.55..0.98).contains(&u), "{}: utilization {u}", t.spec.id);
    }
}

#[test]
fn queuing_exists_but_is_not_pathological() {
    for t in generate_helios(&cfg()).unwrap() {
        let delays: Vec<f64> = t.gpu_jobs().map(|j| j.queue_delay() as f64).collect();
        let m = mean(delays.iter().copied());
        assert!(m > 30.0, "{}: mean queue delay {m} too small", t.spec.id);
        // Queue delays in the production (FIFO) regime are severe by design
        // (Implication #3 / Table 3); "not pathological" = finite and below
        // a week on average.
        assert!(
            m < 600_000.0,
            "{}: mean queue delay {m} exploded",
            t.spec.id
        );
    }
}

#[test]
fn philly_jobs_are_longer_and_smaller() {
    // Table 2: Philly avg duration 28 329 s (vs 6 652), avg GPUs 1.75, max 128.
    let helios = generate_helios(&cfg()).unwrap();
    let philly = generate_philly(&cfg()).unwrap();
    let h_mean = mean(
        helios
            .iter()
            .flat_map(|t| t.gpu_jobs().map(|j| j.duration as f64)),
    );
    let p_mean = mean(philly.gpu_jobs().map(|j| j.duration as f64));
    assert!(p_mean > 2.0 * h_mean, "philly {p_mean} vs helios {h_mean}");
    let p_gpus = mean(philly.gpu_jobs().map(|j| j.gpus as f64));
    assert!((1.1..2.6).contains(&p_gpus), "philly avg GPUs {p_gpus}");
    assert!(philly.gpu_jobs().map(|j| j.gpus).max().unwrap() <= 128);
    assert!(
        philly.cpu_jobs().count() == 0,
        "Philly trace has no CPU jobs"
    );
}

#[test]
fn philly_failed_gpu_time_share_is_high() {
    // Fig. 1b: >1/3 of Philly GPU time went to failed jobs.
    let philly = generate_philly(&cfg()).unwrap();
    let total: f64 = philly.gpu_jobs().map(|j| j.gpu_time() as f64).sum();
    let failed: f64 = philly
        .gpu_jobs()
        .filter(|j| j.status == JobStatus::Failed)
        .map(|j| j.gpu_time() as f64)
        .sum();
    let share = failed / total;
    assert!((0.2..0.55).contains(&share), "failed share {share}");
}

#[test]
fn users_span_paper_range_and_skew() {
    // §3.3: 200–400 users per cluster; top 5% hold 45–60% of GPU time.
    for t in generate_helios(&cfg()).unwrap() {
        let n_profile = helios_profiles()
            .into_iter()
            .find(|p| p.cluster == t.spec.id)
            .unwrap()
            .users;
        assert!((200..=400).contains(&n_profile));
        let mut per_user = std::collections::HashMap::new();
        for j in t.gpu_jobs() {
            *per_user.entry(j.user).or_insert(0.0) += j.gpu_time() as f64;
        }
        let mut times: Vec<f64> = per_user.values().copied().collect();
        times.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = times.iter().sum();
        let top = (n_profile as f64 * 0.05).ceil() as usize;
        let head: f64 = times.iter().take(top).sum();
        let share = head / total;
        assert!(
            (0.30..0.85).contains(&share),
            "{}: top-5% GPU-time share {share}",
            t.spec.id
        );
    }
}

#[test]
fn month_scoping_works() {
    let t = generate(&helios_profiles()[0], &cfg()).unwrap();
    let total: usize = (0..t.calendar.num_months())
        .map(|m| t.jobs_in_month(m).count())
        .sum();
    assert_eq!(total, t.jobs.len());
}

/// Full-scale Table 1/2 check (slow; run with `cargo test -- --ignored`).
#[test]
#[ignore = "full-scale generation; ~1 min"]
fn full_scale_table1_counts() {
    let traces = generate_helios(&GeneratorConfig::default()).unwrap();
    let counts: Vec<usize> = traces.iter().map(|t| t.jobs.len()).collect();
    let expect = [247_000.0, 873_000.0, 1_753_000.0, 490_000.0];
    for (c, e) in counts.iter().zip(expect) {
        assert!((*c as f64 / e - 1.0).abs() < 0.02, "{c} vs {e}");
    }
    let total: usize = counts.iter().sum();
    assert!((total as f64 / 3.363e6 - 1.0).abs() < 0.02);
}

#[test]
fn print_headline_stats() {
    // Not an assertion test: prints the calibration summary used while
    // tuning (visible with `--nocapture`).
    let traces = generate_helios(&cfg()).unwrap();
    let stat = |t: &Trace| {
        let durs: Vec<f64> = t.gpu_jobs().map(|j| j.duration as f64).collect();
        let gpus = mean(t.gpu_jobs().map(|j| j.gpus as f64));
        let util = replayed_utilization(
            &t.jobs,
            t.total_gpus() as u64,
            14 * 86_400,
            t.calendar.total_seconds(),
        );
        let qd = mean(t.gpu_jobs().map(|j| j.queue_delay() as f64));
        println!(
            "{:<8} jobs={:>7} gpu={:>7} mean_dur={:>8.0} med_dur={:>6.0} avg_gpus={:>5.2} util={:>5.3} mean_qd={:>8.0}",
            t.spec.id.name(),
            t.jobs.len(),
            t.gpu_jobs().count(),
            mean(durs.iter().copied()),
            median(durs.clone()),
            gpus,
            util,
            qd
        );
    };
    for t in &traces {
        stat(t);
    }
    stat(&generate_philly(&cfg()).unwrap());
}
