//! Trace calendar: converts trace-relative timestamps (seconds since the
//! trace epoch) into calendar components (month, day, weekday, hour) without
//! pulling in a full date-time dependency.
//!
//! The Helios traces span 2020-04-01 .. 2020-09-27 (§2.3); the Philly trace
//! window used by the paper spans 2017-10-01 .. 2017-12-14. Both are modelled
//! as a [`Calendar`] anchored at their respective epoch.

use serde::{Deserialize, Serialize};

/// Seconds in one minute.
pub const SECS_PER_MINUTE: i64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: i64 = 86_400;
/// Seconds in one week.
pub const SECS_PER_WEEK: i64 = 7 * SECS_PER_DAY;

/// Day of week, Monday-indexed (Monday = 0 .. Sunday = 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl Weekday {
    /// All weekdays in order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Numeric index with Monday = 0.
    pub fn index(self) -> usize {
        match self {
            Weekday::Monday => 0,
            Weekday::Tuesday => 1,
            Weekday::Wednesday => 2,
            Weekday::Thursday => 3,
            Weekday::Friday => 4,
            Weekday::Saturday => 5,
            Weekday::Sunday => 6,
        }
    }

    /// Inverse of [`Weekday::index`]; `i` is taken modulo 7.
    pub fn from_index(i: usize) -> Weekday {
        Weekday::ALL[i % 7]
    }

    /// True for Saturday and Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }
}

/// A trace-local calendar: a contiguous run of whole months starting at the
/// epoch (`t = 0` is midnight on the first day of `month_names\[0\]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calendar {
    /// Human-readable month names, one per covered month.
    pub month_names: Vec<String>,
    /// Number of days in each covered month.
    pub month_lengths: Vec<u32>,
    /// Weekday of day 0 of the trace.
    pub epoch_weekday: Weekday,
    /// Public holidays, as day-of-trace indices (0-based).
    pub holidays: Vec<u32>,
    /// Cumulative day offset of the start of each month (derived).
    month_start_day: Vec<u32>,
}

impl Calendar {
    /// Build a calendar from month names/lengths, the weekday of day 0 and a
    /// holiday table.
    pub fn new(
        month_names: Vec<String>,
        month_lengths: Vec<u32>,
        epoch_weekday: Weekday,
        holidays: Vec<u32>,
    ) -> Self {
        assert_eq!(month_names.len(), month_lengths.len());
        let mut month_start_day = Vec::with_capacity(month_lengths.len() + 1);
        let mut acc = 0;
        for &len in &month_lengths {
            month_start_day.push(acc);
            acc += len;
        }
        month_start_day.push(acc);
        Calendar {
            month_names,
            month_lengths,
            epoch_weekday,
            holidays,
            month_start_day,
        }
    }

    /// The Helios trace calendar: April–September 2020 (2020-04-01 was a
    /// Wednesday). Holidays follow the 2020 mainland-China public-holiday
    /// schedule that falls inside the window: Labour Day (May 1–5) and the
    /// Dragon Boat Festival (June 25–27).
    pub fn helios_2020() -> Self {
        let names = ["April", "May", "June", "July", "August", "September"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let lengths = vec![30, 31, 30, 31, 31, 30];
        // Day-of-trace indices: May 1 = 30, June 25 = 30+31+24 = 85.
        let holidays = vec![30, 31, 32, 33, 34, 85, 86, 87];
        Calendar::new(names, lengths, Weekday::Wednesday, holidays)
    }

    /// The Philly evaluation calendar: October–December 2017 (2017-10-01 was
    /// a Sunday). US holidays in the window: Thanksgiving (Nov 23–24).
    pub fn philly_2017() -> Self {
        let names = ["October", "November", "December"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let lengths = vec![31, 30, 31];
        // Nov 23 = 31 + 22 = 53.
        let holidays = vec![53, 54];
        Calendar::new(names, lengths, Weekday::Sunday, holidays)
    }

    /// Total number of days covered by the calendar.
    pub fn total_days(&self) -> u32 {
        *self.month_start_day.last().unwrap()
    }

    /// Total number of seconds covered by the calendar.
    pub fn total_seconds(&self) -> i64 {
        self.total_days() as i64 * SECS_PER_DAY
    }

    /// Number of covered months.
    pub fn num_months(&self) -> usize {
        self.month_lengths.len()
    }

    /// Day-of-trace (0-based) for a timestamp. Clamped at the boundaries so
    /// out-of-range timestamps don't panic.
    pub fn day_of_trace(&self, t: i64) -> u32 {
        let d = t.div_euclid(SECS_PER_DAY);
        d.clamp(0, self.total_days() as i64 - 1) as u32
    }

    /// Month index (0-based into [`Calendar::month_names`]) for a timestamp.
    pub fn month_index(&self, t: i64) -> usize {
        let day = self.day_of_trace(t);
        // month_start_day is sorted; find the last start <= day.
        match self.month_start_day.binary_search(&day) {
            Ok(i) => i.min(self.num_months() - 1),
            Err(i) => i - 1,
        }
    }

    /// Day of month (1-based) for a timestamp.
    pub fn day_of_month(&self, t: i64) -> u32 {
        let day = self.day_of_trace(t);
        let m = self.month_index(t);
        day - self.month_start_day[m] + 1
    }

    /// Hour of day (0–23) for a timestamp.
    pub fn hour_of_day(&self, t: i64) -> u32 {
        (t.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as u32
    }

    /// Minute of hour (0–59) for a timestamp.
    pub fn minute_of_hour(&self, t: i64) -> u32 {
        (t.rem_euclid(SECS_PER_HOUR) / SECS_PER_MINUTE) as u32
    }

    /// Weekday for a timestamp.
    pub fn weekday(&self, t: i64) -> Weekday {
        let day = self.day_of_trace(t) as usize;
        Weekday::from_index(self.epoch_weekday.index() + day)
    }

    /// True if the timestamp falls on a listed public holiday.
    pub fn is_holiday(&self, t: i64) -> bool {
        self.holidays.contains(&self.day_of_trace(t))
    }

    /// True for weekends and public holidays.
    pub fn is_offday(&self, t: i64) -> bool {
        self.weekday(t).is_weekend() || self.is_holiday(t)
    }

    /// Timestamp of midnight on the first day of month `m`.
    pub fn month_start(&self, m: usize) -> i64 {
        self.month_start_day[m] as i64 * SECS_PER_DAY
    }

    /// Timestamp of midnight *after* the last day of month `m` (exclusive end).
    pub fn month_end(&self, m: usize) -> i64 {
        self.month_start_day[m + 1] as i64 * SECS_PER_DAY
    }

    /// Half-open `[start, end)` second range for month `m`.
    pub fn month_range(&self, m: usize) -> (i64, i64) {
        (self.month_start(m), self.month_end(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helios_calendar_shape() {
        let c = Calendar::helios_2020();
        assert_eq!(c.num_months(), 6);
        assert_eq!(c.total_days(), 183);
        assert_eq!(c.total_seconds(), 183 * SECS_PER_DAY);
    }

    #[test]
    fn month_boundaries() {
        let c = Calendar::helios_2020();
        // First second of the trace is April 1.
        assert_eq!(c.month_index(0), 0);
        assert_eq!(c.day_of_month(0), 1);
        // Last second of April 30.
        let t = 30 * SECS_PER_DAY - 1;
        assert_eq!(c.month_index(t), 0);
        assert_eq!(c.day_of_month(t), 30);
        // First second of May.
        let t = 30 * SECS_PER_DAY;
        assert_eq!(c.month_index(t), 1);
        assert_eq!(c.day_of_month(t), 1);
        // Last covered day: September 30 (day 182).
        let t = c.total_seconds() - 1;
        assert_eq!(c.month_index(t), 5);
        assert_eq!(c.day_of_month(t), 30);
    }

    #[test]
    fn weekday_progression() {
        let c = Calendar::helios_2020();
        assert_eq!(c.weekday(0), Weekday::Wednesday);
        assert_eq!(c.weekday(SECS_PER_DAY), Weekday::Thursday);
        assert_eq!(c.weekday(5 * SECS_PER_DAY), Weekday::Monday);
        // 2020-04-04 was a Saturday.
        assert!(c.weekday(3 * SECS_PER_DAY).is_weekend());
    }

    #[test]
    fn hour_and_minute() {
        let c = Calendar::helios_2020();
        let t = 2 * SECS_PER_DAY + 13 * SECS_PER_HOUR + 45 * SECS_PER_MINUTE + 7;
        assert_eq!(c.hour_of_day(t), 13);
        assert_eq!(c.minute_of_hour(t), 45);
    }

    #[test]
    fn holidays_detected() {
        let c = Calendar::helios_2020();
        // May 1, 2020 (day 30).
        let may1 = 30 * SECS_PER_DAY + 12 * SECS_PER_HOUR;
        assert!(c.is_holiday(may1));
        assert!(c.is_offday(may1));
        // April 15 is a Wednesday and not a holiday.
        let apr15 = 14 * SECS_PER_DAY + 9 * SECS_PER_HOUR;
        assert!(!c.is_offday(apr15));
    }

    #[test]
    fn philly_calendar() {
        let c = Calendar::philly_2017();
        assert_eq!(c.total_days(), 92);
        assert_eq!(c.weekday(0), Weekday::Sunday);
        // 2017-10-02 was a Monday.
        assert_eq!(c.weekday(SECS_PER_DAY), Weekday::Monday);
        // Thanksgiving.
        assert!(c.is_holiday(53 * SECS_PER_DAY + 1));
    }

    #[test]
    fn out_of_range_clamps() {
        let c = Calendar::helios_2020();
        assert_eq!(c.day_of_trace(-5), 0);
        assert_eq!(c.day_of_trace(c.total_seconds() + 999), c.total_days() - 1);
    }

    #[test]
    fn month_ranges_partition_trace() {
        let c = Calendar::helios_2020();
        let mut cursor = 0;
        for m in 0..c.num_months() {
            let (s, e) = c.month_range(m);
            assert_eq!(s, cursor);
            assert!(e > s);
            cursor = e;
        }
        assert_eq!(cursor, c.total_seconds());
    }
}
