//! FIFO capacity replay: assigns each job a `start` time consistent with the
//! production scheduling regime the paper describes (§2.1): Slurm keeps one
//! FIFO queue per VC, jobs gang-allocate all GPUs at once, and there is no
//! preemption or backfill.
//!
//! The replay models each VC as a single GPU-count capacity pool (node-level
//! placement detail only matters for the scheduler *evaluation*, which
//! `helios-sim` handles). CPU jobs and over-capacity requests start
//! immediately: CPU cores are never the bottleneck in Helios, and requests
//! larger than the VC (the 2 048-GPU "mega" submissions) are user-canceled
//! artifacts that never held resources.

use crate::cluster::ClusterSpec;
use crate::types::{JobRecord, VcId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One VC's replay state.
struct VcState {
    capacity: u64,
    free: u64,
    /// Running jobs as (end_time, gpus), min-heap on end time.
    running: BinaryHeap<Reverse<(i64, u64)>>,
    /// FIFO queue of pending job indices.
    pending: VecDeque<usize>,
}

impl VcState {
    fn new(capacity: u64) -> Self {
        VcState {
            capacity,
            free: capacity,
            running: BinaryHeap::new(),
            pending: VecDeque::new(),
        }
    }

    /// Start as many head-of-queue jobs as fit at time `now`.
    fn drain_pending(&mut self, now: i64, jobs: &mut [JobRecord]) {
        while let Some(&idx) = self.pending.front() {
            let g = jobs[idx].gpus as u64;
            if g > self.free {
                break; // strict FIFO: head blocks the queue (no backfill)
            }
            self.pending.pop_front();
            let start = now.max(jobs[idx].submit);
            jobs[idx].start = start;
            self.free -= g;
            self.running.push(Reverse((start + jobs[idx].duration, g)));
        }
    }

    /// Release every job ending at or before `t`, starting pending jobs at
    /// each release instant (releases are processed in end-time order, so
    /// FIFO start times are exact).
    fn advance_to(&mut self, t: i64, jobs: &mut [JobRecord]) {
        while let Some(&Reverse((end, g))) = self.running.peek() {
            if end > t {
                break;
            }
            self.running.pop();
            self.free += g;
            // Coalesce all releases at the same instant before draining.
            while let Some(&Reverse((e2, g2))) = self.running.peek() {
                if e2 != end {
                    break;
                }
                self.running.pop();
                self.free += g2;
            }
            self.drain_pending(end, jobs);
        }
    }
}

/// Assign `start` times in place. `jobs` must be sorted by `submit`.
///
/// GPU jobs queue FIFO within their VC; CPU jobs and GPU requests exceeding
/// the VC capacity start at submission.
pub fn assign_start_times(jobs: &mut [JobRecord], spec: &ClusterSpec) {
    debug_assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    let mut vcs: Vec<VcState> = (0..spec.num_vcs())
        .map(|v| VcState::new(spec.vc_gpus(v as VcId) as u64))
        .collect();

    for idx in 0..jobs.len() {
        let job = jobs[idx];
        if !job.is_gpu() {
            continue; // CPU jobs: start == submit (set at generation)
        }
        let vc = &mut vcs[job.vc as usize];
        if job.gpus as u64 > vc.capacity {
            continue; // over-capacity artifact: starts (and dies) immediately
        }
        vc.advance_to(job.submit, jobs);
        vc.pending.push_back(idx);
        vc.drain_pending(job.submit, jobs);
    }

    // Flush every queue: process remaining releases in end-time order.
    for vc in &mut vcs {
        vc.advance_to(i64::MAX, jobs);
        debug_assert!(vc.pending.is_empty(), "job stuck in replay queue");
    }
}

/// Compute the exact GPU-utilization of a replayed job set over a window
/// `[lo, hi)`, as used by the generator's calibration tests: the fraction of
/// GPU-seconds occupied among `capacity * (hi - lo)`.
pub fn replayed_utilization(jobs: &[JobRecord], capacity_gpus: u64, lo: i64, hi: i64) -> f64 {
    let window = (hi - lo).max(1) as f64 * capacity_gpus as f64;
    let mut busy = 0.0;
    for j in jobs {
        if !j.is_gpu() {
            continue;
        }
        let s = j.start.max(lo);
        let e = j.end().min(hi);
        if e > s {
            busy += (e - s) as f64 * j.gpus as f64;
        }
    }
    busy / window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::cluster::VcSpec;
    use crate::types::{ClusterId, JobStatus};

    /// A 1-VC cluster with `nodes * 8` GPUs.
    fn tiny_spec(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            id: ClusterId::Venus,
            nodes,
            gpus_per_node: 8,
            cpu_threads_per_node: 48,
            ram_gb_per_node: 376,
            network: "IB",
            gpu_model: crate::cluster::GpuModel::Volta,
            vcs: vec![VcSpec {
                id: 0,
                name: "vc000".into(),
                nodes,
            }],
        }
    }

    fn job(id: u64, gpus: u32, submit: i64, duration: i64) -> JobRecord {
        JobRecord {
            id,
            user: 0,
            vc: 0,
            gpus,
            cpus: 6 * gpus,
            submit,
            start: submit,
            duration,
            status: JobStatus::Completed,
            name: 0,
            run: 0,
        }
    }

    #[test]
    fn immediate_start_when_free() {
        let spec = tiny_spec(1); // 8 GPUs
        let mut jobs = vec![job(0, 4, 0, 100), job(1, 4, 10, 100)];
        assign_start_times(&mut jobs, &spec);
        assert_eq!(jobs[0].start, 0);
        assert_eq!(jobs[1].start, 10);
    }

    #[test]
    fn fifo_queueing_when_full() {
        let spec = tiny_spec(1); // 8 GPUs
        let mut jobs = vec![job(0, 8, 0, 1_000), job(1, 8, 10, 500), job(2, 8, 20, 500)];
        assign_start_times(&mut jobs, &spec);
        assert_eq!(jobs[0].start, 0);
        assert_eq!(jobs[1].start, 1_000);
        assert_eq!(jobs[2].start, 1_500);
    }

    #[test]
    fn head_of_line_blocking_is_strict() {
        let spec = tiny_spec(1); // 8 GPUs
                                 // Big head job blocks a small job that *would* fit (no backfill).
        let mut jobs = vec![
            job(0, 6, 0, 1_000),
            job(1, 4, 10, 100), // needs 4, only 2 free -> blocks
            job(2, 2, 20, 100), // would fit but is behind job 1
        ];
        assign_start_times(&mut jobs, &spec);
        assert_eq!(jobs[1].start, 1_000);
        assert_eq!(jobs[2].start, 1_000);
    }

    #[test]
    fn capacity_never_exceeded() {
        let spec = tiny_spec(2); // 16 GPUs
        let mut jobs: Vec<JobRecord> = (0..200)
            .map(|i| {
                job(
                    i,
                    [1, 2, 4, 8][i as usize % 4],
                    (i as i64) * 37 % 5_000,
                    200 + (i as i64 * 61) % 900,
                )
            })
            .collect();
        jobs.sort_by_key(|j| j.submit);
        assign_start_times(&mut jobs, &spec);
        // Sweep all start/end events and check concurrent GPU usage.
        let mut events: Vec<(i64, i64)> = Vec::new();
        for j in &jobs {
            events.push((j.start, j.gpus as i64));
            events.push((j.end(), -(j.gpus as i64)));
        }
        events.sort();
        let mut load = 0;
        for (_, delta) in events {
            load += delta;
            assert!(load <= 16, "capacity exceeded: {load}");
        }
    }

    #[test]
    fn over_capacity_jobs_pass_through() {
        let spec = tiny_spec(1); // 8 GPUs
        let mut jobs = vec![job(0, 2048, 5, 60), job(1, 8, 10, 100)];
        assign_start_times(&mut jobs, &spec);
        assert_eq!(jobs[0].start, 5, "mega job must not queue");
        assert_eq!(jobs[1].start, 10, "mega job must not hold capacity");
    }

    #[test]
    fn cpu_jobs_untouched() {
        let spec = tiny_spec(1);
        let mut jobs = vec![job(0, 8, 0, 10_000), job(1, 0, 50, 100)];
        jobs[1].cpus = 16;
        assign_start_times(&mut jobs, &spec);
        assert_eq!(jobs[1].start, 50);
    }

    #[test]
    fn utilization_helper() {
        let spec = tiny_spec(1);
        let mut jobs = vec![job(0, 8, 0, 100)];
        assign_start_times(&mut jobs, &spec);
        // 8 GPUs busy for 100 s of a 200 s window over 8 GPUs = 0.5.
        let u = replayed_utilization(&jobs, 8, 0, 200);
        assert!((u - 0.5).abs() < 1e-9);
    }
}
