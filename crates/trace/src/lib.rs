//! # helios-trace
//!
//! Synthetic job-trace substrate for the SC'21 paper *"Characterization and
//! Prediction of Deep Learning Workloads in Large-Scale GPU Datacenters"*
//! (Hu et al.). The real Helios traces are proprietary Slurm `sacct` logs
//! from SenseTime; this crate synthesizes statistically-calibrated stand-ins
//! for all four Helios clusters (Venus, Earth, Saturn, Uranus; Table 1) and
//! the Microsoft Philly comparison cluster, matching every published
//! marginal: job counts, CPU/GPU split, duration mixtures, GPU-demand CDFs,
//! final-status ratios, diurnal/monthly submission shapes, Zipf user
//! activity and recurrent experiment names.
//!
//! ```
//! use helios_trace::{generate, GeneratorConfig, venus_profile};
//!
//! let cfg = GeneratorConfig { scale: 0.02, seed: 1 };
//! let trace = generate(&venus_profile(), &cfg)?;
//! assert!(trace.gpu_jobs().count() > 1_000);
//!
//! // Invalid configuration is a typed error, not a panic.
//! assert!(generate(&venus_profile(), &GeneratorConfig { scale: 0.0, seed: 1 }).is_err());
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod cluster;
pub mod dist;
pub mod error;
pub mod generator;
pub mod heap;
pub mod io;
pub mod profiles;
pub mod replay;
pub mod time;
pub mod types;
pub mod users;
pub mod workload;

pub use cluster::{
    earth, helios_clusters, philly, preset, saturn, uranus, venus, ClusterSpec, GpuModel, VcSpec,
};
pub use error::{HeliosError, HeliosResult};
pub use generator::{
    generate, generate_helios, generate_philly, scale_spec, GeneratorConfig, Trace,
    MAX_DURATION_SECS,
};
pub use replay::{assign_start_times, replayed_utilization};
pub use time::{Calendar, Weekday, SECS_PER_DAY, SECS_PER_HOUR, SECS_PER_MINUTE, SECS_PER_WEEK};
pub use types::{ClusterId, JobId, JobRecord, JobStatus, NameId, NamePool, UserId, VcId};
pub use users::{JobTemplate, UserClass, UserProfile};
pub use workload::{
    earth_profile, helios_profiles, philly_profile, profile_for, saturn_profile, uranus_profile,
    venus_profile, StatusModel, TemplateKind, WorkloadProfile,
};
