//! Workload profiles: per-cluster calibration targets and per-template-kind
//! distribution parameters.
//!
//! The numbers here are tuned so that the *synthetic* traces reproduce every
//! marginal statistic the paper publishes for the real traces: job counts
//! (Table 1), CPU/GPU split and duration moments (Table 2, Fig. 5), GPU-demand
//! distribution (Fig. 6), final-status ratios (Figs. 1b/7), diurnal/monthly
//! submission shapes (Figs. 2–3), and the utilization band 65–90% (§3.1.1).

use crate::types::ClusterId;
use serde::{Deserialize, Serialize};

/// What kind of work a job template performs. Kind determines the GPU-demand
/// distribution, the duration scale and the status propensities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Short single-GPU debugging runs; fail often (Implication #6).
    Debug,
    /// Model evaluation / inference validation runs.
    Eval,
    /// Single-node training (1–8 GPUs).
    Train,
    /// Distributed multi-node training (8–64 GPUs); canceled often
    /// (feedback-driven early stopping, Fig. 7b).
    DistTrain,
    /// Extreme-scale pretraining requests (up to 2 048 GPUs, Table 2);
    /// exceed any static VC and end canceled.
    Mega,
    /// CPU-only data preprocessing (frame extraction, resizing, §2.2).
    Preprocess,
    /// CPU-only 1–2 s state-query scripts (dominant in Earth, §3.2.1).
    Query,
}

impl TemplateKind {
    /// True for GPU-consuming kinds.
    pub fn is_gpu(self) -> bool {
        !matches!(self, TemplateKind::Preprocess | TemplateKind::Query)
    }
}

/// Per-kind distribution parameters.
///
/// Template medians are drawn log-normally around `median_of_medians` with
/// spread `median_sigma` (heterogeneity *across* experiments); individual
/// jobs then scatter around their template median with `per_job_sigma`
/// (predictability *within* an experiment — the signal QSSF exploits).
#[derive(Debug, Clone, PartialEq)]
pub struct KindParams {
    /// Median of template duration-medians, seconds.
    pub median_of_medians: f64,
    /// Log-sigma of template medians across templates.
    pub median_sigma: f64,
    /// Log-sigma of job durations within a template.
    pub per_job_sigma: f64,
    /// GPU-count choices and weights (empty for CPU kinds).
    pub gpu_choices: Vec<(u32, f64)>,
    /// Baseline cancellation probability (grows with GPU count, §3.2.2).
    pub base_cancel: f64,
    /// Baseline failure probability.
    pub base_fail: f64,
}

impl TemplateKind {
    /// Distribution parameters for this kind.
    pub fn params(self) -> KindParams {
        match self {
            TemplateKind::Debug => KindParams {
                median_of_medians: 90.0,
                median_sigma: 0.8,
                per_job_sigma: 0.7,
                gpu_choices: vec![(1, 0.9), (2, 0.1)],
                base_cancel: 0.16,
                base_fail: 0.34,
            },
            TemplateKind::Eval => KindParams {
                median_of_medians: 320.0,
                median_sigma: 0.9,
                per_job_sigma: 0.55,
                gpu_choices: vec![(1, 0.62), (2, 0.26), (4, 0.12)],
                base_cancel: 0.09,
                base_fail: 0.10,
            },
            TemplateKind::Train => KindParams {
                median_of_medians: 4_800.0,
                median_sigma: 1.1,
                per_job_sigma: 0.65,
                gpu_choices: vec![(1, 0.30), (2, 0.25), (4, 0.25), (8, 0.20)],
                base_cancel: 0.17,
                base_fail: 0.08,
            },
            TemplateKind::DistTrain => KindParams {
                median_of_medians: 26_000.0,
                median_sigma: 0.9,
                per_job_sigma: 0.55,
                gpu_choices: vec![
                    (8, 0.42),
                    (16, 0.32),
                    (24, 0.08),
                    (32, 0.12),
                    (64, 0.05),
                    (128, 0.01),
                ],
                base_cancel: 0.33,
                base_fail: 0.07,
            },
            TemplateKind::Mega => KindParams {
                median_of_medians: 600.0,
                median_sigma: 0.8,
                per_job_sigma: 0.6,
                gpu_choices: vec![
                    (128, 0.35),
                    (256, 0.30),
                    (512, 0.20),
                    (1024, 0.10),
                    (2048, 0.05),
                ],
                base_cancel: 0.75,
                base_fail: 0.20,
            },
            TemplateKind::Preprocess => KindParams {
                median_of_medians: 700.0,
                median_sigma: 1.2,
                per_job_sigma: 0.9,
                gpu_choices: vec![],
                base_cancel: 0.04,
                base_fail: 0.10,
            },
            TemplateKind::Query => KindParams {
                median_of_medians: 1.0,
                median_sigma: 0.0,
                per_job_sigma: 0.0,
                gpu_choices: vec![],
                base_cancel: 0.004,
                base_fail: 0.03,
            },
        }
    }
}

/// Which status model the trace follows.
///
/// Helios failures are mostly quick user errors (§3.2.2: "most failed jobs
/// are terminated within a short time"); Philly failures burn long runtimes
/// because YARN retried failed jobs (§2.3.2), putting >1/3 of Philly GPU
/// time into failed jobs (Fig. 1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StatusModel {
    Helios,
    Philly,
}

/// Full calibration profile for one cluster's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    pub cluster: ClusterId,
    /// Full-scale GPU-job count target over the trace horizon.
    pub gpu_jobs: u64,
    /// Full-scale CPU-job count target.
    pub cpu_jobs: u64,
    /// Fraction of CPU jobs that are 1–2 s queries.
    pub query_share: f64,
    /// Number of users (each cluster has 200–400, §3.3).
    pub users: usize,
    /// User-class mix: [Production, Researcher, Student, Pipeline].
    pub class_mix: [f64; 4],
    /// Mean cluster GPU-utilization target (Fig. 2a band 65–90%). For
    /// Philly this is *GPU* utilization, which sat far below its 69% node
    /// occupancy (small scattered jobs).
    pub target_util: f64,
    /// Std-dev of the per-VC offered-load draw around `target_util`. Helios
    /// VCs are uniformly busy; Philly mixes saturated and idle VCs.
    pub util_spread: f64,
    /// Upper clamp on any single VC's offered load. Values near 1 create
    /// the sustained FIFO queue build-up Table 3 reports; Uranus (the
    /// mildest-queuing cluster) stays below saturation.
    pub rho_max: f64,
    /// Multiplier on the DistTrain kind weight (Philly ran far fewer large
    /// distributed jobs: avg 1.75 GPUs/job).
    pub dist_damp: f64,
    /// Multiplier on every template's failure probability, capped at 0.5
    /// (Philly's YARN retry regime burned >1/3 of GPU time in failures).
    pub fail_boost: f64,
    /// Multiplier applied to the 1-GPU choice weight of every template
    /// (Earth: ~90% single-GPU jobs; Philly: avg 1.75 GPUs/job).
    pub single_gpu_boost: f64,
    /// Largest GPU request the cluster accepts (Helios 2 048, Philly 128).
    pub gpu_cap: u32,
    /// Global duration multiplier (Philly jobs run longer, Table 2).
    pub duration_scale: f64,
    /// Number of extreme-scale `Mega` submissions (Saturn only).
    pub mega_jobs: u32,
    /// Status-duration model.
    pub status_model: StatusModel,
    /// Generator seed (combined with the user-supplied config seed).
    pub seed: u64,
}

/// Venus: smallest job count, GPU-heavy mix, high queuing (Table 3 shows the
/// worst FIFO queue delays here).
pub fn venus_profile() -> WorkloadProfile {
    WorkloadProfile {
        cluster: ClusterId::Venus,
        gpu_jobs: 153_000,
        cpu_jobs: 94_000,
        query_share: 0.45,
        users: 220,
        class_mix: [0.14, 0.42, 0.34, 0.10],
        target_util: 0.82,
        util_spread: 0.09,
        rho_max: 0.92,
        dist_damp: 1.0,
        fail_boost: 1.0,
        single_gpu_boost: 1.0,
        gpu_cap: 2048,
        duration_scale: 1.0,
        mega_jobs: 0,
        status_model: StatusModel::Helios,
        seed: 0xB01,
    }
}

/// Earth: most CPU jobs (~90% of them 1 s queries), ~90% single-GPU jobs,
/// lowest utilization (§3.1.1, Fig. 6a).
pub fn earth_profile() -> WorkloadProfile {
    WorkloadProfile {
        cluster: ClusterId::Earth,
        gpu_jobs: 350_000,
        cpu_jobs: 523_000,
        query_share: 0.90,
        users: 280,
        class_mix: [0.06, 0.30, 0.54, 0.10],
        target_util: 0.70,
        util_spread: 0.09,
        rho_max: 0.90,
        dist_damp: 1.0,
        fail_boost: 1.0,
        single_gpu_boost: 8.0,
        gpu_cap: 2048,
        duration_scale: 0.55,
        mega_jobs: 0,
        status_model: StatusModel::Helios,
        seed: 0xB02,
    }
}

/// Saturn: biggest cluster, most jobs, highest utilization; hosts the
/// extreme-scale (up to 2 048-GPU) submissions (Table 2).
pub fn saturn_profile() -> WorkloadProfile {
    WorkloadProfile {
        cluster: ClusterId::Saturn,
        gpu_jobs: 830_000,
        cpu_jobs: 923_000,
        query_share: 0.55,
        users: 390,
        class_mix: [0.18, 0.42, 0.30, 0.10],
        target_util: 0.85,
        util_spread: 0.07,
        rho_max: 0.92,
        dist_damp: 1.0,
        fail_boost: 1.0,
        single_gpu_boost: 1.15,
        gpu_cap: 2048,
        duration_scale: 1.0,
        mega_jobs: 30,
        status_model: StatusModel::Helios,
        seed: 0xB03,
    }
}

/// Uranus: Pascal cluster, moderate load, mildest queuing (Table 3).
pub fn uranus_profile() -> WorkloadProfile {
    WorkloadProfile {
        cluster: ClusterId::Uranus,
        gpu_jobs: 245_000,
        cpu_jobs: 245_000,
        query_share: 0.50,
        users: 300,
        class_mix: [0.12, 0.40, 0.38, 0.10],
        target_util: 0.74,
        util_spread: 0.08,
        rho_max: 0.87,
        dist_damp: 1.0,
        fail_boost: 1.0,
        single_gpu_boost: 1.0,
        gpu_cap: 2048,
        duration_scale: 1.0,
        mega_jobs: 0,
        status_model: StatusModel::Helios,
        seed: 0xB04,
    }
}

/// Philly: 103 467 GPU jobs over Oct 1 – Dec 14 2017, no CPU jobs, smaller
/// jobs (avg 1.75 GPUs, max 128) but much longer durations (Table 2), 69%
/// baseline node utilization (Table 5).
pub fn philly_profile() -> WorkloadProfile {
    WorkloadProfile {
        cluster: ClusterId::Philly,
        gpu_jobs: 103_467,
        cpu_jobs: 0,
        query_share: 0.0,
        users: 260,
        class_mix: [0.04, 0.40, 0.56, 0.0],
        target_util: 0.42,
        util_spread: 0.30,
        rho_max: 0.95,
        dist_damp: 0.4,
        fail_boost: 4.0,
        single_gpu_boost: 8.0,
        gpu_cap: 128,
        duration_scale: 4.2,
        mega_jobs: 0,
        status_model: StatusModel::Philly,
        seed: 0xB05,
    }
}

/// The four Helios profiles in Table 1 order.
pub fn helios_profiles() -> Vec<WorkloadProfile> {
    vec![
        venus_profile(),
        earth_profile(),
        saturn_profile(),
        uranus_profile(),
    ]
}

/// Profile for a given cluster id.
pub fn profile_for(id: ClusterId) -> WorkloadProfile {
    match id {
        ClusterId::Venus => venus_profile(),
        ClusterId::Earth => earth_profile(),
        ClusterId::Saturn => saturn_profile(),
        ClusterId::Uranus => uranus_profile(),
        ClusterId::Philly => philly_profile(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helios_totals_match_table2() {
        let profiles = helios_profiles();
        let gpu: u64 = profiles.iter().map(|p| p.gpu_jobs).sum();
        let cpu: u64 = profiles.iter().map(|p| p.cpu_jobs).sum();
        // Table 2: 1.58M GPU jobs, 1.78M CPU jobs, 3.36M total.
        assert!((gpu as f64 / 1.58e6 - 1.0).abs() < 0.01, "gpu={gpu}");
        assert!((cpu as f64 / 1.78e6 - 1.0).abs() < 0.01, "cpu={cpu}");
        assert!(((gpu + cpu) as f64 / 3.36e6 - 1.0).abs() < 0.01);
    }

    #[test]
    fn per_cluster_totals_match_table1() {
        // Table 1 "# of Jobs": Venus 247k, Earth 873k, Saturn 1 753k, Uranus 490k.
        let t = |p: WorkloadProfile| p.gpu_jobs + p.cpu_jobs;
        assert_eq!(t(venus_profile()), 247_000);
        assert_eq!(t(earth_profile()), 873_000);
        assert_eq!(t(saturn_profile()), 1_753_000);
        assert_eq!(t(uranus_profile()), 490_000);
    }

    #[test]
    fn class_mixes_sum_to_one() {
        for p in helios_profiles().into_iter().chain([philly_profile()]) {
            let s: f64 = p.class_mix.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: {s}", p.cluster);
        }
    }

    #[test]
    fn kind_params_sane() {
        for kind in [
            TemplateKind::Debug,
            TemplateKind::Eval,
            TemplateKind::Train,
            TemplateKind::DistTrain,
            TemplateKind::Mega,
            TemplateKind::Preprocess,
            TemplateKind::Query,
        ] {
            let p = kind.params();
            assert!(p.median_of_medians > 0.0);
            assert!(p.base_cancel + p.base_fail < 1.0, "{kind:?}");
            assert_eq!(kind.is_gpu(), !p.gpu_choices.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn mega_reaches_2048_gpus() {
        let p = TemplateKind::Mega.params();
        assert_eq!(p.gpu_choices.iter().map(|c| c.0).max(), Some(2048));
    }

    #[test]
    fn utilization_targets_in_paper_band() {
        // target_util is a calibration *input*; realised utilization (checked
        // in tests/calibration.rs) lands in the paper's 65-90% band.
        for p in helios_profiles() {
            assert!(
                p.target_util >= 0.60 && p.target_util <= 0.90,
                "{}",
                p.cluster
            );
        }
    }
}
