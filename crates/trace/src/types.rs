//! Core trace record types shared across the workspace.
//!
//! A [`JobRecord`] mirrors the fields available from the Slurm `sacct` logs
//! the paper collects (§2.3): submission/start/end timing, resource demands,
//! final status, and the (interned) job name used by the QSSF predictor.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user within one cluster.
pub type UserId = u32;
/// Identifier of a virtual cluster (VC) within one cluster.
pub type VcId = u16;
/// Identifier of a job within one cluster trace.
pub type JobId = u64;
/// Identifier of an interned job-name template (see [`NamePool`]).
pub type NameId = u32;

/// Final status of a job (§2.3.1). `Timeout` and `NodeFail` are "very rare"
/// in the original traces and folded into `Failed`, as the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Finished successfully.
    Completed,
    /// Terminated by the user (early stopping, feedback-driven exploration).
    Canceled,
    /// Terminated by an internal/external error (incl. timeout, node fail).
    Failed,
}

impl JobStatus {
    /// All statuses in presentation order.
    pub const ALL: [JobStatus; 3] = [JobStatus::Completed, JobStatus::Canceled, JobStatus::Failed];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Canceled => "canceled",
            JobStatus::Failed => "failed",
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The four Helios clusters (Table 1) plus the Philly comparison cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterId {
    Venus,
    Earth,
    Saturn,
    Uranus,
    Philly,
}

impl ClusterId {
    /// The four Helios clusters, in Table 1 order.
    pub const HELIOS: [ClusterId; 4] = [
        ClusterId::Venus,
        ClusterId::Earth,
        ClusterId::Saturn,
        ClusterId::Uranus,
    ];

    /// Cluster display name.
    pub fn name(self) -> &'static str {
        match self {
            ClusterId::Venus => "Venus",
            ClusterId::Earth => "Earth",
            ClusterId::Saturn => "Saturn",
            ClusterId::Uranus => "Uranus",
            ClusterId::Philly => "Philly",
        }
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One job-log row.
///
/// Timestamps are seconds relative to the trace epoch (see
/// [`crate::time::Calendar`]). `start >= submit` always holds after replay;
/// `duration` is the execution time (not including queueing), so the job
/// occupies its resources over `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Unique id within the trace (dense, submission-ordered).
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Target virtual cluster.
    pub vc: VcId,
    /// Requested GPUs; 0 for CPU jobs.
    pub gpus: u32,
    /// Requested CPU threads (Helios allocates CPUs proportional to GPUs
    /// when unspecified, §2.1).
    pub cpus: u32,
    /// Submission timestamp.
    pub submit: i64,
    /// Execution start timestamp (assigned by the FIFO replay).
    pub start: i64,
    /// Execution time in seconds (>= 1).
    pub duration: i64,
    /// Final status.
    pub status: JobStatus,
    /// Interned base name of the job (template); see [`NamePool`].
    pub name: NameId,
    /// Per-template run index, used to synthesize the full job name
    /// (`"<base>_<run>"`), mimicking users resubmitting variations.
    pub run: u32,
}

impl JobRecord {
    /// Execution end timestamp.
    pub fn end(&self) -> i64 {
        self.start + self.duration
    }

    /// Queueing delay in seconds.
    pub fn queue_delay(&self) -> i64 {
        self.start - self.submit
    }

    /// Job completion time: queueing + execution (the JCT metric of §4.2).
    pub fn jct(&self) -> i64 {
        self.end() - self.submit
    }

    /// True if the job needs GPUs.
    pub fn is_gpu(&self) -> bool {
        self.gpus > 0
    }

    /// GPU time = duration × #GPUs (§2.3.1). Zero for CPU jobs.
    pub fn gpu_time(&self) -> i64 {
        self.duration * self.gpus as i64
    }

    /// CPU time = duration × #CPUs (§2.3.1).
    pub fn cpu_time(&self) -> i64 {
        self.duration * self.cpus as i64
    }
}

/// Interning pool for job-name templates.
///
/// The synthetic generator produces recurrent job names ("resubmit the same
/// experiment with a new run index"); storing the base once keeps a
/// multi-million-job trace compact while [`NamePool::display_name`] can
/// reconstruct the full per-job string for name-similarity features.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NamePool {
    names: Vec<String>,
}

impl NamePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a base name, returning its id. Does not deduplicate — callers
    /// intern each template exactly once at generation time.
    pub fn intern(&mut self, name: String) -> NameId {
        let id = self.names.len() as NameId;
        self.names.push(name);
        id
    }

    /// Look up a base name.
    pub fn base(&self, id: NameId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Reconstruct the full job name a user would have submitted.
    pub fn display_name(&self, job: &JobRecord) -> String {
        format!("{}_{}", self.base(job.name), job.run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobRecord {
        JobRecord {
            id: 7,
            user: 3,
            vc: 1,
            gpus: 8,
            cpus: 32,
            submit: 100,
            start: 250,
            duration: 600,
            status: JobStatus::Completed,
            name: 0,
            run: 4,
        }
    }

    #[test]
    fn derived_metrics() {
        let j = job();
        assert_eq!(j.end(), 850);
        assert_eq!(j.queue_delay(), 150);
        assert_eq!(j.jct(), 750);
        assert_eq!(j.gpu_time(), 4800);
        assert_eq!(j.cpu_time(), 19_200);
        assert!(j.is_gpu());
    }

    #[test]
    fn cpu_job_has_zero_gpu_time() {
        let mut j = job();
        j.gpus = 0;
        assert!(!j.is_gpu());
        assert_eq!(j.gpu_time(), 0);
    }

    #[test]
    fn name_pool_roundtrip() {
        let mut pool = NamePool::new();
        let a = pool.intern("train_resnet50_imagenet".into());
        let b = pool.intern("preprocess_video_frames".into());
        assert_ne!(a, b);
        assert_eq!(pool.base(a), "train_resnet50_imagenet");
        let mut j = job();
        j.name = a;
        j.run = 12;
        assert_eq!(pool.display_name(&j), "train_resnet50_imagenet_12");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn status_labels() {
        assert_eq!(JobStatus::Completed.label(), "completed");
        assert_eq!(JobStatus::ALL.len(), 3);
        assert_eq!(ClusterId::HELIOS.len(), 4);
        assert_eq!(ClusterId::Saturn.name(), "Saturn");
    }
}
