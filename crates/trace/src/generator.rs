//! The workload synthesizer: turns a [`WorkloadProfile`] into a full job
//! trace, calibrated so the trace's marginal statistics reproduce the
//! paper's published numbers (see `workload.rs` for the target inventory).
//!
//! Pipeline: build users → distribute per-user job counts (Zipf activity) →
//! calibrate per-VC offered load by rescaling template duration medians →
//! sample submission sessions (bursty, feedback-driven exploration) →
//! sample per-job GPU demand / duration / final status → FIFO-replay start
//! times (`replay.rs`).

use crate::cluster::{preset, ClusterSpec};
use crate::dist::{uniform, Discrete, LogNormal};
use crate::error::{HeliosError, HeliosResult};
use crate::heap::MinHeap;
use crate::profiles::{fluctuating_monthly, stable_monthly, SubmissionProfile};
use crate::replay::assign_start_times;
use crate::time::Calendar;
use crate::types::{ClusterId, JobRecord, JobStatus, NamePool, VcId};
use crate::users::{build_users, make_template, JobTemplate, UserProfile};
use crate::workload::{
    helios_profiles, philly_profile, StatusModel, TemplateKind, WorkloadProfile,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use std::borrow::Cow;

/// Hard cap on any job duration: 50 days (Table 2 "Maximum Duration").
pub const MAX_DURATION_SECS: i64 = 50 * 86_400;

/// Generator knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Linear scale on job counts *and* cluster size. `1.0` reproduces the
    /// paper-scale trace (3.36 M jobs across 802 nodes); smaller values
    /// shrink the cluster proportionally so per-VC load (and hence every
    /// distributional shape) is preserved.
    pub scale: f64,
    /// Master seed; combined with each profile's own sub-seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            scale: 1.0,
            seed: 2020,
        }
    }
}

impl GeneratorConfig {
    /// Config with an explicit scale and the default seed.
    pub fn with_scale(scale: f64) -> Self {
        GeneratorConfig {
            scale,
            ..Default::default()
        }
    }

    /// Check the configuration, returning every violated constraint as a
    /// [`HeliosError::InvalidConfig`].
    pub fn validate(&self) -> HeliosResult<()> {
        if !self.scale.is_finite() || self.scale <= 0.0 || self.scale > 1.0 {
            return Err(HeliosError::invalid_config(
                "scale",
                format!("must be in (0, 1], got {}", self.scale),
            ));
        }
        Ok(())
    }
}

/// A complete synthetic trace for one cluster.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The (possibly scaled) cluster the jobs ran on.
    pub spec: ClusterSpec,
    /// Calendar anchoring timestamps.
    pub calendar: Calendar,
    /// Jobs sorted by submission time, ids dense in submission order.
    pub jobs: Vec<JobRecord>,
    /// Interned job-name templates.
    pub names: NamePool,
}

impl Trace {
    /// Iterator over GPU jobs.
    pub fn gpu_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| j.is_gpu())
    }

    /// Iterator over CPU jobs.
    pub fn cpu_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| !j.is_gpu())
    }

    /// Jobs submitted within month `m` (0-based into the calendar).
    pub fn jobs_in_month(&self, m: usize) -> impl Iterator<Item = &JobRecord> {
        let (lo, hi) = self.calendar.month_range(m);
        self.jobs
            .iter()
            .filter(move |j| j.submit >= lo && j.submit < hi)
    }

    /// Total GPUs of the backing cluster.
    pub fn total_gpus(&self) -> u32 {
        self.spec.total_gpus()
    }

    /// Number of distinct users appearing in the trace.
    pub fn num_users(&self) -> usize {
        let mut users: Vec<u32> = self.jobs.iter().map(|j| j.user).collect();
        users.sort_unstable();
        users.dedup();
        users.len()
    }
}

/// Minimum number of VCs a scaled cluster keeps (Fig. 4 style per-VC
/// analyses need a top-10).
const MIN_SCALED_VCS: usize = 10;

/// Scale a cluster spec. Node counts shrink proportionally; VCs that would
/// fall below 2 nodes are dropped (except that the largest
/// `MIN_SCALED_VCS` (10) VCs are always kept at ≥ 2 nodes), so the scaled
/// cluster keeps roughly `scale` × the original capacity instead of being
/// inflated by per-VC floors.
///
/// The no-op path (`scale == 1.0`) borrows the input instead of cloning
/// it; only an actually-scaled spec allocates (and then builds its VC list
/// directly instead of cloning the input's VCs twice).
pub fn scale_spec(spec: &ClusterSpec, scale: f64) -> HeliosResult<Cow<'_, ClusterSpec>> {
    if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
        return Err(HeliosError::invalid_config(
            "scale",
            format!("must be in (0, 1], got {scale}"),
        ));
    }
    if (scale - 1.0).abs() < f64::EPSILON {
        return Ok(Cow::Borrowed(spec));
    }
    let mut order: Vec<usize> = (0..spec.num_vcs()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(spec.vcs[i].nodes));
    let keep_floor: Vec<bool> = {
        let mut k = vec![false; spec.num_vcs()];
        for &i in order.iter().take(MIN_SCALED_VCS) {
            k[i] = true;
        }
        k
    };
    let mut vcs: Vec<_> = spec
        .vcs
        .iter()
        .enumerate()
        .filter_map(|(i, vc)| {
            let nodes = (vc.nodes as f64 * scale).round() as u32;
            let nodes = if keep_floor[i] { nodes.max(2) } else { nodes };
            (nodes >= 2).then(|| {
                let mut v = vc.clone();
                v.nodes = nodes;
                v
            })
        })
        .collect();
    for (i, vc) in vcs.iter_mut().enumerate() {
        vc.id = i as VcId;
    }
    let nodes = vcs.iter().map(|v| v.nodes).sum();
    Ok(Cow::Owned(ClusterSpec {
        vcs,
        nodes,
        ..*spec
    }))
}

/// Largest-remainder apportionment of `total` across `weights`.
fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || total == 0 {
        return vec![0; weights.len()];
    }
    let raw: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<u64> = raw.iter().map(|r| r.floor() as u64).collect();
    let mut remainder = total - counts.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa).unwrap()
    });
    let mut cursor = 0;
    while remainder > 0 {
        counts[order[cursor % order.len()]] += 1;
        remainder -= 1;
        cursor += 1;
    }
    counts
}

/// Effective cancellation probability: grows with GPU count so completion
/// falls (and cancellation rises) with job size, Fig. 7(b).
fn cancel_probability(base: f64, gpus: u32) -> f64 {
    let g = gpus.max(1) as f64;
    (base * (1.0 + 0.38 * g.log2())).min(0.85)
}

/// Per-user bookkeeping while emitting jobs. Jobs are emitted into
/// per-stream buffers (one stream per user, plus one for the mega
/// submissions) that the finalization step sorts independently and k-way
/// merges — the multi-million-entry global sort is gone, and the
/// per-stream sorts fan out over rayon on multi-core hosts.
struct Emitter<'a> {
    rng: ChaCha12Rng,
    profile: &'a WorkloadProfile,
    calendar: &'a Calendar,
    streams: Vec<Vec<JobRecord>>,
    /// Per-template run counters (indexed by NameId).
    runs: Vec<u32>,
}

impl<'a> Emitter<'a> {
    fn new(
        profile: &'a WorkloadProfile,
        calendar: &'a Calendar,
        names_len: usize,
        rng: ChaCha12Rng,
    ) -> Self {
        Emitter {
            rng,
            profile,
            calendar,
            streams: Vec::new(),
            runs: vec![0; names_len],
        }
    }

    /// Open a fresh emission stream; subsequent [`Emitter::emit`] calls
    /// append to it.
    fn begin_stream(&mut self) {
        self.streams.push(Vec::new());
    }

    /// Iterate every emitted job (emission order within a stream).
    fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.streams.iter().flatten()
    }

    /// Iterate every emitted job mutably.
    fn jobs_mut(&mut self) -> impl Iterator<Item = &mut JobRecord> {
        self.streams.iter_mut().flatten()
    }

    /// Geometric-ish burst size: users submit several variations of the same
    /// experiment back-to-back (feedback-driven exploration, §1).
    fn burst_size(&mut self, cap: u64) -> u64 {
        let mut b = 1u64;
        while b < 6 && self.rng.gen_bool(0.38) {
            b += 1;
        }
        b.min(cap.max(1))
    }

    /// Sample one job's final status and duration from its intended duration.
    fn finalize(&mut self, intended: f64, gpus: u32, t: &JobTemplate) -> (JobStatus, i64) {
        let p_fail = t.fail;
        let p_cancel = cancel_probability(t.cancel, gpus);
        let r: f64 = self.rng.gen();
        let (status, dur) = if r < p_fail {
            let d = match self.profile.status_model {
                StatusModel::Helios => {
                    // §3.2.2: "most failed jobs are terminated within a short
                    // time" — but Fig. 1b attributes 9.3% of GPU time to
                    // failures, so a minority are late crashes (node failure,
                    // OOM deep into training).
                    if self.rng.gen_bool(0.3) {
                        intended * uniform(&mut self.rng, 0.2, 1.0)
                    } else {
                        let quick = LogNormal::from_median(100.0, 1.2).sample(&mut self.rng);
                        intended.min(quick)
                    }
                }
                StatusModel::Philly => intended * uniform(&mut self.rng, 0.2, 1.2),
            };
            (JobStatus::Failed, d)
        } else if r < p_fail + p_cancel {
            (
                JobStatus::Canceled,
                intended * uniform(&mut self.rng, 0.05, 0.95),
            )
        } else {
            (JobStatus::Completed, intended)
        };
        (status, (dur.round() as i64).clamp(1, MAX_DURATION_SECS))
    }

    /// Emit `count` jobs for `user` drawn from `templates`, with submission
    /// times from `submit_profile`.
    fn emit(
        &mut self,
        user: &UserProfile,
        templates: &[JobTemplate],
        count: u64,
        submit_profile: &SubmissionProfile,
        max_burst: u64,
    ) {
        if templates.is_empty() || count == 0 {
            return;
        }
        let weights: Vec<f64> = templates.iter().map(|t| t.weight).collect();
        let picker = Discrete::new(&weights);
        let mut remaining = count;
        while remaining > 0 {
            let t = &templates[picker.sample(&mut self.rng)];
            let burst = self.burst_size(remaining.min(max_burst));
            let base = submit_profile.sample(&mut self.rng);
            for k in 0..burst {
                let submit = (base + k as i64 * self.rng.gen_range(15..180i64))
                    .min(self.calendar.total_seconds() - 1);
                let gpus = t.sample_gpus(&mut self.rng);
                let intended = match t.kind {
                    // Queries take 1–2 s flat.
                    TemplateKind::Query => {
                        if self.rng.gen_bool(0.8) {
                            1.0
                        } else {
                            2.0
                        }
                    }
                    _ => t.duration.sample(&mut self.rng),
                };
                let (status, duration) = self.finalize(intended, gpus, t);
                let cpus = match t.kind {
                    TemplateKind::Query => self.rng.gen_range(1..=4),
                    TemplateKind::Preprocess => self.rng.gen_range(8..=64),
                    _ => 6 * gpus,
                };
                let run = &mut self.runs[t.name as usize];
                self.streams
                    .last_mut()
                    .expect("begin_stream called before emit")
                    .push(JobRecord {
                        id: 0, // assigned after the global sort
                        user: user.id,
                        vc: t.vc,
                        gpus,
                        cpus,
                        submit,
                        start: submit, // refined by replay
                        duration,
                        status,
                        name: t.name,
                        run: *run,
                    });
                *run += 1;
            }
            remaining -= burst;
        }
    }
}

/// Generate the trace for one workload profile.
pub fn generate(profile: &WorkloadProfile, cfg: &GeneratorConfig) -> HeliosResult<Trace> {
    cfg.validate()?;
    let full = preset(profile.cluster);
    let full_gpus = full.total_gpus();
    let spec = match scale_spec(&full, cfg.scale)? {
        // No-op scale: reuse the owned preset outright (no clone at all).
        Cow::Borrowed(_) => full,
        Cow::Owned(scaled) => scaled,
    };
    let calendar = match profile.cluster {
        ClusterId::Philly => Calendar::philly_2017(),
        _ => Calendar::helios_2020(),
    };
    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ profile.seed.wrapping_mul(0x9E37));
    let mut names = NamePool::new();
    let users = build_users(&spec, profile, &mut names, &mut rng);

    // --- Target counts. Counts scale with the *realised* capacity ratio
    // (which equals `cfg.scale` up to VC rounding), so per-VC load — and
    // hence queueing behaviour — is preserved at any scale. ---
    let count_scale = spec.total_gpus() as f64 / full_gpus as f64;
    let gpu_target = (profile.gpu_jobs as f64 * count_scale).round() as u64;
    let preprocess_target =
        (profile.cpu_jobs as f64 * (1.0 - profile.query_share) * count_scale).round() as u64;
    let query_target = (profile.cpu_jobs as f64 * profile.query_share * count_scale).round() as u64;

    let gpu_counts = apportion(
        gpu_target,
        &users.iter().map(|u| u.gpu_activity).collect::<Vec<_>>(),
    );
    let prep_counts = apportion(
        preprocess_target,
        &users.iter().map(|u| u.cpu_activity).collect::<Vec<_>>(),
    );
    let query_counts = apportion(
        query_target,
        &users.iter().map(|u| u.query_activity).collect::<Vec<_>>(),
    );

    // --- Per-VC offered-load targets: drawn around the cluster's
    // utilization target, capped below saturation (`rho_max`) so queues stay
    // finite over the 6-month horizon. The calibration itself happens
    // *after* sampling (exact; see below). ---
    let horizon = calendar.total_seconds() as f64;
    let num_vcs = spec.num_vcs();
    // VCs running long jobs queue longer (Fig. 4: queuing delay is
    // approximately proportional to average job duration). The calibration
    // below fixes each VC's GPU time to rho * capacity, which makes the
    // eventual average duration proportional to capacity / (jobs * width);
    // coupling rho to that signal reproduces the paper's correlation: the
    // production-style VCs (few, long, wide jobs) run hottest.
    let duration_signal: Vec<f64> = {
        let mut n_vc = vec![0.0f64; num_vcs];
        let mut g_vc = vec![0.0f64; num_vcs];
        for (u, &count) in users.iter().zip(&gpu_counts) {
            if count == 0 {
                continue;
            }
            let total_w: f64 = u.gpu_templates.iter().map(|t| t.weight).sum();
            let mean_g: f64 = u
                .gpu_templates
                .iter()
                .map(|t| t.weight / total_w * t.mean_gpus())
                .sum();
            n_vc[u.vc as usize] += count as f64;
            g_vc[u.vc as usize] += count as f64 * mean_g;
        }
        let raw: Vec<f64> = (0..num_vcs)
            .map(|vc| {
                let cap = spec.vc_gpus(vc as VcId) as f64;
                (cap * horizon / (g_vc[vc].max(1.0) * 600.0)).ln()
            })
            .collect();
        let mean = raw.iter().sum::<f64>() / num_vcs as f64;
        let sd = (raw.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / num_vcs as f64)
            .sqrt()
            .max(1e-9);
        raw.iter().map(|x| (x - mean) / sd).collect()
    };
    let rho: Vec<f64> = (0..num_vcs)
        .map(|vc| {
            (profile.target_util
                + profile.util_spread
                    * (0.5 * crate::dist::standard_normal(&mut rng) + 0.9 * duration_signal[vc]))
                .clamp(0.15, profile.rho_max)
        })
        .collect();

    // --- Mega submissions (Saturn): extreme-scale requests that no static
    // VC can host; they end canceled/failed within minutes (Table 2's
    // 2 048-GPU maximum request). ---
    let mega_count = if profile.mega_jobs > 0 {
        ((profile.mega_jobs as f64 * cfg.scale).round() as u64).max(3)
    } else {
        0
    };
    let mega_template = if mega_count > 0 {
        // Owned by the most active production user of the largest VC.
        let big_vc = (0..num_vcs)
            .max_by_key(|&v| spec.vc_gpus(v as VcId))
            .unwrap() as VcId;
        let owner = users
            .iter()
            .filter(|u| u.vc == big_vc)
            .max_by(|a, b| a.gpu_activity.partial_cmp(&b.gpu_activity).unwrap())
            .map(|u| u.id)
            .unwrap_or(0);
        Some((
            owner,
            make_template(
                TemplateKind::Mega,
                owner,
                big_vc,
                profile.duration_scale,
                1.0,
                profile.gpu_cap,
                1.0,
                &mut names,
                &mut rng,
            ),
        ))
    } else {
        None
    };

    // --- Submission-time profiles (Fig. 2/3 shapes). ---
    let m = calendar.num_months();
    let single_profile = SubmissionProfile::new(&calendar, &fluctuating_monthly(m, profile.seed));
    let multi_profile = SubmissionProfile::new(&calendar, &stable_monthly(m, profile.seed));
    let cpu_profile = SubmissionProfile::new(&calendar, &stable_monthly(m, profile.seed ^ 0xC0));

    // --- Emit jobs: one stream per user (plus one for the mega
    // submissions), merged below. ---
    let emitter_rng = ChaCha12Rng::seed_from_u64(rng.gen());
    let mut emitter = Emitter::new(profile, &calendar, names.len(), emitter_rng);
    for ((u, &gc), (&pc, &qc)) in users
        .iter()
        .zip(&gpu_counts)
        .zip(prep_counts.iter().zip(&query_counts))
    {
        emitter.begin_stream();
        let gpu_prof = if u.multi_gpu_user {
            &multi_profile
        } else {
            &single_profile
        };
        emitter.emit(u, &u.gpu_templates, gc, gpu_prof, 6);
        if pc + qc > 0 {
            let (prep, query): (Vec<JobTemplate>, Vec<JobTemplate>) = u
                .cpu_templates
                .iter()
                .cloned()
                .partition(|t| t.kind == TemplateKind::Preprocess);
            emitter.emit(u, &prep, pc, &cpu_profile, 4);
            // Automation scripts fire in longer trains.
            emitter.emit(u, &query, qc, &cpu_profile, 24);
        }
    }
    let mut mega_name = None;
    if let Some((owner, template)) = mega_template {
        let owner_profile = users.iter().find(|u| u.id == owner).unwrap();
        mega_name = Some(template.name);
        emitter.begin_stream();
        emitter.emit(owner_profile, &[template], mega_count, &multi_profile, 2);
        // Guarantee the headline 2 048-GPU request (Table 2) exists at any
        // scale/seed: pin the first mega submission to the cluster maximum.
        // The mega stream was just opened, so its first entry is the first
        // emitted mega job.
        if let Some(first) = emitter
            .streams
            .last_mut()
            .and_then(|stream| stream.first_mut())
        {
            debug_assert_eq!(Some(first.name), mega_name);
            first.gpus = profile.gpu_cap;
        }
    }

    // --- Exact load calibration: rescale the sampled durations of the
    // load-bearing kinds (Eval/Train/DistTrain) so each VC's realised
    // offered GPU time equals `rho[vc] * capacity`. Debug jobs stay short —
    // debugging takes minutes regardless of how busy a cluster is. ---
    let kind_by_name: Vec<TemplateKind> = {
        let mut kinds = vec![TemplateKind::Debug; names.len()];
        for u in &users {
            for t in u.gpu_templates.iter().chain(&u.cpu_templates) {
                kinds[t.name as usize] = t.kind;
            }
        }
        if let Some(id) = mega_name {
            kinds[id as usize] = TemplateKind::Mega;
        }
        kinds
    };
    let scalable = |k: TemplateKind| {
        matches!(
            k,
            TemplateKind::Eval | TemplateKind::Train | TemplateKind::DistTrain
        )
    };
    let mut fixed_load = vec![0.0f64; num_vcs];
    let mut scalable_load = vec![0.0f64; num_vcs];
    for j in emitter.jobs() {
        if !j.is_gpu() {
            continue;
        }
        let bucket = if scalable(kind_by_name[j.name as usize]) {
            &mut scalable_load
        } else {
            &mut fixed_load
        };
        bucket[j.vc as usize] += j.gpu_time() as f64;
    }
    let kappa: Vec<f64> = (0..num_vcs)
        .map(|vc| {
            let need = rho[vc] * spec.vc_gpus(vc as VcId) as f64 * horizon - fixed_load[vc];
            if scalable_load[vc] > 0.0 && need > 0.0 {
                (need / scalable_load[vc]).clamp(0.02, 200.0)
            } else {
                1.0
            }
        })
        .collect();
    for j in emitter.jobs_mut() {
        if j.is_gpu() && scalable(kind_by_name[j.name as usize]) {
            let d = j.duration as f64 * kappa[j.vc as usize];
            j.duration = (d.round() as i64).clamp(1, MAX_DURATION_SECS);
        }
    }

    // Submission-ordered ids; ties broken deterministically by (user, name).
    // Every job key (submit, user, name, run) is unique — the run counter
    // separates same-template resubmissions — so sorting each stream and
    // k-way merging reproduces the historical global sort byte for byte
    // (see `merge_streams`), at a fraction of its comparisons and with the
    // per-stream sorts fanned out over rayon.
    let mut jobs = merge_streams(emitter.streams);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = i as u64;
    }
    assign_start_times(&mut jobs, &spec);

    Ok(Trace {
        spec,
        calendar,
        jobs,
        names,
    })
}

/// Submission-order sort key `(submit, user, name, run)`, packed into one
/// `u128` so heap sift-downs and sort comparisons are single integer
/// compares instead of 4-field lexicographic ones. Unique per job (the run
/// counter separates same-template resubmissions), so it defines one total
/// order. Layout: submit 40 bits (non-negative, < ~34 years), user 24,
/// name 32, run 32.
type SortKey = u128;

fn sort_key(j: &JobRecord) -> SortKey {
    debug_assert!((0..1 << 40).contains(&j.submit));
    debug_assert!(j.user < 1 << 24);
    ((j.submit as u128) << 88) | ((j.user as u128) << 64) | ((j.name as u128) << 32) | j.run as u128
}

/// Streams remaining after pairwise consolidation go through the final
/// heap-driven k-way merge. Small enough that a sift touches ≤ 2 levels.
const HEAP_FANIN: usize = 8;

/// Sort each emission stream independently (rayon fan-out; keys are unique
/// so `sort_unstable` is deterministic), consolidate them with rounds of
/// linear two-way merges (pairs fan out over rayon), and finish with a
/// k-way merge through the simulator's 4-ary [`MinHeap`]. Because the key
/// order is total, the output is byte-identical to globally sorting the
/// concatenated streams.
fn merge_streams(streams: Vec<Vec<JobRecord>>) -> Vec<JobRecord> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    merge_streams_with(streams, threads)
}

/// [`merge_streams`] with an explicit thread budget (tested directly so
/// both strategies are exercised regardless of the host's core count).
fn merge_streams_with(mut streams: Vec<Vec<JobRecord>>, threads: usize) -> Vec<JobRecord> {
    streams.retain(|s| !s.is_empty());
    // Sequential hosts: one flat pdqsort over the packed keys beats any
    // merge tree (no parallelism to exploit, fewer memory round-trips).
    // The key order is total, so both strategies emit the identical
    // sequence.
    if threads < 2 {
        let mut all: Vec<JobRecord> = streams.into_iter().flatten().collect();
        all.sort_unstable_by_key(sort_key);
        return all;
    }
    streams
        .par_iter_mut()
        .with_min_len(1)
        .for_each(|s| s.sort_unstable_by_key(sort_key));
    // Pairwise consolidation: cheap streaming merges (one compare, one
    // copy per element), pairs fanned out over rayon, until the stream
    // count fits the heap fan-in.
    while streams.len() > HEAP_FANIN {
        let mut it = streams.into_iter();
        let mut pairs: Vec<(Vec<JobRecord>, Option<Vec<JobRecord>>)> = Vec::new();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        streams = pairs
            .into_par_iter()
            .with_min_len(1)
            .map(|(a, b)| match b {
                Some(b) => merge_two(a, b),
                None => a,
            })
            .collect();
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    match streams.len() {
        0 => return Vec::new(),
        1 => return streams.pop().expect("one stream"),
        _ => {}
    }
    let mut cursor: Vec<usize> = vec![0; streams.len()];
    let mut heap: MinHeap<(SortKey, usize)> = MinHeap::new();
    for (si, stream) in streams.iter().enumerate() {
        heap.push((sort_key(&stream[0]), si));
    }
    let mut out = Vec::with_capacity(total);
    while let Some((_, si)) = heap.pop() {
        let stream = &streams[si];
        out.push(stream[cursor[si]]);
        cursor[si] += 1;
        if let Some(next) = stream.get(cursor[si]) {
            heap.push((sort_key(next), si));
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Linear merge of two key-sorted runs.
fn merge_two(a: Vec<JobRecord>, b: Vec<JobRecord>) -> Vec<JobRecord> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if sort_key(x) <= sort_key(y) {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, _) => {
                out.extend(ib);
                break;
            }
        }
    }
    out
}

/// Generate all four Helios cluster traces (Table 1 order).
pub fn generate_helios(cfg: &GeneratorConfig) -> HeliosResult<Vec<Trace>> {
    helios_profiles().iter().map(|p| generate(p, cfg)).collect()
}

/// Generate the Philly comparison trace.
pub fn generate_philly(cfg: &GeneratorConfig) -> HeliosResult<Trace> {
    generate(&philly_profile(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{earth_profile, venus_profile};

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            scale: 0.05,
            seed: 7,
        }
    }

    #[test]
    fn job_counts_hit_target() {
        let p = venus_profile();
        let cfg = small_cfg();
        let t = generate(&p, &cfg).unwrap();
        // Counts scale with the realised capacity ratio (== cfg.scale up to
        // VC rounding).
        let ratio = t.total_gpus() as f64 / preset(p.cluster).total_gpus() as f64;
        let gpu = t.gpu_jobs().count() as f64;
        let cpu = t.cpu_jobs().count() as f64;
        let gpu_target = p.gpu_jobs as f64 * ratio;
        let cpu_target = p.cpu_jobs as f64 * ratio;
        assert!(
            (gpu / gpu_target - 1.0).abs() < 0.02,
            "gpu={gpu} target={gpu_target}"
        );
        assert!(
            (cpu / cpu_target - 1.0).abs() < 0.02,
            "cpu={cpu} target={cpu_target}"
        );
        // The top-10-VC floor bounds how small a cluster can shrink, so the
        // realised ratio may sit above the requested scale.
        assert!(
            ratio >= cfg.scale * 0.9 && ratio <= cfg.scale * 4.0,
            "ratio={ratio}"
        );
    }

    #[test]
    fn ids_dense_and_submission_sorted() {
        let t = generate(&venus_profile(), &small_cfg()).unwrap();
        for (i, w) in t.jobs.windows(2).enumerate() {
            assert!(w[0].submit <= w[1].submit, "unsorted at {i}");
        }
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
    }

    #[test]
    fn durations_within_bounds() {
        let t = generate(&venus_profile(), &small_cfg()).unwrap();
        for j in &t.jobs {
            assert!(j.duration >= 1 && j.duration <= MAX_DURATION_SECS);
            assert!(j.submit >= 0 && j.submit < t.calendar.total_seconds());
            assert!(j.start >= j.submit);
        }
    }

    #[test]
    fn earth_is_mostly_single_gpu() {
        let t = generate(&earth_profile(), &small_cfg()).unwrap();
        let gpu: Vec<&JobRecord> = t.gpu_jobs().collect();
        let singles = gpu.iter().filter(|j| j.gpus == 1).count();
        let share = singles as f64 / gpu.len() as f64;
        assert!(share > 0.75, "Earth single-GPU share = {share}");
    }

    #[test]
    fn status_mix_close_to_fig7() {
        // Pool two clusters for stability at small scale.
        let cfg = small_cfg();
        let mut gpu_status = [0u64; 3];
        let mut cpu_status = [0u64; 3];
        for p in [venus_profile(), earth_profile()] {
            let t = generate(&p, &cfg).unwrap();
            for j in &t.jobs {
                let idx = match j.status {
                    JobStatus::Completed => 0,
                    JobStatus::Canceled => 1,
                    JobStatus::Failed => 2,
                };
                if j.is_gpu() {
                    gpu_status[idx] += 1;
                } else {
                    cpu_status[idx] += 1;
                }
            }
        }
        let gt: u64 = gpu_status.iter().sum();
        let ct: u64 = cpu_status.iter().sum();
        let g_complete = gpu_status[0] as f64 / gt as f64;
        let c_complete = cpu_status[0] as f64 / ct as f64;
        // Fig. 7a: GPU 62.4% completed, CPU 90.9% completed.
        assert!(
            (g_complete - 0.624).abs() < 0.10,
            "gpu complete {g_complete}"
        );
        assert!(
            (c_complete - 0.909).abs() < 0.06,
            "cpu complete {c_complete}"
        );
        assert!(c_complete > g_complete);
    }

    #[test]
    fn scale_spec_preserves_vc_floor() {
        let spec = preset(ClusterId::Saturn);
        let s = scale_spec(&spec, 0.03).unwrap();
        assert!(s.vcs.iter().all(|v| v.nodes >= 2));
        assert_eq!(s.nodes, s.vcs.iter().map(|v| v.nodes).sum::<u32>());
        assert!(scale_spec(&spec, 0.0).is_err());
        assert!(scale_spec(&spec, 1.5).is_err());
        assert!(scale_spec(&spec, f64::NAN).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&venus_profile(), &small_cfg()).unwrap();
        let b = generate(&venus_profile(), &small_cfg()).unwrap();
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.jobs[100], b.jobs[100]);
        assert_eq!(a.jobs.last(), b.jobs.last());
    }

    #[test]
    fn merge_strategies_agree_byte_for_byte() {
        // Synthetic streams with colliding submits (unique (name, run)
        // keys) exercise both the flat-sort and the pairwise+heap merge
        // paths, which must emit the identical sequence.
        let mk = |user: u32, name: u32, run: u32, submit: i64| JobRecord {
            id: 0,
            user,
            vc: 0,
            gpus: 1,
            cpus: 0,
            submit,
            start: submit,
            duration: 10,
            status: JobStatus::Completed,
            name,
            run,
        };
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut streams = Vec::new();
        for user in 0..23u32 {
            let mut s = Vec::new();
            for run in 0..257u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.push(mk(user, user * 31, run, (x % 1000) as i64));
            }
            streams.push(s);
        }
        let flat = merge_streams_with(streams.clone(), 1);
        let merged = merge_streams_with(streams, 4);
        assert_eq!(flat.len(), 23 * 257);
        assert_eq!(flat, merged);
        for w in flat.windows(2) {
            assert!(sort_key(&w[0]) < sort_key(&w[1]));
        }
    }

    #[test]
    fn apportion_exact() {
        let counts = apportion(100, &[1.0, 2.0, 3.0, 0.0]);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        assert_eq!(counts[3], 0);
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
    }

    #[test]
    fn completion_rate_decreases_with_gpu_demand() {
        let cfg = GeneratorConfig {
            scale: 0.1,
            seed: 7,
        };
        let t = generate(&venus_profile(), &cfg).unwrap();
        let rate = |lo: u32, hi: u32| {
            let sel: Vec<&JobRecord> = t
                .gpu_jobs()
                .filter(|j| j.gpus >= lo && j.gpus <= hi)
                .collect();
            sel.iter()
                .filter(|j| j.status == JobStatus::Completed)
                .count() as f64
                / sel.len().max(1) as f64
        };
        let small = rate(1, 4);
        let large = rate(32, 64);
        assert!(small > large + 0.1, "small={small} large={large}");
    }
}
