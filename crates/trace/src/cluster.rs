//! Cluster and virtual-cluster (VC) specifications.
//!
//! Presets reproduce Table 1 of the paper: four Helios clusters (Venus,
//! Earth, Saturn, Uranus; 802 nodes / 6 416 GPUs / 105 VCs in total) plus a
//! Philly-like cluster used for the generality evaluation (§4.2.3, §4.3.3).

use crate::types::{ClusterId, VcId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// GPU generation installed in a cluster (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuModel {
    Volta,
    Pascal,
    /// Saturn mixes Pascal and Volta nodes.
    Mixed,
}

impl GpuModel {
    /// Display label matching Table 1.
    pub fn label(self) -> &'static str {
        match self {
            GpuModel::Volta => "Volta",
            GpuModel::Pascal => "Pascal",
            GpuModel::Mixed => "Pascal & Volta",
        }
    }
}

/// One virtual cluster: a static, exclusive partition of whole nodes
/// dedicated to a single tenant group (§2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcSpec {
    /// Dense id within the cluster.
    pub id: VcId,
    /// Paper-style opaque name (e.g. `vc6YE`).
    pub name: String,
    /// Number of whole nodes assigned to this VC.
    pub nodes: u32,
}

/// A physical cluster: homogeneous nodes statically partitioned into VCs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub id: ClusterId,
    /// Total compute nodes (Table 1 row "# of Nodes").
    pub nodes: u32,
    /// GPUs per node (8 for all Helios clusters: e.g. 1 064 GPUs / 133 nodes).
    pub gpus_per_node: u32,
    /// CPU threads per node (Table 1 row "CPU").
    pub cpu_threads_per_node: u32,
    /// RAM per node in GB (Table 1).
    pub ram_gb_per_node: u32,
    /// Interconnect label (Table 1 row "Network").
    pub network: &'static str,
    /// GPU generation (Table 1).
    pub gpu_model: GpuModel,
    /// Static VC partition; `sum(vc.nodes) == nodes`.
    pub vcs: Vec<VcSpec>,
}

impl ClusterSpec {
    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// GPUs in one VC.
    pub fn vc_gpus(&self, vc: VcId) -> u32 {
        self.vcs[vc as usize].nodes * self.gpus_per_node
    }

    /// Number of VCs.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Largest VC capacity in GPUs.
    pub fn max_vc_gpus(&self) -> u32 {
        self.vcs
            .iter()
            .map(|v| v.nodes * self.gpus_per_node)
            .max()
            .unwrap_or(0)
    }
}

/// Deterministically generate paper-style VC names (`vc` + 3 base-62 chars).
fn vc_name(rng: &mut ChaCha12Rng) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let mut s = String::from("vc");
    for _ in 0..3 {
        s.push(ALPHABET[rng.gen_range(0..ALPHABET.len())] as char);
    }
    s
}

/// Split `total_nodes` across `num_vcs` VCs with a skewed (head-heavy)
/// allocation resembling Fig. 4: one or two large VCs (tens of nodes) and a
/// long tail of 2–8 node VCs. Deterministic given `seed`.
fn partition_vcs(total_nodes: u32, num_vcs: usize, seed: u64) -> Vec<VcSpec> {
    assert!(num_vcs as u32 * 2 <= total_nodes, "need >= 2 nodes per VC");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    // Zipf-ish raw shares, then round to whole nodes with a 2-node floor.
    let raw: Vec<f64> = (0..num_vcs)
        .map(|i| 1.0 / ((i + 1) as f64).powf(0.85))
        .collect();
    let total_raw: f64 = raw.iter().sum();
    let mut nodes: Vec<u32> = raw
        .iter()
        .map(|r| ((r / total_raw) * total_nodes as f64).floor().max(2.0) as u32)
        .collect();
    // Distribute the rounding remainder (or claw back overshoot) over the
    // largest VCs so totals match exactly.
    let mut assigned: i64 = nodes.iter().map(|&n| n as i64).sum();
    let mut i = 0;
    while assigned < total_nodes as i64 {
        nodes[i % num_vcs] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > total_nodes as i64 {
        let j = i % num_vcs;
        if nodes[j] > 2 {
            nodes[j] -= 1;
            assigned -= 1;
        }
        i += 1;
    }
    nodes
        .into_iter()
        .enumerate()
        .map(|(id, n)| VcSpec {
            id: id as VcId,
            name: vc_name(&mut rng),
            nodes: n,
        })
        .collect()
}

/// Venus preset (Table 1): 133 nodes, 1 064 Volta GPUs, 27 VCs.
pub fn venus() -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Venus,
        nodes: 133,
        gpus_per_node: 8,
        cpu_threads_per_node: 48,
        ram_gb_per_node: 376,
        network: "IB EDR",
        gpu_model: GpuModel::Volta,
        vcs: partition_vcs(133, 27, 0x56_45_4e_55),
    }
}

/// Earth preset (Table 1): 143 nodes, 1 144 Volta GPUs, 25 VCs.
pub fn earth() -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Earth,
        nodes: 143,
        gpus_per_node: 8,
        cpu_threads_per_node: 48,
        ram_gb_per_node: 376,
        network: "IB EDR",
        gpu_model: GpuModel::Volta,
        vcs: partition_vcs(143, 25, 0x45_41_52_54),
    }
}

/// Saturn preset (Table 1): 262 nodes, 2 096 mixed GPUs, 28 VCs.
pub fn saturn() -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Saturn,
        nodes: 262,
        gpus_per_node: 8,
        cpu_threads_per_node: 64,
        ram_gb_per_node: 256,
        network: "IB FDR",
        gpu_model: GpuModel::Mixed,
        vcs: partition_vcs(262, 28, 0x53_41_54_55),
    }
}

/// Uranus preset (Table 1): 264 nodes, 2 112 Pascal GPUs, 25 VCs.
pub fn uranus() -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Uranus,
        nodes: 264,
        gpus_per_node: 8,
        cpu_threads_per_node: 64,
        ram_gb_per_node: 256,
        network: "IB FDR",
        gpu_model: GpuModel::Pascal,
        vcs: partition_vcs(264, 25, 0x55_52_41_4e),
    }
}

/// Philly-like preset. The paper reports 14 VCs and a cluster "over twice"
/// the scale of Earth (Fig. 15 shows ~400 GPU nodes); we model 321 nodes.
pub fn philly() -> ClusterSpec {
    ClusterSpec {
        id: ClusterId::Philly,
        nodes: 321,
        gpus_per_node: 8,
        cpu_threads_per_node: 48,
        ram_gb_per_node: 256,
        network: "IB + Ethernet",
        gpu_model: GpuModel::Pascal,
        vcs: partition_vcs(321, 14, 0x50_48_49_4c),
    }
}

/// All four Helios presets in Table 1 order.
pub fn helios_clusters() -> Vec<ClusterSpec> {
    vec![venus(), earth(), saturn(), uranus()]
}

/// Preset for an arbitrary cluster id.
pub fn preset(id: ClusterId) -> ClusterSpec {
    match id {
        ClusterId::Venus => venus(),
        ClusterId::Earth => earth(),
        ClusterId::Saturn => saturn(),
        ClusterId::Uranus => uranus(),
        ClusterId::Philly => philly(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let clusters = helios_clusters();
        let nodes: u32 = clusters.iter().map(|c| c.nodes).sum();
        let gpus: u32 = clusters.iter().map(|c| c.total_gpus()).sum();
        let vcs: usize = clusters.iter().map(|c| c.num_vcs()).sum();
        assert_eq!(nodes, 802);
        assert_eq!(gpus, 6_416);
        assert_eq!(vcs, 105);
    }

    #[test]
    fn per_cluster_table1_rows() {
        assert_eq!(venus().total_gpus(), 1_064);
        assert_eq!(earth().total_gpus(), 1_144);
        assert_eq!(saturn().total_gpus(), 2_096);
        assert_eq!(uranus().total_gpus(), 2_112);
        assert_eq!(venus().num_vcs(), 27);
        assert_eq!(earth().num_vcs(), 25);
        assert_eq!(saturn().num_vcs(), 28);
        assert_eq!(uranus().num_vcs(), 25);
    }

    #[test]
    fn vc_partition_is_exact_and_skewed() {
        for c in helios_clusters().into_iter().chain([philly()]) {
            let sum: u32 = c.vcs.iter().map(|v| v.nodes).sum();
            assert_eq!(sum, c.nodes, "{}", c.id);
            assert!(c.vcs.iter().all(|v| v.nodes >= 2), "{}", c.id);
            // Head-heavy: the largest VC should hold several times the
            // median VC (Fig. 4 shows 208-GPU vs 32-GPU VCs in Earth).
            let mut sizes: Vec<u32> = c.vcs.iter().map(|v| v.nodes).collect();
            sizes.sort_unstable();
            let median = sizes[sizes.len() / 2];
            let max = *sizes.last().unwrap();
            assert!(max >= 3 * median, "{}: max={max} median={median}", c.id);
        }
    }

    #[test]
    fn vc_names_are_paper_style_and_unique() {
        let c = earth();
        let mut names: Vec<&str> = c.vcs.iter().map(|v| v.name.as_str()).collect();
        assert!(names.iter().all(|n| n.starts_with("vc") && n.len() == 5));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c.num_vcs(), "VC names should be unique");
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(earth(), earth());
        assert_eq!(philly(), philly());
    }

    #[test]
    fn gpu_model_labels() {
        assert_eq!(saturn().gpu_model.label(), "Pascal & Volta");
        assert_eq!(uranus().gpu_model.label(), "Pascal");
    }
}
