//! The workspace-wide error type.
//!
//! Every public, fallible entry point in the Helios workspace — trace
//! generation, simulation, service training, the umbrella façade — returns
//! [`HeliosError`]. It lives in `helios-trace` because that crate sits at
//! the bottom of the dependency graph (every other member already depends
//! on it); the umbrella `helios` crate re-exports it as `helios::HeliosError`.

use std::fmt;

/// Workspace-wide result alias.
pub type HeliosResult<T> = std::result::Result<T, HeliosError>;

/// Everything that can go wrong across the trace → predict → schedule →
/// report pipeline. Variants carry enough context to be actionable without
/// a backtrace.
#[derive(Debug, Clone, PartialEq)]
pub enum HeliosError {
    /// A configuration value is out of range or inconsistent
    /// (e.g. `scale <= 0`, `update_period == 0`).
    InvalidConfig {
        /// The offending field or parameter name.
        field: &'static str,
        /// Human-readable constraint violation.
        message: String,
    },
    /// A pipeline stage needed input data and found none
    /// (e.g. an empty training window, a zero-length node series).
    EmptyInput {
        /// What was empty.
        what: &'static str,
        /// Where / why, e.g. the requested window.
        detail: String,
    },
    /// The history cursor was asked to move backwards in time.
    HistoryRegression {
        /// The cursor's current position (seconds).
        current: i64,
        /// The requested (earlier) position.
        requested: i64,
    },
    /// A job handed to the simulator can never be placed on the cluster.
    InvalidJob {
        /// The job's id.
        job_id: u64,
        /// Why it is unschedulable.
        reason: String,
    },
    /// A session stage was invoked before its prerequisite stage.
    MissingStage {
        /// The stage that was invoked.
        stage: &'static str,
        /// The stage that must run first.
        requires: &'static str,
    },
    /// A model was queried before it was trained.
    NotTrained {
        /// The service ("qssf", "ces").
        service: &'static str,
    },
    /// A name-keyed lookup (cluster preset, experiment id) failed.
    UnknownName {
        /// The namespace ("cluster", "experiment").
        kind: &'static str,
        /// The name that did not resolve.
        name: String,
        /// Valid choices, for the error message.
        expected: String,
    },
    /// A failure on one cluster of a multi-cluster fan-out, tagged with the
    /// cluster so parallel errors stay attributable.
    Cluster {
        /// Cluster name ("Venus", ...).
        cluster: String,
        /// The underlying failure.
        source: Box<HeliosError>,
    },
    /// A failure inside one registered service of the management framework,
    /// tagged with the service name so multi-service ticks stay
    /// attributable.
    Service {
        /// Service name ("qssf", "ces", ...).
        service: String,
        /// The underlying failure.
        source: Box<HeliosError>,
    },
    /// An I/O failure (report writing, CSV import). `std::io::Error` is not
    /// `Clone`, so the message is captured eagerly.
    Io {
        /// What was being done ("writing reports/table1.txt").
        context: String,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// A fleet ingestion shard refused a submission because its bounded
    /// queue is full. This is the backpressure signal: the producer should
    /// retry after the worker's next admission cycle drains the shard.
    FleetOverflow {
        /// Cluster name ("Venus", ...).
        cluster: String,
        /// The virtual-cluster shard that overflowed.
        vc: u16,
        /// The shard's bounded capacity (jobs).
        capacity: usize,
    },
    /// A scheduler snapshot could not be encoded, decoded, or applied
    /// (magic/version mismatch, truncated payload, or a snapshot taken
    /// against a different cluster spec or policy).
    Snapshot {
        /// What was being done ("decoding fleet header", ...).
        context: String,
        /// Why it failed.
        detail: String,
    },
    /// A fleet worker panicked and could not be brought back: either its
    /// supervisor exhausted the restart budget or every retained
    /// checkpoint generation failed to decode. The cluster is served in
    /// degraded mode (stale status, no admission) until the fleet is
    /// relaunched or recovered from disk.
    WorkerCrashed {
        /// Cluster name ("Venus", ...).
        cluster: String,
        /// Supervisor restarts attempted before giving up.
        restarts: u32,
    },
    /// Adaptive admission control refused a submission: the cluster's
    /// ingestion backlog crossed its high-water mark and this VC holds
    /// more than its fair share of it, so the fleet sheds its load
    /// first. Unlike [`FleetOverflow`](Self::FleetOverflow) (a full
    /// shard), shedding is deliberate and fair: light VCs keep their
    /// headroom while heavy VCs are pushed back.
    FleetShedding {
        /// Cluster name ("Venus", ...).
        cluster: String,
        /// The virtual cluster whose load is being shed.
        vc: u16,
        /// Admission cycles the producer should wait out before
        /// resubmitting — how many times over its fair share this VC's
        /// backlog currently is.
        retry_after_cycles: u64,
    },
    /// A fleet worker stopped making kernel progress and ignored
    /// cooperative cancellation past the watchdog's hard deadline. The
    /// cluster is served in degraded mode (stale status, no admission,
    /// no blocking) until the fleet is relaunched or recovered.
    WorkerHung {
        /// Cluster name ("Venus", ...).
        cluster: String,
        /// Kernel events the worker had processed when its heartbeat
        /// went flat.
        stalled_events: u64,
    },
}

impl HeliosError {
    /// Shorthand for [`HeliosError::InvalidConfig`].
    pub fn invalid_config(field: &'static str, message: impl Into<String>) -> Self {
        HeliosError::InvalidConfig {
            field,
            message: message.into(),
        }
    }

    /// Shorthand for [`HeliosError::EmptyInput`].
    pub fn empty_input(what: &'static str, detail: impl Into<String>) -> Self {
        HeliosError::EmptyInput {
            what,
            detail: detail.into(),
        }
    }

    /// Shorthand for [`HeliosError::Io`] from a real `io::Error`.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> Self {
        HeliosError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// Shorthand for [`HeliosError::Snapshot`].
    pub fn snapshot(context: impl Into<String>, detail: impl Into<String>) -> Self {
        HeliosError::Snapshot {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// Tag an error with the cluster a fan-out branch was processing.
    pub fn for_cluster(self, cluster: impl Into<String>) -> Self {
        HeliosError::Cluster {
            cluster: cluster.into(),
            source: Box::new(self),
        }
    }

    /// Tag an error with the service a framework tick was driving.
    pub fn for_service(self, service: impl Into<String>) -> Self {
        HeliosError::Service {
            service: service.into(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for HeliosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeliosError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration: {field}: {message}")
            }
            HeliosError::EmptyInput { what, detail } => {
                write!(f, "empty input: no {what} ({detail})")
            }
            HeliosError::HistoryRegression { current, requested } => write!(
                f,
                "history cursor cannot move backwards (now at {current}s, requested {requested}s)"
            ),
            HeliosError::InvalidJob { job_id, reason } => {
                write!(f, "job {job_id} can never be scheduled: {reason}")
            }
            HeliosError::MissingStage { stage, requires } => {
                write!(f, "stage `{stage}` requires `{requires}` to have run first")
            }
            HeliosError::NotTrained { service } => {
                write!(f, "service `{service}` used before training")
            }
            HeliosError::UnknownName {
                kind,
                name,
                expected,
            } => {
                write!(f, "unknown {kind} {name:?} (expected one of: {expected})")
            }
            HeliosError::Cluster { cluster, source } => {
                write!(f, "[{cluster}] {source}")
            }
            HeliosError::Service { service, source } => {
                write!(f, "service `{service}`: {source}")
            }
            HeliosError::Io { context, message } => {
                write!(f, "I/O error while {context}: {message}")
            }
            HeliosError::FleetOverflow {
                cluster,
                vc,
                capacity,
            } => write!(
                f,
                "[{cluster}] ingestion shard for VC {vc} is full \
                 (capacity {capacity} jobs); retry after the next admission cycle"
            ),
            HeliosError::Snapshot { context, detail } => {
                write!(f, "snapshot error while {context}: {detail}")
            }
            HeliosError::WorkerCrashed { cluster, restarts } => write!(
                f,
                "[{cluster}] worker crashed and could not be recovered \
                 (after {restarts} supervisor restart(s)); relaunch or \
                 recover the fleet to serve this cluster again"
            ),
            HeliosError::FleetShedding {
                cluster,
                vc,
                retry_after_cycles,
            } => write!(
                f,
                "[{cluster}] admission control is shedding VC {vc}'s load \
                 (ingestion backlog past its high-water mark); retry after \
                 ~{retry_after_cycles} admission cycle(s)"
            ),
            HeliosError::WorkerHung {
                cluster,
                stalled_events,
            } => write!(
                f,
                "[{cluster}] worker is hung: no kernel progress past event \
                 {stalled_events} and cooperative cancellation was ignored; \
                 the cluster is served in degraded mode"
            ),
        }
    }
}

impl std::error::Error for HeliosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeliosError::Cluster { source, .. } | HeliosError::Service { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = HeliosError::invalid_config("scale", "must be in (0, 1], got 0");
        assert!(e.to_string().contains("scale"));
        let e = HeliosError::HistoryRegression {
            current: 100,
            requested: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn cluster_tagging_nests() {
        let e = HeliosError::empty_input("jobs", "September window").for_cluster("Venus");
        let s = e.to_string();
        assert!(s.starts_with("[Venus]"), "{s}");
        assert!(s.contains("jobs"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn errors_compare_for_tests() {
        assert_eq!(
            HeliosError::NotTrained { service: "qssf" },
            HeliosError::NotTrained { service: "qssf" },
        );
    }
}
