//! Synthetic user population.
//!
//! Each cluster hosts 200–400 users (§3.3). Users belong to a class that
//! determines what they run; their activity follows a Zipf law so that a
//! small head of users dominates resource consumption (Fig. 8), and each
//! user owns a handful of recurrent *job templates* — named experiments that
//! get resubmitted with new run indices. Template recurrence is what makes
//! job duration predictable from (user, name, GPU demand) history, the core
//! premise of the QSSF service (§4.2.2).

use crate::cluster::ClusterSpec;
use crate::dist::{zipf_weights, Discrete, LogNormal};
use crate::types::{NameId, NamePool, UserId, VcId};
use crate::workload::{TemplateKind, WorkloadProfile};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Broad user archetypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UserClass {
    /// Product teams running large recurrent distributed training.
    Production,
    /// Researchers mixing medium training with exploration.
    Researcher,
    /// Students / newcomers: debug bursts and small jobs.
    Student,
    /// Data-pipeline owners: CPU preprocessing and automation scripts.
    Pipeline,
}

impl UserClass {
    /// All classes, in `WorkloadProfile::class_mix` order.
    pub const ALL: [UserClass; 4] = [
        UserClass::Production,
        UserClass::Researcher,
        UserClass::Student,
        UserClass::Pipeline,
    ];

    /// Relative GPU-submission activity multiplier of the class.
    fn gpu_activity(self) -> f64 {
        match self {
            UserClass::Production => 0.5,
            UserClass::Researcher => 1.0,
            UserClass::Student => 1.3,
            UserClass::Pipeline => 0.15,
        }
    }

    /// GPU template kinds and weights for the class.
    fn gpu_kinds(self) -> &'static [(TemplateKind, f64)] {
        match self {
            UserClass::Production => &[
                (TemplateKind::DistTrain, 0.42),
                (TemplateKind::Train, 0.33),
                (TemplateKind::Eval, 0.15),
                (TemplateKind::Debug, 0.10),
            ],
            UserClass::Researcher => &[
                (TemplateKind::Train, 0.40),
                (TemplateKind::Debug, 0.25),
                (TemplateKind::Eval, 0.22),
                (TemplateKind::DistTrain, 0.13),
            ],
            UserClass::Student => &[
                (TemplateKind::Debug, 0.46),
                (TemplateKind::Eval, 0.27),
                (TemplateKind::Train, 0.27),
            ],
            UserClass::Pipeline => &[(TemplateKind::Eval, 0.5), (TemplateKind::Debug, 0.5)],
        }
    }
}

/// A recurrent, named experiment owned by one user.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// Interned base name; jobs synthesize `"<base>_<run>"`.
    pub name: NameId,
    pub kind: TemplateKind,
    /// Target VC (the owner's VC).
    pub vc: VcId,
    /// GPU-count values and picker (empty/unused for CPU kinds).
    pub gpu_values: Vec<u32>,
    pub gpu_picker: Option<Discrete>,
    /// Per-job duration distribution around the template median. The
    /// generator rescales `mu` during load calibration.
    pub duration: LogNormal,
    /// Cancellation/failure propensities (pre GPU-count adjustment).
    pub cancel: f64,
    pub fail: f64,
    /// Selection weight among the owner's templates of the same realm.
    pub weight: f64,
}

impl JobTemplate {
    /// Draw a GPU count (0 for CPU templates).
    pub fn sample_gpus<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match &self.gpu_picker {
            Some(p) => self.gpu_values[p.sample(rng)],
            None => 0,
        }
    }

    /// Expected GPU count (0 for CPU templates).
    pub fn mean_gpus(&self) -> f64 {
        match &self.gpu_picker {
            Some(p) => self
                .gpu_values
                .iter()
                .enumerate()
                .map(|(i, &g)| p.probability(i) * g as f64)
                .sum(),
            None => 0.0,
        }
    }
}

/// One synthetic user.
#[derive(Debug, Clone)]
pub struct UserProfile {
    pub id: UserId,
    pub class: UserClass,
    /// Home VC (each VC serves one group, §2.1).
    pub vc: VcId,
    /// Zipf activity weight for GPU submissions.
    pub gpu_activity: f64,
    /// Zipf activity weight for CPU submissions.
    pub cpu_activity: f64,
    /// Weight for 1-s query scripts (bots only).
    pub query_activity: f64,
    /// GPU templates (empty for pure-pipeline users).
    pub gpu_templates: Vec<JobTemplate>,
    /// CPU templates (preprocess and/or query).
    pub cpu_templates: Vec<JobTemplate>,
    /// True when the user's jobs are predominantly multi-GPU — drives which
    /// monthly submission profile they follow (Fig. 3).
    pub multi_gpu_user: bool,
}

const MODELS: &[&str] = &[
    "resnet18",
    "resnet50",
    "resnet101",
    "vgg16",
    "mobilenet_v2",
    "efficientnet_b3",
    "bert_base",
    "bert_large",
    "gpt2",
    "transformer_xl",
    "lstm_lm",
    "yolo_v3",
    "faster_rcnn",
    "mask_rcnn",
    "deeplab_v3",
    "unet",
    "pointnet",
    "dcgan",
    "stylegan2",
    "wav2vec",
    "deepspeech",
    "arcface",
    "retinaface",
    "hrnet",
    "st_gcn",
    "slowfast",
    "i3d",
    "crnn_ocr",
    "dbnet",
    "srgan",
];

const DATASETS: &[&str] = &[
    "imagenet",
    "cifar100",
    "coco",
    "ade20k",
    "kinetics400",
    "librispeech",
    "wmt14",
    "ms1m",
    "widerface",
    "cityscapes",
    "market1501",
    "nuscenes",
    "voc",
    "celeba",
    "lsun",
];

fn kind_verb(kind: TemplateKind, rng: &mut ChaCha12Rng) -> &'static str {
    let options: &[&str] = match kind {
        TemplateKind::Debug => &["debug", "test", "try"],
        TemplateKind::Eval => &["eval", "val", "infer"],
        TemplateKind::Train => &["train", "finetune"],
        TemplateKind::DistTrain => &["train_dist", "pretrain"],
        TemplateKind::Mega => &["pretrain_mega"],
        TemplateKind::Preprocess => &[
            "extract_frames",
            "resize_images",
            "decode_video",
            "pack_lmdb",
        ],
        TemplateKind::Query => &["query_state", "check_progress", "poll_nodes"],
    };
    options[rng.gen_range(0..options.len())]
}

/// Synthesize a plausible experiment name for `kind`.
pub fn template_name(kind: TemplateKind, user: UserId, rng: &mut ChaCha12Rng) -> String {
    let verb = kind_verb(kind, rng);
    let model = MODELS[rng.gen_range(0..MODELS.len())];
    let dataset = DATASETS[rng.gen_range(0..DATASETS.len())];
    let mut name = format!("{verb}_{model}_{dataset}");
    // Hyperparameter suffixes on ~40% of training names, mirroring real
    // sweep-style naming that the Levenshtein bucketizer must cope with.
    if matches!(kind, TemplateKind::Train | TemplateKind::DistTrain) && rng.gen_bool(0.4) {
        name.push_str(&format!("_lr{}", [1, 3, 5, 10][rng.gen_range(0..4usize)]));
    }
    if matches!(kind, TemplateKind::Query) {
        // Queries are fired by per-user automation scripts.
        name = format!("{name}_u{user}");
    }
    name
}

#[allow(clippy::too_many_arguments)]
/// Build a template of the given kind for `user` in `vc`.
///
/// `single_gpu_boost` multiplies the weight of the 1-GPU choice (Earth and
/// Philly run predominantly single-GPU jobs); `gpu_cap` drops choices above
/// the effective maximum for this template. Callers derive the cap from the
/// owner's VC capacity: groups with small VCs do not run jobs that would
/// monopolize the entire VC for days (the paper's large recurring jobs live
/// in the large VCs, Fig. 4) — except the `Mega` artifacts, which are
/// deliberately over-capacity.
pub fn make_template(
    kind: TemplateKind,
    user: UserId,
    vc: VcId,
    duration_scale: f64,
    single_gpu_boost: f64,
    gpu_cap: u32,
    fail_boost: f64,
    names: &mut NamePool,
    rng: &mut ChaCha12Rng,
) -> JobTemplate {
    let params = kind.params();
    let mut choices: Vec<(u32, f64)> = params
        .gpu_choices
        .iter()
        .filter(|&&(g, _)| g <= gpu_cap)
        .map(|&(g, w)| (g, if g == 1 { w * single_gpu_boost } else { w }))
        .collect();
    // Dropped over-cap weight folds onto the largest surviving choice
    // (instead of proportional renormalization, which would shift mass
    // toward small jobs): the job-size marginal of a scaled cluster stays
    // as close as its caps allow to the paper's scale-independent Fig. 6.
    let dropped: f64 = params
        .gpu_choices
        .iter()
        .filter(|&&(g, _)| g > gpu_cap)
        .map(|&(_, w)| w)
        .sum();
    if dropped > 0.0 {
        if let Some(largest) = choices.iter_mut().max_by_key(|c| c.0) {
            largest.1 += dropped;
        }
    }
    let (gpu_values, gpu_picker) = if choices.is_empty() {
        (Vec::new(), None)
    } else {
        let values: Vec<u32> = choices.iter().map(|c| c.0).collect();
        let weights: Vec<f64> = choices.iter().map(|c| c.1).collect();
        (values, Some(Discrete::new(&weights)))
    };
    // Template median drawn around the kind's median-of-medians.
    let spread = LogNormal::from_median(
        params.median_of_medians * duration_scale,
        params.median_sigma,
    );
    let median = spread.sample(rng).max(1.0);
    JobTemplate {
        name: names.intern(template_name(kind, user, rng)),
        kind,
        vc,
        gpu_values,
        gpu_picker,
        duration: LogNormal::from_median(median, params.per_job_sigma),
        cancel: params.base_cancel,
        fail: (params.base_fail * fail_boost).min(0.5),
        weight: 0.3 + rng.gen::<f64>(),
    }
}

/// Assign each user to a VC. Production users are steered to the largest
/// VCs and students to the tail, reproducing the positive correlation
/// between VC size/utilization and average GPU demand (Fig. 4).
fn assign_vc(class: UserClass, spec: &ClusterSpec, rng: &mut ChaCha12Rng) -> VcId {
    let mut order: Vec<usize> = (0..spec.num_vcs()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(spec.vcs[i].nodes));
    let n = order.len();
    let slice: &[usize] = match class {
        UserClass::Production => &order[..(n / 3).max(1)],
        UserClass::Researcher => &order[..(2 * n / 3).max(1)],
        UserClass::Student => &order[n / 4..],
        UserClass::Pipeline => &order[..],
    };
    // Weight by VC capacity within the allowed slice.
    let weights: Vec<f64> = slice.iter().map(|&i| spec.vcs[i].nodes as f64).collect();
    let picker = Discrete::new(&weights);
    slice[picker.sample(rng)] as VcId
}

/// Build the full user population for one cluster.
pub fn build_users(
    spec: &ClusterSpec,
    profile: &WorkloadProfile,
    names: &mut NamePool,
    rng: &mut ChaCha12Rng,
) -> Vec<UserProfile> {
    let n = profile.users;
    let class_picker = Discrete::new(&profile.class_mix);
    // Zipf ranks shuffled across users so rank is independent of class.
    let mut gpu_rank: Vec<f64> = zipf_weights(n, 1.05);
    let mut cpu_rank: Vec<f64> = zipf_weights(n, 1.9);
    shuffle(&mut gpu_rank, rng);
    shuffle(&mut cpu_rank, rng);

    let mut users = Vec::with_capacity(n);
    for id in 0..n as UserId {
        let class = UserClass::ALL[class_picker.sample(rng)];
        let vc = assign_vc(class, spec, rng);

        // GPU templates. Demands are capped relative to the home VC: at
        // most half the VC (never below 8 GPUs, one full node), so tiny
        // VCs host small jobs and the big recurrent jobs live in big VCs.
        let vc_gpus = spec.vcs[vc as usize].nodes * spec.gpus_per_node;
        let effective_cap = profile.gpu_cap.min((vc_gpus / 2).max(8));
        let kinds = class.gpu_kinds();
        let kind_weights: Vec<f64> = kinds
            .iter()
            .map(|&(k, w)| {
                if k == TemplateKind::DistTrain {
                    w * profile.dist_damp
                } else {
                    w
                }
            })
            .collect();
        let kind_picker = Discrete::new(&kind_weights);
        let n_templates = rng.gen_range(2..=6);
        let gpu_templates: Vec<JobTemplate> = (0..n_templates)
            .map(|_| {
                let kind = kinds[kind_picker.sample(rng)].0;
                make_template(
                    kind,
                    id,
                    vc,
                    profile.duration_scale,
                    profile.single_gpu_boost,
                    effective_cap,
                    profile.fail_boost,
                    names,
                    rng,
                )
            })
            .collect();

        // CPU templates: Pipeline users always; ~18% of other users dabble
        // (≈25% of users conduct CPU tasks overall, §3.3).
        let mut cpu_templates = Vec::new();
        let mut cpu_activity = 0.0;
        let mut query_activity = 0.0;
        let is_pipeline = class == UserClass::Pipeline;
        if profile.cpu_jobs > 0 && (is_pipeline || rng.gen_bool(0.18)) {
            let n_cpu = if is_pipeline { rng.gen_range(2..=4) } else { 1 };
            for _ in 0..n_cpu {
                cpu_templates.push(make_template(
                    TemplateKind::Preprocess,
                    id,
                    vc,
                    1.0,
                    1.0,
                    profile.gpu_cap,
                    1.0,
                    names,
                    rng,
                ));
            }
            cpu_activity = cpu_rank[id as usize] * if is_pipeline { 8.0 } else { 1.0 };
            // Pipeline users also run automation query scripts.
            if is_pipeline {
                cpu_templates.push(make_template(
                    TemplateKind::Query,
                    id,
                    vc,
                    1.0,
                    1.0,
                    profile.gpu_cap,
                    1.0,
                    names,
                    rng,
                ));
                query_activity = cpu_rank[id as usize];
            }
        }

        let mean_gpus: f64 = {
            let total_w: f64 = gpu_templates.iter().map(|t| t.weight).sum();
            gpu_templates
                .iter()
                .map(|t| t.weight * t.mean_gpus())
                .sum::<f64>()
                / total_w
        };

        users.push(UserProfile {
            id,
            class,
            vc,
            gpu_activity: gpu_rank[id as usize] * class.gpu_activity(),
            cpu_activity,
            query_activity,
            gpu_templates,
            cpu_templates,
            multi_gpu_user: mean_gpus >= 3.0,
        });
    }
    users
}

/// Fisher–Yates shuffle (avoids depending on `rand::seq` slice ext).
fn shuffle<T>(v: &mut [T], rng: &mut ChaCha12Rng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::earth;
    use crate::workload::earth_profile;
    use rand::SeedableRng;

    fn population() -> (Vec<UserProfile>, NamePool) {
        let spec = earth();
        let profile = earth_profile();
        let mut names = NamePool::new();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let users = build_users(&spec, &profile, &mut names, &mut rng);
        (users, names)
    }

    #[test]
    fn population_size_and_classes() {
        let (users, _) = population();
        assert_eq!(users.len(), earth_profile().users);
        let students = users
            .iter()
            .filter(|u| u.class == UserClass::Student)
            .count();
        // Earth is student-heavy (65% mix).
        assert!(students as f64 / users.len() as f64 > 0.5);
    }

    #[test]
    fn every_user_has_gpu_templates_in_own_vc() {
        let (users, _) = population();
        for u in &users {
            assert!(!u.gpu_templates.is_empty());
            assert!(u.gpu_templates.iter().all(|t| t.vc == u.vc));
        }
    }

    #[test]
    fn cpu_users_are_a_minority_with_skewed_activity() {
        let (users, _) = population();
        let cpu_users: Vec<&UserProfile> = users.iter().filter(|u| u.cpu_activity > 0.0).collect();
        let share = cpu_users.len() as f64 / users.len() as f64;
        assert!(share > 0.10 && share < 0.45, "cpu-user share {share}");
        // Top-5% CPU users should dominate CPU activity (paper: ~90% of
        // CPU time in the top 5% of users).
        let mut acts: Vec<f64> = cpu_users.iter().map(|u| u.cpu_activity).collect();
        acts.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = acts.iter().sum();
        let top = (users.len() as f64 * 0.05).ceil() as usize;
        let head: f64 = acts.iter().take(top).sum();
        assert!(head / total > 0.7, "top-5% share {}", head / total);
    }

    #[test]
    fn template_names_are_plausible() {
        let (users, names) = population();
        let t = &users[0].gpu_templates[0];
        let base = names.base(t.name);
        assert!(base.contains('_'), "{base}");
        assert!(base.is_ascii());
    }

    #[test]
    fn template_gpu_sampling_matches_choices() {
        let (users, _) = population();
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        for u in users.iter().take(20) {
            for t in &u.gpu_templates {
                let g = t.sample_gpus(&mut rng);
                assert!(t.gpu_values.contains(&g));
                assert!(t.mean_gpus() >= 1.0);
            }
            for t in &u.cpu_templates {
                assert_eq!(t.sample_gpus(&mut rng), 0);
            }
        }
    }

    #[test]
    fn production_users_sit_in_large_vcs() {
        let spec = earth();
        let (users, _) = population();
        let mut sizes: Vec<u32> = spec.vcs.iter().map(|v| v.nodes).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let avg_nodes = |class: UserClass| {
            let xs: Vec<f64> = users
                .iter()
                .filter(|u| u.class == class)
                .map(|u| spec.vcs[u.vc as usize].nodes as f64)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg_nodes(UserClass::Production) > median as f64);
        assert!(avg_nodes(UserClass::Production) > avg_nodes(UserClass::Student));
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = population();
        let (b, _) = population();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vc, y.vc);
            assert_eq!(x.class, y.class);
            assert_eq!(x.gpu_templates.len(), y.gpu_templates.len());
        }
    }
}
