//! Minimal distribution toolbox for workload synthesis.
//!
//! Implements exactly the samplers the generator needs (normal via
//! Box–Muller, log-normal, exponential, Zipf-like discrete weights) on top of
//! the `rand` core traits, so the workspace does not need `rand_distr`.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    pub mu: f64,
    pub sigma: f64,
}

impl Normal {
    /// Create a normal distribution; `sigma` must be non-negative.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be >= 0");
        Normal { mu, sigma }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

/// Log-normal distribution parameterised by the underlying normal.
///
/// `median = exp(mu)`, `mean = exp(mu + sigma^2 / 2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    /// From underlying-normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be >= 0");
        LogNormal { mu, sigma }
    }

    /// Convenience constructor from the distribution median.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be > 0");
        LogNormal::new(median.ln(), sigma)
    }

    /// Analytic mean `exp(mu + sigma^2/2)`; used by the generator to
    /// calibrate offered load without Monte-Carlo.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Analytic median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Return a copy whose mean is scaled by `k` (shifts `mu` by `ln k`).
    pub fn scaled(&self, k: f64) -> Self {
        assert!(k > 0.0, "scale must be > 0");
        LogNormal::new(self.mu + k.ln(), self.sigma)
    }
}

/// Exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    pub mean: f64,
}

impl Exponential {
    /// Create an exponential distribution with mean `mean` (> 0).
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be > 0");
        Exponential { mean }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -self.mean * u.ln()
    }
}

/// Discrete distribution over `0..weights.len()` via cumulative weights and
/// binary search. Used for template/user/GPU-count selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Discrete { cumulative }
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no categories (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().unwrap();
        let lo = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - lo) / total
    }
}

/// Zipf weights `w_i = 1 / (i + 1)^alpha` for `n` ranks; the classic model
/// for skewed user activity ("top 5% of users occupy 90% of CPU time", §3.3).
pub fn zipf_weights(n: usize, alpha: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(alpha)).collect()
}

/// Uniform draw in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let d = Normal::new(5.0, 2.0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn lognormal_median_and_mean() {
        let mut r = rng();
        let d = LogNormal::from_median(200.0, 1.0);
        assert!((d.median() - 200.0).abs() < 1e-9);
        let n = 60_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[n / 2];
        assert!((med / 200.0 - 1.0).abs() < 0.05, "median={med}");
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean / d.mean() - 1.0).abs() < 0.1,
            "mean={mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn lognormal_scaling_scales_mean() {
        let d = LogNormal::from_median(100.0, 1.5);
        let s = d.scaled(3.0);
        assert!((s.mean() / d.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let d = Exponential::new(30.0);
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean / 30.0 - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn discrete_probabilities_respected() {
        let mut r = rng();
        let d = Discrete::new(&[1.0, 3.0, 6.0]);
        let n = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        let p: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((p[0] - 0.1).abs() < 0.01);
        assert!((p[1] - 0.3).abs() < 0.015);
        assert!((p[2] - 0.6).abs() < 0.015);
        assert!((d.probability(2) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn discrete_zero_weight_categories_never_sampled() {
        let mut r = rng();
        let d = Discrete::new(&[0.0, 1.0, 0.0]);
        for _ in 0..1_000 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn zipf_is_decreasing_and_skewed() {
        let w = zipf_weights(100, 1.2);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        let total: f64 = w.iter().sum();
        let top5: f64 = w.iter().take(5).sum();
        assert!(top5 / total > 0.4, "zipf top-5 share = {}", top5 / total);
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn discrete_rejects_all_zero() {
        Discrete::new(&[0.0, 0.0]);
    }
}
