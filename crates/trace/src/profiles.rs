//! Temporal intensity profiles for job submissions.
//!
//! §3.1.1 (Fig. 2) reports clear daily submission patterns: a trough at
//! night, dips around 12pm (lunch) and 6pm (dinner); §3.1.2 (Fig. 3) reports
//! fluctuating single-GPU submissions but stable multi-GPU submissions month
//! over month. These shapes are encoded here as multiplicative weights over
//! (hour-of-day × weekday × month), and sampled by inversion.

use crate::dist::Discrete;
use crate::time::{Calendar, SECS_PER_DAY, SECS_PER_HOUR};
use rand::Rng;

/// Relative submission intensity per hour of day (0..24). Calibrated to the
/// Fig. 2(b) shape: minimum ~4–7 am, local dips at 12pm and 6–7pm, peaks in
/// late morning and afternoon, with a substantial evening shoulder (DL
/// researchers keep submitting until midnight).
pub const DIURNAL_SUBMIT: [f64; 24] = [
    0.55, 0.40, 0.30, 0.24, 0.20, 0.20, 0.24, 0.34, // 0-7: night trough
    0.55, 0.85, 1.00, 0.98, 0.72, 0.90, 1.00, 1.02, // 8-15: morning peak, lunch dip
    1.00, 0.95, 0.70, 0.80, 0.92, 0.90, 0.80, 0.68, // 16-23: dinner dip, evening
];

/// Relative intensity per weekday (Monday = 0). Weekends are quieter but far
/// from idle (training runs are launched before the weekend too).
pub const WEEKLY_SUBMIT: [f64; 7] = [1.0, 1.02, 1.0, 0.98, 0.95, 0.72, 0.66];

/// Intensity multiplier on public holidays.
pub const HOLIDAY_FACTOR: f64 = 0.55;

/// A complete submission-time sampler over one trace calendar.
///
/// The profile factorises as
/// `w(t) = monthly[m(t)] * weekly[wd(t)] * diurnal[h(t)] * holiday(t)`,
/// and sampling draws day-of-trace from the per-day weights, then
/// hour-of-day, then a uniform offset inside the hour.
#[derive(Debug, Clone)]
pub struct SubmissionProfile {
    day_picker: Discrete,
    hour_picker_work: Discrete,
    hour_picker_off: Discrete,
    day_is_off: Vec<bool>,
}

impl SubmissionProfile {
    /// Build a profile for `calendar` with per-month multipliers
    /// (`monthly.len() == calendar.num_months()`).
    pub fn new(calendar: &Calendar, monthly: &[f64]) -> Self {
        assert_eq!(monthly.len(), calendar.num_months());
        let total_days = calendar.total_days();
        let mut day_weights = Vec::with_capacity(total_days as usize);
        let mut day_is_off = Vec::with_capacity(total_days as usize);
        for d in 0..total_days {
            let t = d as i64 * SECS_PER_DAY;
            let m = calendar.month_index(t);
            let wd = calendar.weekday(t);
            let mut w = monthly[m] * WEEKLY_SUBMIT[wd.index()];
            if calendar.is_holiday(t) {
                w *= HOLIDAY_FACTOR;
            }
            day_is_off.push(calendar.is_offday(t));
            day_weights.push(w);
        }
        // Off-days have a flatter hourly shape (no lunch/dinner commute dips).
        let off_hours: Vec<f64> = DIURNAL_SUBMIT.iter().map(|&w| 0.35 + 0.65 * w).collect();
        SubmissionProfile {
            day_picker: Discrete::new(&day_weights),
            hour_picker_work: Discrete::new(&DIURNAL_SUBMIT),
            hour_picker_off: Discrete::new(&off_hours),
            day_is_off,
        }
    }

    /// Uniform monthly multipliers (used for the stable multi-GPU stream).
    pub fn flat_monthly(calendar: &Calendar) -> Vec<f64> {
        vec![1.0; calendar.num_months()]
    }

    /// Draw one submission timestamp.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let day = self.day_picker.sample(rng);
        let hour = if self.day_is_off[day] {
            self.hour_picker_off.sample(rng)
        } else {
            self.hour_picker_work.sample(rng)
        };
        day as i64 * SECS_PER_DAY + hour as i64 * SECS_PER_HOUR + rng.gen_range(0..SECS_PER_HOUR)
    }
}

/// Fluctuating per-month multipliers for single-GPU jobs (Fig. 3 top: the
/// single-GPU counts vary dramatically month over month). Deterministic
/// pseudo-random fluctuation derived from `seed`, in `[0.55, 1.65]`.
pub fn fluctuating_monthly(num_months: usize, seed: u64) -> Vec<f64> {
    (0..num_months)
        .map(|m| {
            // Simple splitmix-style hash for deterministic variety.
            let mut x = seed ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            0.55 + 1.1 * u
        })
        .collect()
}

/// Nearly-stable per-month multipliers for multi-GPU jobs (Fig. 3: "All the
/// clusters have stable submissions of multi-GPU jobs each month").
pub fn stable_monthly(num_months: usize, seed: u64) -> Vec<f64> {
    fluctuating_monthly(num_months, seed)
        .into_iter()
        .map(|w| 0.95 + 0.1 * (w - 0.55) / 1.1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Calendar;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn sample_hours(monthly: &[f64], n: usize) -> Vec<u32> {
        let cal = Calendar::helios_2020();
        let prof = SubmissionProfile::new(&cal, monthly);
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut hours = vec![0u32; 24];
        for _ in 0..n {
            let t = prof.sample(&mut rng);
            hours[cal.hour_of_day(t) as usize] += 1;
        }
        hours
    }

    #[test]
    fn samples_inside_calendar() {
        let cal = Calendar::helios_2020();
        let prof = SubmissionProfile::new(&cal, &SubmissionProfile::flat_monthly(&cal));
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let t = prof.sample(&mut rng);
            assert!(t >= 0 && t < cal.total_seconds());
        }
    }

    #[test]
    fn night_trough_and_meal_dips() {
        let cal = Calendar::helios_2020();
        let hours = sample_hours(&SubmissionProfile::flat_monthly(&cal), 120_000);
        // Night (3-6am) clearly below late morning (10-11am).
        let night: u32 = hours[3..=6].iter().sum();
        let morning: u32 = hours[10..=11].iter().sum();
        // Night hours average well under 60% of peak-morning hours (the
        // off-day flattening keeps the overall ratio above the pure
        // workday 0.44).
        assert!(
            (night as f64 / 4.0) < 0.6 * (morning as f64 / 2.0),
            "night={night} morning={morning}"
        );
        // Lunch dip: hour 12 below both 11 and 14.
        assert!(hours[12] < hours[11]);
        assert!(hours[12] < hours[14]);
        // Dinner dip: hour 18 below 17 and 20.
        assert!(hours[18] < hours[17]);
        assert!(hours[18] < hours[20]);
    }

    #[test]
    fn monthly_multipliers_shift_volume() {
        let cal = Calendar::helios_2020();
        let mut monthly = vec![1.0; 6];
        monthly[2] = 3.0; // June tripled.
        let prof = SubmissionProfile::new(&cal, &monthly);
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut per_month = [0u32; 6];
        for _ in 0..60_000 {
            per_month[cal.month_index(prof.sample(&mut rng))] += 1;
        }
        // June (30 days) should receive roughly 3x May's (31 days) count.
        let ratio = per_month[2] as f64 / per_month[1] as f64;
        assert!(ratio > 2.3 && ratio < 3.7, "ratio={ratio}");
    }

    #[test]
    fn fluctuating_vs_stable_monthly() {
        let f = fluctuating_monthly(6, 3);
        let s = stable_monthly(6, 3);
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(&f) > 1.5, "single-GPU stream must fluctuate");
        assert!(spread(&s) < 1.15, "multi-GPU stream must be stable");
        assert_eq!(f, fluctuating_monthly(6, 3), "deterministic");
    }

    #[test]
    fn holidays_are_quieter() {
        let cal = Calendar::helios_2020();
        let prof = SubmissionProfile::new(&cal, &SubmissionProfile::flat_monthly(&cal));
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let mut per_day = vec![0u32; cal.total_days() as usize];
        for _ in 0..400_000 {
            per_day[cal.day_of_trace(prof.sample(&mut rng)) as usize] += 1;
        }
        // May 1 (day 30, holiday) vs April 29 (day 28, Wednesday).
        assert!((per_day[30] as f64) < 0.8 * per_day[28] as f64);
    }
}
