//! A 4-ary min-heap shared by the simulator's hot priority queues and the
//! trace generator's k-way stream merge.
//!
//! Compared to the standard binary heap this halves the tree depth and
//! keeps all four children of a node in one cache line for the small
//! `(key, index)` entries its users store, which measurably cuts the
//! per-event queue cost on large backlogs. Pop order for unique keys is
//! the total order on `T` — identical to `BinaryHeap<Reverse<T>>` — and
//! every key its users store is unique (ties carry a job id / stream
//! index), so swapping the structure cannot change outcomes.

const ARITY: usize = 4;

/// Min-heap: `pop` returns the smallest element.
#[derive(Debug, Clone)]
pub struct MinHeap<T: Ord> {
    data: Vec<T>,
}

impl<T: Ord> Default for MinHeap<T> {
    fn default() -> Self {
        MinHeap { data: Vec::new() }
    }
}

impl<T: Ord> MinHeap<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[allow(dead_code)] // natural counterpart to len(); exercised in tests
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn peek(&self) -> Option<&T> {
        self.data.first()
    }

    /// The backing array, in heap order. Snapshot hook: persisting this
    /// verbatim and rebuilding with [`MinHeap::from_heap_vec`] reproduces
    /// the exact pop sequence, byte for byte.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Rebuild a heap from a backing array previously obtained via
    /// [`MinHeap::as_slice`]. The array must already satisfy the 4-ary
    /// heap property (debug-asserted); arbitrary unordered input belongs
    /// in a `push` loop instead.
    pub fn from_heap_vec(data: Vec<T>) -> Self {
        debug_assert!(
            (1..data.len()).all(|i| data[(i - 1) / ARITY] <= data[i]),
            "from_heap_vec input violates the heap property"
        );
        MinHeap { data }
    }

    pub fn push(&mut self, value: T) {
        self.data.push(value);
        self.sift_up(self.data.len() - 1);
    }

    pub fn pop(&mut self) -> Option<T> {
        let len = self.data.len();
        if len <= 1 {
            return self.data.pop();
        }
        self.data.swap(0, len - 1);
        let top = self.data.pop();
        self.sift_down(0);
        top
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.data[i] < self.data[parent] {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.data.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                return;
            }
            let last_child = (first_child + ARITY).min(len);
            let mut min_child = first_child;
            for c in first_child + 1..last_child {
                if self.data[c] < self.data[min_child] {
                    min_child = c;
                }
            }
            if self.data[min_child] < self.data[i] {
                self.data.swap(i, min_child);
                i = min_child;
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_sorted_order() {
        let mut h = MinHeap::new();
        // Deterministic pseudo-random insertion order.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut keys = Vec::new();
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            keys.push(x);
            h.push(x);
        }
        keys.sort_unstable();
        let mut popped = Vec::new();
        while let Some(k) = h.pop() {
            popped.push(k);
        }
        assert_eq!(popped, keys);
    }

    #[test]
    fn interleaved_push_pop_matches_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ours = MinHeap::new();
        let mut std_heap = BinaryHeap::new();
        let mut x: u64 = 99;
        for round in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if round % 3 == 2 {
                assert_eq!(ours.pop(), std_heap.pop().map(|Reverse(v)| v));
            } else {
                ours.push(x);
                std_heap.push(Reverse(x));
            }
            assert_eq!(ours.len(), std_heap.len());
            assert_eq!(ours.peek(), std_heap.peek().map(|Reverse(v)| v));
        }
    }

    #[test]
    fn empty_heap_behaves() {
        let mut h: MinHeap<u32> = MinHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        assert_eq!(h.peek(), None);
        h.push(5);
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop(), Some(5));
        assert!(h.is_empty());
    }
}
