//! CSV import/export of traces, mirroring the schema of the public
//! `HeliosData` release (one row per job with timing, demand, status, name).

use crate::types::{JobRecord, JobStatus, NamePool};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};

/// CSV header written by [`write_csv`].
pub const CSV_HEADER: &str = "job_id,user,vc,gpus,cpus,submit,start,duration,status,name,run";

/// Serialize jobs to CSV. Job names are written as their full display form
/// (`<base>_<run>` is reconstructed on read from the `name`/`run` columns).
pub fn write_csv<W: Write>(w: &mut W, jobs: &[JobRecord], names: &NamePool) -> io::Result<()> {
    let mut buf = String::with_capacity(128);
    writeln!(w, "{CSV_HEADER}")?;
    for j in jobs {
        buf.clear();
        let _ = write!(
            buf,
            "{},{},{},{},{},{},{},{},{},{},{}",
            j.id,
            j.user,
            j.vc,
            j.gpus,
            j.cpus,
            j.submit,
            j.start,
            j.duration,
            j.status.label(),
            names.base(j.name),
            j.run
        );
        writeln!(w, "{buf}")?;
    }
    Ok(())
}

/// Parse error for [`read_csv`].
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace csv parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors from [`read_csv`].
#[derive(Debug)]
pub enum ReadError {
    Io(io::Error),
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "{e}"),
            ReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn perr(line: usize, message: impl Into<String>) -> ReadError {
    ReadError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Deserialize jobs from CSV produced by [`write_csv`]. Names are re-interned
/// (deduplicated) into a fresh [`NamePool`].
pub fn read_csv<R: Read>(r: R) -> Result<(Vec<JobRecord>, NamePool), ReadError> {
    let reader = BufReader::new(r);
    let mut jobs = Vec::new();
    let mut names = NamePool::new();
    let mut intern: HashMap<String, u32> = HashMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if line.trim() != CSV_HEADER {
                return Err(perr(1, format!("unexpected header: {line}")));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 11 {
            return Err(perr(
                lineno + 1,
                format!("expected 11 fields, got {}", fields.len()),
            ));
        }
        let parse_u = |i: usize| -> Result<u64, ReadError> {
            fields[i]
                .parse()
                .map_err(|e| perr(lineno + 1, format!("field {i}: {e}")))
        };
        let parse_i = |i: usize| -> Result<i64, ReadError> {
            fields[i]
                .parse()
                .map_err(|e| perr(lineno + 1, format!("field {i}: {e}")))
        };
        let status = match fields[8] {
            "completed" => JobStatus::Completed,
            "canceled" => JobStatus::Canceled,
            "failed" => JobStatus::Failed,
            other => return Err(perr(lineno + 1, format!("unknown status {other:?}"))),
        };
        let name = match intern.get(fields[9]) {
            Some(&id) => id,
            None => {
                let id = names.intern(fields[9].to_string());
                intern.insert(fields[9].to_string(), id);
                id
            }
        };
        jobs.push(JobRecord {
            id: parse_u(0)?,
            user: parse_u(1)? as u32,
            vc: parse_u(2)? as u16,
            gpus: parse_u(3)? as u32,
            cpus: parse_u(4)? as u32,
            submit: parse_i(5)?,
            start: parse_i(6)?,
            duration: parse_i(7)?,
            status,
            name,
            run: parse_u(10)? as u32,
        });
    }
    Ok((jobs, names))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<JobRecord>, NamePool) {
        let mut names = NamePool::new();
        let a = names.intern("train_resnet50_imagenet".into());
        let b = names.intern("extract_frames_kinetics400".into());
        let jobs = vec![
            JobRecord {
                id: 0,
                user: 11,
                vc: 3,
                gpus: 8,
                cpus: 48,
                submit: 100,
                start: 160,
                duration: 3_600,
                status: JobStatus::Completed,
                name: a,
                run: 2,
            },
            JobRecord {
                id: 1,
                user: 12,
                vc: 4,
                gpus: 0,
                cpus: 16,
                submit: 130,
                start: 130,
                duration: 59,
                status: JobStatus::Failed,
                name: b,
                run: 0,
            },
        ];
        (jobs, names)
    }

    #[test]
    fn roundtrip() {
        let (jobs, names) = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &jobs, &names).unwrap();
        let (jobs2, names2) = read_csv(buf.as_slice()).unwrap();
        assert_eq!(jobs.len(), jobs2.len());
        for (a, b) in jobs.iter().zip(&jobs2) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.status, b.status);
            assert_eq!(a.duration, b.duration);
            assert_eq!(names.base(a.name), names2.base(b.name));
        }
    }

    #[test]
    fn dedups_names_on_read() {
        let (mut jobs, names) = sample();
        jobs[1].name = jobs[0].name; // same template twice
        let mut buf = Vec::new();
        write_csv(&mut buf, &jobs, &names).unwrap();
        let (_, names2) = read_csv(buf.as_slice()).unwrap();
        assert_eq!(names2.len(), 1);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_csv("nope\n1,2".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Parse(_)));
    }

    #[test]
    fn rejects_bad_status() {
        let body = format!("{CSV_HEADER}\n0,1,2,3,4,5,6,7,exploded,x,0\n");
        let err = read_csv(body.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown status"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let body = format!("{CSV_HEADER}\n0,1,2\n");
        let err = read_csv(body.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 11 fields"));
    }
}
