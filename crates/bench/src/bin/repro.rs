//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [OPTIONS] <experiment-id>...|all
//!
//! Options:
//!   --scale <F>     trace scale in (0, 1] (default 0.25; 1.0 = paper scale)
//!   --seed <N>      generator seed (default 2020)
//!   --out-dir <DIR> report directory (default "reports")
//!   --policy <P>    restrict schedule experiments to one policy:
//!                   fifo|sjf|srtf|qssf|tiresias|all — or drain:<P> to wrap
//!                   the selection in the proactive-drain layer
//!                   (default: the paper's FIFO/SJF/QSSF/SRTF set)
//!   --failures <H>  run every scheduler simulation under failure
//!                   injection with the given per-node MTBF in hours
//!                   (default: failure-free)
//!   --bench-json <PATH>  write machine-readable perf records (wall time,
//!                   jobs/sec, outcome digest) for every policy simulation
//!                   the selected experiments ran — the BENCH_*.json
//!                   perf-trajectory format; failure-injected runs land in
//!                   its `faults` section (BENCH_faults.json), chaos
//!                   recovery runs in its `resilience` section, and
//!                   overload/shedding runs in its `overload` section
//!                   (both BENCH_fleet.json)
//!   --list          print the experiment ids and exit
//! ```
//!
//! Several experiment ids may be given; they run in order and share one
//! context, so a single `--bench-json` file can carry every section
//! (e.g. `repro fleet-soak fleet-chaos --bench-json BENCH_fleet.json`).
//!
//! Outputs print to stdout and are mirrored under `<out-dir>/<id>.{txt,json}`.
//! Unknown experiment ids and report-write failures exit non-zero.

use helios_bench::experiments::{
    run, Context, ExperimentOutput, ALL_EXPERIMENTS, EXTRA_EXPERIMENTS,
};
use helios_trace::HeliosError;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    scale: f64,
    seed: u64,
    out_dir: PathBuf,
    policy: Option<String>,
    failures: Option<f64>,
    bench_json: Option<PathBuf>,
    ids: Vec<String>,
}

const USAGE: &str = "usage: repro [--scale F] [--seed N] [--out-dir DIR] \
                     [--policy [drain:]fifo|sjf|srtf|qssf|tiresias|all] \
                     [--failures MTBF-HOURS] \
                     [--bench-json PATH] [--list] <experiment-id>...|all";

fn parse_args() -> Result<Args, String> {
    let mut scale = 0.25f64;
    let mut seed = 2020u64;
    let mut out_dir = PathBuf::from("reports");
    let mut policy = None;
    let mut failures = None;
    let mut bench_json = None;
    let mut ids = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|_| format!("invalid --scale {v:?}"))?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("invalid --seed {v:?}"))?;
            }
            "--out-dir" => {
                out_dir = PathBuf::from(argv.next().ok_or("--out-dir needs a value")?);
            }
            "--policy" => {
                policy = Some(argv.next().ok_or("--policy needs a value")?);
            }
            "--failures" => {
                let v = argv.next().ok_or("--failures needs a value (MTBF hours)")?;
                failures = Some(v.parse().map_err(|_| format!("invalid --failures {v:?}"))?);
            }
            "--bench-json" => {
                bench_json = Some(PathBuf::from(
                    argv.next().ok_or("--bench-json needs a value")?,
                ));
            }
            "--list" => {
                println!("all");
                for id in ALL_EXPERIMENTS.iter().chain(&EXTRA_EXPERIMENTS) {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"));
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(Args {
        scale,
        seed,
        out_dir,
        policy,
        failures,
        bench_json,
        ids,
    })
}

/// Write the perf trajectory file for `--bench-json`: run metadata plus
/// one record per policy simulation the experiments executed.
fn write_bench_json(path: &Path, args: &Args, ctx: &Context) -> Result<(), HeliosError> {
    let records: Vec<serde_json::Value> = ctx.bench_records().iter().map(|r| r.to_json()).collect();
    // Per-stage pipeline records (the `pipeline` experiment): one entry
    // per (cluster, stage) with the stage's wall seconds.
    let stages: Vec<serde_json::Value> = ctx.stage_records().iter().map(|r| r.to_json()).collect();
    // Failure-injected run records (the `failure-soak` experiment):
    // goodput, predictor precision/recall, and outcome digests.
    let faults: Vec<serde_json::Value> = ctx.fault_records().iter().map(|r| r.to_json()).collect();
    // Chaos recovery records (the `fleet-chaos` experiment): restarts,
    // fallbacks, checkpoint write latency, recovery latency.
    let resilience: Vec<serde_json::Value> = ctx
        .resilience_records()
        .iter()
        .map(|r| r.to_json())
        .collect();
    // Overload records (the `fleet-overload` experiment): shed counts,
    // VC fairness, status staleness, and the shed-vs-overflow digest pin.
    let overload: Vec<serde_json::Value> =
        ctx.overload_records().iter().map(|r| r.to_json()).collect();
    // Scheduler experiments fan clusters x policies out over rayon, so
    // wall times include sibling-simulation contention: record the host
    // parallelism (also stamped into every individual record) so
    // trajectories are only compared like-for-like.
    let parallelism = helios_bench::experiments::run_parallelism();
    let doc = serde_json::json!({
        "schema": "helios-bench/1",
        "scale": args.scale,
        "seed": args.seed,
        "experiment": args.ids.join("+"),
        "parallelism": parallelism,
        "note": "wall_secs measured under the parallel clusters x policies fan-out; compare only across runs with the same fan-out shape and parallelism",
        "runs": records,
        "stages": stages,
        "faults": faults,
        "resilience": resilience,
        "overload": overload,
    });
    let rendered = serde_json::to_string_pretty(&doc).map_err(|e| HeliosError::Io {
        context: format!("serializing {}", path.display()),
        message: e.to_string(),
    })?;
    let mut f = std::fs::File::create(path)
        .map_err(|e| HeliosError::io(format!("creating {}", path.display()), &e))?;
    writeln!(f, "{rendered}")
        .map_err(|e| HeliosError::io(format!("writing {}", path.display()), &e))?;
    Ok(())
}

fn write_reports(dir: &Path, out: &ExperimentOutput) -> Result<(), HeliosError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| HeliosError::io(format!("creating {}", dir.display()), &e))?;
    let txt = dir.join(format!("{}.txt", out.id));
    let mut f = std::fs::File::create(&txt)
        .map_err(|e| HeliosError::io(format!("creating {}", txt.display()), &e))?;
    writeln!(f, "{}", out.text)
        .map_err(|e| HeliosError::io(format!("writing {}", txt.display()), &e))?;
    let json = dir.join(format!("{}.json", out.id));
    let rendered = serde_json::to_string_pretty(&out.data).map_err(|e| HeliosError::Io {
        context: format!("serializing {}", json.display()),
        message: e.to_string(),
    })?;
    let mut f = std::fs::File::create(&json)
        .map_err(|e| HeliosError::io(format!("creating {}", json.display()), &e))?;
    writeln!(f, "{rendered}")
        .map_err(|e| HeliosError::io(format!("writing {}", json.display()), &e))?;
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut ctx = match Context::new(args.scale, args.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(choice) = &args.policy {
        if let Err(e) = ctx.set_policy_choice(choice) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(mtbf_hours) = args.failures {
        if let Err(e) = ctx.set_failures(mtbf_hours) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    let mut outputs = Vec::new();
    for id in &args.ids {
        match run(id, &mut ctx) {
            Ok(o) => outputs.extend(o),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for out in &outputs {
        println!("{}", out.text);
        println!("{}", "=".repeat(78));
        if let Err(e) = write_reports(&args.out_dir, out) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.bench_json {
        let n = ctx.bench_records().len();
        let s = ctx.stage_records().len();
        let f = ctx.fault_records().len();
        let r = ctx.resilience_records().len();
        let o = ctx.overload_records().len();
        if let Err(e) = write_bench_json(path, &args, &ctx) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "bench: {} policy-run, {} stage, {} fault, {} resilience, and {} overload records in {}",
            n,
            s,
            f,
            r,
            o,
            path.display()
        );
    }
    eprintln!(
        "done: {} experiment(s), scale {}, seed {}, reports in {}",
        outputs.len(),
        args.scale,
        args.seed,
        args.out_dir.display()
    );
    ExitCode::SUCCESS
}
