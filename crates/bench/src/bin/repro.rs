//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment-id>|all
//! ```
//!
//! Environment:
//! * `HELIOS_SCALE` — trace scale (default 0.25; 1.0 = paper scale)
//! * `HELIOS_SEED`  — generator seed (default 2020)
//!
//! Outputs print to stdout and are mirrored under `reports/<id>.txt`.

use helios_bench::experiments::{run, Context};
use std::fs;
use std::io::Write;

fn main() {
    let id = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: repro <experiment-id>|all   (ids: see DESIGN.md)");
        std::process::exit(2);
    });
    let scale: f64 = std::env::var("HELIOS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let seed: u64 = std::env::var("HELIOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let mut ctx = Context::new(scale, seed);
    let outputs = run(&id, &mut ctx);
    let _ = fs::create_dir_all("reports");
    for out in &outputs {
        println!("{}", out.text);
        println!("{}", "=".repeat(78));
        if let Ok(mut f) = fs::File::create(format!("reports/{}.txt", out.id)) {
            let _ = writeln!(f, "{}", out.text);
        }
        if let Ok(mut f) = fs::File::create(format!("reports/{}.json", out.id)) {
            let _ = writeln!(f, "{}", serde_json::to_string_pretty(&out.data).unwrap());
        }
    }
    eprintln!("done: {} experiment(s), scale {scale}, seed {seed}", outputs.len());
}
