//! Per-experiment implementations. Each function regenerates one paper
//! artifact (table or figure) as plain text (the rows/series the paper
//! reports) plus a JSON value for machine consumption.

use helios_analysis::cdf::Cdf;
use helios_analysis::report::{fmt_count, fmt_secs, TextTable};
use helios_analysis::{clusters, jobs, users, vc};
use helios_core::{
    noisy_oracle_priorities, CesEvaluation, CesService, CesServiceConfig, QssfConfig, QssfService,
};
use helios_energy::{annualize, energy_saved_kwh, node_series_from_trace};
use helios_faults::{goodput, train_failure_predictor, DrainConfig, DrainPolicy, PredictorConfig};
use helios_predict::features::series::SeriesFeatureConfig;
use helios_predict::metrics::smape;
use helios_predict::{
    seasonal_naive, Arima, FourierForecaster, FourierParams, LstmForecaster, LstmParams,
};
use helios_sim::{
    group_delay_ratios, jobs_from_trace, per_vc_queue_delay, schedule_stats, simulate,
    simulate_with, FaultConfig, FifoPolicy, KernelConfig, Placement, Policy, PriorityPolicy,
    SchedulingPolicy, SimConfig, SimJob, Simulator, SjfPolicy, SrtfPolicy, TiresiasPolicy,
};
use helios_trace::{
    generate_helios, generate_philly, GeneratorConfig, HeliosError, Trace, SECS_PER_DAY,
};
use rayon::prelude::*;
use serde_json::json;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One experiment's rendered output.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    pub id: String,
    pub text: String,
    pub data: serde_json::Value,
}

/// Wall-time, throughput, and outcome digest of one policy simulation —
/// the machine-readable perf record behind `repro --bench-json`.
#[derive(Debug, Clone)]
pub struct PolicyRunPerf {
    pub cluster: String,
    pub policy: String,
    /// Jobs simulated (September evaluation window).
    pub jobs: usize,
    /// Wall-clock seconds for the simulate call (excludes trace
    /// generation and QSSF training).
    pub wall_secs: f64,
    pub jobs_per_sec: f64,
    /// FNV-1a over every outcome's (id, start, end, preemptions) — a
    /// stable fingerprint that pins scheduling results across perf work.
    pub outcome_digest: String,
    /// Worker threads available when this record was measured
    /// ([`run_parallelism`]) — wall times are only comparable
    /// like-for-like.
    pub parallelism: usize,
}

impl PolicyRunPerf {
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "cluster": self.cluster.clone(),
            "policy": self.policy.clone(),
            "jobs": self.jobs,
            "wall_secs": self.wall_secs,
            "jobs_per_sec": self.jobs_per_sec,
            "outcome_digest": self.outcome_digest.clone(),
            "parallelism": self.parallelism,
        })
    }
}

/// Wall time of one façade pipeline stage on one cluster — the per-stage
/// records the `pipeline` experiment feeds into `repro --bench-json`
/// (the BENCH_pipeline.json trajectory).
#[derive(Debug, Clone)]
pub struct StagePerfRecord {
    pub cluster: String,
    /// Stage label (`generate`, `characterize`, `train_qssf`, `train_ces`,
    /// `schedule:<policy>`, `report`, `pipeline`, or `total`).
    pub stage: String,
    pub wall_secs: f64,
    /// Worker threads available when this record was measured
    /// ([`run_parallelism`]).
    pub parallelism: usize,
}

impl StagePerfRecord {
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "cluster": self.cluster.clone(),
            "stage": self.stage.clone(),
            "wall_secs": self.wall_secs,
            "parallelism": self.parallelism,
        })
    }
}

/// One failure-injected policy run: goodput, predictor quality, and the
/// outcome digest — the machine-readable record behind the `faults`
/// section of `repro --bench-json` (the BENCH_faults.json format).
#[derive(Debug, Clone)]
pub struct FaultRunRecord {
    pub cluster: String,
    /// Policy label; proactive-drain runs carry the wrapper's
    /// `DRAIN+<inner>` name.
    pub policy: String,
    /// Jobs simulated (September evaluation window).
    pub jobs: usize,
    /// Node failures injected during the run.
    pub failures: u64,
    /// Gang kills those failures caused.
    pub killed_jobs: u64,
    /// Goodput ratio: useful / (useful + lost) GPU·hours.
    pub goodput: f64,
    /// GPU·hours of work lost to failure-induced kills.
    pub lost_gpu_hours: f64,
    /// Failure-predictor precision on its held-out split (the same
    /// trained model scores both rows of a cluster's pair).
    pub precision: f64,
    /// Failure-predictor recall on its held-out split.
    pub recall: f64,
    pub wall_secs: f64,
    /// FNV-1a over every outcome's (id, start, end, preemptions) — pins
    /// the injected run including the failure sequence.
    pub outcome_digest: String,
    /// Worker threads available when this record was measured
    /// ([`run_parallelism`]).
    pub parallelism: usize,
}

impl FaultRunRecord {
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "cluster": self.cluster.clone(),
            "policy": self.policy.clone(),
            "jobs": self.jobs,
            "failures": self.failures,
            "killed_jobs": self.killed_jobs,
            "goodput": self.goodput,
            "lost_gpu_hours": self.lost_gpu_hours,
            "precision": self.precision,
            "recall": self.recall,
            "wall_secs": self.wall_secs,
            "outcome_digest": self.outcome_digest.clone(),
            "parallelism": self.parallelism,
        })
    }
}

/// One cluster's ledger from the `fleet-chaos` experiment: how much
/// self-healing the chaos schedule forced (restarts, corrupt-generation
/// fallbacks), what it cost (checkpoint write latency, recovery time),
/// and whether the recovered outcome stream still matched the
/// uninterrupted twin bit for bit — the `resilience` section of
/// `repro --bench-json` (the BENCH_fleet.json format).
#[derive(Debug, Clone)]
pub struct ResilienceRecord {
    pub cluster: String,
    pub policy: String,
    /// Jobs streamed through this cluster during the chaos run.
    pub jobs: usize,
    /// Supervisor restarts the injected panics forced.
    pub restarts: u32,
    /// Corrupt/undecodable checkpoint generations skipped during those
    /// recoveries (each one is a successful fall-back to an older
    /// generation).
    pub fallbacks: u32,
    /// Checkpoint generations written (launch + auto + post-recovery
    /// re-baselines).
    pub checkpoint_writes: u64,
    /// Mean wall-clock checkpoint write latency, milliseconds.
    pub checkpoint_write_ms_mean: f64,
    /// Total wall-clock time spent in restore-and-replay recovery,
    /// milliseconds.
    pub recovery_ms_total: f64,
    /// Mean wall-clock recovery latency per restart, milliseconds.
    pub recovery_ms_mean: f64,
    /// Whether the chaos run's outcome digest equals the uninterrupted
    /// twin's — the crash-consistency pin. Always `true` in a committed
    /// BENCH_fleet.json (a mismatch fails the experiment).
    pub digest_match: bool,
    /// FNV-1a over every outcome's (id, start, end, preemptions).
    pub outcome_digest: String,
    /// Wall-clock seconds of the whole chaos run on this fleet.
    pub wall_secs: f64,
    /// Worker threads available when this record was measured
    /// ([`run_parallelism`]).
    pub parallelism: usize,
}

impl ResilienceRecord {
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "cluster": self.cluster.clone(),
            "policy": self.policy.clone(),
            "jobs": self.jobs,
            "restarts": self.restarts,
            "fallbacks": self.fallbacks,
            "checkpoint_writes": self.checkpoint_writes,
            "checkpoint_write_ms_mean": self.checkpoint_write_ms_mean,
            "recovery_ms_total": self.recovery_ms_total,
            "recovery_ms_mean": self.recovery_ms_mean,
            "digest_match": self.digest_match,
            "outcome_digest": self.outcome_digest.clone(),
            "wall_secs": self.wall_secs,
            "parallelism": self.parallelism,
        })
    }
}

/// One cluster's ledger from the `fleet-overload` experiment: how much
/// load the adaptive admission control shed under a sustained ≥2×
/// overload, whether the shedding stayed VC-fair (heavy VC only), what
/// the deadline-bounded status path observed while the worker was
/// saturated, and whether disabling shedding reproduced the legacy
/// FleetOverflow stream bit for bit — the `overload` section of
/// `repro --bench-json` (the BENCH_fleet.json format).
#[derive(Debug, Clone)]
pub struct OverloadRecord {
    pub cluster: String,
    pub policy: String,
    /// Jobs eventually admitted (all of them — shed submissions are
    /// retried after a drain cycle).
    pub jobs: usize,
    /// Offered load per admission cycle over total ingestion capacity.
    pub overload_factor: f64,
    /// Shed decisions counted by the fleet ([`FleetHealth::shed_jobs`](helios_fleet::FleetHealth)).
    pub shed_jobs: u64,
    /// Driver-observed sheds on the deliberately heavy VC.
    pub shed_heavy_vc: u64,
    /// Driver-observed sheds on every light VC (fairness pins this to 0).
    pub shed_light_vcs: u64,
    /// FleetOverflow refusals the shedding-disabled twin hit instead.
    pub twin_overflows: u64,
    /// `status_within` samples taken while the run was saturated.
    pub status_samples: u64,
    /// p99 of the sampled snapshot staleness, in admission cycles.
    pub status_p99_age_cycles: u64,
    /// Samples answered in degraded mode (lock miss or unhealthy worker).
    pub status_degraded: u64,
    /// Whether the shedding run's outcome digest equals the
    /// shedding-disabled twin's. Always `true` in a committed
    /// BENCH_fleet.json (a mismatch fails the experiment).
    pub digest_match: bool,
    /// FNV-1a over every outcome's (id, start, end, preemptions).
    pub outcome_digest: String,
    /// Wall-clock seconds of the shedding run on this fleet.
    pub wall_secs: f64,
    /// Worker threads available when this record was measured
    /// ([`run_parallelism`]).
    pub parallelism: usize,
}

impl OverloadRecord {
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "cluster": self.cluster.clone(),
            "policy": self.policy.clone(),
            "jobs": self.jobs,
            "overload_factor": self.overload_factor,
            "shed_jobs": self.shed_jobs,
            "shed_heavy_vc": self.shed_heavy_vc,
            "shed_light_vcs": self.shed_light_vcs,
            "twin_overflows": self.twin_overflows,
            "status_samples": self.status_samples,
            "status_p99_age_cycles": self.status_p99_age_cycles,
            "status_degraded": self.status_degraded,
            "digest_match": self.digest_match,
            "outcome_digest": self.outcome_digest.clone(),
            "wall_secs": self.wall_secs,
            "parallelism": self.parallelism,
        })
    }
}

/// Worker/thread count of this run — stamped into every perf record so
/// trajectories are only ever compared like-for-like.
pub fn run_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stable FNV-1a fingerprint of a scheduling result.
pub fn outcome_digest(outcomes: &[helios_sim::JobOutcome]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.start as u64);
        mix(o.end as u64);
        mix(o.preemptions as u64);
    }
    format!("{h:016x}")
}

/// Cached scheduler comparison for one cluster.
pub struct SchedulerRun {
    pub cluster: String,
    /// Policy label -> outcomes, keyed in label order so report
    /// iteration is digest-stable.
    pub outcomes: BTreeMap<&'static str, Vec<helios_sim::JobOutcome>>,
    /// Per-policy wall-time records, in the order the policies ran.
    pub perf: Vec<PolicyRunPerf>,
}

/// Shared, lazily-computed experiment state.
pub struct Context {
    pub cfg: GeneratorConfig,
    /// Policy labels the scheduler experiments run, in [`POLICIES`] order.
    policies: Vec<&'static str>,
    helios: Option<Vec<Trace>>,
    philly: Option<Trace>,
    sched: Option<Vec<SchedulerRun>>,
    sched_philly: Option<SchedulerRun>,
    ces: Option<Vec<(String, CesEvaluation)>>,
    ces_philly: Option<(String, CesEvaluation)>,
    stages: Vec<StagePerfRecord>,
    /// Perf records produced by the `fleet-soak` experiment (empty unless
    /// it ran) — merged into [`Context::bench_records`].
    fleet_perf: Vec<PolicyRunPerf>,
    /// Fault model every scheduler simulation runs under (`repro
    /// --failures <mtbf-hours>`); `None` = failure-free, the default.
    faults: Option<FaultConfig>,
    /// Wrap every selected policy in the proactive-drain layer (`repro
    /// --policy drain:<inner>`).
    drain: bool,
    /// Records produced by the `failure-soak` experiment (empty unless it
    /// ran) — serialized as the `faults` section of `--bench-json`.
    faults_perf: Vec<FaultRunRecord>,
    /// Records produced by the `fleet-chaos` experiment (empty unless it
    /// ran) — serialized as the `resilience` section of `--bench-json`.
    resilience: Vec<ResilienceRecord>,
    /// Records produced by the `fleet-overload` experiment (empty unless
    /// it ran) — serialized as the `overload` section of `--bench-json`.
    overload: Vec<OverloadRecord>,
}

impl Context {
    /// Create a context; `scale` shrinks clusters and job counts together.
    /// The configuration is validated here, once, so the lazy generation
    /// below cannot fail on user input. Scheduler experiments default to
    /// the paper's four policies; see [`Context::set_policy_choice`].
    pub fn new(scale: f64, seed: u64) -> Result<Self, HeliosError> {
        let cfg = GeneratorConfig { scale, seed };
        cfg.validate()?;
        Ok(Context {
            cfg,
            policies: PAPER_POLICIES.to_vec(),
            helios: None,
            philly: None,
            sched: None,
            sched_philly: None,
            ces: None,
            ces_philly: None,
            stages: Vec::new(),
            fleet_perf: Vec::new(),
            faults: None,
            drain: false,
            faults_perf: Vec::new(),
            resilience: Vec::new(),
            overload: Vec::new(),
        })
    }

    /// Enable failure injection for every scheduler simulation this
    /// context runs (`repro --failures <mtbf-hours>`): seeded per-node
    /// Weibull MTBF renewal with the production-flavored defaults of
    /// [`FaultConfig::with_mtbf_hours`], under checkpoint-restart
    /// semantics (2 h intervals). Checkpointing is what makes any MTBF
    /// safe here: Helios traces carry 50-day jobs, and kill-and-requeue
    /// against an MTBF shorter than the longest job would recompute
    /// forever (see [`helios_sim::FaultSemantics`]). The `failure-soak`
    /// experiment also adopts this model. Non-physical MTBFs are a typed
    /// [`HeliosError::InvalidConfig`] error, never a panic.
    pub fn set_failures(&mut self, mtbf_hours: f64) -> Result<(), HeliosError> {
        let cfg = FaultConfig::with_mtbf_hours(mtbf_hours).checkpoint_hours(2.0);
        cfg.validate()?;
        self.faults = Some(cfg);
        // Scheduler caches are fault-model-dependent.
        self.sched = None;
        self.sched_philly = None;
        Ok(())
    }

    /// The fault model scheduler simulations run under (`None` =
    /// failure-free).
    pub fn failures(&self) -> Option<&FaultConfig> {
        self.faults.as_ref()
    }

    /// Restrict (or extend) the scheduler experiments to one policy — or
    /// `"all"` for every shipped policy including Tiresias. Accepts the
    /// `repro --policy` values: `fifo|sjf|srtf|qssf|tiresias|all`
    /// (case-insensitive; the valid set is `POLICY_TABLE`). A `drain:`
    /// prefix (e.g. `drain:fifo`) wraps every selected policy in the
    /// proactive-drain layer ([`DrainPolicy`]), which marks
    /// high-failure-risk nodes draining before they fail.
    pub fn set_policy_choice(&mut self, choice: &str) -> Result<(), HeliosError> {
        let (choice, drain) = match choice.split_once(':') {
            Some((prefix, inner)) if prefix.eq_ignore_ascii_case("drain") => (inner, true),
            _ => (choice, false),
        };
        self.drain = drain;
        self.policies = if choice.eq_ignore_ascii_case("all") {
            POLICIES.to_vec()
        } else if let Some((label, _)) = POLICY_TABLE
            .iter()
            .find(|(l, _)| l.eq_ignore_ascii_case(choice))
        {
            vec![*label]
        } else {
            return Err(HeliosError::UnknownName {
                kind: "policy",
                name: choice.to_string(),
                expected: {
                    let mut names: Vec<String> =
                        POLICIES.iter().map(|l| l.to_ascii_lowercase()).collect();
                    names.push("all".into());
                    names.push("drain:<any of these>".into());
                    names.join(", ")
                },
            });
        };
        // Scheduler caches are policy-dependent.
        self.sched = None;
        self.sched_philly = None;
        Ok(())
    }

    /// The policy labels scheduler experiments currently run.
    pub fn policy_labels(&self) -> &[&'static str] {
        &self.policies
    }

    /// The four Helios traces (generated once).
    pub fn helios(&mut self) -> &[Trace] {
        if self.helios.is_none() {
            eprintln!(
                "[ctx] generating Helios traces (scale {})...",
                self.cfg.scale
            );
            self.helios =
                Some(generate_helios(&self.cfg).expect("config validated in Context::new"));
        }
        self.helios.as_ref().unwrap()
    }

    /// The Philly trace.
    pub fn philly(&mut self) -> &Trace {
        if self.philly.is_none() {
            eprintln!(
                "[ctx] generating Philly trace (scale {})...",
                self.cfg.scale
            );
            self.philly =
                Some(generate_philly(&self.cfg).expect("config validated in Context::new"));
        }
        self.philly.as_ref().unwrap()
    }

    /// September scheduler comparisons on all four Helios clusters over
    /// the selected policies (QSSF trained on April–August). Clusters ×
    /// policies fan out over rayon — one simulation per thread.
    pub fn scheduler_runs(&mut self) -> &[SchedulerRun] {
        if self.sched.is_none() {
            self.helios();
            let policies = self.policies.clone();
            let traces = self.helios.as_ref().unwrap();
            eprintln!(
                "[ctx] scheduling experiments on {} clusters x {} policies (parallel)...",
                traces.len(),
                policies.len()
            );
            let seed = self.cfg.seed;
            let faults = self.faults;
            let drain = self.drain;
            let runs: Vec<SchedulerRun> = traces
                .par_iter()
                .with_min_len(1)
                .map(|t| run_schedulers_with(t, seed, &policies, faults.as_ref(), drain))
                .collect();
            self.sched = Some(runs);
        }
        self.sched.as_ref().unwrap()
    }

    /// Philly scheduler comparison (October–November; noisy-oracle
    /// priorities, the paper's §4.2.3 assumption). Policies fan out over
    /// rayon.
    pub fn scheduler_run_philly(&mut self) -> &SchedulerRun {
        if self.sched_philly.is_none() {
            let seed = self.cfg.seed;
            let policies = self.policies.clone();
            let faults = self.faults;
            let drain = self.drain;
            let t = self.philly();
            eprintln!("[ctx] scheduling experiments on Philly (parallel)...");
            let (lo, hi) = (t.calendar.month_start(0), t.calendar.month_end(1));
            let base = jobs_from_trace(t, lo, hi);
            let kcfg = KernelConfig::default();
            let results: Vec<(&'static str, PolicyRunPerf, Vec<helios_sim::JobOutcome>)> = policies
                .par_iter()
                .with_min_len(1)
                .map(|&label| {
                    let jobs: Vec<SimJob>;
                    let jobs_ref: &[SimJob] = if label == "QSSF" {
                        // QSSF with randomized priorities matching
                        // Helios-like estimation error.
                        jobs = noisy_oracle_priorities(t, lo, hi, 0.8, seed ^ 0xF1);
                        &jobs
                    } else {
                        &base
                    };
                    let policy = if label == "QSSF" {
                        Box::new(PriorityPolicy::named("QSSF")) as Box<dyn SchedulingPolicy>
                    } else {
                        baseline_policy(label)
                    };
                    let policy = maybe_drain(policy, faults.as_ref(), drain);
                    timed_run(
                        "Philly",
                        label,
                        &t.spec,
                        jobs_ref,
                        policy,
                        &kcfg,
                        faults.as_ref(),
                    )
                })
                .collect();
            let mut outcomes = BTreeMap::new();
            let mut perf = Vec::new();
            for (label, p, o) in results {
                perf.push(p);
                outcomes.insert(label, o);
            }
            self.sched_philly = Some(SchedulerRun {
                cluster: "Philly".into(),
                outcomes,
                perf,
            });
        }
        self.sched_philly.as_ref().unwrap()
    }

    /// Every per-policy wall-time record the scheduler experiments have
    /// produced so far (Helios clusters first, then Philly if run) — the
    /// payload behind `repro --bench-json`.
    pub fn bench_records(&self) -> Vec<&PolicyRunPerf> {
        let mut out = Vec::new();
        if let Some(runs) = &self.sched {
            out.extend(runs.iter().flat_map(|r| r.perf.iter()));
        }
        if let Some(run) = &self.sched_philly {
            out.extend(run.perf.iter());
        }
        out.extend(self.fleet_perf.iter());
        out
    }

    /// Per-stage wall-time records produced by the `pipeline` experiment
    /// (empty unless it ran) — serialized into `repro --bench-json`.
    pub fn stage_records(&self) -> &[StagePerfRecord] {
        &self.stages
    }

    /// Failure-injected run records produced by the `failure-soak`
    /// experiment (empty unless it ran) — the `faults` section of
    /// `repro --bench-json` (BENCH_faults.json).
    pub fn fault_records(&self) -> &[FaultRunRecord] {
        &self.faults_perf
    }

    /// Chaos-run resilience records produced by the `fleet-chaos`
    /// experiment (empty unless it ran) — the `resilience` section of
    /// `repro --bench-json` (BENCH_fleet.json).
    pub fn resilience_records(&self) -> &[ResilienceRecord] {
        &self.resilience
    }

    /// Overload-run records produced by the `fleet-overload` experiment
    /// (empty unless it ran) — the `overload` section of
    /// `repro --bench-json` (BENCH_fleet.json).
    pub fn overload_records(&self) -> &[OverloadRecord] {
        &self.overload
    }

    /// CES evaluations: September 1–21 on each Helios cluster, one
    /// cluster per rayon thread.
    pub fn ces_runs(&mut self) -> &[(String, CesEvaluation)] {
        if self.ces.is_none() {
            self.helios();
            let traces = self.helios.as_ref().unwrap();
            eprintln!(
                "[ctx] CES evaluation on {} clusters (parallel)...",
                traces.len()
            );
            let out: Vec<(String, CesEvaluation)> = traces
                .par_iter()
                .with_min_len(1)
                .map(|t| {
                    let series = node_series_from_trace(t, 600, Placement::Consolidate)
                        .expect("series replay on a valid trace");
                    let eval_start = t.calendar.month_start(5);
                    let eval_end = eval_start + 21 * SECS_PER_DAY;
                    let mut svc = CesService::new(scaled_ces_config(t.spec.nodes));
                    (
                        t.spec.id.name().to_string(),
                        svc.evaluate(t, &series, eval_start, eval_end)
                            .expect("evaluation window within calendar"),
                    )
                })
                .collect();
            self.ces = Some(out);
        }
        self.ces.as_ref().unwrap()
    }

    /// CES evaluation on Philly: December 1–14 (scatter placement — Philly
    /// spread small jobs across nodes).
    pub fn ces_run_philly(&mut self) -> &(String, CesEvaluation) {
        if self.ces_philly.is_none() {
            let t = self.philly();
            eprintln!("[ctx] CES evaluation on Philly...");
            let series = node_series_from_trace(t, 600, Placement::Scatter)
                .expect("series replay on a valid trace");
            let eval_start = t.calendar.month_start(2);
            let eval_end = eval_start + 14 * SECS_PER_DAY;
            let mut svc = CesService::new(scaled_ces_config(t.spec.nodes));
            let eval = svc
                .evaluate(t, &series, eval_start, eval_end)
                .expect("evaluation window within calendar");
            self.ces_philly = Some(("Philly".into(), eval));
        }
        self.ces_philly.as_ref().unwrap()
    }
}

/// CES thresholds proportional to cluster size (defaults target the
/// 130–320-node paper clusters; scaled runs shrink them).
fn scaled_ces_config(nodes: u32) -> CesServiceConfig {
    let mut cfg = CesServiceConfig::default();
    let k = (nodes as f64 / 140.0).clamp(0.05, 3.0);
    cfg.control.buffer_nodes = (3.0 * k).max(1.0);
    cfg.control.xi_hist = (1.0 * k).max(0.25);
    cfg.control.xi_future = (1.0 * k).max(0.25);
    cfg
}

type PolicyCtor = fn() -> Box<dyn SchedulingPolicy>;

/// Single source of truth for the scheduler-experiment policies: label →
/// constructor, canonical column order. `None` marks QSSF, whose policy
/// object comes from its trained service ([`QssfService::scheduling_policy`]).
const POLICY_TABLE: [(&str, Option<PolicyCtor>); 5] = [
    ("FIFO", Some(|| Box::new(FifoPolicy))),
    ("SJF", Some(|| Box::new(SjfPolicy))),
    ("QSSF", None),
    ("SRTF", Some(|| Box::new(SrtfPolicy))),
    ("TIRESIAS", Some(|| Box::new(TiresiasPolicy::default()))),
];

/// Policy object for one QSSF-agnostic policy label (validated against
/// `POLICY_TABLE` by [`Context::set_policy_choice`]).
fn baseline_policy(label: &str) -> Box<dyn SchedulingPolicy> {
    let ctor = POLICY_TABLE
        .iter()
        .find(|(l, _)| *l == label)
        .and_then(|(_, c)| *c)
        .expect("label validated against POLICY_TABLE by set_policy_choice");
    ctor()
}

/// Wrap a policy in the proactive-drain layer when `--policy drain:<inner>`
/// selected it. Without a trained predictor the wrapper runs the
/// uptime-threshold risk model at the configured MTBF — under the
/// aging-hazard Weibull default, "older than the mean time between
/// failures" is the natural drain trigger (a generous 30-day horizon when
/// no fault model is configured, where draining never fires in practice).
fn maybe_drain(
    inner: Box<dyn SchedulingPolicy>,
    faults: Option<&FaultConfig>,
    drain: bool,
) -> Box<dyn SchedulingPolicy> {
    if !drain {
        return inner;
    }
    let hours = faults.map_or(24.0 * 30.0, |f| f.mtbf_secs / 3600.0);
    Box::new(
        DrainPolicy::uptime(inner, hours, DrainConfig::default())
            .expect("positive uptime threshold"),
    )
}

/// Simulate one policy over one job set, timing the kernel run and
/// fingerprinting its outcomes; with a fault model the kernel runs under
/// failure injection. Note: scheduler experiments fan out over rayon, so
/// `wall_secs` includes whatever core contention the sibling simulations
/// cause — compare records only across runs with the same fan-out shape
/// (the `--bench-json` metadata records the parallelism).
fn timed_run(
    cluster: &str,
    label: &'static str,
    spec: &helios_trace::ClusterSpec,
    jobs: &[SimJob],
    policy: Box<dyn SchedulingPolicy>,
    kcfg: &KernelConfig,
    faults: Option<&FaultConfig>,
) -> (&'static str, PolicyRunPerf, Vec<helios_sim::JobOutcome>) {
    // Drain-wrapped runs report the wrapper's `DRAIN+<inner>` name so the
    // perf records distinguish them; `label` stays the inner policy (the
    // experiments' column key).
    let policy_name = policy.name().to_string();
    let started = Instant::now();
    let outcomes = match faults {
        None => {
            simulate_with(spec, jobs, policy, kcfg)
                .expect("sim inputs pre-filtered")
                .outcomes
        }
        Some(f) => {
            let mut sim = Simulator::with_config(spec, policy, kcfg);
            sim.enable_faults(f)
                .expect("fault config validated upstream");
            sim.push_jobs(jobs).expect("sim inputs pre-filtered");
            sim.run_to_completion();
            sim.drain_outcomes()
        }
    };
    let wall_secs = started.elapsed().as_secs_f64();
    let perf = PolicyRunPerf {
        cluster: cluster.to_string(),
        policy: policy_name,
        jobs: jobs.len(),
        wall_secs,
        jobs_per_sec: if wall_secs > 0.0 {
            jobs.len() as f64 / wall_secs
        } else {
            f64::INFINITY
        },
        outcome_digest: outcome_digest(&outcomes),
        parallelism: run_parallelism(),
    };
    (label, perf, outcomes)
}

/// Run the selected scheduling policies on one cluster's September jobs
/// through the pluggable kernel, one policy per rayon thread
/// (failure-free, no drain wrapper — the legacy entry point).
pub fn run_schedulers(trace: &Trace, seed: u64, policies: &[&'static str]) -> SchedulerRun {
    run_schedulers_with(trace, seed, policies, None, false)
}

/// [`run_schedulers`] with an optional fault model (failure injection in
/// every kernel) and optional proactive-drain wrapping of each policy.
pub fn run_schedulers_with(
    trace: &Trace,
    seed: u64,
    policies: &[&'static str],
    faults: Option<&FaultConfig>,
    drain: bool,
) -> SchedulerRun {
    let _ = seed;
    let cal = &trace.calendar;
    let (lo, hi) = cal.month_range(5); // September
    let base = jobs_from_trace(trace, lo, hi);
    let kcfg = KernelConfig::default();
    let cluster = trace.spec.id.name().to_string();
    let results: Vec<(&'static str, PolicyRunPerf, Vec<helios_sim::JobOutcome>)> = policies
        .par_iter()
        .with_min_len(1)
        .map(|&label| {
            if label == "QSSF" {
                // QSSF: train on April–August, score September causally.
                let mut qssf = QssfService::new(QssfConfig::default());
                qssf.train(trace, 0, lo).expect("training window non-empty");
                let scored = qssf.assign_priorities(trace, lo, hi);
                timed_run(
                    &cluster,
                    label,
                    &trace.spec,
                    &scored,
                    maybe_drain(qssf.scheduling_policy(), faults, drain),
                    &kcfg,
                    faults,
                )
            } else {
                timed_run(
                    &cluster,
                    label,
                    &trace.spec,
                    &base,
                    maybe_drain(baseline_policy(label), faults, drain),
                    &kcfg,
                    faults,
                )
            }
        })
        .collect();
    let mut outcomes = BTreeMap::new();
    let mut perf = Vec::new();
    for (label, p, o) in results {
        perf.push(p);
        outcomes.insert(label, o);
    }
    SchedulerRun {
        cluster,
        outcomes,
        perf,
    }
}

/// Every shipped scheduler-experiment policy, canonical column order
/// (derived from `POLICY_TABLE`).
pub const POLICIES: [&str; 5] = [
    POLICY_TABLE[0].0,
    POLICY_TABLE[1].0,
    POLICY_TABLE[2].0,
    POLICY_TABLE[3].0,
    POLICY_TABLE[4].0,
];

/// The paper's Fig. 11 / Table 3 policy set (the default): everything in
/// `POLICY_TABLE` except the follow-up Tiresias discipline.
pub const PAPER_POLICIES: [&str; 4] = ["FIFO", "SJF", "QSSF", "SRTF"];

// ---------------------------------------------------------------------------
// Characterization experiments (§3)
// ---------------------------------------------------------------------------

fn table1(ctx: &mut Context) -> ExperimentOutput {
    let traces = ctx.helios();
    let mut table = TextTable::new(vec!["", "Venus", "Earth", "Saturn", "Uranus", "Total"]);
    let row = |name: &str,
               f: &dyn Fn(&Trace) -> String,
               total: String,
               t: &mut TextTable,
               traces: &[Trace]| {
        let mut cells = vec![name.to_string()];
        cells.extend(traces.iter().map(f));
        cells.push(total);
        t.row(cells);
    };
    let sum_nodes: u32 = traces.iter().map(|t| t.spec.nodes).sum();
    let sum_gpus: u32 = traces.iter().map(|t| t.total_gpus()).sum();
    let sum_vcs: usize = traces.iter().map(|t| t.spec.num_vcs()).sum();
    let sum_jobs: u64 = traces.iter().map(|t| t.jobs.len() as u64).sum();
    row(
        "GPU model",
        &|t| t.spec.gpu_model.label().into(),
        "-".into(),
        &mut table,
        traces,
    );
    row(
        "Network",
        &|t| t.spec.network.into(),
        "-".into(),
        &mut table,
        traces,
    );
    row(
        "# of VCs",
        &|t| t.spec.num_vcs().to_string(),
        sum_vcs.to_string(),
        &mut table,
        traces,
    );
    row(
        "# of Nodes",
        &|t| t.spec.nodes.to_string(),
        sum_nodes.to_string(),
        &mut table,
        traces,
    );
    row(
        "# of GPUs",
        &|t| fmt_count(t.total_gpus() as u64),
        fmt_count(sum_gpus as u64),
        &mut table,
        traces,
    );
    row(
        "# of Jobs",
        &|t| fmt_count(t.jobs.len() as u64),
        fmt_count(sum_jobs),
        &mut table,
        traces,
    );
    let data = json!({
        "nodes": traces.iter().map(|t| t.spec.nodes).collect::<Vec<_>>(),
        "gpus": traces.iter().map(|t| t.total_gpus()).collect::<Vec<_>>(),
        "jobs": traces.iter().map(|t| t.jobs.len()).collect::<Vec<_>>(),
    });
    ExperimentOutput {
        id: "table1".into(),
        text: format!(
            "Table 1: cluster configurations (scale {})\n{}",
            ctx.cfg.scale,
            table.render()
        ),
        data,
    }
}

fn table2(ctx: &mut Context) -> ExperimentOutput {
    let helios_refs: Vec<&Trace> = ctx.helios().iter().collect();
    let h = jobs::summarize(&helios_refs);
    let p = jobs::summarize(&[ctx.philly()]);
    let mut table = TextTable::new(vec!["", "Helios", "Philly"]);
    table.row(vec![
        "# of clusters".to_string(),
        h.clusters.to_string(),
        p.clusters.to_string(),
    ]);
    table.row(vec![
        "# of VCs".to_string(),
        h.vcs.to_string(),
        p.vcs.to_string(),
    ]);
    table.row(vec![
        "# of Jobs".to_string(),
        fmt_count(h.jobs),
        fmt_count(p.jobs),
    ]);
    table.row(vec![
        "# of GPU Jobs".to_string(),
        fmt_count(h.gpu_jobs),
        fmt_count(p.gpu_jobs),
    ]);
    table.row(vec![
        "# of CPU Jobs".to_string(),
        fmt_count(h.cpu_jobs),
        fmt_count(p.cpu_jobs),
    ]);
    table.row(vec![
        "Duration (days)".to_string(),
        h.duration_days.to_string(),
        p.duration_days.to_string(),
    ]);
    table.row(vec![
        "Average # of GPUs".to_string(),
        format!("{:.2}", h.avg_gpus),
        format!("{:.2}", p.avg_gpus),
    ]);
    table.row(vec![
        "Maximum # of GPUs".to_string(),
        h.max_gpus.to_string(),
        p.max_gpus.to_string(),
    ]);
    table.row(vec![
        "Average Duration".to_string(),
        format!("{:.0}s", h.avg_duration_s),
        format!("{:.0}s", p.avg_duration_s),
    ]);
    table.row(vec![
        "Maximum Duration".to_string(),
        fmt_secs(h.max_duration_s as f64),
        fmt_secs(p.max_duration_s as f64),
    ]);
    ExperimentOutput {
        id: "table2".into(),
        text: format!(
            "Table 2: Helios vs Philly (paper: 3.72 vs 1.75 GPUs, 6652s vs 28329s)\n{}",
            table.render()
        ),
        data: json!({
            "helios": json!({"jobs": h.jobs, "avg_gpus": h.avg_gpus, "avg_duration": h.avg_duration_s}),
            "philly": json!({"jobs": p.jobs, "avg_gpus": p.avg_gpus, "avg_duration": p.avg_duration_s}),
        }),
    }
}

fn fig1(ctx: &mut Context) -> ExperimentOutput {
    let grid = Cdf::log_grid(1.0, 1.0e7, 15);
    let helios_durs: Vec<f64> = ctx
        .helios()
        .iter()
        .flat_map(|t| t.gpu_jobs().map(|j| j.duration as f64).collect::<Vec<_>>())
        .collect();
    let h_cdf = Cdf::new(helios_durs);
    let p_cdf = jobs::gpu_duration_cdf(ctx.philly());
    let mut table = TextTable::new(vec!["duration", "Helios CDF%", "Philly CDF%"]);
    for &x in &grid {
        table.row(vec![
            fmt_secs(x),
            format!("{:.1}", 100.0 * h_cdf.fraction_at(x)),
            format!("{:.1}", 100.0 * p_cdf.fraction_at(x)),
        ]);
    }
    let helios_refs: Vec<&Trace> = ctx.helios().iter().collect();
    let h_status = jobs::gpu_time_by_status(&helios_refs);
    let p_status = jobs::gpu_time_by_status(&[ctx.philly()]);
    let mut t2 = TextTable::new(vec!["GPU time %", "completed", "canceled", "failed"]);
    t2.row(vec![
        "Helios".to_string(),
        format!("{:.1}", h_status[0]),
        format!("{:.1}", h_status[1]),
        format!("{:.1}", h_status[2]),
    ]);
    t2.row(vec![
        "Philly".to_string(),
        format!("{:.1}", p_status[0]),
        format!("{:.1}", p_status[1]),
        format!("{:.1}", p_status[2]),
    ]);
    ExperimentOutput {
        id: "fig1".into(),
        text: format!(
            "Fig 1(a): GPU-job duration CDFs (Philly stochastically longer)\n{}\nFig 1(b): GPU time by final status (paper Helios 51.3/39.4/9.3, Philly 31.3/32.6/36.1)\n{}",
            table.render(),
            t2.render()
        ),
        data: json!({"helios_status": h_status, "philly_status": p_status}),
    }
}

fn fig2(ctx: &mut Context) -> ExperimentOutput {
    let patterns: Vec<clusters::DailyPattern> =
        ctx.helios().iter().map(clusters::daily_pattern).collect();
    let mut t1 = TextTable::new(vec!["hour", "Venus%", "Earth%", "Saturn%", "Uranus%"]);
    let mut t2 = TextTable::new(vec!["hour", "Venus", "Earth", "Saturn", "Uranus"]);
    for h in 0..24 {
        t1.row(vec![
            h.to_string(),
            format!("{:.1}", patterns[0].hourly_utilization[h]),
            format!("{:.1}", patterns[1].hourly_utilization[h]),
            format!("{:.1}", patterns[2].hourly_utilization[h]),
            format!("{:.1}", patterns[3].hourly_utilization[h]),
        ]);
        t2.row(vec![
            h.to_string(),
            format!("{:.1}", patterns[0].hourly_submissions[h]),
            format!("{:.1}", patterns[1].hourly_submissions[h]),
            format!("{:.1}", patterns[2].hourly_submissions[h]),
            format!("{:.1}", patterns[3].hourly_submissions[h]),
        ]);
    }
    let stds: Vec<String> = patterns
        .iter()
        .map(|p| format!("{}={:.1}%", p.cluster, p.utilization_std_dev))
        .collect();
    ExperimentOutput {
        id: "fig2".into(),
        text: format!(
            "Fig 2(a): hourly average utilization (paper band 65-90%, mild night dip)\n{}\nFig 2(b): hourly average GPU-job submissions (night/lunch/dinner troughs)\n{}\nHourly utilization std-dev: {}\n",
            t1.render(),
            t2.render(),
            stds.join(", ")
        ),
        data: json!({
            "utilization": patterns.iter().map(|p| p.hourly_utilization.clone()).collect::<Vec<_>>(),
            "submissions": patterns.iter().map(|p| p.hourly_submissions.clone()).collect::<Vec<_>>(),
        }),
    }
}

fn fig3(ctx: &mut Context) -> ExperimentOutput {
    let trends: Vec<clusters::MonthlyTrend> =
        ctx.helios().iter().map(clusters::monthly_trend).collect();
    let mut text = String::from("Fig 3: monthly trends (single-GPU fluctuates, multi-GPU stable; multi-GPU dominates utilization)\n");
    for tr in &trends {
        let mut t = TextTable::new(vec![
            "month",
            "1-GPU jobs",
            "multi jobs",
            "util%",
            "1-GPU util%",
            "multi util%",
        ]);
        for m in 0..tr.months.len() {
            t.row(vec![
                tr.months[m].clone(),
                fmt_count(tr.single_gpu_jobs[m]),
                fmt_count(tr.multi_gpu_jobs[m]),
                format!("{:.1}", tr.utilization[m]),
                format!("{:.1}", tr.single_gpu_utilization[m]),
                format!("{:.1}", tr.multi_gpu_utilization[m]),
            ]);
        }
        text.push_str(&format!(
            "\n{} (monthly avg-GPU-request std-dev {:.2}, paper 2.9):\n{}",
            tr.cluster,
            tr.monthly_avg_gpu_std_dev,
            t.render()
        ));
    }
    ExperimentOutput {
        id: "fig3".into(),
        text,
        data: json!(trends
            .iter()
            .map(|t| json!({
                "cluster": t.cluster.clone(),
                "single": t.single_gpu_jobs.clone(),
                "multi": t.multi_gpu_jobs.clone(),
                "util": t.utilization.clone(),
            }))
            .collect::<Vec<_>>()),
    }
}

fn fig4(ctx: &mut Context) -> ExperimentOutput {
    // Earth, May (month index 1), top-10 VCs — exactly the paper's window.
    let earth = &ctx.helios()[1];
    let behaviors = vc::vc_behaviors(earth, 1, 10);
    let (norm_dur, norm_qd) = vc::normalized_delay_series(&behaviors);
    let mut t = TextTable::new(vec![
        "VC",
        "GPUs",
        "util q1%",
        "med%",
        "q3%",
        "avg GPUs/job",
        "norm dur",
        "norm queue",
    ]);
    for (i, b) in behaviors.iter().enumerate() {
        t.row(vec![
            b.name.clone(),
            b.gpus.to_string(),
            format!("{:.1}", b.utilization.q1),
            format!("{:.1}", b.utilization.median),
            format!("{:.1}", b.utilization.q3),
            format!("{:.1}", b.avg_gpu_request),
            format!("{:.2}", norm_dur[i]),
            format!("{:.2}", norm_qd[i]),
        ]);
    }
    let util: Vec<f64> = behaviors.iter().map(|b| b.utilization.median).collect();
    let demand: Vec<f64> = behaviors.iter().map(|b| b.avg_gpu_request).collect();
    let r_util_demand = vc::pearson(&util, &demand);
    let r_dur_qd = vc::pearson(&norm_dur, &norm_qd);
    ExperimentOutput {
        id: "fig4".into(),
        text: format!(
            "Fig 4: top-10 VCs in Earth, May (paper: util correlates with GPU demand; queuing tracks duration)\n{}\ncorr(util, demand) = {:.2}   corr(duration, queuing) = {:.2}\n",
            t.render(), r_util_demand, r_dur_qd
        ),
        data: json!({"r_util_demand": r_util_demand, "r_dur_qd": r_dur_qd}),
    }
}

fn fig5(ctx: &mut Context) -> ExperimentOutput {
    let grid = Cdf::log_grid(1.0, 1.0e6, 13);
    let mut t1 = TextTable::new(vec!["duration", "Venus%", "Earth%", "Saturn%", "Uranus%"]);
    let mut t2 = TextTable::new(vec!["duration", "Venus%", "Earth%", "Saturn%", "Uranus%"]);
    let gpu: Vec<Cdf> = ctx.helios().iter().map(jobs::gpu_duration_cdf).collect();
    let cpu: Vec<Cdf> = ctx.helios().iter().map(jobs::cpu_duration_cdf).collect();
    for &x in &grid {
        t1.row(
            vec![fmt_secs(x)]
                .into_iter()
                .chain(
                    gpu.iter()
                        .map(|c| format!("{:.1}", 100.0 * c.fraction_at(x))),
                )
                .collect::<Vec<_>>(),
        );
        t2.row(
            vec![fmt_secs(x)]
                .into_iter()
                .chain(
                    cpu.iter()
                        .map(|c| format!("{:.1}", 100.0 * c.fraction_at(x))),
                )
                .collect::<Vec<_>>(),
        );
    }
    let medians: Vec<String> = gpu
        .iter()
        .zip(ctx.helios())
        .map(|(c, t)| format!("{}={:.0}s", t.spec.id, c.median()))
        .collect();
    ExperimentOutput {
        id: "fig5".into(),
        text: format!(
            "Fig 5(a): GPU-job duration CDFs (paper median ~206s)\n{}\nFig 5(b): CPU-job duration CDFs (>50% under 2s)\n{}\nGPU medians: {}\n",
            t1.render(), t2.render(), medians.join(", ")
        ),
        data: json!({"gpu_medians": gpu.iter().map(|c| c.median()).collect::<Vec<_>>()}),
    }
}

fn fig6(ctx: &mut Context) -> ExperimentOutput {
    let sizes = [1.0, 4.0, 8.0, 16.0, 32.0, 64.0, 2048.0];
    let mut t1 = TextTable::new(vec!["<=GPUs", "Venus%", "Earth%", "Saturn%", "Uranus%"]);
    let mut t2 = TextTable::new(vec!["<=GPUs", "Venus%", "Earth%", "Saturn%", "Uranus%"]);
    let pairs: Vec<_> = ctx.helios().iter().map(jobs::job_size_cdfs).collect();
    for &s in &sizes {
        t1.row(
            std::iter::once(format!("{s}"))
                .chain(
                    pairs
                        .iter()
                        .map(|(c, _)| format!("{:.1}", 100.0 * c.fraction_at(s))),
                )
                .collect::<Vec<_>>(),
        );
        t2.row(
            std::iter::once(format!("{s}"))
                .chain(
                    pairs
                        .iter()
                        .map(|(_, w)| format!("{:.1}", 100.0 * w.fraction_at(s))),
                )
                .collect::<Vec<_>>(),
        );
    }
    ExperimentOutput {
        id: "fig6".into(),
        text: format!(
            "Fig 6(a): job-size CDF by #jobs (>50% single-GPU; 90% in Earth)\n{}\nFig 6(b): job-size CDF by GPU time (>=8-GPU jobs own ~60%)\n{}",
            t1.render(), t2.render()
        ),
        data: json!({
            "single_share": pairs.iter().map(|(c, _)| c.fraction_at(1.0)).collect::<Vec<_>>(),
            "single_time_share": pairs.iter().map(|(_, w)| w.fraction_at(1.0)).collect::<Vec<_>>(),
        }),
    }
}

fn fig7(ctx: &mut Context) -> ExperimentOutput {
    let refs: Vec<&Trace> = ctx.helios().iter().collect();
    let (cpu, gpu) = jobs::status_by_job_class(&refs);
    let by_demand = jobs::status_by_gpu_demand(&refs);
    let mut t1 = TextTable::new(vec!["job type", "completed%", "canceled%", "failed%"]);
    t1.row(vec![
        "CPU".to_string(),
        format!("{:.1}", cpu[0]),
        format!("{:.1}", cpu[1]),
        format!("{:.1}", cpu[2]),
    ]);
    t1.row(vec![
        "GPU".to_string(),
        format!("{:.1}", gpu[0]),
        format!("{:.1}", gpu[1]),
        format!("{:.1}", gpu[2]),
    ]);
    let mut t2 = TextTable::new(vec!["GPU demand", "completed%", "canceled%", "failed%"]);
    for (i, label) in jobs::DEMAND_BUCKETS.iter().enumerate() {
        t2.row(vec![
            label.to_string(),
            format!("{:.1}", by_demand[i][0]),
            format!("{:.1}", by_demand[i][1]),
            format!("{:.1}", by_demand[i][2]),
        ]);
    }
    ExperimentOutput {
        id: "fig7".into(),
        text: format!(
            "Fig 7(a): final statuses (paper: CPU 90.9/3.0/6.1, GPU 62.4/22.1/15.5)\n{}\nFig 7(b): statuses by GPU demand (completion falls with size)\n{}",
            t1.render(), t2.render()
        ),
        data: json!({"cpu": cpu, "gpu": gpu, "by_demand": by_demand}),
    }
}

fn fig8(ctx: &mut Context) -> ExperimentOutput {
    let fractions = [0.01, 0.05, 0.10, 0.25, 0.50, 1.0];
    let mut t = TextTable::new(vec![
        "top users",
        "GPU-time% (V/E/S/U)",
        "CPU-time% (V/E/S/U)",
    ]);
    let stats: Vec<Vec<users::UserStats>> =
        ctx.helios().iter().map(users::per_user_stats).collect();
    let curves: Vec<_> = stats.iter().map(|s| users::consumption_curves(s)).collect();
    for &f in &fractions {
        let gpu: Vec<String> = curves
            .iter()
            .map(|(g, _)| format!("{:.0}", 100.0 * users::top_share(g, f)))
            .collect();
        let cpu: Vec<String> = curves
            .iter()
            .map(|(_, c)| format!("{:.0}", 100.0 * users::top_share(c, f)))
            .collect();
        t.row(vec![
            format!("{:.0}%", f * 100.0),
            gpu.join("/"),
            cpu.join("/"),
        ]);
    }
    let top5_gpu: Vec<f64> = curves
        .iter()
        .map(|(g, _)| users::top_share(g, 0.05))
        .collect();
    ExperimentOutput {
        id: "fig8".into(),
        text: format!(
            "Fig 8: resource concentration across users (paper: top-5% hold 45-60% GPU time, >90% CPU time)\n{}",
            t.render()
        ),
        data: json!({"top5_gpu_share": top5_gpu}),
    }
}

fn fig9(ctx: &mut Context) -> ExperimentOutput {
    let stats: Vec<Vec<users::UserStats>> =
        ctx.helios().iter().map(users::per_user_stats).collect();
    let mut t = TextTable::new(vec!["top users", "queue-delay% (V/E/S/U)"]);
    for f in [0.01, 0.05, 0.10, 0.25, 0.50] {
        let qs: Vec<String> = stats
            .iter()
            .map(|s| {
                format!(
                    "{:.0}",
                    100.0 * users::top_share(&users::queuing_curve(s), f)
                )
            })
            .collect();
        t.row(vec![format!("{:.0}%", f * 100.0), qs.join("/")]);
    }
    let mut t2 = TextTable::new(vec!["completion rate", "users (V/E/S/U)"]);
    let hists: Vec<Vec<u64>> = stats
        .iter()
        .map(|s| users::completion_rate_histogram(s, 10))
        .collect();
    for b in 0..10 {
        let us: Vec<String> = hists.iter().map(|h| h[b].to_string()).collect();
        t2.row(vec![format!("{}-{}%", b * 10, (b + 1) * 10), us.join("/")]);
    }
    ExperimentOutput {
        id: "fig9".into(),
        text: format!(
            "Fig 9(a): queueing concentration (a few 'marquee users' bear most waiting)\n{}\nFig 9(b): per-user GPU-job completion-rate histogram (generally low)\n{}",
            t.render(), t2.render()
        ),
        data: json!({"hists": hists}),
    }
}

// ---------------------------------------------------------------------------
// QSSF scheduling experiments (§4.2)
// ---------------------------------------------------------------------------

fn fig11(ctx: &mut Context) -> ExperimentOutput {
    let grid = Cdf::log_grid(1.0, 3.0e6, 12);
    let policies = ctx.policies.clone();
    let mut text = String::from(
        "Fig 11: JCT CDFs per cluster and policy (September; QSSF ~ SJF/SRTF >> FIFO)\n",
    );
    let mut data = serde_json::Map::new();
    for run in ctx.scheduler_runs() {
        let mut header = vec!["JCT".to_string()];
        header.extend(policies.iter().map(|p| format!("{p}%")));
        let mut t = TextTable::new(header);
        let cdfs: Vec<Cdf> = policies
            .iter()
            .map(|p| Cdf::new(helios_sim::jct_samples(&run.outcomes[p])))
            .collect();
        for &x in &grid {
            t.row(
                std::iter::once(fmt_secs(x))
                    .chain(
                        cdfs.iter()
                            .map(|c| format!("{:.1}", 100.0 * c.fraction_at(x))),
                    )
                    .collect::<Vec<_>>(),
            );
        }
        text.push_str(&format!("\n{}:\n{}", run.cluster, t.render()));
        data.insert(
            run.cluster.clone(),
            json!(cdfs.iter().map(|c| c.median()).collect::<Vec<_>>()),
        );
    }
    ExperimentOutput {
        id: "fig11".into(),
        text,
        data: serde_json::Value::Object(data),
    }
}

fn per_vc_table(
    run: &SchedulerRun,
    trace: Option<&Trace>,
    top_k: usize,
    policies: &[&'static str],
) -> (String, serde_json::Value) {
    // Top-k VCs by the reference policy's (FIFO when present) average
    // queue delay.
    let reference = policies
        .iter()
        .find(|&&p| p == "FIFO")
        .or_else(|| policies.first())
        .expect("at least one policy selected");
    let ref_delay = per_vc_queue_delay(&run.outcomes[reference]);
    let mut vcs: Vec<(u16, f64)> = ref_delay.iter().map(|(&v, &d)| (v, d)).collect();
    vcs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    vcs.truncate(top_k);
    let per_policy: BTreeMap<&str, BTreeMap<u16, f64>> = policies
        .iter()
        .map(|&p| (p, per_vc_queue_delay(&run.outcomes[p])))
        .collect();
    let mut header = vec!["VC"];
    header.extend(policies);
    let mut t = TextTable::new(header);
    for &(vc, _) in &vcs {
        let name = trace
            .map(|tr| tr.spec.vcs[vc as usize].name.clone())
            .unwrap_or_else(|| format!("vc{vc}"));
        t.row(
            std::iter::once(name)
                .chain(
                    policies
                        .iter()
                        .map(|&p| fmt_secs(per_policy[p].get(&vc).copied().unwrap_or(0.0))),
                )
                .collect::<Vec<_>>(),
        );
    }
    // Whole-cluster row.
    t.row(
        std::iter::once("all".to_string())
            .chain(
                policies
                    .iter()
                    .map(|&p| fmt_secs(schedule_stats(&run.outcomes[p]).avg_queue_delay)),
            )
            .collect::<Vec<_>>(),
    );
    let data = json!(vcs
        .iter()
        .map(|(v, d)| json!({"vc": v, "reference_delay": d}))
        .collect::<Vec<_>>());
    (t.render(), data)
}

fn fig12(ctx: &mut Context) -> ExperimentOutput {
    ctx.scheduler_runs();
    let policies = ctx.policies.clone();
    let trace_saturn = ctx.helios.as_ref().unwrap()[2].clone();
    let run = &ctx.sched.as_ref().unwrap()[2]; // Saturn
    let (text, data) = per_vc_table(run, Some(&trace_saturn), 10, &policies);
    ExperimentOutput {
        id: "fig12".into(),
        text: format!(
            "Fig 12: average queue delay of the top-10 VCs in Saturn (QSSF ~ SJF)\n{text}"
        ),
        data,
    }
}

fn fig13(ctx: &mut Context) -> ExperimentOutput {
    let policies = ctx.policies.clone();
    let run = ctx.scheduler_run_philly();
    let (text, data) = per_vc_table(run, None, 10, &policies);
    ExperimentOutput {
        id: "fig13".into(),
        text: format!(
            "Fig 13: average queue delay of the top-10 VCs in Philly (noisy-oracle QSSF)\n{text}"
        ),
        data,
    }
}

fn table3(ctx: &mut Context) -> ExperimentOutput {
    ctx.scheduler_runs();
    ctx.scheduler_run_philly();
    let policies = ctx.policies.clone();
    let runs: Vec<&SchedulerRun> = ctx
        .sched
        .as_ref()
        .unwrap()
        .iter()
        .chain(std::iter::once(ctx.sched_philly.as_ref().unwrap()))
        .collect();
    let mut text = String::from("Table 3: scheduler comparison (paper: QSSF ~ SJF, 1.5-6.5x JCT and 4.8-20.2x queue-delay gains over FIFO)\n");
    let mut data = serde_json::Map::new();
    for metric in [
        "Average JCT (s)",
        "Average Queuing Time (s)",
        "# of Queuing Jobs",
    ] {
        let mut t = TextTable::new(vec![
            "policy", "Venus", "Earth", "Saturn", "Uranus", "Philly",
        ]);
        for &p in &policies {
            let cells: Vec<String> = runs
                .iter()
                .map(|r| {
                    let s = schedule_stats(&r.outcomes[p]);
                    match metric {
                        "Average JCT (s)" => format!("{:.0}", s.avg_jct),
                        "Average Queuing Time (s)" => format!("{:.0}", s.avg_queue_delay),
                        _ => fmt_count(s.queued_jobs),
                    }
                })
                .collect();
            t.row(
                std::iter::once(p.to_string())
                    .chain(cells)
                    .collect::<Vec<_>>(),
            );
        }
        text.push_str(&format!("\n{metric}:\n{}", t.render()));
    }
    // Headline improvements (needs both FIFO and QSSF in the selection).
    if policies.contains(&"FIFO") && policies.contains(&"QSSF") {
        let mut improvements = Vec::new();
        for r in &runs {
            let fifo = schedule_stats(&r.outcomes["FIFO"]);
            let qssf = schedule_stats(&r.outcomes["QSSF"]);
            improvements.push(format!(
                "{}: JCT x{:.1}, queue x{:.1}",
                r.cluster,
                fifo.avg_jct / qssf.avg_jct.max(1.0),
                fifo.avg_queue_delay / qssf.avg_queue_delay.max(1.0)
            ));
            data.insert(
                r.cluster.clone(),
                json!({
                    "jct_gain": fifo.avg_jct / qssf.avg_jct.max(1.0),
                    "queue_gain": fifo.avg_queue_delay / qssf.avg_queue_delay.max(1.0),
                }),
            );
        }
        text.push_str(&format!("\nQSSF vs FIFO: {}\n", improvements.join("; ")));
    }
    ExperimentOutput {
        id: "table3".into(),
        text,
        data: serde_json::Value::Object(data),
    }
}

fn table4(ctx: &mut Context) -> ExperimentOutput {
    ctx.scheduler_runs();
    ctx.scheduler_run_philly();
    if !ctx.policies.contains(&"FIFO") || !ctx.policies.contains(&"QSSF") {
        return ExperimentOutput {
            id: "table4".into(),
            text: "Table 4 needs both FIFO and QSSF; rerun with --policy all (or no --policy)\n"
                .into(),
            data: json!(null),
        };
    }
    let runs: Vec<&SchedulerRun> = ctx
        .sched
        .as_ref()
        .unwrap()
        .iter()
        .chain(std::iter::once(ctx.sched_philly.as_ref().unwrap()))
        .collect();
    let mut t = TextTable::new(vec![
        "group", "Venus", "Earth", "Saturn", "Uranus", "Philly",
    ]);
    let mut ratios_all = Vec::new();
    for g in 0..3 {
        let cells: Vec<String> = runs
            .iter()
            .map(|r| {
                let ratios = group_delay_ratios(&r.outcomes["FIFO"], &r.outcomes["QSSF"]);
                format!("{:.2}", ratios[g])
            })
            .collect();
        ratios_all.push(cells.clone());
        t.row(
            std::iter::once(helios_sim::DURATION_GROUPS[g].to_string())
                .chain(cells)
                .collect::<Vec<_>>(),
        );
    }
    ExperimentOutput {
        id: "table4".into(),
        text: format!(
            "Table 4: FIFO/QSSF queue-delay ratio by duration group (paper: short 9.2-33.5x, long 1.7-4.8x; all groups gain)\n{}",
            t.render()
        ),
        data: json!(ratios_all),
    }
}

// ---------------------------------------------------------------------------
// CES experiments (§4.3)
// ---------------------------------------------------------------------------

fn node_state_figure(name: &str, eval: &CesEvaluation, days: usize) -> String {
    // Daily-resolution summary of the Fig 14/15 series.
    let bins_per_day = (86_400 / eval.series.bin) as usize;
    let mut t = TextTable::new(vec!["day", "running", "prediction", "active(CES)", "total"]);
    for d in 0..days {
        let lo = d * bins_per_day;
        let hi = ((d + 1) * bins_per_day).min(eval.series.len());
        if lo >= hi {
            break;
        }
        let avg = |v: &[f64]| v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        // Forecast[t] targets t+h; align by shifting back h bins.
        let h = 18usize;
        let pred_lo = lo.saturating_sub(h);
        let pred_hi = hi
            .saturating_sub(h)
            .max(pred_lo + 1)
            .min(eval.forecast.len());
        let pred = if pred_lo < pred_hi {
            eval.forecast[pred_lo..pred_hi].iter().sum::<f64>() / (pred_hi - pred_lo) as f64
        } else {
            f64::NAN
        };
        t.row(vec![
            (d + 1).to_string(),
            format!("{:.1}", avg(&eval.series.running)),
            format!("{:.1}", pred),
            format!("{:.1}", avg(&eval.guided.active)),
            eval.series.total_nodes.to_string(),
        ]);
    }
    format!("{name}:\n{}", t.render())
}

fn fig14(ctx: &mut Context) -> ExperimentOutput {
    let (name, eval) = &ctx.ces_runs()[1]; // Earth
    let text = format!(
        "Fig 14: node states in Earth, Sep 1-21 (running vs prediction vs CES-active vs total)\n{}\nforecast SMAPE {:.2}% (paper ~3.6%)\n",
        node_state_figure(name, eval, 21),
        eval.smape
    );
    ExperimentOutput {
        id: "fig14".into(),
        text,
        data: json!({"smape": eval.smape, "avg_drs": eval.guided.avg_drs_nodes()}),
    }
}

fn fig15(ctx: &mut Context) -> ExperimentOutput {
    let (name, eval) = ctx.ces_run_philly().clone();
    let text = format!(
        "Fig 15: node states in Philly, Dec 1-14\n{}\nforecast SMAPE {:.2}%\n",
        node_state_figure(&name, &eval, 14),
        eval.smape
    );
    ExperimentOutput {
        id: "fig15".into(),
        text,
        data: json!({"smape": eval.smape, "avg_drs": eval.guided.avg_drs_nodes()}),
    }
}

fn table5(ctx: &mut Context) -> ExperimentOutput {
    ctx.ces_runs();
    ctx.ces_run_philly();
    let evals: Vec<&(String, CesEvaluation)> = ctx
        .ces
        .as_ref()
        .unwrap()
        .iter()
        .chain(std::iter::once(ctx.ces_philly.as_ref().unwrap()))
        .collect();
    let mut t = TextTable::new(vec!["", "Venus", "Earth", "Saturn", "Uranus", "Philly"]);
    let row = |label: &str, f: &dyn Fn(&CesEvaluation) -> String, t: &mut TextTable| {
        t.row(
            std::iter::once(label.to_string())
                .chain(evals.iter().map(|(_, e)| f(e)))
                .collect::<Vec<_>>(),
        );
    };
    row(
        "Average # of DRS nodes",
        &|e| format!("{:.1}", e.guided.avg_drs_nodes()),
        &mut t,
    );
    row(
        "Daily wake-ups",
        &|e| format!("{:.1}", e.guided.daily_wakeups()),
        &mut t,
    );
    row(
        "Woken nodes per wake-up",
        &|e| format!("{:.1}", e.guided.avg_woken_per_wakeup()),
        &mut t,
    );
    row(
        "Node utilization (orig) %",
        &|e| format!("{:.1}", 100.0 * e.guided.baseline_utilization()),
        &mut t,
    );
    row(
        "Node utilization (CES) %",
        &|e| format!("{:.1}", 100.0 * e.guided.utilization_with_drs()),
        &mut t,
    );
    row(
        "Vanilla daily wake-ups",
        &|e| format!("{:.1}", e.vanilla.daily_wakeups()),
        &mut t,
    );
    row(
        "Affected jobs (approx)",
        &|e| format!("{:.0}", e.guided.affected_jobs),
        &mut t,
    );
    row("Forecast SMAPE %", &|e| format!("{:.2}", e.smape), &mut t);

    // Energy headline across the four Helios clusters.
    let helios_saved: f64 = evals[..4]
        .iter()
        .map(|(_, e)| {
            let window = e.series.len() as f64 * e.series.bin as f64;
            annualize(energy_saved_kwh(e.guided.drs_node_seconds), window)
        })
        .sum();
    let text = format!(
        "Table 5: CES performance (paper: +3.5..13 pts utilization, 1.1-2.6 daily wakeups vs ~34 vanilla)\n{}\nAnnualized Helios savings: {:.2} million kWh (paper: >1.65M kWh at full scale)\n",
        t.render(),
        helios_saved / 1.0e6
    );
    ExperimentOutput {
        id: "table5".into(),
        text,
        data: json!({"annual_kwh": helios_saved}),
    }
}

// ---------------------------------------------------------------------------
// Predictor quality & ablations
// ---------------------------------------------------------------------------

fn pred_qssf(ctx: &mut Context) -> ExperimentOutput {
    use helios_predict::features::job::{build_training_matrix, FEATURE_NAMES, NUM_FEATURES};
    use helios_predict::gbdt::Gbdt;
    let mut text = String::from("QSSF duration-prediction quality (train Apr-Aug, test Sep; log-space RMSE vs constant baseline)\n");
    let mut t = TextTable::new(vec![
        "cluster",
        "jobs",
        "model RMSE",
        "rolling-only RMSE",
        "constant RMSE",
    ]);
    let mut data = serde_json::Map::new();
    let traces: Vec<Trace> = ctx.helios().to_vec();
    for trace in &traces {
        let (lo, hi) = trace.calendar.month_range(5);
        let mut merged = QssfService::new(QssfConfig::default());
        merged
            .train(trace, 0, lo)
            .expect("training window non-empty");
        let scored = merged.assign_priorities(trace, lo, hi);
        let mut rolling_only = QssfService::new(QssfConfig {
            lambda: 1.0,
            ..Default::default()
        });
        rolling_only
            .train(trace, 0, lo)
            .expect("training window non-empty");
        let scored_r = rolling_only.assign_priorities(trace, lo, hi);
        let actual: Vec<f64> = scored.iter().map(|s| (s.duration as f64).ln()).collect();
        let to_log = |sims: &[SimJob]| -> Vec<f64> {
            sims.iter()
                .map(|s| (s.priority / s.gpus as f64).max(1.0).ln())
                .collect()
        };
        let mean = actual.iter().sum::<f64>() / actual.len() as f64;
        let rm = helios_predict::metrics::rmse(&actual, &to_log(&scored));
        let rr = helios_predict::metrics::rmse(&actual, &to_log(&scored_r));
        let rc = helios_predict::metrics::rmse(&actual, &vec![mean; actual.len()]);
        t.row(vec![
            trace.spec.id.name().to_string(),
            fmt_count(scored.len() as u64),
            format!("{rm:.3}"),
            format!("{rr:.3}"),
            format!("{rc:.3}"),
        ]);
        data.insert(
            trace.spec.id.name().into(),
            json!({"model": rm, "constant": rc}),
        );
    }
    text.push_str(&t.render());

    // Which attributes carry the signal (split-frequency importance on
    // Venus): the paper's premise is that name/user history dominates.
    let venus = &traces[0];
    let (cols, targets, _) = build_training_matrix(venus, 0, venus.calendar.month_end(4));
    let model = Gbdt::fit(&cols, &targets, &QssfConfig::default().gbdt, None);
    let mut imp: Vec<(usize, f64)> = model
        .feature_importance(NUM_FEATURES)
        .into_iter()
        .enumerate()
        .collect();
    imp.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    text.push_str("\nTop GBDT features (Venus):\n");
    for (f, w) in imp.iter().take(6) {
        text.push_str(&format!("  {:<20} {:.1}%\n", FEATURE_NAMES[*f], 100.0 * w));
    }
    ExperimentOutput {
        id: "pred-qssf".into(),
        text,
        data: serde_json::Value::Object(data),
    }
}

fn pred_ces(ctx: &mut Context) -> ExperimentOutput {
    // Earth node series; compare GBDT vs ARIMA vs Fourier(Prophet) vs LSTM
    // vs seasonal naive at a 3h horizon.
    let earth = ctx.helios()[1].clone();
    let series = node_series_from_trace(&earth, 600, Placement::Consolidate)
        .expect("series replay on a valid trace");
    let cal = &earth.calendar;
    let cfg = SeriesFeatureConfig::default_10min();
    let h = cfg.horizon;
    let split = (series.len() * 4) / 5;
    let values = &series.running;

    // Actual targets over the test region.
    let test_idx: Vec<usize> = (split..series.len() - h).collect();
    let actual: Vec<f64> = test_idx.iter().map(|&i| values[i + h]).collect();

    // GBDT (the CES service forecaster).
    let mut svc = CesService::new(scaled_ces_config(earth.spec.nodes));
    svc.train(&series, cal, split)
        .expect("training series long enough");
    let gbdt_pred = svc
        .forecast(&series, cal, split, series.len() - h)
        .expect("model trained above");

    // ARIMA(12, 1) refit once on the training prefix; rolling 1-origin
    // forecasts.
    let arima = Arima::fit(&values[..split], 12, 1);
    let arima_pred: Vec<f64> = test_idx
        .iter()
        .map(|&i| *arima.forecast(&values[..=i], h).last().unwrap())
        .collect();

    // Fourier/Prophet-style.
    let fourier = FourierForecaster::fit(
        &values[..split],
        series.t0,
        series.bin,
        cal,
        FourierParams::default(),
    );
    let fourier_pred: Vec<f64> = test_idx
        .iter()
        .map(|&i| fourier.predict_at(series.t0 + series.bin * (i + h) as i64, cal))
        .collect();

    // LSTM.
    let lstm = LstmForecaster::fit(
        &values[..split],
        LstmParams {
            hidden: 16,
            seq_len: 72,
            horizon: h,
            epochs: 12,
            learning_rate: 0.01,
            max_windows: 1_200,
            seed: 5,
        },
    );
    let lstm_pred = lstm.forecast_at(values, &test_idx);

    // Seasonal naive (same time yesterday).
    let period = (86_400 / series.bin) as usize;
    let naive_pred: Vec<f64> = test_idx
        .iter()
        .map(|&i| seasonal_naive(&values[..=i], period, h)[h - 1])
        .collect();

    let mut t = TextTable::new(vec!["model", "SMAPE %"]);
    let entries = [
        ("GBDT (ours)", smape(&actual, &gbdt_pred)),
        ("ARIMA(12,1)", smape(&actual, &arima_pred)),
        ("Fourier/Prophet", smape(&actual, &fourier_pred)),
        ("LSTM", smape(&actual, &lstm_pred)),
        ("Seasonal naive", smape(&actual, &naive_pred)),
    ];
    for (name, v) in &entries {
        t.row(vec![name.to_string(), format!("{v:.2}")]);
    }
    ExperimentOutput {
        id: "pred-ces".into(),
        text: format!(
            "CES forecaster comparison on Earth node series, 3h horizon (paper: GBDT best, ~3.6% SMAPE)\n{}",
            t.render()
        ),
        data: json!(entries.iter().map(|(n, v)| json!({"model": n, "smape": v})).collect::<Vec<_>>()),
    }
}

fn ablation_lambda(ctx: &mut Context) -> ExperimentOutput {
    // Sweep the Algorithm-1 merge coefficient on Venus.
    let venus = ctx.helios()[0].clone();
    let (lo, hi) = venus.calendar.month_range(5);
    let mut t = TextTable::new(vec!["lambda", "avg JCT (s)", "avg queue (s)"]);
    let mut best = (f64::NAN, f64::INFINITY);
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut svc = QssfService::new(QssfConfig {
            lambda,
            ..Default::default()
        });
        svc.train(&venus, 0, lo).expect("training window non-empty");
        let scored = svc.assign_priorities(&venus, lo, hi);
        let stats = schedule_stats(
            &simulate(&venus.spec, &scored, &SimConfig::new(Policy::Priority))
                .expect("sim inputs pre-filtered")
                .outcomes,
        );
        if stats.avg_jct < best.1 {
            best = (lambda, stats.avg_jct);
        }
        t.row(vec![
            format!("{lambda:.2}"),
            format!("{:.0}", stats.avg_jct),
            format!("{:.0}", stats.avg_queue_delay),
        ]);
    }
    ExperimentOutput {
        id: "ablation-lambda".into(),
        text: format!(
            "Ablation: Algorithm-1 merge coefficient lambda on Venus (best {:.2})\n{}",
            best.0,
            t.render()
        ),
        data: json!({"best_lambda": best.0}),
    }
}

fn ablation_backfill(ctx: &mut Context) -> ExperimentOutput {
    // QSSF with and without EASY backfill on Venus (paper future work).
    let venus = ctx.helios()[0].clone();
    let (lo, hi) = venus.calendar.month_range(5);
    let mut svc = QssfService::new(QssfConfig::default());
    svc.train(&venus, 0, lo).expect("training window non-empty");
    let scored = svc.assign_priorities(&venus, lo, hi);
    let mut t = TextTable::new(vec!["config", "avg JCT (s)", "avg queue (s)", "# queued"]);
    let mut data = serde_json::Map::new();
    for (label, backfill) in [("QSSF", false), ("QSSF+backfill", true)] {
        let cfg = SimConfig {
            policy: Policy::Priority,
            placement: Placement::Consolidate,
            backfill,
        };
        let stats = schedule_stats(
            &simulate(&venus.spec, &scored, &cfg)
                .expect("sim inputs pre-filtered")
                .outcomes,
        );
        t.row(vec![
            label.to_string(),
            format!("{:.0}", stats.avg_jct),
            format!("{:.0}", stats.avg_queue_delay),
            fmt_count(stats.queued_jobs),
        ]);
        data.insert(label.into(), json!(stats.avg_jct));
    }
    ExperimentOutput {
        id: "ablation-backfill".into(),
        text: format!(
            "Ablation: EASY backfill on top of QSSF (Venus, September)\n{}",
            t.render()
        ),
        data: serde_json::Value::Object(data),
    }
}

// ---------------------------------------------------------------------------
// End-to-end pipeline throughput
// ---------------------------------------------------------------------------

/// Full façade pipeline per Helios cluster with per-stage wall times:
/// `generate → (characterize ∥ train_qssf ∥ train_ces) → schedule(FIFO,
/// QSSF) → report`, one `Session::pipeline` run per cluster. Regenerates
/// the README "Performance" per-stage table; `repro --bench-json` persists
/// the records (the `BENCH_pipeline.json` trajectory).
fn pipeline_exp(ctx: &mut Context) -> ExperimentOutput {
    use helios::prelude::*;
    let mut rows: Vec<StagePerfRecord> = Vec::new();
    let mut table = TextTable::new(vec!["stage", "Venus", "Earth", "Saturn", "Uranus"]);
    let mut per_cluster: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for preset in Preset::HELIOS {
        let total = Instant::now();
        let mut session = Helios::cluster(preset)
            .scale(ctx.cfg.scale)
            .seed(ctx.cfg.seed)
            .build()
            .expect("config validated in Context::new");
        session
            .pipeline()
            .and_then(|s| s.schedule(SchedulePolicy::Fifo))
            .and_then(|s| s.schedule(SchedulePolicy::Qssf))
            .expect("pipeline stages on a valid config");
        let report = session.report().expect("trace generated");
        let mut stages: Vec<(String, f64)> = report
            .stage_perf
            .iter()
            .map(|s| (s.stage.clone(), s.wall_secs))
            .collect();
        stages.push(("total".into(), total.elapsed().as_secs_f64()));
        for (stage, wall_secs) in &stages {
            rows.push(StagePerfRecord {
                cluster: preset.name().to_string(),
                stage: stage.clone(),
                wall_secs: *wall_secs,
                parallelism: run_parallelism(),
            });
        }
        per_cluster.push((preset.name().to_string(), stages));
    }
    let stage_order: Vec<String> = per_cluster[0].1.iter().map(|(s, _)| s.clone()).collect();
    for stage in &stage_order {
        let cells: Vec<String> = per_cluster
            .iter()
            .map(|(_, stages)| {
                stages
                    .iter()
                    .find(|(s, _)| s == stage)
                    .map(|(_, w)| format!("{w:.3}s"))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        table.row(
            std::iter::once(stage.clone())
                .chain(cells)
                .collect::<Vec<_>>(),
        );
    }
    let data = json!(rows.iter().map(|r| r.to_json()).collect::<Vec<_>>());
    ctx.stages = rows;
    ExperimentOutput {
        id: "pipeline".into(),
        text: format!(
            "Pipeline throughput: per-stage wall time of the full session \
             (scale {}, characterize/train stages overlapped via Session::pipeline)\n{}",
            ctx.cfg.scale,
            table.render()
        ),
        data,
    }
}

/// `fleet-soak`: the scheduler-as-a-service soak. All five presets are
/// hosted concurrently by one [`helios_fleet::Fleet`]; 100k jobs stream
/// through the sharded per-VC ingestion queues in waves while live
/// status/ETA queries are answered mid-run. Produces the
/// `BENCH_fleet.json` records: per-cluster outcome digests (the
/// determinism pin), aggregate ingestion throughput (jobs/sec into the
/// shards), and mean status-query latency.
fn fleet_soak(ctx: &mut Context) -> Result<ExperimentOutput, HeliosError> {
    use helios_fleet::{Fleet, FleetConfig};

    const WAVES: usize = 40;
    const JOBS_PER_CLUSTER_PER_WAVE: usize = 500; // 5 clusters x 40 x 500 = 100k
    const WAVE_SECS: i64 = 360;

    eprintln!(
        "[ctx] fleet soak: 5 concurrent clusters, {} streamed jobs each...",
        WAVES * JOBS_PER_CLUSTER_PER_WAVE
    );
    let fleet = Fleet::launch(&FleetConfig::all_presets(Policy::Fifo))?;
    let clusters = fleet.clusters();
    let mut nvcs = Vec::with_capacity(clusters.len());
    for &c in &clusters {
        nvcs.push(fleet.status(c)?.vcs.len());
    }

    let started = Instant::now();
    let mut submit_nanos = 0u128;
    let mut query_nanos = 0u128;
    let mut queries = 0u64;
    let mut next_id = 0u64;
    for wave in 0..WAVES {
        let floor = wave as i64 * WAVE_SECS;
        for (ci, &cluster) in clusters.iter().enumerate() {
            let t0 = Instant::now();
            for k in 0..JOBS_PER_CLUSTER_PER_WAVE {
                let job = SimJob {
                    id: next_id,
                    vc: ((k + wave) % nvcs[ci]) as u16,
                    gpus: 1 + (k as u32 % 2),
                    submit: floor,
                    duration: 60 + (k as i64 % 11) * 30,
                    priority: 0.0,
                };
                match fleet.submit(cluster, job) {
                    Ok(()) => {}
                    Err(HeliosError::FleetOverflow { .. }) => {
                        // Backpressure: run one admission cycle, retry.
                        fleet.advance_cluster(cluster, floor)?;
                        fleet.submit(cluster, job)?;
                    }
                    Err(e) => return Err(e),
                }
                next_id += 1;
            }
            submit_nanos += t0.elapsed().as_nanos();
        }
        fleet.advance((wave as i64 + 1) * WAVE_SECS)?;
        // Live reads between admission cycles — the query-path half of
        // the soak.
        for &cluster in &clusters {
            let q0 = Instant::now();
            let status = fleet.status(cluster)?;
            query_nanos += q0.elapsed().as_nanos();
            queries += 1;
            if status.pending_ingest != 0 {
                return Err(HeliosError::invalid_config(
                    "fleet_soak",
                    "an admission cycle left jobs in the ingestion shards",
                ));
            }
        }
    }
    let per_cluster = fleet.shutdown()?;
    let wall_secs = started.elapsed().as_secs_f64();
    let submitted = next_id;

    let submit_secs = submit_nanos as f64 / 1e9;
    let ingest_jps = if submit_secs > 0.0 {
        submitted as f64 / submit_secs
    } else {
        f64::INFINITY
    };
    let query_secs = query_nanos as f64 / 1e9;
    let query_lat_us = if queries > 0 {
        query_nanos as f64 / queries as f64 / 1e3
    } else {
        0.0
    };
    let parallelism = run_parallelism();

    let mut table = TextTable::new(vec!["cluster", "jobs", "outcome digest"]);
    let mut rows_json = Vec::new();
    for (cluster, outcomes) in &per_cluster {
        let mut sorted = outcomes.clone();
        sorted.sort_by_key(|o| o.id);
        let digest = outcome_digest(&sorted);
        if sorted.len() != submitted as usize / clusters.len() {
            return Err(HeliosError::invalid_config(
                "fleet_soak",
                format!(
                    "{}: {} outcomes for {} submissions",
                    cluster.name(),
                    sorted.len(),
                    submitted as usize / clusters.len()
                ),
            ));
        }
        table.row(vec![
            cluster.name().to_string(),
            fmt_count(sorted.len() as u64),
            digest.clone(),
        ]);
        rows_json.push(json!({
            "cluster": cluster.name(),
            "jobs": sorted.len(),
            "outcome_digest": digest.clone(),
        }));
        ctx.fleet_perf.push(PolicyRunPerf {
            cluster: cluster.name().to_string(),
            policy: "FLEET-SOAK".into(),
            jobs: sorted.len(),
            wall_secs,
            jobs_per_sec: sorted.len() as f64 / wall_secs.max(f64::MIN_POSITIVE),
            outcome_digest: digest,
            parallelism,
        });
    }
    ctx.fleet_perf.push(PolicyRunPerf {
        cluster: "ALL".into(),
        policy: "FLEET-INGEST".into(),
        jobs: submitted as usize,
        wall_secs: submit_secs,
        jobs_per_sec: ingest_jps,
        outcome_digest: outcome_digest(&[]),
        parallelism,
    });
    ctx.fleet_perf.push(PolicyRunPerf {
        cluster: "ALL".into(),
        policy: "FLEET-QUERY".into(),
        jobs: queries as usize,
        wall_secs: query_secs,
        jobs_per_sec: queries as f64 / query_secs.max(f64::MIN_POSITIVE),
        outcome_digest: outcome_digest(&[]),
        parallelism,
    });

    let text = format!(
        "Fleet soak: {} jobs streamed across {} concurrent clusters in {:.2}s \
         (ingestion {:.0} jobs/sec into the shards; {} live status queries, \
         mean {:.1}us each)\n{}",
        submitted,
        clusters.len(),
        wall_secs,
        ingest_jps,
        queries,
        query_lat_us,
        table.render()
    );
    let data = json!({
        "submitted": submitted,
        "clusters": clusters.len(),
        "wall_secs": wall_secs,
        "ingest_jobs_per_sec": ingest_jps,
        "queries": queries,
        "query_latency_us_mean": query_lat_us,
        "parallelism": parallelism,
        "per_cluster": rows_json,
    });
    Ok(ExperimentOutput {
        id: "fleet-soak".into(),
        text,
        data,
    })
}

/// `fleet-chaos`: the self-healing soak. Two presets (Venus/FIFO and
/// Saturn/SRTF) are hosted by one fleet with per-cycle auto-checkpointing
/// while a deterministic chaos schedule panics each worker three times
/// mid-stream and corrupts a checkpoint generation, so one recovery is
/// forced through the corrupt-newest fall-back path. An identical
/// chaos-free twin fleet runs the same job stream; the experiment fails
/// (typed error, never a panic) unless every cluster's recovered outcome
/// digest matches its uninterrupted twin bit for bit. Produces the
/// `resilience` records of `BENCH_fleet.json`: restarts, fallbacks,
/// checkpoint write latency, and recovery latency.
fn fleet_chaos(ctx: &mut Context) -> Result<ExperimentOutput, HeliosError> {
    use helios_fleet::{ChaosConfig, CheckpointConfig, ClusterConfig, Fleet, FleetConfig};
    use helios_trace::ClusterId;

    const WAVES: usize = 10;
    const JOBS_PER_CLUSTER_PER_WAVE: usize = 400;
    const WAVE_SECS: i64 = 600;
    /// Injected panic points, in per-worker kernel-event counts. Each
    /// wave is 400 jobs and every job contributes exactly three events
    /// on these uncontended presets (submit/start/finish; durations are
    /// all shorter than a wave), so cycle `k` ends at `1200·k` events:
    /// the first point fires in admission cycle 2 — while the corrupted
    /// generation 1 is the newest checkpoint, forcing a fall-back to
    /// generation 0 — and the other two fire in cycles 5 and 8 as plain
    /// restore-and-replay restarts.
    const PANIC_EVENTS: [u64; 3] = [1_250, 5_000, 9_500];
    /// The auto-checkpoint generation the chaos schedule bit-flips
    /// (post-recovery re-baselines are never corrupted, so a clean
    /// generation always remains in the ring).
    const CORRUPT_GENERATION: u64 = 1;

    let hosted = [
        (ClusterId::Venus, Policy::Fifo),
        (ClusterId::Saturn, Policy::Srtf),
    ];
    eprintln!(
        "[ctx] fleet chaos: {} clusters, {} streamed jobs each, {} injected panics per worker...",
        hosted.len(),
        WAVES * JOBS_PER_CLUSTER_PER_WAVE,
        PANIC_EVENTS.len(),
    );

    let topology = |chaos: Option<ChaosConfig>| {
        let mut cfg = FleetConfig::new()
            .with_checkpoint(CheckpointConfig::default().every_cycles(1).generations(4));
        for &(cluster, policy) in &hosted {
            cfg = cfg.with_cluster(ClusterConfig::new(cluster, policy));
        }
        match chaos {
            Some(c) => cfg.with_chaos(c),
            None => cfg,
        }
    };
    // The same deterministic stream both fleets consume: submit a wave,
    // run one admission cycle to its horizon, repeat.
    let stream = |fleet: &Fleet| -> Result<(), HeliosError> {
        let clusters = fleet.clusters();
        let mut nvcs = Vec::with_capacity(clusters.len());
        for &c in &clusters {
            nvcs.push(fleet.status(c)?.vcs.len().max(1));
        }
        let mut next_id = 0u64;
        for wave in 0..WAVES {
            let floor = wave as i64 * WAVE_SECS;
            for (ci, &cluster) in clusters.iter().enumerate() {
                for k in 0..JOBS_PER_CLUSTER_PER_WAVE {
                    let job = SimJob {
                        id: next_id,
                        vc: ((k + wave) % nvcs[ci]) as u16,
                        gpus: 1 + (k as u32 % 2),
                        submit: floor,
                        duration: 30 + (k as i64 % 7) * 60,
                        priority: 0.0,
                    };
                    match fleet.submit(cluster, job) {
                        Ok(()) => {}
                        Err(HeliosError::FleetOverflow { .. }) => {
                            fleet.advance_cluster(cluster, floor)?;
                            fleet.submit(cluster, job)?;
                        }
                        Err(e) => return Err(e),
                    }
                    next_id += 1;
                }
            }
            fleet.advance((wave as i64 + 1) * WAVE_SECS)?;
        }
        Ok(())
    };
    let digests = |per_cluster: Vec<(ClusterId, Vec<helios_sim::JobOutcome>)>| {
        per_cluster
            .into_iter()
            .map(|(cluster, mut outcomes)| {
                outcomes.sort_by_key(|o| o.id);
                (cluster, outcomes.len(), outcome_digest(&outcomes))
            })
            .collect::<Vec<_>>()
    };

    let mut chaos = ChaosConfig::seeded(ctx.cfg.seed).corrupt_generation(CORRUPT_GENERATION);
    for &at in &PANIC_EVENTS {
        chaos = chaos.panic_at(at);
    }
    let started = Instant::now();
    let fleet = Fleet::launch(&topology(Some(chaos)))?;
    stream(&fleet)?;
    let health: Vec<_> = fleet
        .statuses()
        .into_iter()
        .map(|s| (s.cluster, s.health))
        .collect();
    let chaos_digests = digests(fleet.shutdown()?);
    let wall_secs = started.elapsed().as_secs_f64();

    let twin = Fleet::launch(&topology(None))?;
    stream(&twin)?;
    let twin_digests = digests(twin.shutdown()?);

    let parallelism = run_parallelism();
    let mut table = TextTable::new(vec![
        "cluster",
        "policy",
        "jobs",
        "restarts",
        "fallbacks",
        "ckpts",
        "ckpt ms",
        "recov ms",
        "digest",
    ]);
    let mut rows_json = Vec::new();
    for (i, &(cluster, policy)) in hosted.iter().enumerate() {
        let (hc, h) = health[i];
        let (cc, jobs, digest) = &chaos_digests[i];
        let (tc, _, twin_digest) = &twin_digests[i];
        if hc != cluster || *cc != cluster || *tc != cluster {
            return Err(HeliosError::invalid_config(
                "fleet_chaos",
                "shutdown outcome order does not match the hosted topology",
            ));
        }
        if h.restarts < PANIC_EVENTS.len() as u32 {
            return Err(HeliosError::invalid_config(
                "fleet_chaos",
                format!(
                    "{}: only {} of {} injected panics forced a restart",
                    cluster.name(),
                    h.restarts,
                    PANIC_EVENTS.len()
                ),
            ));
        }
        if h.fallbacks == 0 {
            return Err(HeliosError::invalid_config(
                "fleet_chaos",
                format!(
                    "{}: the corrupted generation never forced a fall-back",
                    cluster.name()
                ),
            ));
        }
        if digest != twin_digest {
            return Err(HeliosError::invalid_config(
                "fleet_chaos",
                format!(
                    "{}: recovered digest {} != uninterrupted {}",
                    cluster.name(),
                    digest,
                    twin_digest
                ),
            ));
        }
        let ckpt_ms_mean = if h.checkpoint_writes > 0 {
            h.checkpoint_write_secs_total * 1e3 / h.checkpoint_writes as f64
        } else {
            0.0
        };
        let recovery_ms_total = h.recovery_secs_total * 1e3;
        let recovery_ms_mean = if h.restarts > 0 {
            recovery_ms_total / h.restarts as f64
        } else {
            0.0
        };
        let record = ResilienceRecord {
            cluster: cluster.name().to_string(),
            policy: format!("{policy:?}").to_uppercase(),
            jobs: *jobs,
            restarts: h.restarts,
            fallbacks: h.fallbacks,
            checkpoint_writes: h.checkpoint_writes,
            checkpoint_write_ms_mean: ckpt_ms_mean,
            recovery_ms_total,
            recovery_ms_mean,
            digest_match: true,
            outcome_digest: digest.clone(),
            wall_secs,
            parallelism,
        };
        table.row(vec![
            record.cluster.clone(),
            record.policy.clone(),
            fmt_count(record.jobs as u64),
            record.restarts.to_string(),
            record.fallbacks.to_string(),
            record.checkpoint_writes.to_string(),
            format!("{ckpt_ms_mean:.3}"),
            format!("{recovery_ms_total:.1}"),
            record.outcome_digest.clone(),
        ]);
        rows_json.push(record.to_json());
        ctx.resilience.push(record);
    }

    let text = format!(
        "Fleet chaos: {} injected panics + 1 corrupted checkpoint generation per worker \
         across {} clusters; every recovered outcome digest matched its uninterrupted \
         twin ({:.2}s chaos run)\n{}",
        PANIC_EVENTS.len(),
        hosted.len(),
        wall_secs,
        table.render()
    );
    let data = json!({
        "clusters": hosted.len(),
        "panics_per_worker": PANIC_EVENTS.len(),
        "corrupt_generation": CORRUPT_GENERATION,
        "wall_secs": wall_secs,
        "parallelism": parallelism,
        "per_cluster": rows_json,
    });
    Ok(ExperimentOutput {
        id: "fleet-chaos".into(),
        text,
        data,
    })
}

/// `fleet-overload`: the adaptive admission-control soak. Venus/FIFO and
/// Saturn/SRTF each absorb a sustained 2× ingestion overload with a
/// deliberately heavy VC (60% of the stream) while a sampler thread
/// hammers the deadline-bounded status path. The experiment pins four
/// properties: shedding is VC-fair (only the heavy VC is ever shed, with
/// a usable retry hint), status reads never block and stay bounded-stale
/// (p99 staleness in cycles), the whole stream still completes (shed
/// submissions are retried after a drain cycle), and a shedding-disabled
/// twin driven through the legacy FleetOverflow path produces a
/// bit-identical outcome digest. Produces the `overload` records of
/// `BENCH_fleet.json`.
fn fleet_overload(ctx: &mut Context) -> Result<ExperimentOutput, HeliosError> {
    use helios_fleet::{ClusterConfig, Fleet, FleetConfig, ShedConfig, StatusKind, WatchdogConfig};
    use helios_trace::ClusterId;
    use std::sync::atomic::{AtomicBool, Ordering};

    const WAVES: usize = 6;
    const WAVE_SECS: i64 = 600;
    /// Per-VC ingestion shard bound — small enough that the overload is
    /// real at bench scale.
    const CAP: usize = 64;
    /// Offered jobs per admission cycle over total ingestion capacity.
    const OVERLOAD: usize = 2;
    /// Engage shedding at 5% backlog occupancy: with 60% of the stream
    /// aimed at one VC, the heavy shard crosses its fair share well
    /// before it overflows, so refusals are admission control (typed
    /// FleetShedding), not backpressure (FleetOverflow).
    const HIGH_WATER: f64 = 0.05;
    const LOW_WATER: f64 = 0.02;

    let hosted = [
        (ClusterId::Venus, Policy::Fifo),
        (ClusterId::Saturn, Policy::Srtf),
    ];
    eprintln!(
        "[ctx] fleet overload: {} clusters, {OVERLOAD}x offered load, {WAVES} waves...",
        hosted.len(),
    );

    /// Slot `k`'s VC: 60% of the stream lands on VC 0 (the heavy VC),
    /// the rest round-robins over the light VCs.
    fn slot_vc(k: usize, nvcs: usize) -> u16 {
        if k % 5 < 3 {
            0
        } else {
            (1 + k % (nvcs - 1)) as u16
        }
    }

    // Drive one fleet through the full overload stream: submit each
    // wave's jobs in id order, resolving every refusal (shed or
    // overflow) with one admission cycle at the wave floor and a
    // resubmit, so both twins admit the identical job set at identical
    // virtual times. Returns (shed on heavy VC, shed on light VCs,
    // overflows) as observed at the submission site.
    let stream = |fleet: &Fleet, cluster: ClusterId| -> Result<(u64, u64, u64), HeliosError> {
        let nvcs = fleet.status(cluster)?.vcs.len().max(2);
        let per_wave = OVERLOAD * CAP * nvcs;
        let (mut shed_heavy, mut shed_light, mut overflows) = (0u64, 0u64, 0u64);
        let mut next_id = 0u64;
        for wave in 0..WAVES {
            let floor = wave as i64 * WAVE_SECS;
            for k in 0..per_wave {
                let job = SimJob {
                    id: next_id,
                    vc: slot_vc(k, nvcs),
                    gpus: 1,
                    submit: floor,
                    duration: 30 + (k as i64 % 7) * 60,
                    priority: 0.0,
                };
                loop {
                    match fleet.submit(cluster, job) {
                        Ok(()) => break,
                        Err(HeliosError::FleetShedding {
                            vc,
                            retry_after_cycles,
                            ..
                        }) => {
                            if retry_after_cycles == 0 {
                                return Err(HeliosError::invalid_config(
                                    "fleet_overload",
                                    "FleetShedding carried a zero retry hint",
                                ));
                            }
                            if vc == 0 {
                                shed_heavy += 1;
                            } else {
                                shed_light += 1;
                            }
                            fleet.advance_cluster(cluster, floor)?;
                        }
                        Err(HeliosError::FleetOverflow { .. }) => {
                            overflows += 1;
                            fleet.advance_cluster(cluster, floor)?;
                        }
                        Err(e) => return Err(e),
                    }
                }
                next_id += 1;
            }
            fleet.advance_cluster(cluster, (wave as i64 + 1) * WAVE_SECS)?;
        }
        Ok((shed_heavy, shed_light, overflows))
    };
    let config = |cluster, policy, shed: bool| {
        let mut cfg = FleetConfig::new()
            .with_cluster(ClusterConfig::new(cluster, policy))
            .with_shard_capacity(CAP);
        if shed {
            cfg = cfg
                .with_shedding(
                    ShedConfig::new()
                        .high_water(HIGH_WATER)
                        .low_water(LOW_WATER),
                )
                .with_watchdog(WatchdogConfig::new());
        }
        cfg
    };
    let digest_of = |fleet: Fleet| -> Result<(usize, String), HeliosError> {
        let (_, mut outcomes) = fleet
            .shutdown()?
            .pop()
            .ok_or_else(|| HeliosError::invalid_config("fleet_overload", "no hosted cluster"))?;
        outcomes.sort_by_key(|o| o.id);
        Ok((outcomes.len(), outcome_digest(&outcomes)))
    };

    let parallelism = run_parallelism();
    let mut table = TextTable::new(vec![
        "cluster",
        "policy",
        "jobs",
        "shed",
        "heavy",
        "light",
        "twin ovf",
        "p99 stale",
        "degraded",
        "digest",
    ]);
    let mut rows_json = Vec::new();
    for &(cluster, policy) in &hosted {
        let started = Instant::now();
        let fleet = Fleet::launch(&config(cluster, policy, true))?;
        let stop = AtomicBool::new(false);
        let (streamed, sampled) = std::thread::scope(|s| {
            let sampler = s.spawn(|| {
                let (mut ages, mut degraded) = (Vec::new(), 0u64);
                // sync: acquires the Release store below that ends the sampling run
                while !stop.load(Ordering::Acquire) {
                    match fleet.status_within(cluster, Duration::from_millis(2)) {
                        Ok(report) => match report.kind {
                            StatusKind::Fresh => ages.push(0),
                            StatusKind::Stale { age_cycles } => ages.push(age_cycles),
                            StatusKind::Degraded => degraded += 1,
                        },
                        Err(_) => degraded += 1,
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                (ages, degraded)
            });
            let streamed = stream(&fleet, cluster);
            // sync: releases to the sampler thread's Acquire poll loop
            stop.store(true, Ordering::Release);
            (
                streamed,
                sampler.join().expect("status sampler must not panic"),
            )
        });
        // The shed run's own overflow count is incidental (shedding
        // fires first by construction); only the twin's matters.
        let (shed_heavy, shed_light, _overflows) = streamed?;
        let health = fleet.statuses()[0].health;
        let (jobs, digest) = digest_of(fleet)?;
        let wall_secs = started.elapsed().as_secs_f64();

        let twin = Fleet::launch(&config(cluster, policy, false))?;
        let (twin_sh, twin_sl, twin_overflows) = stream(&twin, cluster)?;
        let (twin_jobs, twin_digest) = digest_of(twin)?;

        if shed_heavy == 0 || health.shed_jobs == 0 {
            return Err(HeliosError::invalid_config(
                "fleet_overload",
                format!("{}: the overload never engaged shedding", cluster.name()),
            ));
        }
        if shed_light > 0 {
            return Err(HeliosError::invalid_config(
                "fleet_overload",
                format!(
                    "{}: {} light-VC submissions were shed (fairness violated)",
                    cluster.name(),
                    shed_light
                ),
            ));
        }
        if twin_sh + twin_sl != 0 || twin_overflows == 0 {
            return Err(HeliosError::invalid_config(
                "fleet_overload",
                format!(
                    "{}: shedding-disabled twin did not reproduce the legacy overflow path",
                    cluster.name()
                ),
            ));
        }
        if jobs != twin_jobs || digest != twin_digest {
            return Err(HeliosError::invalid_config(
                "fleet_overload",
                format!(
                    "{}: shed digest {} ({} jobs) != overflow twin {} ({} jobs)",
                    cluster.name(),
                    digest,
                    jobs,
                    twin_digest,
                    twin_jobs
                ),
            ));
        }
        let (mut ages, degraded) = sampled;
        ages.sort_unstable();
        let p99 = ages
            .get(((ages.len().saturating_sub(1)) as f64 * 0.99) as usize)
            .copied()
            .unwrap_or(0);
        // With one driver thread there is never more than one admission
        // cycle in flight, so staleness beyond a couple of cycles means
        // the freshness accounting itself regressed.
        if p99 > 2 {
            return Err(HeliosError::invalid_config(
                "fleet_overload",
                format!("{}: p99 status staleness {p99} cycles", cluster.name()),
            ));
        }

        let record = OverloadRecord {
            cluster: cluster.name().to_string(),
            policy: format!("{policy:?}").to_uppercase(),
            jobs,
            overload_factor: OVERLOAD as f64,
            shed_jobs: health.shed_jobs,
            shed_heavy_vc: shed_heavy,
            shed_light_vcs: shed_light,
            twin_overflows,
            status_samples: (ages.len() as u64) + degraded,
            status_p99_age_cycles: p99,
            status_degraded: degraded,
            digest_match: true,
            outcome_digest: digest,
            wall_secs,
            parallelism,
        };
        table.row(vec![
            record.cluster.clone(),
            record.policy.clone(),
            fmt_count(record.jobs as u64),
            record.shed_jobs.to_string(),
            record.shed_heavy_vc.to_string(),
            record.shed_light_vcs.to_string(),
            record.twin_overflows.to_string(),
            record.status_p99_age_cycles.to_string(),
            record.status_degraded.to_string(),
            record.outcome_digest.clone(),
        ]);
        rows_json.push(record.to_json());
        ctx.overload.push(record);
    }

    let text = format!(
        "Fleet overload: {OVERLOAD}x offered load with a 60% heavy VC across {} clusters; \
         only the heavy VC was shed, every shed submission was eventually admitted, and \
         the shedding-disabled twin reproduced the digest bit for bit\n{}",
        hosted.len(),
        table.render()
    );
    let data = json!({
        "clusters": hosted.len(),
        "overload_factor": OVERLOAD,
        "waves": WAVES,
        "shard_capacity": CAP,
        "high_water": HIGH_WATER,
        "low_water": LOW_WATER,
        "per_cluster": rows_json,
    });
    Ok(ExperimentOutput {
        id: "fleet-overload".into(),
        text,
        data,
    })
}

/// `failure-soak`: the failure-injection soak. On two Helios presets
/// (Venus and Saturn), train the GPU-failure predictor on April–August
/// telemetry from the fault model itself, then run September twice under
/// identical injection — the inner policy bare, and wrapped in the
/// proactive-drain layer driven by that predictor. Produces the
/// `BENCH_faults.json` records: per-run goodput, work lost to kills,
/// predictor precision/recall, and outcome digests (the determinism pin
/// for the injected runs).
fn failure_soak(ctx: &mut Context) -> Result<ExperimentOutput, HeliosError> {
    /// Preset indices into [`Context::helios`]: Venus, Saturn.
    const SOAK_CLUSTERS: [usize; 2] = [0, 2];
    /// Default per-node MTBF when `--failures` was not given. Aggressive
    /// (a failure every three days per node) so a one-month window
    /// carries enough failures for the goodput comparison to resolve;
    /// checkpoint-restart semantics keep 50-day jobs terminating under
    /// that pressure (kill-requeue at this MTBF would recompute forever).
    const DEFAULT_MTBF_HOURS: f64 = 72.0;

    let faults = ctx
        .faults
        .unwrap_or_else(|| FaultConfig::with_mtbf_hours(DEFAULT_MTBF_HOURS).checkpoint_hours(2.0));
    faults.validate()?;
    let pcfg = PredictorConfig::default();
    ctx.helios();
    let traces = ctx.helios.as_ref().unwrap();
    eprintln!(
        "[ctx] failure soak on {} clusters (MTBF {:.0}h, horizon {:.0}h, parallel)...",
        SOAK_CLUSTERS.len(),
        faults.mtbf_secs / 3600.0,
        pcfg.horizon_hours,
    );

    type SoakRow = (String, FailurePredictorQuality, Vec<FaultRunRecord>);
    struct FailurePredictorQuality {
        precision: f64,
        recall: f64,
        base_rate: f64,
    }
    let kcfg = KernelConfig::default();
    let rows: Vec<Result<SoakRow, HeliosError>> = SOAK_CLUSTERS
        .par_iter()
        .map(|&i| {
            let t = &traces[i];
            let cluster = t.spec.id.name().to_string();
            let (lo, hi) = t.calendar.month_range(5); // September
            let jobs = jobs_from_trace(t, lo, hi);
            // Train on pre-evaluation traffic only (the QSSF convention):
            // the predictor sees April–August failures, never September.
            let train_jobs = jobs_from_trace(t, 0, lo);
            let predictor = train_failure_predictor(&t.spec, &train_jobs, &faults, &pcfg)?;
            let quality = FailurePredictorQuality {
                precision: predictor.precision,
                recall: predictor.recall,
                base_rate: predictor.base_rate,
            };

            let mut records = Vec::with_capacity(2);
            for drained in [false, true] {
                let inner: Box<dyn SchedulingPolicy> = Box::new(FifoPolicy);
                let policy: Box<dyn SchedulingPolicy> = if drained {
                    // Cordon only the riskiest 3% of nodes: draining costs
                    // capacity (longer makespan = more failure exposure), so
                    // at the predictor's F1-optimal threshold a wider cap
                    // over-drains and gives the avoided kills back.
                    let dcfg = DrainConfig {
                        max_drain_frac: 0.03,
                        ..DrainConfig::default()
                    };
                    Box::new(DrainPolicy::with_predictor(inner, predictor.clone(), dcfg)?)
                } else {
                    inner
                };
                let policy_name = policy.name().to_string();
                let started = Instant::now();
                let mut sim = Simulator::with_config(&t.spec, policy, &kcfg);
                sim.enable_faults(&faults)?;
                sim.push_jobs(&jobs)?;
                sim.run_to_completion();
                let outcomes = sim.drain_outcomes();
                let stats = sim.fault_stats().expect("faults enabled above");
                let wall_secs = started.elapsed().as_secs_f64();
                let mut sorted = outcomes;
                sorted.sort_by_key(|o| o.id);
                let g = goodput(&sorted, Some(stats));
                records.push(FaultRunRecord {
                    cluster: cluster.clone(),
                    policy: policy_name,
                    jobs: jobs.len(),
                    failures: stats.failures,
                    killed_jobs: stats.killed_jobs,
                    goodput: g.ratio(),
                    lost_gpu_hours: g.lost_gpu_hours,
                    precision: predictor.precision,
                    recall: predictor.recall,
                    wall_secs,
                    outcome_digest: outcome_digest(&sorted),
                    parallelism: run_parallelism(),
                });
            }
            Ok((cluster, quality, records))
        })
        .collect();

    let mut table = TextTable::new(vec![
        "cluster",
        "policy",
        "failures",
        "kills",
        "lost GPUh",
        "goodput",
        "digest",
    ]);
    let mut rows_json = Vec::new();
    let mut wins = 0usize;
    let mut pairs = 0usize;
    for row in rows {
        let (cluster, quality, records) = row?;
        let (base, drain) = (&records[0], &records[1]);
        pairs += 1;
        if drain.goodput > base.goodput {
            wins += 1;
        }
        for r in &records {
            table.row(vec![
                r.cluster.clone(),
                r.policy.clone(),
                fmt_count(r.failures),
                fmt_count(r.killed_jobs),
                format!("{:.0}", r.lost_gpu_hours),
                format!("{:.3}%", r.goodput * 100.0),
                r.outcome_digest.clone(),
            ]);
        }
        rows_json.push(json!({
            "cluster": cluster,
            "predictor": json!({
                "precision": quality.precision,
                "recall": quality.recall,
                "base_rate": quality.base_rate,
                "horizon_hours": pcfg.horizon_hours,
            }),
            "baseline": base.to_json(),
            "drain": drain.to_json(),
            "drain_goodput_gain": drain.goodput - base.goodput,
        }));
        ctx.faults_perf.extend(records);
    }

    let text = format!(
        "Failure soak: per-node MTBF {:.0}h (Weibull shape {:.1}, {:.0}% rack bursts), \
         predictor horizon {:.0}h; proactive drain improved goodput on {}/{} clusters\n{}",
        faults.mtbf_secs / 3600.0,
        faults.shape,
        faults.burst_prob * 100.0,
        pcfg.horizon_hours,
        wins,
        pairs,
        table.render()
    );
    let data = json!({
        "mtbf_hours": faults.mtbf_secs / 3600.0,
        "repair_hours": faults.repair_secs / 3600.0,
        "shape": faults.shape,
        "burst_prob": faults.burst_prob,
        "horizon_hours": pcfg.horizon_hours,
        "drain_wins": wins,
        "clusters": pairs,
        "parallelism": run_parallelism(),
        "per_cluster": rows_json,
    });
    Ok(ExperimentOutput {
        id: "failure-soak".into(),
        text,
        data,
    })
}

/// Experiments not covered by a paper artifact id: predictor quality,
/// ablations, and the end-to-end pipeline throughput probe. Run by `all`
/// after [`ALL_EXPERIMENTS`], and listed by the `repro` binary — one
/// source of truth so the lists cannot drift.
pub const EXTRA_EXPERIMENTS: [&str; 8] = [
    "pred-ces",
    "ablation-lambda",
    "ablation-backfill",
    "pipeline",
    "fleet-soak",
    "fleet-chaos",
    "fleet-overload",
    "failure-soak",
];

/// All experiment ids, in DESIGN.md order.
pub const ALL_EXPERIMENTS: [&str; 20] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "fig13",
    "table3",
    "table4",
    "fig14",
    "fig15",
    "table5",
    "pred-qssf",
];

/// Run one experiment (or `all`). Unknown ids are an error, not a panic,
/// so the `repro` binary can exit non-zero cleanly.
pub fn run(id: &str, ctx: &mut Context) -> Result<Vec<ExperimentOutput>, HeliosError> {
    Ok(match id {
        "table1" => vec![table1(ctx)],
        "table2" => vec![table2(ctx)],
        "fig1" => vec![fig1(ctx)],
        "fig2" => vec![fig2(ctx)],
        "fig3" => vec![fig3(ctx)],
        "fig4" => vec![fig4(ctx)],
        "fig5" => vec![fig5(ctx)],
        "fig6" => vec![fig6(ctx)],
        "fig7" => vec![fig7(ctx)],
        "fig8" => vec![fig8(ctx)],
        "fig9" => vec![fig9(ctx)],
        "fig11" => vec![fig11(ctx)],
        "fig12" => vec![fig12(ctx)],
        "fig13" => vec![fig13(ctx)],
        "table3" => vec![table3(ctx)],
        "table4" => vec![table4(ctx)],
        "fig14" => vec![fig14(ctx)],
        "fig15" => vec![fig15(ctx)],
        "table5" => vec![table5(ctx)],
        "pred-qssf" => vec![pred_qssf(ctx)],
        "pred-ces" => vec![pred_ces(ctx)],
        "ablation-lambda" => vec![ablation_lambda(ctx)],
        "ablation-backfill" => vec![ablation_backfill(ctx)],
        "pipeline" => vec![pipeline_exp(ctx)],
        "fleet-soak" => vec![fleet_soak(ctx)?],
        "fleet-chaos" => vec![fleet_chaos(ctx)?],
        "fleet-overload" => vec![fleet_overload(ctx)?],
        "failure-soak" => vec![failure_soak(ctx)?],
        "all" => {
            let mut out = Vec::new();
            for id in ALL_EXPERIMENTS.iter().chain(&EXTRA_EXPERIMENTS) {
                out.extend(run(id, ctx)?);
            }
            out
        }
        other => {
            return Err(HeliosError::UnknownName {
                kind: "experiment",
                name: other.to_string(),
                expected: {
                    let mut ids: Vec<&str> = ALL_EXPERIMENTS.to_vec();
                    ids.extend(EXTRA_EXPERIMENTS);
                    ids.push("all");
                    ids.join(", ")
                },
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_lists_are_consistent_with_the_table() {
        // Every selectable label must resolve to a kernel policy (or QSSF).
        for label in POLICIES {
            assert!(
                POLICY_TABLE.iter().any(|(l, _)| *l == label),
                "{label} missing from POLICY_TABLE"
            );
            if label != "QSSF" {
                assert_eq!(baseline_policy(label).name(), label);
            }
        }
        for label in PAPER_POLICIES {
            assert!(POLICIES.contains(&label), "{label} not a shipped policy");
        }
    }

    #[test]
    fn policy_choice_selection_and_rejection() {
        let mut ctx = Context::new(0.05, 1).unwrap();
        assert_eq!(ctx.policy_labels(), PAPER_POLICIES);
        ctx.set_policy_choice("tiresias").unwrap();
        assert_eq!(ctx.policy_labels(), ["TIRESIAS"]);
        ctx.set_policy_choice("ALL").unwrap();
        assert_eq!(ctx.policy_labels(), POLICIES);
        let err = ctx.set_policy_choice("bogus").unwrap_err();
        assert!(matches!(
            err,
            HeliosError::UnknownName { kind: "policy", .. }
        ));
    }
}
