//! # helios-bench
//!
//! Experiment harness regenerating every table and figure of the paper.
//! The `repro` binary exposes one subcommand per artifact (see DESIGN.md's
//! experiment index); this library holds the shared experiment context and
//! the per-experiment implementations so both the binary and the criterion
//! benches can drive them.

pub mod experiments;

pub use experiments::{Context, ExperimentOutput};
