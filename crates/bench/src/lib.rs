//! # helios-bench
//!
//! Experiment harness regenerating every table and figure of the paper.
//! The `repro` binary exposes one subcommand per artifact (see DESIGN.md's
//! experiment index); this library holds the shared experiment context and
//! the per-experiment implementations so both the binary and the criterion
//! benches can drive them.
//!
//! ```no_run
//! use helios_bench::experiments::{run, Context};
//!
//! let mut ctx = Context::new(0.25, 2020)?; // scale is validated here
//! let outputs = run("table1", &mut ctx)?;  // unknown ids are errors
//! assert_eq!(outputs[0].id, "table1");
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod experiments;

pub use experiments::{Context, ExperimentOutput};
