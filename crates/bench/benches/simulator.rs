//! Discrete-event scheduling throughput (Figs 11-13, Tables 3-4 substrate),
//! a comparison of the incremental `Simulator` kernel against the
//! legacy one-shot path on a 0.1-scale Saturn September trace, and the
//! **scale-1.0 kernel group** pinning the full-production-scale speedup
//! (802-node deployment class; see README "Performance").
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_sim::{
    jobs_from_trace, simulate, simulate_with, FifoPolicy, KernelConfig, OccupancyObserver, Policy,
    SimConfig, SimJob, Simulator, TiresiasPolicy,
};
use helios_trace::{generate, saturn_profile, venus, GeneratorConfig};

fn jobs(n: u64) -> Vec<SimJob> {
    let mut out: Vec<SimJob> = (0..n)
        .map(|i| SimJob {
            id: i,
            vc: (i % 10) as u16,
            gpus: [1, 2, 4, 8][(i % 4) as usize],
            submit: (i as i64 * 97) % 500_000,
            duration: 60 + (i as i64 * 131) % 20_000,
            priority: ((i * 7919) % 100_000) as f64,
        })
        .collect();
    out.sort_by_key(|j| j.submit);
    out
}

fn bench(c: &mut Criterion) {
    let spec = venus();
    let js = jobs(30_000);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for policy in [Policy::Fifo, Policy::Sjf, Policy::Srtf, Policy::Priority] {
        g.bench_function(format!("{policy:?}_30k_jobs"), |b| {
            b.iter(|| simulate(black_box(&spec), black_box(&js), &SimConfig::new(policy)))
        });
    }
    g.finish();
}

/// Incremental kernel vs the legacy one-shot wrapper on a realistic
/// workload: Saturn at 0.1 scale, September (the QSSF evaluation window).
fn bench_kernel(c: &mut Criterion) {
    let trace = generate(
        &saturn_profile(),
        &GeneratorConfig {
            scale: 0.1,
            seed: 2020,
        },
    )
    .expect("valid generator config");
    let (lo, hi) = trace.calendar.month_range(5);
    let js = jobs_from_trace(&trace, lo, hi);
    let spec = trace.spec.clone();
    eprintln!("kernel comparison: {} Saturn September jobs", js.len());

    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.bench_function("oneshot_saturn_0.1", |b| {
        b.iter(|| {
            simulate(
                black_box(&spec),
                black_box(&js),
                &SimConfig::new(Policy::Fifo),
            )
        })
    });
    g.bench_function("incremental_saturn_0.1", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(&spec), Box::new(FifoPolicy));
            sim.push_jobs(black_box(&js)).expect("valid workload");
            sim.run_to_completion();
            black_box(sim.drain_outcomes())
        })
    });
    // Online feeding: daily batches with interleaved drains — the
    // streaming shape callers use when the trace never sits in memory.
    let day = 86_400i64;
    g.bench_function("incremental_daily_batches_saturn_0.1", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(&spec), Box::new(FifoPolicy));
            let mut done = 0usize;
            let mut cursor = 0usize;
            let mut t = lo;
            while cursor < js.len() {
                let end = js[cursor..].partition_point(|j| j.submit < t + day) + cursor;
                sim.run_until(t - 1);
                sim.push_jobs(&js[cursor..end]).expect("valid workload");
                done += sim.drain_outcomes().len();
                cursor = end;
                t += day;
            }
            sim.run_to_completion();
            done += sim.drain_outcomes().len();
            black_box(done)
        })
    });
    // Streaming observer cost on top of the one-shot path.
    g.bench_function("incremental_with_occupancy_observer", |b| {
        b.iter(|| {
            let mut occ = OccupancyObserver::new(600).expect("positive bin");
            let mut sim = Simulator::new(black_box(&spec), Box::new(FifoPolicy));
            sim.observe(Box::new(&mut occ));
            sim.push_jobs(black_box(&js)).expect("valid workload");
            sim.run_to_completion();
            drop(sim);
            black_box(occ.series().len())
        })
    });
    g.finish();
}

/// Full production scale: Saturn at scale 1.0 (262 nodes / 2 096 GPUs),
/// September window (~130k jobs), FIFO and Tiresias — the acceptance
/// benchmark for the O(1)-indexed placement kernel. Regenerate the
/// README "Performance" table from this group; machine-readable records
/// come from `repro --bench-json`.
fn bench_kernel_full_scale(c: &mut Criterion) {
    let trace = generate(
        &saturn_profile(),
        &GeneratorConfig {
            scale: 1.0,
            seed: 2020,
        },
    )
    .expect("valid generator config");
    let (lo, hi) = trace.calendar.month_range(5);
    let js = jobs_from_trace(&trace, lo, hi);
    let spec = trace.spec.clone();
    eprintln!("kernel scale-1.0: {} Saturn September jobs", js.len());

    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.bench_function("fifo_saturn_1.0", |b| {
        b.iter(|| {
            simulate(
                black_box(&spec),
                black_box(&js),
                &SimConfig::new(Policy::Fifo),
            )
        })
    });
    g.bench_function("tiresias_saturn_1.0", |b| {
        b.iter(|| {
            simulate_with(
                black_box(&spec),
                black_box(&js),
                Box::new(TiresiasPolicy::default()),
                &KernelConfig::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench, bench_kernel, bench_kernel_full_scale);
criterion_main!(benches);
