//! Discrete-event scheduling throughput (Figs 11-13, Tables 3-4 substrate).
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_sim::{simulate, Policy, SimConfig, SimJob};
use helios_trace::venus;

fn jobs(n: u64) -> Vec<SimJob> {
    let mut out: Vec<SimJob> = (0..n)
        .map(|i| SimJob {
            id: i,
            vc: (i % 10) as u16,
            gpus: [1, 2, 4, 8][(i % 4) as usize],
            submit: (i as i64 * 97) % 500_000,
            duration: 60 + (i as i64 * 131) % 20_000,
            priority: ((i * 7919) % 100_000) as f64,
        })
        .collect();
    out.sort_by_key(|j| j.submit);
    out
}

fn bench(c: &mut Criterion) {
    let spec = venus();
    let js = jobs(30_000);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for policy in [Policy::Fifo, Policy::Sjf, Policy::Srtf, Policy::Priority] {
        g.bench_function(format!("{policy:?}_30k_jobs"), |b| {
            b.iter(|| simulate(black_box(&spec), black_box(&js), &SimConfig::new(policy)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
