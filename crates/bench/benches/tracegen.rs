//! Trace-generation throughput (Tables 1-2 substrate).
use criterion::{criterion_group, criterion_main, Criterion};
use helios_trace::{generate, venus_profile, GeneratorConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracegen");
    g.sample_size(10);
    g.bench_function("venus_scale_0.05", |b| {
        b.iter(|| {
            generate(
                &venus_profile(),
                &GeneratorConfig {
                    scale: 0.05,
                    seed: 1,
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
