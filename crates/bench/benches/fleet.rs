//! Fleet service-layer cost: sharded ingestion throughput and the
//! latency of live status queries while workers hold queued and running
//! state. Complements `BENCH_fleet.json` (the `fleet-soak` experiment),
//! which measures the same two paths at 100k-job soak scale.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_fleet::{ClusterConfig, Fleet, FleetConfig, ShedConfig, WatchdogConfig};
use helios_sim::{Policy, SimJob};
use helios_trace::{ClusterId, HeliosError};
use std::time::Duration;

/// Synthetic streaming workload: small mixed-size jobs fanned across
/// `vcs` virtual clusters, submit times already in admission order.
fn jobs(n: u64, vcs: u16) -> Vec<SimJob> {
    (0..n)
        .map(|i| SimJob {
            id: i,
            vc: (i % vcs as u64) as u16,
            gpus: 1 + (i % 2) as u32,
            submit: (i as i64) / 50,
            duration: 60 + (i as i64 % 11) * 30,
            priority: 0.0,
        })
        .collect()
}

/// Submit every job to a fleet; the shard capacities below are sized so
/// the per-VC queues never overflow mid-batch.
fn feed(fleet: &Fleet, cluster: ClusterId, js: &[SimJob]) {
    for &job in js {
        fleet.submit(cluster, job).expect("shard sized for batch");
    }
}

/// End-to-end ingestion throughput: launch a single-cluster fleet, push
/// a 10k-job batch through the sharded queues, run it to completion.
fn bench_ingest(c: &mut Criterion) {
    let cfg = FleetConfig::new()
        .with_cluster(ClusterConfig::new(ClusterId::Venus, Policy::Fifo))
        .with_shard_capacity(16_384);
    let probe = Fleet::launch(&cfg).expect("fleet launches");
    let vcs = probe.status(ClusterId::Venus).expect("hosted").vcs.len() as u16;
    drop(probe);
    let js = jobs(10_000, vcs);

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    g.bench_function("ingest_complete_venus_10k", |b| {
        b.iter(|| {
            let fleet = Fleet::launch(black_box(&cfg)).expect("fleet launches");
            feed(&fleet, ClusterId::Venus, black_box(&js));
            let done = fleet.shutdown().expect("clean shutdown");
            black_box(done)
        })
    });
    g.finish();
}

/// Live-read latency: all five presets hosted concurrently, each holding
/// in-flight work, while the caller polls status (queue depth, per-VC
/// utilization, queued-work ETA) without pausing simulation.
fn bench_query(c: &mut Criterion) {
    let fleet = Fleet::launch(&FleetConfig::all_presets(Policy::Fifo)).expect("fleet launches");
    for cluster in fleet.clusters() {
        let vcs = fleet.status(cluster).expect("hosted").vcs.len() as u16;
        feed(&fleet, cluster, &jobs(2_000, vcs));
    }
    // Partial advance: leave queues and running jobs populated so the
    // query walks realistic per-VC state.
    fleet.advance(600).expect("live workers");

    let mut g = c.benchmark_group("fleet");
    g.bench_function("status_query_5_clusters_under_load", |b| {
        b.iter(|| {
            let mut depth = 0usize;
            for cluster in fleet.clusters() {
                let s = fleet.status(black_box(cluster)).expect("hosted");
                depth += s.queue_depth + s.pending_ingest;
                for vc in &s.vcs {
                    black_box(vc.eta_secs());
                    black_box(vc.utilization());
                }
            }
            black_box(depth)
        })
    });
    g.finish();
}

/// Watchdog-armed pump cost: the same 10k-job ingest-and-complete run as
/// the `fleet` group, but with heartbeat publication and cooperative
/// cancellation checks live at the default 128-event cadence — the
/// supervision overhead a production topology pays. Also pins the
/// deadline-bounded status read, which must answer from shared memory in
/// sub-microsecond time regardless of worker load.
fn bench_watchdog(c: &mut Criterion) {
    let cfg = FleetConfig::new()
        .with_cluster(ClusterConfig::new(ClusterId::Venus, Policy::Fifo))
        .with_shard_capacity(16_384)
        .with_watchdog(WatchdogConfig::new());
    let probe = Fleet::launch(&cfg).expect("fleet launches");
    let vcs = probe.status(ClusterId::Venus).expect("hosted").vcs.len() as u16;
    drop(probe);
    let js = jobs(10_000, vcs);

    let mut g = c.benchmark_group("watchdog");
    g.sample_size(10);
    g.bench_function("pump_heartbeat_venus_10k", |b| {
        b.iter(|| {
            let fleet = Fleet::launch(black_box(&cfg)).expect("fleet launches");
            feed(&fleet, ClusterId::Venus, black_box(&js));
            let done = fleet.shutdown().expect("clean shutdown");
            black_box(done)
        })
    });

    let fleet = Fleet::launch(&cfg).expect("fleet launches");
    feed(&fleet, ClusterId::Venus, &js);
    fleet.advance(60).expect("live worker");
    g.bench_function("status_within_under_load", |b| {
        b.iter(|| {
            let report = fleet
                .status_within(black_box(ClusterId::Venus), Duration::from_millis(1))
                .expect("hosted");
            black_box(report)
        })
    });
    g.finish();
}

/// Admission-control refusal cost: with shedding engaged and a heavy VC
/// over its fair share, every submission is refused with the typed
/// `FleetShedding` — the hot path a saturated producer hammers. Pure
/// reads plus two counter bumps, so the backlog (and thus the measured
/// state) is identical on every iteration.
fn bench_overload(c: &mut Criterion) {
    let cfg = FleetConfig::new()
        .with_cluster(ClusterConfig::new(ClusterId::Venus, Policy::Fifo))
        .with_shard_capacity(8)
        .with_shedding(ShedConfig::new().high_water(0.01).low_water(0.005));
    let fleet = Fleet::launch(&cfg).expect("fleet launches");
    let heavy = SimJob {
        id: 0,
        vc: 0,
        gpus: 1,
        submit: 0,
        duration: 60,
        priority: 0.0,
    };
    // Pre-fill the heavy VC past the engage threshold (3/216 backlog
    // occupancy >= 1%): every further submission to it is shed.
    for id in 0..3 {
        fleet
            .submit(ClusterId::Venus, SimJob { id, ..heavy })
            .expect("below the high-water mark");
    }

    let mut g = c.benchmark_group("overload");
    g.bench_function("shed_refusal_hot_path", |b| {
        b.iter(|| {
            let err = fleet
                .submit(black_box(ClusterId::Venus), black_box(heavy))
                .expect_err("engaged shedding refuses the heavy VC");
            assert!(matches!(err, HeliosError::FleetShedding { .. }));
            black_box(err)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ingest,
    bench_query,
    bench_watchdog,
    bench_overload
);
criterion_main!(benches);
