//! Fleet service-layer cost: sharded ingestion throughput and the
//! latency of live status queries while workers hold queued and running
//! state. Complements `BENCH_fleet.json` (the `fleet-soak` experiment),
//! which measures the same two paths at 100k-job soak scale.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_fleet::{ClusterConfig, Fleet, FleetConfig};
use helios_sim::{Policy, SimJob};
use helios_trace::ClusterId;

/// Synthetic streaming workload: small mixed-size jobs fanned across
/// `vcs` virtual clusters, submit times already in admission order.
fn jobs(n: u64, vcs: u16) -> Vec<SimJob> {
    (0..n)
        .map(|i| SimJob {
            id: i,
            vc: (i % vcs as u64) as u16,
            gpus: 1 + (i % 2) as u32,
            submit: (i as i64) / 50,
            duration: 60 + (i as i64 % 11) * 30,
            priority: 0.0,
        })
        .collect()
}

/// Submit every job to a fleet; the shard capacities below are sized so
/// the per-VC queues never overflow mid-batch.
fn feed(fleet: &Fleet, cluster: ClusterId, js: &[SimJob]) {
    for &job in js {
        fleet.submit(cluster, job).expect("shard sized for batch");
    }
}

/// End-to-end ingestion throughput: launch a single-cluster fleet, push
/// a 10k-job batch through the sharded queues, run it to completion.
fn bench_ingest(c: &mut Criterion) {
    let cfg = FleetConfig::new()
        .with_cluster(ClusterConfig::new(ClusterId::Venus, Policy::Fifo))
        .with_shard_capacity(16_384);
    let probe = Fleet::launch(&cfg).expect("fleet launches");
    let vcs = probe.status(ClusterId::Venus).expect("hosted").vcs.len() as u16;
    drop(probe);
    let js = jobs(10_000, vcs);

    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    g.bench_function("ingest_complete_venus_10k", |b| {
        b.iter(|| {
            let fleet = Fleet::launch(black_box(&cfg)).expect("fleet launches");
            feed(&fleet, ClusterId::Venus, black_box(&js));
            let done = fleet.shutdown().expect("clean shutdown");
            black_box(done)
        })
    });
    g.finish();
}

/// Live-read latency: all five presets hosted concurrently, each holding
/// in-flight work, while the caller polls status (queue depth, per-VC
/// utilization, queued-work ETA) without pausing simulation.
fn bench_query(c: &mut Criterion) {
    let fleet = Fleet::launch(&FleetConfig::all_presets(Policy::Fifo)).expect("fleet launches");
    for cluster in fleet.clusters() {
        let vcs = fleet.status(cluster).expect("hosted").vcs.len() as u16;
        feed(&fleet, cluster, &jobs(2_000, vcs));
    }
    // Partial advance: leave queues and running jobs populated so the
    // query walks realistic per-VC state.
    fleet.advance(600).expect("live workers");

    let mut g = c.benchmark_group("fleet");
    g.bench_function("status_query_5_clusters_under_load", |b| {
        b.iter(|| {
            let mut depth = 0usize;
            for cluster in fleet.clusters() {
                let s = fleet.status(black_box(cluster)).expect("hosted");
                depth += s.queue_depth + s.pending_ingest;
                for vc in &s.vcs {
                    black_box(vc.eta_secs());
                    black_box(vc.utilization());
                }
            }
            black_box(depth)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ingest, bench_query);
criterion_main!(benches);
