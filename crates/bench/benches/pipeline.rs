//! End-to-end façade pipeline throughput: one criterion entry per stage
//! (generate / characterize / train_qssf / train_ces / schedule / report)
//! plus the overlapped `Session::pipeline` fast path and the full chain —
//! the per-stage counterpart of the scale-1.0 numbers in the README
//! "Performance" table (regenerate those with
//! `repro --scale 1.0 --bench-json BENCH_pipeline.json pipeline`).
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios::prelude::*;

const SCALE: f64 = 0.05;
const SEED: u64 = 2020;

fn session() -> Session {
    Helios::cluster(Preset::Saturn)
        .scale(SCALE)
        .seed(SEED)
        .build()
        .expect("valid config")
}

fn generated() -> Session {
    let mut s = session();
    s.generate().expect("valid config");
    s
}

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("generate_saturn", |b| {
        b.iter(|| {
            let mut s = session();
            s.generate().expect("valid config");
            black_box(s.trace().unwrap().jobs.len())
        })
    });

    let base = generated();
    g.bench_function("characterize", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.characterize().expect("generated");
            black_box(s.characterization().is_some())
        })
    });
    g.bench_function("train_qssf", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.train_qssf().expect("generated");
            black_box(())
        })
    });
    g.bench_function("train_ces", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.train_ces().expect("generated");
            black_box(s.ces_evaluation().map(|e| e.smape))
        })
    });
    g.bench_function("schedule_fifo", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.schedule(SchedulePolicy::Fifo).expect("generated");
            black_box(s.schedule_outcomes().len())
        })
    });
    g.bench_function("overlapped_pipeline", |b| {
        b.iter(|| {
            let mut s = base.clone();
            s.pipeline().expect("generated");
            black_box(s.ces_evaluation().map(|e| e.smape))
        })
    });
    g.bench_function("end_to_end", |b| {
        b.iter(|| {
            let report = {
                let mut s = session();
                s.pipeline()
                    .and_then(|s| s.schedule(SchedulePolicy::Fifo))
                    .and_then(|s| s.schedule(SchedulePolicy::Qssf))
                    .expect("valid config");
                s.report().expect("generated")
            };
            black_box(report.stage_perf.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
