//! Characterization kernels (Figs 1, 5, 6, 8, 9).
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_analysis::cdf::{Cdf, WeightedCdf};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn bench(c: &mut Criterion) {
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let values: Vec<f64> = (0..200_000).map(|_| rng.gen::<f64>() * 1e6).collect();
    let pairs: Vec<(f64, f64)> = values.iter().map(|&v| (v, rng.gen::<f64>())).collect();
    c.bench_function("cdf_build_200k", |b| {
        b.iter(|| Cdf::new(black_box(values.clone())))
    });
    let cdf = Cdf::new(values.clone());
    let grid = Cdf::log_grid(1.0, 1e6, 64);
    c.bench_function("cdf_series_64pts", |b| {
        b.iter(|| cdf.series(black_box(&grid)))
    });
    c.bench_function("weighted_concentration_200k", |b| {
        b.iter(|| WeightedCdf::new(black_box(pairs.clone())).concentration_curve())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
