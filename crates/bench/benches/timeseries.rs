//! Occupancy/submission binning (Figs 2-4 substrate).
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_analysis::timeseries::{gpu_utilization_series, submission_rate_series};
use helios_trace::{JobRecord, JobStatus};

fn jobs(n: u64) -> Vec<JobRecord> {
    (0..n)
        .map(|i| JobRecord {
            id: i,
            user: (i % 200) as u32,
            vc: (i % 20) as u16,
            gpus: [1, 2, 4, 8][(i % 4) as usize],
            cpus: 6,
            submit: (i as i64 * 61) % 2_000_000,
            start: (i as i64 * 61) % 2_000_000 + 30,
            duration: 100 + (i as i64 * 37) % 10_000,
            status: JobStatus::Completed,
            name: 0,
            run: 0,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let js = jobs(100_000);
    let mut g = c.benchmark_group("timeseries");
    g.sample_size(10);
    g.bench_function("utilization_100k_jobs_hourly", |b| {
        b.iter(|| gpu_utilization_series(black_box(&js), 1_064, 0, 2_100_000, 3_600))
    });
    g.bench_function("submission_rate_100k_jobs", |b| {
        b.iter(|| submission_rate_series(black_box(&js), 0, 2_100_000, 3_600, |j| j.is_gpu()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
