//! Resilience-path cost: the two kernel primitives behind the fleet's
//! self-healing. Checkpoint capture (snapshot + serialize) is what every
//! auto-checkpoint cycle pays on the worker thread; recovery (decode +
//! restore + journal replay) is what a supervisor restart pays before the
//! cluster serves again. Complements the `fleet-chaos` experiment, which
//! measures the same paths end to end through the supervised worker and
//! commits the latencies to `BENCH_fleet.json`.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_sim::{Policy, SimJob, SimSnapshot, Simulator};
use helios_trace::{preset, ClusterId};

/// Synthetic streaming workload: small mixed-size jobs fanned across
/// `vcs` virtual clusters, submit times already in admission order.
fn jobs(ids: std::ops::Range<u64>, vcs: u16, floor: i64) -> Vec<SimJob> {
    ids.map(|i| SimJob {
        id: i,
        vc: (i % vcs as u64) as u16,
        gpus: 1 + (i % 2) as u32,
        submit: floor + (i as i64) / 50,
        duration: 60 + (i as i64 % 11) * 30,
        priority: 0.0,
    })
    .collect()
}

/// A Venus kernel paused mid-stream with queues and running jobs
/// populated — the state every auto-checkpoint cycle captures.
fn loaded_sim(spec: &helios_trace::ClusterSpec) -> Simulator<'_> {
    let vcs = spec.vcs.len() as u16;
    let mut sim = Simulator::new(spec, Policy::Fifo.build());
    sim.push_jobs(&jobs(0..10_000, vcs, 0)).expect("valid jobs");
    sim.run_until(100);
    sim
}

/// Checkpoint capture latency: one snapshot + wire serialization of the
/// loaded kernel, the per-cycle cost `FleetHealth::checkpoint_write_secs_total`
/// accumulates (minus the disk mirror).
fn bench_checkpoint_write(c: &mut Criterion) {
    let spec = preset(ClusterId::Venus);
    let sim = loaded_sim(&spec);

    let mut g = c.benchmark_group("resilience");
    g.sample_size(10);
    g.bench_function("checkpoint_write_venus_10k", |b| {
        b.iter(|| black_box(sim.snapshot().to_bytes()))
    });
    g.finish();
}

/// Recovery latency: decode the checkpoint, rebuild the kernel from it,
/// replay a 500-job admission journal, and run to the crash horizon —
/// the restore-and-replay path a supervisor restart takes
/// (`FleetHealth::recovery_secs_total`).
fn bench_recovery(c: &mut Criterion) {
    let spec = preset(ClusterId::Venus);
    let vcs = spec.vcs.len() as u16;
    let bytes = loaded_sim(&spec).snapshot().to_bytes();
    let journal = jobs(10_000..10_500, vcs, 100);

    let mut g = c.benchmark_group("resilience");
    g.sample_size(10);
    g.bench_function("recovery_restore_replay_venus_500j", |b| {
        b.iter(|| {
            let snap = SimSnapshot::from_bytes(black_box(&bytes)).expect("clean generation");
            let mut sim =
                Simulator::restore(&spec, Policy::Fifo.build(), &snap).expect("same spec");
            sim.push_jobs(black_box(&journal)).expect("valid journal");
            sim.run_until(200);
            black_box(sim.now())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_checkpoint_write, bench_recovery);
criterion_main!(benches);
