//! Node-demand forecasting (Figs 14-15, Table 5 substrate).
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_predict::{Arima, FourierForecaster, FourierParams};
use helios_trace::Calendar;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| 100.0 + 20.0 * (t as f64 * std::f64::consts::TAU / 144.0).sin())
        .collect()
}

fn bench(c: &mut Criterion) {
    let cal = Calendar::helios_2020();
    let v = series(10_000);
    let mut g = c.benchmark_group("forecast");
    g.sample_size(10);
    g.bench_function("arima_fit_p12_d1", |b| {
        b.iter(|| Arima::fit(black_box(&v), 12, 1))
    });
    let arima = Arima::fit(&v, 12, 1);
    g.bench_function("arima_forecast_18", |b| {
        b.iter(|| arima.forecast(black_box(&v), 18))
    });
    g.bench_function("fourier_fit_10k", |b| {
        b.iter(|| FourierForecaster::fit(black_box(&v), 0, 600, &cal, FourierParams::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
