//! Failure-injection overhead: the same Venus September workload through
//! the kernel failure-free, under seeded Weibull injection
//! (checkpoint-restart), and with the proactive-drain wrapper stacked on
//! top — pins the cost of the fault event class and the drain scan path.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_faults::{DrainConfig, DrainPolicy};
use helios_sim::{
    jobs_from_trace, FaultConfig, KernelConfig, Policy, SchedulingPolicy, SimJob, Simulator,
};
use helios_trace::{generate, venus_profile, ClusterSpec, GeneratorConfig};

fn run(
    spec: &ClusterSpec,
    jobs: &[SimJob],
    policy: Box<dyn SchedulingPolicy>,
    faults: Option<&FaultConfig>,
) -> usize {
    let mut sim = Simulator::with_config(spec, policy, &KernelConfig::default());
    if let Some(f) = faults {
        sim.enable_faults(f).expect("valid fault config");
    }
    sim.push_jobs(jobs).expect("valid jobs");
    sim.run_to_completion();
    sim.drain_outcomes().len()
}

fn bench(c: &mut Criterion) {
    let trace = generate(
        &venus_profile(),
        &GeneratorConfig {
            scale: 0.1,
            seed: 2020,
        },
    )
    .expect("valid generator config");
    let (lo, hi) = trace.calendar.month_range(5);
    let jobs = jobs_from_trace(&trace, lo, hi);
    let spec = trace.spec.clone();
    // Checkpoint semantics: at 48 h MTBF a kill-requeue run never finishes
    // its 50-day jobs, so the bench would spin instead of measuring.
    let faults = FaultConfig::with_mtbf_hours(48.0).checkpoint_hours(2.0);
    eprintln!("fault overhead: {} Venus September jobs", jobs.len());

    let mut g = c.benchmark_group("faults");
    g.sample_size(10);
    g.bench_function("venus_0.1_failure_free", |b| {
        b.iter(|| {
            run(
                black_box(&spec),
                black_box(&jobs),
                Policy::Fifo.build(),
                None,
            )
        })
    });
    g.bench_function("venus_0.1_injected_mtbf48h", |b| {
        b.iter(|| {
            run(
                black_box(&spec),
                black_box(&jobs),
                Policy::Fifo.build(),
                Some(&faults),
            )
        })
    });
    g.bench_function("venus_0.1_injected_drain_wrapper", |b| {
        b.iter(|| {
            let policy = Box::new(
                DrainPolicy::uptime(Policy::Fifo.build(), 48.0, DrainConfig::default())
                    .expect("valid drain config"),
            );
            run(black_box(&spec), black_box(&jobs), policy, Some(&faults))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
