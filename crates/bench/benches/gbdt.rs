//! GBDT training/inference (the QSSF P_M estimator, Table 3 substrate).
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use helios_predict::gbdt::{Gbdt, GbdtParams};
use helios_predict::text::levenshtein;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

fn bench(c: &mut Criterion) {
    let mut rng = ChaCha12Rng::seed_from_u64(5);
    let n = 20_000;
    let cols: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..n).map(|_| rng.gen::<f64>() * 100.0).collect())
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|r| cols[0][r] * 0.5 + (cols[1][r] * 0.1).sin() * 20.0)
        .collect();
    let mut g = c.benchmark_group("gbdt");
    g.sample_size(10);
    g.bench_function("train_20k_rows_40_trees", |b| {
        b.iter(|| {
            Gbdt::fit(
                black_box(&cols),
                black_box(&y),
                &GbdtParams {
                    num_trees: 40,
                    early_stopping: 0,
                    ..Default::default()
                },
                None,
            )
        })
    });
    let model = Gbdt::fit(
        &cols,
        &y,
        &GbdtParams {
            num_trees: 40,
            early_stopping: 0,
            ..Default::default()
        },
        None,
    );
    let row: Vec<f64> = (0..12).map(|i| i as f64 * 7.0).collect();
    g.bench_function("predict_row", |b| {
        b.iter(|| model.predict_row(black_box(&row)))
    });
    g.bench_function("levenshtein_job_names", |b| {
        b.iter(|| {
            levenshtein(
                black_box("train_resnet50_imagenet_lr3"),
                black_box("train_resnet101_imagenet_lr5"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
