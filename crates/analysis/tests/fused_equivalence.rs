//! Equivalence pin: the fused single-pass characterization engine must
//! reproduce every legacy multi-pass output **exactly** (same floats, not
//! just close) — summary struct, daily pattern, status shares, demand
//! buckets, per-user stats, and every shared-buffer CDF — across seeds and
//! presets. This is the contract that lets the façade switch to the fused
//! engine without changing a single reported number.

use helios_analysis::{characterize, clusters, jobs, users, Cdf};
use helios_trace::{earth_profile, generate, venus_profile, GeneratorConfig, Trace};

fn traces() -> Vec<Trace> {
    let mut out = Vec::new();
    for profile in [venus_profile(), earth_profile()] {
        for seed in [3, 17, 2020] {
            out.push(generate(&profile, &GeneratorConfig { scale: 0.05, seed }).unwrap());
        }
    }
    out
}

fn assert_cdf_eq(view: helios_analysis::CdfView<'_>, legacy: &Cdf, what: &str) {
    assert_eq!(view.len(), legacy.len(), "{what}: sample count");
    if view.is_empty() {
        return;
    }
    assert_eq!(view.min(), legacy.min(), "{what}: min");
    assert_eq!(view.max(), legacy.max(), "{what}: max");
    assert_eq!(view.mean(), legacy.mean(), "{what}: mean");
    for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
        assert_eq!(view.quantile(q), legacy.quantile(q), "{what}: q{q}");
    }
    for x in Cdf::log_grid(1.0, 1.0e7, 25) {
        assert_eq!(view.fraction_at(x), legacy.fraction_at(x), "{what}: F({x})");
    }
}

#[test]
fn fused_matches_legacy_everywhere() {
    for trace in traces() {
        let f = characterize(&trace);
        let tag = format!("{} (seed path)", trace.spec.id.name());

        // Table 2 summary.
        assert_eq!(f.summary, jobs::summarize(&[&trace]), "{tag}: summary");

        // Fig. 2 daily pattern.
        assert_eq!(f.daily, clusters::daily_pattern(&trace), "{tag}: daily");

        // Fig. 7(a) / Fig. 1(b) status shares.
        let (cpu, gpu) = jobs::status_by_job_class(&[&trace]);
        assert_eq!(f.cpu_status, cpu, "{tag}: cpu status");
        assert_eq!(f.gpu_status, gpu, "{tag}: gpu status");
        assert_eq!(
            f.gpu_time_status,
            jobs::gpu_time_by_status(&[&trace]),
            "{tag}: gpu-time status"
        );

        // Fig. 7(b) demand buckets.
        assert_eq!(
            f.status_by_demand,
            jobs::status_by_gpu_demand(&[&trace]),
            "{tag}: demand buckets"
        );

        // Per-user stats (Figs. 8/9 substrate).
        assert_eq!(f.users, users::per_user_stats(&trace), "{tag}: user stats");

        // Shared-buffer CDFs vs each legacy re-collect-and-sort.
        assert_cdf_eq(
            f.gpu_duration_cdf(),
            &jobs::gpu_duration_cdf(&trace),
            "gpu durations",
        );
        assert_cdf_eq(
            f.cpu_duration_cdf(),
            &jobs::cpu_duration_cdf(&trace),
            "cpu durations",
        );
        let (count_cdf, time_cdf) = jobs::job_size_cdfs(&trace);
        assert_cdf_eq(f.job_size_cdf(), &count_cdf, "job sizes");
        assert_eq!(
            f.job_size_time_cdf(),
            &time_cdf,
            "{tag}: size-by-time weighted CDF"
        );

        // Derived figures the façade reports.
        let (gpu_curve, _) = users::consumption_curves(&f.users);
        let (legacy_curve, _) = users::consumption_curves(&users::per_user_stats(&trace));
        assert_eq!(
            users::top_share(&gpu_curve, 0.05),
            users::top_share(&legacy_curve, 0.05),
            "{tag}: top-5% share"
        );
    }
}
