//! Virtual-cluster characterization (§3.1.3, Fig. 4): per-VC utilization
//! boxplots, average GPU demand, and normalized duration/queuing delay for
//! the top-k largest VCs over a stable month.

use crate::quantiles::{min_max_normalize, BoxStats};
use crate::timeseries::gpu_utilization_series_from;
use helios_trace::{Trace, VcId, SECS_PER_MINUTE};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Fig. 4 data for one VC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcBehavior {
    pub vc: VcId,
    pub name: String,
    pub gpus: u32,
    /// Boxplot of per-minute utilization (percent) over the window.
    pub utilization: BoxStats,
    /// Average requested GPUs per job (the dashed line of Fig. 4 top).
    pub avg_gpu_request: f64,
    /// Average job duration, seconds.
    pub avg_duration: f64,
    /// Average queuing delay, seconds.
    pub avg_queuing: f64,
    pub jobs: u64,
}

/// Fig. 4: behaviors of the `top_k` largest VCs over month `month`.
/// Utilization is averaged per minute as in the paper.
///
/// One pass over the trace gathers per-VC job references (no record
/// clones, no per-VC re-scan), then the per-VC series fan out over rayon.
pub fn vc_behaviors(trace: &Trace, month: usize, top_k: usize) -> Vec<VcBehavior> {
    let (lo, hi) = trace.calendar.month_range(month);
    let mut order: Vec<usize> = (0..trace.spec.num_vcs()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(trace.spec.vcs[i].nodes));
    order.truncate(top_k);

    // slot_of[vc] = output position of a selected VC.
    let mut slot_of = vec![usize::MAX; trace.spec.num_vcs()];
    for (slot, &vc_idx) in order.iter().enumerate() {
        slot_of[vc_idx] = slot;
    }
    // Single traversal: GPU-job references per selected VC, trace order.
    let mut occupying: Vec<Vec<&helios_trace::JobRecord>> = vec![Vec::new(); order.len()];
    for j in trace.gpu_jobs() {
        let slot = slot_of[j.vc as usize];
        if slot != usize::MAX {
            occupying[slot].push(j);
        }
    }

    order
        .iter()
        .zip(occupying)
        .collect::<Vec<_>>()
        .into_par_iter()
        .with_min_len(1)
        .map(|(&vc_idx, occ)| {
            let vc = vc_idx as VcId;
            let capacity = trace.spec.vc_gpus(vc) as u64;
            let util =
                gpu_utilization_series_from(occ.iter().copied(), capacity, lo, hi, SECS_PER_MINUTE);
            let pct: Vec<f64> = util.values.iter().map(|u| u * 100.0).collect();
            let vc_jobs: Vec<_> = occ
                .iter()
                .filter(|j| j.submit >= lo && j.submit < hi)
                .collect();
            let n = vc_jobs.len() as f64;
            VcBehavior {
                vc,
                name: trace.spec.vcs[vc_idx].name.clone(),
                gpus: capacity as u32,
                utilization: BoxStats::from_samples(&pct),
                avg_gpu_request: vc_jobs.iter().map(|j| j.gpus as f64).sum::<f64>() / n.max(1.0),
                avg_duration: vc_jobs.iter().map(|j| j.duration as f64).sum::<f64>() / n.max(1.0),
                avg_queuing: vc_jobs.iter().map(|j| j.queue_delay() as f64).sum::<f64>()
                    / n.max(1.0),
                jobs: vc_jobs.len() as u64,
            }
        })
        .collect()
}

/// Fig. 4 bottom: min-max-normalized (avg duration, avg queuing delay)
/// across the listed VCs.
pub fn normalized_delay_series(behaviors: &[VcBehavior]) -> (Vec<f64>, Vec<f64>) {
    let dur: Vec<f64> = behaviors.iter().map(|b| b.avg_duration).collect();
    let qd: Vec<f64> = behaviors.iter().map(|b| b.avg_queuing).collect();
    (min_max_normalize(&dur), min_max_normalize(&qd))
}

/// Pearson correlation between two equal-length slices; NaN-free inputs.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{earth_profile, generate, GeneratorConfig};

    fn behaviors() -> Vec<VcBehavior> {
        let t = generate(
            &earth_profile(),
            &GeneratorConfig {
                scale: 0.12,
                seed: 3,
            },
        )
        .unwrap();
        // May in Earth, as the paper does (month index 1).
        vc_behaviors(&t, 1, 10)
    }

    #[test]
    fn top_k_by_size_descending() {
        let b = behaviors();
        assert_eq!(b.len(), 10);
        for w in b.windows(2) {
            assert!(w[0].gpus >= w[1].gpus);
        }
    }

    #[test]
    fn utilization_percentages_valid() {
        for b in behaviors() {
            assert!(b.utilization.min >= 0.0);
            assert!(b.utilization.max <= 100.0 + 1e-9);
            assert!(b.utilization.q1 <= b.utilization.median);
            assert!(b.utilization.median <= b.utilization.q3);
        }
    }

    #[test]
    fn queuing_correlates_with_duration() {
        // §3.1.3: "the job queuing delay is approximately proportional to
        // the average job duration".
        let b = behaviors();
        let (dur, qd) = normalized_delay_series(&b);
        assert_eq!(dur.len(), 10);
        let r = pearson(&dur, &qd);
        // Positive, if noisy at reduced scale (the paper reports an
        // approximate proportionality).
        assert!(r > 0.05, "duration-queuing correlation {r}");
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0];
        assert!((pearson(&a, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), 0.0);
    }
}
