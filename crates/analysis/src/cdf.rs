//! Empirical cumulative distribution functions, the workhorse of the
//! paper's characterization figures (Figs. 1, 5, 6, 8, 9).

use serde::{Deserialize, Serialize};

/// A borrowed empirical CDF over an externally-owned **sorted** sample
/// slice. The fused characterization engine sorts one shared sample
/// buffer and hands out `CdfView`s, so a dozen figures evaluate against
/// the same memory instead of each re-collecting and re-sorting its own
/// `Vec` (use [`Cdf`] when the CDF should own its samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfView<'a> {
    sorted: &'a [f64],
}

impl<'a> CdfView<'a> {
    /// Wrap a sorted, NaN-free slice.
    pub fn from_sorted(sorted: &'a [f64]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
        CdfView { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 <= q <= 1), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty CDF")
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty CDF")
    }

    /// Evaluate the CDF at `points`, returning `(x, F(x))` pairs — the
    /// series a figure plots.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.fraction_at(x))).collect()
    }
}

/// An empirical CDF over `f64` samples (owning; see [`CdfView`] for the
/// borrowed form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted samples.
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from unsorted samples (NaNs are rejected). The sort uses
    /// `f64::total_cmp` — robust to any future NaN leak and faster than
    /// branching on `partial_cmp`'s `Option`.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_unstable_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Borrowed view over the sorted samples.
    pub fn view(&self) -> CdfView<'_> {
        CdfView {
            sorted: &self.sorted,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at(&self, x: f64) -> f64 {
        self.view().fraction_at(x)
    }

    /// The `q`-quantile (0 <= q <= 1), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> f64 {
        self.view().quantile(q)
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.view().median()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.view().mean()
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.view().min()
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.view().max()
    }

    /// Evaluate the CDF at `points`, returning `(x, F(x))` pairs — the
    /// series a figure plots.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        self.view().series(points)
    }

    /// Log-spaced evaluation grid from `lo` to `hi` (inclusive), `n` points —
    /// the paper's duration CDFs use log-scale x-axes.
    pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        assert!(lo > 0.0 && hi > lo && n >= 2);
        let (l, h) = (lo.ln(), hi.ln());
        (0..n)
            .map(|i| (l + (h - l) * i as f64 / (n - 1) as f64).exp())
            .collect()
    }
}

/// Weighted CDF: fraction of total *weight* attributable to samples `<= x`.
/// Used for "GPU time by job size" style figures (Fig. 6b) and the
/// user-consumption curves (Fig. 8: fraction of users vs fraction of time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedCdf {
    /// (value, weight) sorted by value.
    entries: Vec<(f64, f64)>,
    total: f64,
}

impl WeightedCdf {
    /// Build from (value, weight) pairs; weights must be non-negative.
    pub fn new(mut entries: Vec<(f64, f64)>) -> Self {
        assert!(entries
            .iter()
            .all(|(v, w)| !v.is_nan() && *w >= 0.0 && w.is_finite()));
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total = entries.iter().map(|e| e.1).sum();
        WeightedCdf { entries, total }
    }

    /// Fraction of total weight at values `<= x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for &(v, w) in &self.entries {
            if v > x {
                break;
            }
            acc += w;
        }
        acc / self.total
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Lorenz-style curve: sort entries by weight *descending* and return
    /// the cumulative weight share of the top `k` entries for each k as
    /// `(fraction_of_entries, fraction_of_weight)`. This is exactly the
    /// "CDF of users that consume the cluster resources" of Fig. 8.
    pub fn concentration_curve(&self) -> Vec<(f64, f64)> {
        let mut weights: Vec<f64> = self.entries.iter().map(|e| e.1).collect();
        weights.sort_by(|a, b| b.total_cmp(a));
        let n = weights.len();
        let mut acc = 0.0;
        weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                acc += w;
                (
                    (i + 1) as f64 / n as f64,
                    if self.total > 0.0 {
                        acc / self.total
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_quantiles() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(2.0), 0.5);
        assert_eq!(cdf.fraction_at(10.0), 1.0);
        assert_eq!(cdf.median(), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.quantile(0.25), 1.0);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 4.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = Cdf::new((0..100).map(|i| ((i * 37) % 100) as f64).collect());
        let grid = Cdf::log_grid(0.5, 200.0, 40);
        let series = cdf.series(&grid);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((series.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_grid_shape() {
        let g = Cdf::log_grid(1.0, 1000.0, 4);
        assert_eq!(g.len(), 4);
        assert!((g[0] - 1.0).abs() < 1e-9);
        assert!((g[3] - 1000.0).abs() < 1e-6);
        assert!((g[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_fraction() {
        let w = WeightedCdf::new(vec![(1.0, 1.0), (8.0, 9.0)]);
        assert!((w.fraction_at(1.0) - 0.1).abs() < 1e-12);
        assert!((w.fraction_at(8.0) - 1.0).abs() < 1e-12);
        assert_eq!(w.total(), 10.0);
    }

    #[test]
    fn concentration_curve_is_lorenz_like() {
        // One heavy user (90) and nine light users (10/9 each).
        let mut entries = vec![(0.0, 90.0)];
        entries.extend((1..10).map(|i| (i as f64, 10.0 / 9.0)));
        let w = WeightedCdf::new(entries);
        let curve = w.concentration_curve();
        // Top 10% of users (1 of 10) hold 90% of the weight.
        assert!((curve[0].0 - 0.1).abs() < 1e-12);
        assert!((curve[0].1 - 0.9).abs() < 1e-12);
        let last = curve.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_fraction_is_zero() {
        let cdf = Cdf::new(vec![]);
        assert_eq!(cdf.fraction_at(5.0), 0.0);
        assert!(cdf.is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile of empty CDF")]
    fn empty_quantile_panics() {
        Cdf::new(vec![]).median();
    }
}
