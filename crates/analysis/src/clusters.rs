//! Cluster-level characterization (§3.1): daily utilization/submission
//! profiles (Fig. 2) and monthly trends (Fig. 3).

use crate::timeseries::{gpu_utilization_series, hourly_profile, submission_rate_series};
use helios_trace::{Trace, SECS_PER_HOUR};
use serde::{Deserialize, Serialize};

/// Fig. 2 data for one cluster: 24-entry hourly averages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyPattern {
    pub cluster: String,
    /// Fig. 2(a): average utilization per hour-of-day, percent.
    pub hourly_utilization: Vec<f64>,
    /// Fig. 2(b): average GPU-job submissions per hour-of-day.
    pub hourly_submissions: Vec<f64>,
    /// §3.1.1 quotes the std-dev of hourly utilization (7% for Saturn,
    /// 10–12% elsewhere).
    pub utilization_std_dev: f64,
}

/// Compute Fig. 2 for one trace.
pub fn daily_pattern(trace: &Trace) -> DailyPattern {
    let horizon = trace.calendar.total_seconds();
    let util = gpu_utilization_series(
        &trace.jobs,
        trace.total_gpus() as u64,
        0,
        horizon,
        SECS_PER_HOUR,
    );
    let subs = submission_rate_series(&trace.jobs, 0, horizon, SECS_PER_HOUR, |j| j.is_gpu());
    DailyPattern {
        cluster: trace.spec.id.name().to_string(),
        hourly_utilization: hourly_profile(&util)
            .into_iter()
            .map(|u| u * 100.0)
            .collect(),
        hourly_submissions: hourly_profile(&subs),
        utilization_std_dev: util.std_dev() * 100.0,
    }
}

/// Fig. 3 data for one cluster: per-month aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthlyTrend {
    pub cluster: String,
    pub months: Vec<String>,
    /// Fig. 3 top bars: submitted single-GPU jobs per month.
    pub single_gpu_jobs: Vec<u64>,
    /// Fig. 3 top bars: submitted multi-GPU jobs per month.
    pub multi_gpu_jobs: Vec<u64>,
    /// Fig. 3 top dashed line: average utilization per month, percent.
    pub utilization: Vec<f64>,
    /// Fig. 3 bottom: utilization attributable to single-GPU jobs, percent.
    pub single_gpu_utilization: Vec<f64>,
    /// Fig. 3 bottom: utilization attributable to multi-GPU jobs, percent.
    pub multi_gpu_utilization: Vec<f64>,
    /// §3.1.2: std-dev of the average requested GPU count across months
    /// (paper: 2.9, i.e. multi-GPU demand is stable month over month).
    pub monthly_avg_gpu_std_dev: f64,
}

/// Compute Fig. 3 for one trace.
pub fn monthly_trend(trace: &Trace) -> MonthlyTrend {
    let cal = &trace.calendar;
    let capacity = trace.total_gpus() as u64;
    let mut single = Vec::new();
    let mut multi = Vec::new();
    let mut util = Vec::new();
    let mut single_util = Vec::new();
    let mut multi_util = Vec::new();
    let mut avg_gpus = Vec::new();
    for m in 0..cal.num_months() {
        let (lo, hi) = cal.month_range(m);
        let mut s = 0u64;
        let mut mu = 0u64;
        let mut gpus_sum = 0.0;
        let mut gpu_jobs = 0u64;
        for j in trace.jobs_in_month(m) {
            if !j.is_gpu() {
                continue;
            }
            gpu_jobs += 1;
            gpus_sum += j.gpus as f64;
            if j.gpus == 1 {
                s += 1;
            } else {
                mu += 1;
            }
        }
        single.push(s);
        multi.push(mu);
        avg_gpus.push(if gpu_jobs > 0 {
            gpus_sum / gpu_jobs as f64
        } else {
            0.0
        });
        // Occupancy within the month, split by job width.
        let denom = (capacity as i64 * (hi - lo)) as f64;
        let occupied = |pred: &dyn Fn(u32) -> bool| -> f64 {
            trace
                .gpu_jobs()
                .filter(|j| j.gpus as u64 <= capacity && pred(j.gpus))
                .map(|j| {
                    let (s, e) = (j.start.max(lo), j.end().min(hi));
                    if e > s {
                        (e - s) as f64 * j.gpus as f64
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
                / denom
                * 100.0
        };
        let su = occupied(&|g| g == 1);
        let mu_ = occupied(&|g| g > 1);
        single_util.push(su);
        multi_util.push(mu_);
        util.push(su + mu_);
    }
    let mean = avg_gpus.iter().sum::<f64>() / avg_gpus.len().max(1) as f64;
    let std = (avg_gpus.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
        / avg_gpus.len().max(1) as f64)
        .sqrt();
    MonthlyTrend {
        cluster: trace.spec.id.name().to_string(),
        months: cal.month_names.clone(),
        single_gpu_jobs: single,
        multi_gpu_jobs: multi,
        utilization: util,
        single_gpu_utilization: single_util,
        multi_gpu_utilization: multi_util,
        monthly_avg_gpu_std_dev: std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{generate, venus_profile, GeneratorConfig};

    fn trace() -> Trace {
        generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.05,
                seed: 3,
            },
        )
        .unwrap()
    }

    #[test]
    fn daily_pattern_shape() {
        let p = daily_pattern(&trace());
        assert_eq!(p.hourly_utilization.len(), 24);
        assert_eq!(p.hourly_submissions.len(), 24);
        // Utilization stays within a sane percentage band.
        assert!(p
            .hourly_utilization
            .iter()
            .all(|&u| (0.0..=100.0).contains(&u)));
        // Night submissions below afternoon submissions (Implication #1).
        let night: f64 = p.hourly_submissions[3..6].iter().sum();
        let afternoon: f64 = p.hourly_submissions[14..17].iter().sum();
        assert!(night < afternoon);
    }

    #[test]
    fn nightly_utilization_dip_is_mild() {
        // §3.1.1: a 5-8% decrease at night, "not very significant" because
        // long jobs run overnight.
        let p = daily_pattern(&trace());
        let day_max = p.hourly_utilization.iter().cloned().fold(0.0, f64::max);
        let night_min = p.hourly_utilization[0..8]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(day_max - night_min < 25.0, "dip {}", day_max - night_min);
    }

    #[test]
    fn monthly_trend_shape() {
        let t = trace();
        let m = monthly_trend(&t);
        assert_eq!(m.months.len(), 6);
        assert_eq!(m.single_gpu_jobs.len(), 6);
        // Single + multi utilization compose the total.
        for i in 0..6 {
            let sum = m.single_gpu_utilization[i] + m.multi_gpu_utilization[i];
            assert!((sum - m.utilization[i]).abs() < 1e-9);
        }
        // Implication #2: multi-GPU jobs dominate utilization.
        let su: f64 = m.single_gpu_utilization.iter().sum();
        let mu: f64 = m.multi_gpu_utilization.iter().sum();
        assert!(mu > su);
    }

    #[test]
    fn multi_gpu_submissions_are_stable() {
        // Fig. 3: multi-GPU monthly counts are stable while single-GPU
        // fluctuates; requested-GPU std-dev is small (paper: 2.9).
        let m = monthly_trend(&trace());
        let spread = |v: &[u64]| {
            let max = *v.iter().max().unwrap() as f64;
            let min = *v.iter().min().unwrap() as f64;
            max / min.max(1.0)
        };
        // Exclude September (truncated month in the paper too).
        let multi = &m.multi_gpu_jobs[..5];
        let single = &m.single_gpu_jobs[..5];
        assert!(
            spread(multi) < spread(single),
            "multi {multi:?} single {single:?}"
        );
        assert!(m.monthly_avg_gpu_std_dev < 4.0);
    }
}
