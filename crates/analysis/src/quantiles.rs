//! Boxplot statistics (five-number summaries with IQR whiskers), used by the
//! per-VC utilization boxplots of Fig. 4.

use serde::{Deserialize, Serialize};

/// The boxplot summary the paper draws in Fig. 4: quartile box, median line,
/// and whiskers at 1.5 × IQR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    /// Lower whisker: smallest sample >= q1 - 1.5*IQR.
    pub whisker_lo: f64,
    /// Upper whisker: largest sample <= q3 + 1.5*IQR.
    pub whisker_hi: f64,
    pub mean: f64,
    pub n: usize,
}

impl BoxStats {
    /// Compute from unsorted samples. Panics on empty input.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "BoxStats of empty sample set");
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let h = p * (v.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            v[lo] + (h - lo as f64) * (v[hi] - v[lo])
        };
        let (q1, median, q3) = (q(0.25), q(0.5), q(0.75));
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = *v
            .iter()
            .find(|&&x| x >= lo_fence)
            .unwrap_or(v.first().unwrap());
        let whisker_hi = *v
            .iter()
            .rev()
            .find(|&&x| x <= hi_fence)
            .unwrap_or(v.last().unwrap());
        BoxStats {
            min: v[0],
            q1,
            median,
            q3,
            max: *v.last().unwrap(),
            whisker_lo,
            whisker_hi,
            mean: v.iter().sum::<f64>() / v.len() as f64,
            n: v.len(),
        }
    }
}

/// Min–max normalize a series into \[0, 1\] (Fig. 4 bottom normalizes average
/// job duration and queuing delay per VC). Constant series map to 0.
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < f64::EPSILON {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_uniform() {
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let b = BoxStats::from_samples(&samples);
        assert!((b.q1 - 25.0).abs() < 1e-9);
        assert!((b.median - 50.0).abs() < 1e-9);
        assert!((b.q3 - 75.0).abs() < 1e-9);
        assert_eq!(b.min, 0.0);
        assert_eq!(b.max, 100.0);
        assert_eq!(b.n, 101);
    }

    #[test]
    fn whiskers_exclude_outliers() {
        let mut samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        samples.push(10_000.0); // outlier
        let b = BoxStats::from_samples(&samples);
        assert!(b.whisker_hi < 10_000.0);
        assert_eq!(b.max, 10_000.0);
    }

    #[test]
    fn ordering_invariants() {
        let samples = vec![5.0, 3.0, 9.0, 1.0, 7.0, 2.0, 8.0];
        let b = BoxStats::from_samples(&samples);
        assert!(b.min <= b.whisker_lo);
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
        assert!(b.whisker_hi <= b.max);
    }

    #[test]
    fn single_sample() {
        let b = BoxStats::from_samples(&[42.0]);
        assert_eq!(b.min, 42.0);
        assert_eq!(b.median, 42.0);
        assert_eq!(b.max, 42.0);
    }

    #[test]
    fn normalization() {
        let norm = min_max_normalize(&[10.0, 20.0, 15.0]);
        assert_eq!(norm, vec![0.0, 1.0, 0.5]);
        assert_eq!(min_max_normalize(&[7.0, 7.0]), vec![0.0, 0.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }
}
