//! Job-level characterization (§3.2): duration CDFs (Figs. 1a/5), job-size
//! distributions (Fig. 6), final-status breakdowns (Figs. 1b/7) and the
//! Table 2 summary row.

use crate::cdf::{Cdf, WeightedCdf};
use helios_trace::{JobStatus, Trace};
use serde::{Deserialize, Serialize};

/// Table 2 row for a trace set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    pub clusters: usize,
    pub vcs: usize,
    pub jobs: u64,
    pub gpu_jobs: u64,
    pub cpu_jobs: u64,
    pub duration_days: u32,
    pub avg_gpus: f64,
    pub max_gpus: u32,
    pub avg_duration_s: f64,
    pub max_duration_s: i64,
}

/// Compute the Table 2 summary over one or more traces.
pub fn summarize(traces: &[&Trace]) -> TraceSummary {
    let mut gpu_jobs = 0u64;
    let mut cpu_jobs = 0u64;
    let mut gpus_sum = 0.0;
    let mut max_gpus = 0;
    let mut dur_sum = 0.0;
    let mut max_dur = 0;
    for t in traces {
        for j in &t.jobs {
            if j.is_gpu() {
                gpu_jobs += 1;
                gpus_sum += j.gpus as f64;
                max_gpus = max_gpus.max(j.gpus);
                dur_sum += j.duration as f64;
                max_dur = max_dur.max(j.duration);
            } else {
                cpu_jobs += 1;
            }
        }
    }
    TraceSummary {
        clusters: traces.len(),
        vcs: traces.iter().map(|t| t.spec.num_vcs()).sum(),
        jobs: gpu_jobs + cpu_jobs,
        gpu_jobs,
        cpu_jobs,
        duration_days: traces
            .iter()
            .map(|t| t.calendar.total_days())
            .max()
            .unwrap_or(0),
        avg_gpus: gpus_sum / gpu_jobs.max(1) as f64,
        max_gpus,
        avg_duration_s: dur_sum / gpu_jobs.max(1) as f64,
        max_duration_s: max_dur,
    }
}

/// Duration CDF of GPU jobs (Fig. 1a / Fig. 5a).
pub fn gpu_duration_cdf(trace: &Trace) -> Cdf {
    Cdf::new(trace.gpu_jobs().map(|j| j.duration as f64).collect())
}

/// Duration CDF of CPU jobs (Fig. 5b).
pub fn cpu_duration_cdf(trace: &Trace) -> Cdf {
    Cdf::new(trace.cpu_jobs().map(|j| j.duration as f64).collect())
}

/// Fig. 6(a): CDF of job sizes weighted by job count, and
/// Fig. 6(b): CDF of job sizes weighted by GPU time.
pub fn job_size_cdfs(trace: &Trace) -> (Cdf, WeightedCdf) {
    let by_count = Cdf::new(trace.gpu_jobs().map(|j| j.gpus as f64).collect());
    let by_time = WeightedCdf::new(
        trace
            .gpu_jobs()
            .map(|j| (j.gpus as f64, j.gpu_time() as f64))
            .collect(),
    );
    (by_count, by_time)
}

/// Status shares in percent, ordered [completed, canceled, failed].
pub type StatusShares = [f64; 3];

pub(crate) fn shares(counts: [f64; 3]) -> StatusShares {
    let total: f64 = counts.iter().sum();
    if total == 0.0 {
        return [0.0; 3];
    }
    [
        counts[0] / total * 100.0,
        counts[1] / total * 100.0,
        counts[2] / total * 100.0,
    ]
}

pub(crate) fn status_index(s: JobStatus) -> usize {
    match s {
        JobStatus::Completed => 0,
        JobStatus::Canceled => 1,
        JobStatus::Failed => 2,
    }
}

/// Fig. 1(b): percentage of *GPU time* by final status.
pub fn gpu_time_by_status(traces: &[&Trace]) -> StatusShares {
    let mut acc = [0.0f64; 3];
    for t in traces {
        for j in t.gpu_jobs() {
            acc[status_index(j.status)] += j.gpu_time() as f64;
        }
    }
    shares(acc)
}

/// Fig. 7(a): percentage of jobs by final status, for (cpu, gpu) jobs.
pub fn status_by_job_class(traces: &[&Trace]) -> (StatusShares, StatusShares) {
    let mut cpu = [0.0f64; 3];
    let mut gpu = [0.0f64; 3];
    for t in traces {
        for j in &t.jobs {
            let acc = if j.is_gpu() { &mut gpu } else { &mut cpu };
            acc[status_index(j.status)] += 1.0;
        }
    }
    (shares(cpu), shares(gpu))
}

/// Fig. 7(b): status shares per GPU-demand bucket. Buckets are the powers of
/// two the paper plots: 1, 2, 4, 8, 16, 32, >=64.
pub const DEMAND_BUCKETS: [&str; 7] = ["1", "2", "4", "8", "16", "32", ">=64"];

/// Map a GPU count to its Fig. 7(b) bucket.
pub fn demand_bucket(gpus: u32) -> Option<usize> {
    match gpus {
        1 => Some(0),
        2 => Some(1),
        4 => Some(2),
        8 => Some(3),
        16 => Some(4),
        32 => Some(5),
        g if g >= 64 => Some(6),
        _ => None, // non power-of-two demands are rare and excluded, as in the paper
    }
}

/// Compute Fig. 7(b): one status-share triple per demand bucket.
pub fn status_by_gpu_demand(traces: &[&Trace]) -> Vec<StatusShares> {
    let mut acc = vec![[0.0f64; 3]; DEMAND_BUCKETS.len()];
    for t in traces {
        for j in t.gpu_jobs() {
            if let Some(b) = demand_bucket(j.gpus) {
                acc[b][status_index(j.status)] += 1.0;
            }
        }
    }
    acc.into_iter().map(shares).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{generate, generate_helios, venus_profile, GeneratorConfig};

    fn cfg() -> GeneratorConfig {
        GeneratorConfig {
            scale: 0.05,
            seed: 3,
        }
    }

    #[test]
    fn summary_counts_consistent() {
        let t = generate(&venus_profile(), &cfg()).unwrap();
        let s = summarize(&[&t]);
        assert_eq!(s.jobs, t.jobs.len() as u64);
        assert_eq!(s.gpu_jobs + s.cpu_jobs, s.jobs);
        assert_eq!(s.clusters, 1);
        assert!(s.avg_gpus >= 1.0);
        assert!(s.max_duration_s <= helios_trace::MAX_DURATION_SECS);
    }

    #[test]
    fn duration_cdfs_ordered() {
        // GPU jobs are an order of magnitude longer than CPU jobs (§3.2.1).
        let t = generate(&venus_profile(), &cfg()).unwrap();
        let g = gpu_duration_cdf(&t);
        let c = cpu_duration_cdf(&t);
        assert!(g.median() > c.median());
        // Paper ratio is 10.6x; at tiny test scale the preprocess tail
        // is noisy, so assert a conservative 2x.
        assert!(g.mean() > 2.0 * c.mean());
    }

    #[test]
    fn job_size_cdf_pair() {
        let t = generate(&venus_profile(), &cfg()).unwrap();
        let (count, time) = job_size_cdfs(&t);
        // >50% single-GPU by count, far less by GPU time (Implication #4).
        assert!(count.fraction_at(1.0) > 0.5);
        assert!(time.fraction_at(1.0) < count.fraction_at(1.0));
    }

    #[test]
    fn status_shares_sum_to_100() {
        let traces = generate_helios(&cfg()).unwrap();
        let refs: Vec<&Trace> = traces.iter().collect();
        let (cpu, gpu) = status_by_job_class(&refs);
        assert!((cpu.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((gpu.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        // Fig. 7a: GPU unsuccessful >> CPU unsuccessful.
        assert!(gpu[1] + gpu[2] > 2.0 * (cpu[1] + cpu[2]));
    }

    #[test]
    fn completion_falls_with_demand() {
        let traces = generate_helios(&cfg()).unwrap();
        let refs: Vec<&Trace> = traces.iter().collect();
        let by_demand = status_by_gpu_demand(&refs);
        // Fig. 7b: small jobs complete far more often than large jobs. At
        // test scale the VC-size cap empties the largest buckets, so compare
        // against the largest bucket with a meaningful population.
        let mut counts = vec![0u64; DEMAND_BUCKETS.len()];
        for t in &refs {
            for j in t.gpu_jobs() {
                if let Some(b) = demand_bucket(j.gpus) {
                    counts[b] += 1;
                }
            }
        }
        let large_idx = (0..DEMAND_BUCKETS.len())
            .rev()
            .find(|&b| counts[b] >= 100)
            .expect("no populated large bucket");
        assert!(large_idx >= 3, "largest populated bucket only {large_idx}");
        let small = by_demand[0][0];
        let large = by_demand[large_idx][0];
        assert!(small > large + 10.0, "small {small} large {large}");
        let large_unsuccessful = by_demand[large_idx][1] + by_demand[large_idx][2];
        assert!(
            large_unsuccessful > 35.0,
            "large unsuccessful {large_unsuccessful}"
        );
    }

    #[test]
    fn demand_bucket_mapping() {
        assert_eq!(demand_bucket(1), Some(0));
        assert_eq!(demand_bucket(32), Some(5));
        assert_eq!(demand_bucket(64), Some(6));
        assert_eq!(demand_bucket(2048), Some(6));
        assert_eq!(demand_bucket(3), None);
        assert_eq!(demand_bucket(0), None);
    }

    #[test]
    fn gpu_time_by_status_shares() {
        let traces = generate_helios(&cfg()).unwrap();
        let refs: Vec<&Trace> = traces.iter().collect();
        let s = gpu_time_by_status(&refs);
        assert!((s.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        // Fig. 1b: a significant fraction of GPU time goes to non-completed
        // jobs.
        assert!(s[1] + s[2] > 15.0);
    }
}
