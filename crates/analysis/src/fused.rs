//! Fused single-pass characterization.
//!
//! The figure-by-figure API (`jobs::*`, `users::*`, `clusters::*`) is
//! faithful to the paper but re-scans the multi-million-job trace once per
//! statistic — a dozen full traversals, each `Cdf::new` re-collecting and
//! re-sorting a fresh sample `Vec`. [`characterize`] computes the same
//! outputs in **one traversal**: every status/class/demand counter, the
//! per-user and per-VC accumulators, the time-binned utilization and
//! submission series, and shared duration/size sample buffers that are
//! sorted once (fanned out over rayon) and served to every figure as a
//! borrowed [`CdfView`].
//!
//! Equivalence with the legacy multi-pass functions is exact — the fused
//! pass accumulates every sum in the same trace order the per-figure scans
//! use — and pinned by `tests/fused_equivalence.rs` across seeds and
//! presets.

use crate::cdf::{CdfView, WeightedCdf};
use crate::clusters::DailyPattern;
use crate::jobs::{
    demand_bucket, shares, status_index, StatusShares, TraceSummary, DEMAND_BUCKETS,
};
use crate::timeseries::{hourly_profile, BinnedSeries};
use crate::users::UserStats;
use helios_trace::{Trace, SECS_PER_HOUR};
use rayon::prelude::*;

/// Everything §3 needs from one trace, computed by [`characterize`] in a
/// single pass.
#[derive(Debug, Clone)]
pub struct FusedCharacterization {
    /// Table 2 row (equals `jobs::summarize(&[trace])`).
    pub summary: TraceSummary,
    /// Fig. 2 daily pattern (equals `clusters::daily_pattern`).
    pub daily: DailyPattern,
    /// Per-user aggregates, sorted by user id (equals
    /// `users::per_user_stats`).
    pub users: Vec<UserStats>,
    /// Fig. 7(a) CPU-job status shares, percent.
    pub cpu_status: StatusShares,
    /// Fig. 7(a) GPU-job status shares, percent.
    pub gpu_status: StatusShares,
    /// Fig. 1(b) GPU-*time* status shares, percent.
    pub gpu_time_status: StatusShares,
    /// Fig. 7(b) status shares per GPU-demand bucket.
    pub status_by_demand: Vec<StatusShares>,
    /// Shared sorted sample buffers behind the [`CdfView`] accessors.
    gpu_durations: Vec<f64>,
    cpu_durations: Vec<f64>,
    gpu_sizes: Vec<f64>,
    size_by_time: WeightedCdf,
}

impl FusedCharacterization {
    /// Fig. 1(a) / 5(a): GPU-job duration CDF.
    pub fn gpu_duration_cdf(&self) -> CdfView<'_> {
        CdfView::from_sorted(&self.gpu_durations)
    }

    /// Fig. 5(b): CPU-job duration CDF.
    pub fn cpu_duration_cdf(&self) -> CdfView<'_> {
        CdfView::from_sorted(&self.cpu_durations)
    }

    /// Fig. 6(a): job-size CDF by job count.
    pub fn job_size_cdf(&self) -> CdfView<'_> {
        CdfView::from_sorted(&self.gpu_sizes)
    }

    /// Fig. 6(b): job-size CDF weighted by GPU time.
    pub fn job_size_time_cdf(&self) -> &WeightedCdf {
        &self.size_by_time
    }
}

/// One traversal of `trace.jobs` computing every §3 statistic; the
/// independent finalization groups (sample-buffer sorts, weighted CDF,
/// hourly folds) fan out over rayon.
pub fn characterize(trace: &Trace) -> FusedCharacterization {
    let horizon = trace.calendar.total_seconds();
    let capacity = trace.total_gpus() as u64;
    let bin = SECS_PER_HOUR;
    let num_bins = ((horizon + bin - 1) / bin) as usize;

    // Single-pass accumulators.
    let mut gpu_jobs = 0u64;
    let mut cpu_jobs = 0u64;
    let mut gpus_sum = 0.0f64;
    let mut max_gpus = 0u32;
    let mut dur_sum = 0.0f64;
    let mut max_dur = 0i64;
    let mut cpu_counts = [0.0f64; 3];
    let mut gpu_counts = [0.0f64; 3];
    let mut gpu_time_acc = [0.0f64; 3];
    let mut demand_acc = vec![[0.0f64; 3]; DEMAND_BUCKETS.len()];
    let mut user_stats: Vec<UserStats> = Vec::new();
    let mut user_seen: Vec<bool> = Vec::new();
    let mut busy = vec![0.0f64; num_bins];
    let mut submissions = vec![0.0f64; num_bins];
    let mut gpu_durations = Vec::with_capacity(trace.jobs.len() / 2);
    let mut cpu_durations = Vec::with_capacity(trace.jobs.len() / 2);
    let mut gpu_sizes = Vec::with_capacity(trace.jobs.len() / 2);
    let mut size_time = Vec::with_capacity(trace.jobs.len() / 2);

    for j in &trace.jobs {
        let uid = j.user as usize;
        if uid >= user_stats.len() {
            user_stats.resize_with(uid + 1, UserStats::default);
            user_seen.resize(uid + 1, false);
        }
        if !user_seen[uid] {
            user_seen[uid] = true;
            user_stats[uid].user = j.user;
        }
        let s = &mut user_stats[uid];
        let si = status_index(j.status);
        if j.is_gpu() {
            let gpu_time = j.gpu_time() as f64;
            gpu_jobs += 1;
            gpus_sum += j.gpus as f64;
            max_gpus = max_gpus.max(j.gpus);
            dur_sum += j.duration as f64;
            max_dur = max_dur.max(j.duration);
            gpu_counts[si] += 1.0;
            gpu_time_acc[si] += gpu_time;
            if let Some(b) = demand_bucket(j.gpus) {
                demand_acc[b][si] += 1.0;
            }
            s.gpu_jobs += 1;
            s.gpu_time += gpu_time;
            s.queue_delay += j.queue_delay() as f64;
            if si == 0 {
                s.completed_gpu_jobs += 1;
            }
            gpu_durations.push(j.duration as f64);
            gpu_sizes.push(j.gpus as f64);
            size_time.push((j.gpus as f64, gpu_time));
            // Utilization: same filter and overlap arithmetic as
            // `timeseries::gpu_utilization_series`.
            if j.gpus as u64 <= capacity {
                let (lo, hi) = (j.start.max(0), j.end().min(horizon));
                if hi > lo {
                    let first = (lo / bin) as usize;
                    let last = ((hi - 1) / bin) as usize;
                    #[allow(clippy::needless_range_loop)] // sparse span of `busy`
                    for b in first..=last {
                        let bin_lo = b as i64 * bin;
                        let bin_hi = bin_lo + bin;
                        let overlap = (hi.min(bin_hi) - lo.max(bin_lo)) as f64;
                        busy[b] += overlap * j.gpus as f64;
                    }
                }
            }
            if j.submit >= 0 && j.submit < horizon {
                submissions[(j.submit / bin) as usize] += 1.0;
            }
        } else {
            cpu_jobs += 1;
            cpu_counts[si] += 1.0;
            s.cpu_jobs += 1;
            s.cpu_time += j.cpu_time() as f64;
            cpu_durations.push(j.duration as f64);
        }
    }

    // Independent finalization groups, fanned out over rayon: the three
    // shared sample buffers sort concurrently (each exactly the buffer a
    // legacy `Cdf::new` would sort).
    {
        let mut buffers = [&mut gpu_durations, &mut cpu_durations, &mut gpu_sizes];
        buffers
            .par_iter_mut()
            .with_min_len(1)
            .for_each(|buf| buf.sort_unstable_by(f64::total_cmp));
    }
    let size_by_time = WeightedCdf::new(size_time);

    let denom = (capacity * bin as u64) as f64;
    let util = BinnedSeries {
        t0: 0,
        bin,
        values: busy.into_iter().map(|b| b / denom).collect(),
    };
    let subs = BinnedSeries {
        t0: 0,
        bin,
        values: submissions,
    };
    let daily = DailyPattern {
        cluster: trace.spec.id.name().to_string(),
        hourly_utilization: hourly_profile(&util)
            .into_iter()
            .map(|u| u * 100.0)
            .collect(),
        hourly_submissions: hourly_profile(&subs),
        utilization_std_dev: util.std_dev() * 100.0,
    };

    let users: Vec<UserStats> = user_seen
        .iter()
        .zip(user_stats)
        .filter_map(|(&seen, s)| seen.then_some(s))
        .collect();

    FusedCharacterization {
        summary: TraceSummary {
            clusters: 1,
            vcs: trace.spec.num_vcs(),
            jobs: gpu_jobs + cpu_jobs,
            gpu_jobs,
            cpu_jobs,
            duration_days: trace.calendar.total_days(),
            avg_gpus: gpus_sum / gpu_jobs.max(1) as f64,
            max_gpus,
            avg_duration_s: dur_sum / gpu_jobs.max(1) as f64,
            max_duration_s: max_dur,
        },
        daily,
        users,
        cpu_status: shares(cpu_counts),
        gpu_status: shares(gpu_counts),
        gpu_time_status: shares(gpu_time_acc),
        status_by_demand: demand_acc.into_iter().map(shares).collect(),
        gpu_durations,
        cpu_durations,
        gpu_sizes,
        size_by_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{generate, venus_profile, GeneratorConfig};

    #[test]
    fn shapes_and_invariants() {
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.03,
                seed: 11,
            },
        )
        .unwrap();
        let f = characterize(&t);
        assert_eq!(f.summary.jobs, t.jobs.len() as u64);
        assert_eq!(f.daily.hourly_utilization.len(), 24);
        assert_eq!(f.status_by_demand.len(), DEMAND_BUCKETS.len());
        assert_eq!(
            f.gpu_duration_cdf().len() as u64 + f.cpu_duration_cdf().len() as u64,
            f.summary.jobs
        );
        assert!((f.gpu_status.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        // Users sorted and unique.
        assert!(f.users.windows(2).all(|w| w[0].user < w[1].user));
    }
}
