//! User-level characterization (§3.3): resource-consumption concentration
//! (Fig. 8), queuing-delay distribution across users and per-user completion
//! rates (Fig. 9).

use crate::cdf::WeightedCdf;
use helios_trace::{JobStatus, Trace, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-user aggregates for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UserStats {
    pub user: UserId,
    pub gpu_jobs: u64,
    pub cpu_jobs: u64,
    pub gpu_time: f64,
    pub cpu_time: f64,
    pub queue_delay: f64,
    pub completed_gpu_jobs: u64,
}

impl UserStats {
    /// GPU-job completion rate in \[0, 1\].
    pub fn completion_rate(&self) -> f64 {
        if self.gpu_jobs == 0 {
            0.0
        } else {
            self.completed_gpu_jobs as f64 / self.gpu_jobs as f64
        }
    }
}

/// Aggregate the trace per user.
pub fn per_user_stats(trace: &Trace) -> Vec<UserStats> {
    let mut map: BTreeMap<UserId, UserStats> = BTreeMap::new();
    for j in &trace.jobs {
        let s = map.entry(j.user).or_insert_with(|| UserStats {
            user: j.user,
            ..Default::default()
        });
        if j.is_gpu() {
            s.gpu_jobs += 1;
            s.gpu_time += j.gpu_time() as f64;
            s.queue_delay += j.queue_delay() as f64;
            if j.status == JobStatus::Completed {
                s.completed_gpu_jobs += 1;
            }
        } else {
            s.cpu_jobs += 1;
            s.cpu_time += j.cpu_time() as f64;
        }
    }
    // BTreeMap iteration is user-id order already — the report contract.
    map.into_values().collect()
}

/// One concentration curve: (fraction of users, fraction of resource time),
/// users sorted by descending consumption.
pub type ConcentrationCurve = Vec<(f64, f64)>;

/// Fig. 8 curves: GPU-time and CPU-time concentration across users.
pub fn consumption_curves(stats: &[UserStats]) -> (ConcentrationCurve, ConcentrationCurve) {
    let gpu = WeightedCdf::new(stats.iter().map(|s| (s.user as f64, s.gpu_time)).collect());
    let cpu = WeightedCdf::new(
        stats
            .iter()
            .filter(|s| s.cpu_jobs > 0)
            .map(|s| (s.user as f64, s.cpu_time))
            .collect(),
    );
    (gpu.concentration_curve(), cpu.concentration_curve())
}

/// Share of a resource held by the top `frac` of users (e.g. 0.05).
pub fn top_share(curve: &[(f64, f64)], frac: f64) -> f64 {
    curve
        .iter()
        .find(|(users, _)| *users >= frac)
        .map(|&(_, share)| share)
        .unwrap_or(1.0)
}

/// Fig. 9(a): concentration curve of total queueing delay across users
/// ("marquee users" hold most of the waiting).
pub fn queuing_curve(stats: &[UserStats]) -> Vec<(f64, f64)> {
    WeightedCdf::new(
        stats
            .iter()
            .map(|s| (s.user as f64, s.queue_delay))
            .collect(),
    )
    .concentration_curve()
}

/// Fig. 9(b): histogram of per-user GPU-job completion rates. Returns the
/// number of users in each of `bins` equal-width buckets over \[0, 1\].
pub fn completion_rate_histogram(stats: &[UserStats], bins: usize) -> Vec<u64> {
    let mut hist = vec![0u64; bins];
    for s in stats {
        if s.gpu_jobs == 0 {
            continue;
        }
        let idx = ((s.completion_rate() * bins as f64) as usize).min(bins - 1);
        hist[idx] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{generate, venus_profile, GeneratorConfig};

    fn stats() -> Vec<UserStats> {
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.05,
                seed: 3,
            },
        )
        .unwrap();
        per_user_stats(&t)
    }

    #[test]
    fn aggregates_cover_all_jobs() {
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.05,
                seed: 3,
            },
        )
        .unwrap();
        let stats = per_user_stats(&t);
        let total: u64 = stats.iter().map(|s| s.gpu_jobs + s.cpu_jobs).sum();
        assert_eq!(total, t.jobs.len() as u64);
    }

    #[test]
    fn cpu_time_more_concentrated_than_gpu_time() {
        // §3.3: CPU CDF curves are much steeper; top 5% of users hold >90%
        // of CPU time but only 45-60% of GPU time.
        let stats = stats();
        let (gpu_curve, cpu_curve) = consumption_curves(&stats);
        let gpu5 = top_share(&gpu_curve, 0.05);
        // cpu_curve only ranges over CPU users; translate "5% of all users"
        // into the CPU-user fraction.
        let cpu_users = stats.iter().filter(|s| s.cpu_jobs > 0).count() as f64;
        let all_users = stats.len() as f64;
        let cpu5 = top_share(&cpu_curve, (0.05 * all_users / cpu_users).min(1.0));
        assert!(cpu5 > gpu5, "cpu5={cpu5} gpu5={gpu5}");
        assert!(cpu5 > 0.6, "cpu5={cpu5}");
        assert!((0.3..0.95).contains(&gpu5), "gpu5={gpu5}");
    }

    #[test]
    fn queueing_is_concentrated() {
        // Fig. 9a: a few users bear most of the queueing delay.
        let curve = queuing_curve(&stats());
        let top10 = top_share(&curve, 0.10);
        assert!(top10 > 0.4, "top-10% queue share {top10}");
    }

    #[test]
    fn completion_histogram_totals() {
        let stats = stats();
        let hist = completion_rate_histogram(&stats, 10);
        let users_with_gpu = stats.iter().filter(|s| s.gpu_jobs > 0).count() as u64;
        assert_eq!(hist.iter().sum::<u64>(), users_with_gpu);
        // Fig. 9b: completion rates are "generally low" — the mass is not
        // all in the top bucket.
        assert!(hist[9] < users_with_gpu / 2);
    }

    #[test]
    fn completion_rate_bounds() {
        for s in stats() {
            let r = s.completion_rate();
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
