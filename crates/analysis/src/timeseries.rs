//! Time-binned occupancy and rate series derived from a job trace.
//!
//! These series back the cluster-level figures (Figs. 2, 3, 4, 14, 15) and
//! feed the CES forecasting pipeline: GPU occupancy (utilization), submission
//! rates, and per-bin busy-node counts.

use helios_trace::{JobRecord, SECS_PER_HOUR};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A regularly-binned time series over `[t0, t0 + bin * len)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedSeries {
    /// Start of the first bin.
    pub t0: i64,
    /// Bin width, seconds.
    pub bin: i64,
    /// One value per bin.
    pub values: Vec<f64>,
}

impl BinnedSeries {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Midpoint timestamp of bin `i`.
    pub fn bin_mid(&self, i: usize) -> i64 {
        self.t0 + self.bin * i as i64 + self.bin / 2
    }

    /// Average of the values.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation of the values.
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.values.len() as f64).sqrt()
    }

    /// Group bins by `key(bin_mid)` and average per group; returns
    /// `groups[key] = mean`. Used to fold a 6-month series into a 24-hour
    /// daily profile (Fig. 2).
    pub fn fold_by<F: Fn(i64) -> usize>(&self, num_groups: usize, key: F) -> Vec<f64> {
        let mut sums = vec![0.0; num_groups];
        let mut counts = vec![0usize; num_groups];
        for (i, &v) in self.values.iter().enumerate() {
            let k = key(self.bin_mid(i));
            sums[k] += v;
            counts[k] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }
}

/// GPU-seconds busy per bin, divided by `capacity * bin` → utilization in
/// \[0, 1\]. Jobs wider than `capacity` (over-capacity artifacts) are ignored,
/// matching the replay semantics.
pub fn gpu_utilization_series(
    jobs: &[JobRecord],
    capacity_gpus: u64,
    t0: i64,
    t1: i64,
    bin: i64,
) -> BinnedSeries {
    gpu_utilization_series_from(jobs, capacity_gpus, t0, t1, bin)
}

/// [`gpu_utilization_series`] over any job iterator — callers that already
/// hold per-VC job references avoid cloning records into a fresh `Vec`.
pub fn gpu_utilization_series_from<'a>(
    jobs: impl IntoIterator<Item = &'a JobRecord>,
    capacity_gpus: u64,
    t0: i64,
    t1: i64,
    bin: i64,
) -> BinnedSeries {
    assert!(bin > 0 && t1 > t0);
    let n = ((t1 - t0) + bin - 1) / bin;
    let mut busy = vec![0.0f64; n as usize];
    for j in jobs {
        if !j.is_gpu() || j.gpus as u64 > capacity_gpus {
            continue;
        }
        let (s, e) = (j.start.max(t0), j.end().min(t1));
        if e <= s {
            continue;
        }
        let first = (s - t0) / bin;
        let last = (e - 1 - t0) / bin;
        for b in first..=last {
            let bin_lo = t0 + b * bin;
            let bin_hi = bin_lo + bin;
            let overlap = (e.min(bin_hi) - s.max(bin_lo)) as f64;
            busy[b as usize] += overlap * j.gpus as f64;
        }
    }
    let denom = (capacity_gpus * bin as u64) as f64;
    BinnedSeries {
        t0,
        bin,
        values: busy.into_iter().map(|b| b / denom).collect(),
    }
}

/// Jobs submitted per bin (optionally restricted by a filter).
pub fn submission_rate_series<F: Fn(&JobRecord) -> bool + Sync>(
    jobs: &[JobRecord],
    t0: i64,
    t1: i64,
    bin: i64,
    filter: F,
) -> BinnedSeries {
    assert!(bin > 0 && t1 > t0);
    let n = (((t1 - t0) + bin - 1) / bin) as usize;
    // Parallel fold: count submissions per bin.
    let values = jobs
        .par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut acc, j| {
                if j.submit >= t0 && j.submit < t1 && filter(j) {
                    acc[((j.submit - t0) / bin) as usize] += 1.0;
                }
                acc
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    BinnedSeries { t0, bin, values }
}

/// Hourly profile over a day: fold a series into 24 hour-of-day buckets.
pub fn hourly_profile(series: &BinnedSeries) -> Vec<f64> {
    series.fold_by(24, |t| {
        ((t.rem_euclid(24 * SECS_PER_HOUR)) / SECS_PER_HOUR) as usize
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::JobStatus;

    fn job(gpus: u32, start: i64, duration: i64) -> JobRecord {
        JobRecord {
            id: 0,
            user: 0,
            vc: 0,
            gpus,
            cpus: 0,
            submit: start,
            start,
            duration,
            status: JobStatus::Completed,
            name: 0,
            run: 0,
        }
    }

    #[test]
    fn utilization_exact_for_aligned_job() {
        // 4 GPUs busy for one full 100s bin of an 8-GPU cluster = 0.5.
        let jobs = vec![job(4, 0, 100)];
        let s = gpu_utilization_series(&jobs, 8, 0, 300, 100);
        assert_eq!(s.values.len(), 3);
        assert!((s.values[0] - 0.5).abs() < 1e-12);
        assert_eq!(s.values[1], 0.0);
    }

    #[test]
    fn utilization_splits_across_bins() {
        // Job spans half of bin 0 and half of bin 1.
        let jobs = vec![job(8, 50, 100)];
        let s = gpu_utilization_series(&jobs, 8, 0, 200, 100);
        assert!((s.values[0] - 0.5).abs() < 1e-12);
        assert!((s.values[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_clips_to_window() {
        let jobs = vec![job(8, -50, 100), job(8, 150, 100)];
        let s = gpu_utilization_series(&jobs, 8, 0, 200, 100);
        assert!((s.values[0] - 0.5).abs() < 1e-12);
        assert!((s.values[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn over_capacity_jobs_ignored() {
        let jobs = vec![job(2048, 0, 100)];
        let s = gpu_utilization_series(&jobs, 8, 0, 100, 100);
        assert_eq!(s.values[0], 0.0);
    }

    #[test]
    fn submission_counts() {
        let jobs = vec![job(1, 10, 5), job(1, 20, 5), job(2, 110, 5)];
        let s = submission_rate_series(&jobs, 0, 200, 100, |_| true);
        assert_eq!(s.values, vec![2.0, 1.0]);
        let multi = submission_rate_series(&jobs, 0, 200, 100, |j| j.gpus > 1);
        assert_eq!(multi.values, vec![0.0, 1.0]);
    }

    #[test]
    fn fold_daily_profile() {
        // Two days of hourly bins with value == hour index.
        let values: Vec<f64> = (0..48).map(|i| (i % 24) as f64).collect();
        let s = BinnedSeries {
            t0: 0,
            bin: SECS_PER_HOUR,
            values,
        };
        let prof = hourly_profile(&s);
        assert_eq!(prof.len(), 24);
        for (h, v) in prof.iter().enumerate() {
            assert!((v - h as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_helpers() {
        let s = BinnedSeries {
            t0: 0,
            bin: 10,
            values: vec![1.0, 3.0],
        };
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.std_dev() - 1.0).abs() < 1e-12);
        assert_eq!(s.bin_mid(1), 15);
    }
}
