//! # helios-analysis
//!
//! Trace characterization for the Helios SC'21 reproduction: every
//! statistic behind §3's figures — empirical CDFs (Figs. 1, 5, 6, 8, 9),
//! daily/monthly cluster patterns (Figs. 2–3), per-VC behaviors (Fig. 4),
//! final-status breakdowns (Figs. 1b, 7) and the Table 2 summary.
//!
//! ```
//! use helios_trace::{generate, venus_profile, GeneratorConfig};
//! use helios_analysis::jobs::gpu_duration_cdf;
//!
//! let trace = generate(&venus_profile(), &GeneratorConfig { scale: 0.02, seed: 1 })?;
//! let cdf = gpu_duration_cdf(&trace);
//! assert!(cdf.median() > 0.0);
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod cdf;
pub mod clusters;
pub mod fused;
pub mod jobs;
pub mod quantiles;
pub mod report;
pub mod timeseries;
pub mod users;
pub mod vc;

pub use cdf::{Cdf, CdfView, WeightedCdf};
pub use fused::{characterize, FusedCharacterization};
pub use quantiles::BoxStats;
pub use timeseries::BinnedSeries;
