//! Aligned plain-text table rendering for the `repro` harness output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Left-align the first column, right-align the rest
                // (numeric convention).
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format seconds compactly (e.g. "6652s", "1.8h", "3.2d").
pub fn fmt_secs(s: f64) -> String {
    if s < 120.0 {
        format!("{s:.0}s")
    } else if s < 7_200.0 {
        format!("{:.1}m", s / 60.0)
    } else if s < 172_800.0 {
        format!("{:.1}h", s / 3_600.0)
    } else {
        format!("{:.1}d", s / 86_400.0)
    }
}

/// Format a count with thousands separators ("1,753,030").
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["cluster", "jobs"]);
        t.row(vec!["Venus", "247000"]);
        t.row(vec!["Saturn", "1753000"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("cluster"));
        assert!(lines[1].starts_with("---"));
        // Right-aligned numeric column: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(45.0), "45s");
        assert_eq!(fmt_secs(600.0), "10.0m");
        assert_eq!(fmt_secs(7_200.0), "2.0h");
        assert_eq!(fmt_secs(259_200.0), "3.0d");
        assert_eq!(fmt_count(1_753_030), "1,753,030");
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_count(1_000), "1,000");
    }
}
