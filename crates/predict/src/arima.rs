//! AR / ARIMA-style forecasting baseline (§4.3.2 compares GBDT against
//! ARIMA \[32\]). We implement an AR(p) model on a d-times differenced series
//! fitted by conditional least squares, plus a seasonal-naive baseline.

use crate::linalg::ridge_solve;
use serde::{Deserialize, Serialize};

/// Difference a series `d` times.
fn difference(series: &[f64], d: usize) -> Vec<f64> {
    let mut v = series.to_vec();
    for _ in 0..d {
        v = v.windows(2).map(|w| w[1] - w[0]).collect();
    }
    v
}

/// An ARIMA(p, d, 0) model fitted by conditional least squares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arima {
    pub p: usize,
    pub d: usize,
    /// AR coefficients (lag 1..p) on the differenced series.
    pub coef: Vec<f64>,
    pub intercept: f64,
}

impl Arima {
    /// Fit on `series`. Requires `series.len() > p + d + 1`.
    pub fn fit(series: &[f64], p: usize, d: usize) -> Arima {
        assert!(p >= 1, "need at least one AR lag");
        assert!(
            series.len() > p + d + 1,
            "series too short: {} <= {}",
            series.len(),
            p + d + 1
        );
        let w = difference(series, d);
        let n = w.len();
        // Flat row-major rows: [1, w[t-1], ..., w[t-p]] -> w[t].
        let mut x = Vec::with_capacity((n - p) * (p + 1));
        let mut y = Vec::with_capacity(n - p);
        for t in p..n {
            x.push(1.0);
            for k in 1..=p {
                x.push(w[t - k]);
            }
            y.push(w[t]);
        }
        let wts = ridge_solve(&x, p + 1, &y, 1e-6);
        Arima {
            p,
            d,
            coef: wts[1..].to_vec(),
            intercept: wts[0],
        }
    }

    /// Forecast `horizon` future values given the observed `history`
    /// (original, undifferenced scale).
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        assert!(history.len() > self.p + self.d);
        let mut w = difference(history, self.d);
        // Tail of the original series needed to integrate the differences
        // back.
        let mut levels: Vec<f64> = history[history.len() - self.d.max(1)..].to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let n = w.len();
            let mut next = self.intercept;
            for k in 1..=self.p {
                next += self.coef[k - 1] * w[n - k];
            }
            w.push(next);
            // Integrate d times. For d=0 the forecast is `next`; for d=1 it
            // is last_level + next.
            let value = match self.d {
                0 => next,
                1 => levels.last().unwrap() + next,
                _ => {
                    // General integration: apply cumulative sums d times
                    // using the stored level tail. Supported for d <= 1 in
                    // practice; higher d falls back to repeated summation
                    // against the last level only.
                    levels.last().unwrap() + next
                }
            };
            levels.push(value);
            out.push(value);
        }
        out
    }
}

/// Seasonal-naive forecast: repeat the value from one season ago.
pub fn seasonal_naive(history: &[f64], period: usize, horizon: usize) -> Vec<f64> {
    assert!(history.len() >= period);
    (0..horizon)
        .map(|h| history[history.len() - period + (h % period)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differencing() {
        assert_eq!(difference(&[1.0, 3.0, 6.0], 1), vec![2.0, 3.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0], 2), vec![1.0]);
        assert_eq!(difference(&[5.0, 5.0], 0), vec![5.0, 5.0]);
    }

    #[test]
    fn recovers_ar1_coefficient() {
        // w[t] = 0.8 w[t-1] + noise-free
        let mut s = vec![1.0];
        for _ in 0..200 {
            s.push(0.8 * s.last().unwrap());
        }
        let m = Arima::fit(&s, 1, 0);
        assert!((m.coef[0] - 0.8).abs() < 0.01, "{:?}", m.coef);
        assert!(m.intercept.abs() < 1e-6);
    }

    #[test]
    fn forecasts_linear_trend_with_d1() {
        // y = 3t: first difference is constant 3; ARIMA(1,1) extrapolates.
        let s: Vec<f64> = (0..100).map(|t| 3.0 * t as f64).collect();
        let m = Arima::fit(&s, 1, 1);
        let f = m.forecast(&s, 5);
        for (h, v) in f.iter().enumerate() {
            let expect = 3.0 * (100 + h) as f64;
            assert!((v - expect).abs() < 0.5, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn forecasts_sine_reasonably() {
        let s: Vec<f64> = (0..400)
            .map(|t| (t as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let m = Arima::fit(&s, 24, 0);
        let f = m.forecast(&s, 24);
        let expect: Vec<f64> = (400..424)
            .map(|t| (t as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let err = crate::metrics::rmse(&expect, &f);
        assert!(err < 0.15, "rmse {err}");
    }

    #[test]
    fn seasonal_naive_repeats_pattern() {
        let s: Vec<f64> = (0..48).map(|t| (t % 24) as f64).collect();
        let f = seasonal_naive(&s, 24, 30);
        for (h, v) in f.iter().enumerate() {
            assert_eq!(*v, (h % 24) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn short_series_rejected() {
        Arima::fit(&[1.0, 2.0, 3.0], 5, 1);
    }
}
