//! The rolling estimate P_R of Algorithm 1 (QSSF): a purely historical,
//! per-user estimator with three fallback tiers —
//!
//! 1. unknown user → average duration of all historical jobs with the same
//!    GPU demand;
//! 2. known user but no similar job name → average duration of the user's
//!    own jobs with the same GPU demand;
//! 3. similar names found → exponentially-weighted decay over the matched
//!    name's historical durations (recent runs dominate).

use crate::text::{normalized_distance, strip_run_suffix};
use helios_trace::UserId;
use std::collections::HashMap;

/// Running (sum, count) average.
#[derive(Debug, Clone, Copy, Default)]
struct Avg {
    sum: f64,
    n: u64,
}

impl Avg {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn get(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

#[derive(Debug, Clone, Default)]
struct UserHistory {
    by_demand: HashMap<u32, Avg>,
    all: Avg,
    /// Recent durations per name stem, oldest first (bounded).
    by_stem: HashMap<String, Vec<f64>>,
}

/// Maximum retained durations per (user, stem).
const STEM_HISTORY: usize = 32;

/// The rolling estimator.
#[derive(Debug, Clone)]
pub struct RollingEstimator {
    /// Exponential decay factor for older runs (weight `decay^age`).
    decay: f64,
    /// Normalized Levenshtein threshold for "similar name".
    name_threshold: f64,
    global_by_demand: HashMap<u32, Avg>,
    global: Avg,
    users: HashMap<UserId, UserHistory>,
    /// Cold-start prior when no history exists at all (seconds).
    prior: f64,
}

impl Default for RollingEstimator {
    fn default() -> Self {
        RollingEstimator::new(0.7, 0.25, 600.0)
    }
}

impl RollingEstimator {
    /// `decay` in (0,1]: weight of a run `age` submissions old is
    /// `decay^age`. `name_threshold`: normalized Levenshtein similarity
    /// cut-off. `prior`: cold-start duration estimate.
    pub fn new(decay: f64, name_threshold: f64, prior: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0);
        RollingEstimator {
            decay,
            name_threshold,
            global_by_demand: HashMap::new(),
            global: Avg::default(),
            users: HashMap::new(),
            prior,
        }
    }

    /// Record a finished job's observed duration.
    pub fn observe(&mut self, user: UserId, name: &str, gpus: u32, duration: f64) {
        self.observe_stem(user, strip_run_suffix(name), gpus, duration);
    }

    /// [`RollingEstimator::observe`] with a pre-stripped name stem — the
    /// hot path for callers that cache stems per interned template name
    /// (allocation-free once the stem is known).
    pub fn observe_stem(&mut self, user: UserId, stem: &str, gpus: u32, duration: f64) {
        self.global.push(duration);
        self.global_by_demand
            .entry(gpus)
            .or_default()
            .push(duration);
        let uh = self.users.entry(user).or_default();
        uh.all.push(duration);
        uh.by_demand.entry(gpus).or_default().push(duration);
        if !uh.by_stem.contains_key(stem) {
            uh.by_stem.insert(stem.to_string(), Vec::new());
        }
        let hist = uh.by_stem.get_mut(stem).expect("inserted above");
        hist.push(duration);
        if hist.len() > STEM_HISTORY {
            hist.remove(0);
        }
    }

    /// Estimate the duration of an incoming job (Algorithm 1 lines 12–18).
    pub fn estimate(&self, user: UserId, name: &str, gpus: u32) -> f64 {
        self.estimate_stem(user, strip_run_suffix(name), gpus)
    }

    /// [`RollingEstimator::estimate`] with a pre-stripped name stem.
    pub fn estimate_stem(&self, user: UserId, stem: &str, gpus: u32) -> f64 {
        let Some(uh) = self.users.get(&user) else {
            // Case 1: new user -> global average for this GPU demand.
            return self
                .global_by_demand
                .get(&gpus)
                .and_then(Avg::get)
                .or_else(|| self.global.get())
                .unwrap_or(self.prior);
        };
        // Case 3: matched names -> exponentially weighted recency average.
        if let Some(hist) = self.matched_history(uh, stem) {
            let mut num = 0.0;
            let mut den = 0.0;
            let n = hist.len();
            for (i, &d) in hist.iter().enumerate() {
                let w = self.decay.powi((n - 1 - i) as i32);
                num += w * d;
                den += w;
            }
            return num / den;
        }
        // Case 2: known user, new name -> user's average for this demand.
        uh.by_demand
            .get(&gpus)
            .and_then(Avg::get)
            .or_else(|| uh.all.get())
            .unwrap_or(self.prior)
    }

    /// Find the user's stem history matching `stem` (exact stem first, then
    /// nearest within the similarity threshold).
    fn matched_history<'a>(&self, uh: &'a UserHistory, stem: &str) -> Option<&'a Vec<f64>> {
        if let Some(h) = uh.by_stem.get(stem) {
            return Some(h);
        }
        let mut best: Option<(f64, &Vec<f64>)> = None;
        for (s, h) in &uh.by_stem {
            let d = normalized_distance(stem, s);
            if d <= self.name_threshold && best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, h));
            }
        }
        best.map(|(_, h)| h)
    }

    /// Number of users with history.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_uses_prior() {
        let e = RollingEstimator::default();
        assert_eq!(e.estimate(1, "train_x_1", 8), 600.0);
    }

    #[test]
    fn new_user_falls_back_to_demand_average() {
        let mut e = RollingEstimator::default();
        e.observe(1, "train_a_1", 8, 1_000.0);
        e.observe(2, "train_b_1", 8, 3_000.0);
        e.observe(3, "eval_c_1", 1, 50.0);
        // User 99 never seen: averages all 8-GPU jobs.
        assert!((e.estimate(99, "whatever_1", 8) - 2_000.0).abs() < 1e-9);
        // Unseen demand falls back to the global average.
        let est = e.estimate(99, "whatever_1", 16);
        assert!((est - (1_000.0 + 3_000.0 + 50.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn known_user_new_name_uses_own_demand_average() {
        let mut e = RollingEstimator::default();
        e.observe(1, "train_a_1", 8, 1_000.0);
        e.observe(1, "train_a_2", 8, 2_000.0);
        e.observe(2, "other_1", 8, 50_000.0);
        // Completely dissimilar name for user 1 -> user 1's 8-GPU average,
        // not polluted by user 2.
        let est = e.estimate(1, "zzzzzzzzzzzzzzzzzzzzzzzzzz", 8);
        assert!((est - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn matched_name_uses_recency_weighting() {
        let mut e = RollingEstimator::new(0.5, 0.25, 600.0);
        e.observe(1, "train_resnet50_imagenet_1", 8, 1_000.0);
        e.observe(1, "train_resnet50_imagenet_2", 8, 2_000.0);
        // Weights: older 0.5, newer 1.0 -> (0.5*1000 + 1*2000) / 1.5.
        let est = e.estimate(1, "train_resnet50_imagenet_3", 8);
        assert!((est - 2_500.0 / 1.5).abs() < 1e-9, "{est}");
        // Recency: estimate is closer to the latest run.
        assert!(est > 1_500.0);
    }

    #[test]
    fn similar_but_not_identical_names_match() {
        let mut e = RollingEstimator::default();
        e.observe(1, "train_resnet50_imagenet_1", 8, 4_000.0);
        let est = e.estimate(1, "train_resnet56_imagenet_9", 8);
        assert!((est - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn stem_history_is_bounded() {
        let mut e = RollingEstimator::default();
        for i in 0..100 {
            e.observe(1, &format!("train_a_{i}"), 1, i as f64);
        }
        // Only the most recent STEM_HISTORY observations are retained; the
        // estimate must be near the recent values, not the early ones.
        let est = e.estimate(1, "train_a_101", 1);
        assert!(est > 90.0, "{est}");
    }

    #[test]
    fn user_count() {
        let mut e = RollingEstimator::default();
        e.observe(1, "a_1", 1, 1.0);
        e.observe(2, "b_1", 1, 1.0);
        e.observe(1, "c_1", 1, 1.0);
        assert_eq!(e.num_users(), 2);
    }
}
