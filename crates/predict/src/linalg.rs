//! Small dense linear algebra: just enough to fit ridge regressions
//! (Fourier/Prophet-like forecaster, AR models) via Cholesky decomposition.
//!
//! All matrices are **flat row-major** `&[f64]` slices — no nested
//! `Vec<Vec<f64>>`, so normal-equation accumulation and the Cholesky
//! sweeps run over contiguous memory.

// Index-based loops mirror the textbook formulations of these kernels.
#![allow(clippy::needless_range_loop)]

/// Solve `(XᵀX + lambda·I) w = Xᵀy` for `w` (ridge regression with design
/// matrix `x` given flat row-major: `x[row * n_cols + col]`). The intercept
/// column, if any, is the caller's responsibility.
pub fn ridge_solve(x: &[f64], n_cols: usize, y: &[f64], lambda: f64) -> Vec<f64> {
    assert!(n_cols > 0, "empty design matrix");
    assert_eq!(x.len(), y.len() * n_cols, "design matrix shape mismatch");
    assert!(!y.is_empty(), "empty design matrix");
    let p = n_cols;
    // Normal equations.
    let mut ata = vec![0.0f64; p * p];
    let mut aty = vec![0.0f64; p];
    for (row, &yi) in x.chunks_exact(p).zip(y) {
        for i in 0..p {
            aty[i] += row[i] * yi;
            for j in i..p {
                ata[i * p + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        ata[i * p + i] += lambda;
        for j in 0..i {
            ata[i * p + j] = ata[j * p + i];
        }
    }
    let chol = cholesky(&ata, p).expect("ridge system not positive definite");
    cholesky_solve(&chol, &aty)
}

/// Cholesky factorization `A = L Lᵀ` of a flat row-major `n x n` matrix;
/// returns the lower-triangular `L` (flat row-major), or `None` if `A` is
/// not positive definite.
pub fn cholesky(a: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Some(l)
}

/// Solve `L Lᵀ x = b` given the flat row-major Cholesky factor `L`.
pub fn cholesky_solve(l: &[f64], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    assert_eq!(l.len(), n * n, "factor must be n x n");
    // Forward substitution: L z = b.
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Dot product of a design row with weights.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&a, 2).unwrap();
        assert_eq!(l, a);
    }

    #[test]
    fn cholesky_solve_known_system() {
        // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        let x = cholesky_solve(&l, &[10.0, 8.0]);
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn non_positive_definite_rejected() {
        let a = vec![0.0, 0.0, 0.0, 1.0];
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn ridge_recovers_linear_function() {
        // y = 3 + 2x, exactly.
        let mut x = Vec::new();
        for i in 0..20 {
            x.extend_from_slice(&[1.0, i as f64]);
        }
        let y: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
        let w = ridge_solve(&x, 2, &y, 1e-9);
        assert!((w[0] - 3.0).abs() < 1e-6, "{w:?}");
        assert!((w[1] - 2.0).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let w0 = ridge_solve(&x, 1, &y, 1e-9);
        let w1 = ridge_solve(&x, 1, &y, 1e6);
        assert!(w1[0].abs() < w0[0].abs());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn ragged_input_rejected() {
        ridge_solve(&[1.0, 2.0, 3.0], 2, &[1.0, 2.0], 0.0);
    }
}
