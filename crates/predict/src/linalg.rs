//! Small dense linear algebra: just enough to fit ridge regressions
//! (Fourier/Prophet-like forecaster, AR models) via Cholesky decomposition.

// Index-based loops mirror the textbook formulations of these kernels.
#![allow(clippy::needless_range_loop)]

/// Solve `(XᵀX + lambda·I) w = Xᵀy` for `w` (ridge regression with design
/// matrix `x` given row-major: `x[row][col]`). The intercept column, if any,
/// is the caller's responsibility.
pub fn ridge_solve(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Vec<f64> {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty(), "empty design matrix");
    let p = x[0].len();
    // Normal equations.
    let mut ata = vec![vec![0.0f64; p]; p];
    let mut aty = vec![0.0f64; p];
    for (row, &yi) in x.iter().zip(y) {
        assert_eq!(row.len(), p, "ragged design matrix");
        for i in 0..p {
            aty[i] += row[i] * yi;
            for j in i..p {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        ata[i][i] += lambda;
        for j in 0..i {
            ata[i][j] = ata[j][i];
        }
    }
    let chol = cholesky(&ata).expect("ridge system not positive definite");
    cholesky_solve(&chol, &aty)
}

/// Cholesky factorization `A = L Lᵀ`; returns the lower-triangular `L`
/// (row-major), or `None` if `A` is not positive definite.
pub fn cholesky(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut l = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Some(l)
}

/// Solve `L Lᵀ x = b` given the Cholesky factor `L`.
pub fn cholesky_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = l.len();
    assert_eq!(b.len(), n);
    // Forward substitution: L z = b.
    let mut z = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * z[k];
        }
        z[i] = sum / l[i][i];
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    x
}

/// Dot product of a design row with weights.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let l = cholesky(&a).unwrap();
        assert_eq!(l, a);
    }

    #[test]
    fn cholesky_solve_known_system() {
        // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
        let a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let l = cholesky(&a).unwrap();
        let x = cholesky_solve(&l, &[10.0, 8.0]);
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn non_positive_definite_rejected() {
        let a = vec![vec![0.0, 0.0], vec![0.0, 1.0]];
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn ridge_recovers_linear_function() {
        // y = 3 + 2x, exactly.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 3.0 + 2.0 * i as f64).collect();
        let w = ridge_solve(&x, &y, 1e-9);
        assert!((w[0] - 3.0).abs() < 1e-6, "{w:?}");
        assert!((w[1] - 2.0).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let w0 = ridge_solve(&x, &y, 1e-9);
        let w1 = ridge_solve(&x, &y, 1e6);
        assert!(w1[0].abs() < w0[0].abs());
    }
}
