//! # helios-predict
//!
//! The prediction stack of the paper's framework (§4): a from-scratch
//! histogram GBDT (the model behind both the QSSF job-GPU-time estimator and
//! the CES node-demand forecaster), the QSSF feature pipeline (Levenshtein
//! name bucketization, submission-time parsing, causal rolling statistics),
//! Algorithm 1's rolling estimator, and the forecasting baselines the paper
//! compares against (ARIMA, Prophet-style Fourier regression, LSTM).
//!
//! ```
//! use helios_predict::gbdt::{Gbdt, GbdtParams};
//!
//! let xs: Vec<Vec<f64>> = vec![(0..100).map(|i| (i % 10) as f64).collect()];
//! let ys: Vec<f64> = (0..100).map(|i| ((i % 10) * 2) as f64).collect();
//! let model = Gbdt::fit(&xs, &ys, &GbdtParams::default(), None);
//! assert!((model.predict_row(&[3.0]) - 6.0).abs() < 0.5);
//! ```

pub mod arima;
pub mod binning;
pub mod features;
pub mod fourier;
pub mod gbdt;
pub mod linalg;
pub mod lstm;
pub mod metrics;
pub mod rolling;
pub mod text;
pub mod tree;

pub use arima::{seasonal_naive, Arima};
pub use fourier::{FourierForecaster, FourierParams};
pub use gbdt::{Gbdt, GbdtParams};
pub use lstm::{LstmForecaster, LstmParams};
pub use rolling::RollingEstimator;
