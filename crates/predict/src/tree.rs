//! Histogram-based regression trees — the weak learners of the GBDT
//! (§4.2.2 / §4.3.2 use a LightGBM-style GBDT \[42\]).
//!
//! The grower is allocation-light and cache-friendly: node rows live in one
//! index buffer partitioned in place (stable, via a scratch buffer),
//! gradients are gathered once into node order so every histogram pass
//! reads them sequentially, and a single row-major sweep fills the
//! histograms of *all* candidate features at once (the binned dataset
//! stores a row's feature bins contiguously). On multi-core hosts the
//! sweep fans out over feature chunks via rayon; every accumulation order
//! is identical to the sequential pass, so results are bit-identical
//! regardless of thread count.

use crate::binning::BinnedDataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Tree-growing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: usize,
    /// Minimum rows on each side of a split.
    pub min_leaf: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum gain for a split to be accepted.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_leaf: 20,
            lambda: 1.0,
            min_gain: 1e-6,
        }
    }
}

/// A tree node: either an internal split or a leaf with an output value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    Split {
        feature: u16,
        /// Split on binned data: go left if `bin <= bin_threshold`.
        bin_threshold: u8,
        /// Equivalent raw-value threshold: go left if `value <= threshold`.
        threshold: f64,
        left: u32,
        right: u32,
    },
    Leaf(f64),
}

/// A trained regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Predict from a raw feature row (feature order as in training).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predict for a row of the *binned* training set (fast path used
    /// during boosting). The row's bins sit in one contiguous slice, so
    /// the whole traversal touches a single cache line of bin data.
    pub fn predict_binned(&self, data: &BinnedDataset, row: usize) -> f64 {
        let bins = data.row(row);
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    bin_threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if bins[*feature as usize] <= *bin_threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf(_)))
            .count()
    }

    /// Accumulate split counts per feature into `counts` (split-frequency
    /// feature importance).
    pub fn accumulate_split_counts(&self, counts: &mut [u64]) {
        for n in &self.nodes {
            if let Node::Split { feature, .. } = n {
                counts[*feature as usize] += 1;
            }
        }
    }
}

struct BestSplit {
    feature: u16,
    bin: u8,
    gain: f64,
    /// Rows going left — read off the split scan, so the grower knows the
    /// children's sizes before partitioning.
    left_count: usize,
}

/// One histogram bin: gradient sum and row count, interleaved so both
/// read-modify-writes of an update hit the same cache line.
#[derive(Debug, Clone, Copy, Default)]
struct HistCell {
    g: f64,
    n: u64,
}

/// Reusable grower buffers. One instance serves every tree of a boosting
/// run — scratch and histogram space is allocated once, not per node.
/// `hist_pool` recycles per-node histograms (at most O(depth) are alive at
/// once, so the pool stays a few hundred KB).
#[derive(Debug, Default)]
pub struct TreeWorkspace {
    idx_scratch: Vec<u32>,
    grad_scratch: Vec<f64>,
    hist_pool: Vec<Vec<HistCell>>,
}

/// Build one regression tree on the gradient targets (squared loss: the
/// hessian is 1 per row, so leaf value = -sum(grad) / (count + lambda)).
///
/// `rows` selects the (possibly subsampled) training rows; `features`
/// selects the (possibly column-subsampled) features.
pub fn build_tree(
    data: &BinnedDataset,
    grads: &[f64],
    rows: Vec<u32>,
    features: &[u16],
    params: &TreeParams,
) -> Tree {
    let gathered: Vec<f64> = rows.iter().map(|&r| grads[r as usize]).collect();
    let mut ws = TreeWorkspace::default();
    build_tree_in(&mut ws, data, rows, gathered, features, params, |_, _| {})
}

/// [`build_tree`] with caller-owned buffers and a leaf callback.
///
/// `grads` must be aligned with `rows` (`grads[k]` is the gradient of row
/// `rows[k]`). `on_leaf(value, rows)` fires once per created leaf with the
/// training rows that landed in it — the boosting loop uses it to update
/// its predictions without re-traversing the tree per row.
pub fn build_tree_in(
    ws: &mut TreeWorkspace,
    data: &BinnedDataset,
    rows: Vec<u32>,
    grads: Vec<f64>,
    features: &[u16],
    params: &TreeParams,
    mut on_leaf: impl FnMut(f64, &[u32]),
) -> Tree {
    assert_eq!(rows.len(), grads.len(), "rows/grads must be aligned");
    // The sweep's unchecked indexing relies on these bounds; validating
    // them once here is O(n), negligible next to a single histogram pass.
    assert!(
        rows.iter().all(|&r| (r as usize) < data.num_rows),
        "row id out of range for the binned dataset"
    );
    assert!(
        features.iter().all(|&f| (f as usize) < data.num_features()),
        "feature id out of range for the binned dataset"
    );
    let n = rows.len();
    let stride = features
        .iter()
        .map(|&f| data.mappers[f as usize].num_bins())
        .max()
        .unwrap_or(1);
    ws.idx_scratch.resize(n, 0);
    ws.grad_scratch.resize(n, 0.0);

    let mut grower = Grower {
        data,
        features,
        params,
        stride,
        idx: rows,
        grads,
        ws,
        nodes: Vec::new(),
        // Queried once per tree: available_parallelism is a syscall (plus
        // cgroup reads on Linux) and must stay out of the per-node path.
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    };
    grower.grow(0, n, 0, &mut on_leaf);
    Tree {
        nodes: grower.nodes,
    }
}

struct Grower<'a> {
    data: &'a BinnedDataset,
    features: &'a [u16],
    params: &'a TreeParams,
    stride: usize,
    /// Row ids, permuted in place; a node owns `idx[lo..hi]`.
    idx: Vec<u32>,
    /// Gradients aligned with `idx` (gathered once, partitioned alongside).
    grads: Vec<f64>,
    ws: &'a mut TreeWorkspace,
    nodes: Vec<Node>,
    /// Host parallelism, sampled once per tree.
    threads: usize,
}

/// Rows below this count never fan the histogram sweep out over threads —
/// thread spawns (~10µs in the vendored bridge) would dominate.
const PAR_HIST_MIN_ROWS: usize = 16_384;

impl Grower<'_> {
    /// Grow the subtree over `idx[lo..hi]`. Splittable nodes sweep their
    /// own histograms; the buffer returns to the workspace pool before
    /// recursing. (The LightGBM sibling-subtraction trick — derive the
    /// larger child as parent − smaller — was measured ~35 % faster here
    /// but rejected: the subtraction perturbs gradient sums in their final
    /// ulps, which flips split decisions on near-tie gains and broke the
    /// pinned outcome digests.)
    fn grow(
        &mut self,
        lo: usize,
        hi: usize,
        depth: usize,
        on_leaf: &mut impl FnMut(f64, &[u32]),
    ) -> u32 {
        let grad_sum: f64 = self.grads[lo..hi].iter().sum();
        let count = hi - lo;
        let node_idx = self.nodes.len() as u32;
        if depth >= self.params.max_depth || count < 2 * self.params.min_leaf {
            return self.push_leaf(grad_sum, lo, hi, on_leaf);
        }

        let hist = self.build_hist(lo, hi);
        let split = self.best_split(&hist, grad_sum, count);
        self.ws.hist_pool.push(hist);
        let Some(split) = split else {
            return self.push_leaf(grad_sum, lo, hi, on_leaf);
        };

        let mid = self.partition(lo, hi, split.feature, split.bin);
        debug_assert_eq!(mid - lo, split.left_count);

        // Reserve this node, then grow children.
        self.nodes.push(Node::Leaf(0.0)); // placeholder
        let left = self.grow(lo, mid, depth + 1, on_leaf);
        let right = self.grow(mid, hi, depth + 1, on_leaf);
        self.nodes[node_idx as usize] = Node::Split {
            feature: split.feature,
            bin_threshold: split.bin,
            threshold: self.data.mappers[split.feature as usize].threshold(split.bin),
            left,
            right,
        };
        node_idx
    }

    fn push_leaf(
        &mut self,
        grad_sum: f64,
        lo: usize,
        hi: usize,
        on_leaf: &mut impl FnMut(f64, &[u32]),
    ) -> u32 {
        let node_idx = self.nodes.len() as u32;
        let value = leaf_value(grad_sum, hi - lo, self.params.lambda);
        self.nodes.push(Node::Leaf(value));
        on_leaf(value, &self.idx[lo..hi]);
        node_idx
    }

    /// One pass over the node's rows fills the histograms of every
    /// candidate feature. Per feature, bins accumulate in node-row order —
    /// exactly the order a per-feature pass would use — so the sums are
    /// bit-identical however the features are chunked across threads.
    fn build_hist(&mut self, lo: usize, hi: usize) -> Vec<HistCell> {
        let stride = self.stride;
        let mut hist = self.take_hist();
        let rows = &self.idx[lo..hi];
        let grads = &self.grads[lo..hi];
        let data = self.data;
        let features = self.features;
        let chunk_count = if rows.len() >= PAR_HIST_MIN_ROWS {
            self.threads.min(features.len()).max(1)
        } else {
            1
        };
        if chunk_count <= 1 {
            sweep(&mut hist, stride, rows, grads, data, features);
            return hist;
        }
        // Multi-core: independent feature chunks, one row sweep each.
        let per = features.len().div_ceil(chunk_count);
        let chunks: Vec<(usize, &[u16])> = features
            .chunks(per)
            .enumerate()
            .map(|(c, fs)| (c * per, fs))
            .collect();
        let parts: Vec<(usize, Vec<HistCell>)> = chunks
            .into_par_iter()
            .with_min_len(1)
            .map(|(offset, fs)| {
                let mut part = vec![HistCell::default(); fs.len() * stride];
                sweep(&mut part, stride, rows, grads, data, fs);
                (offset, part)
            })
            .collect();
        for (offset, part) in parts {
            hist[offset * stride..offset * stride + part.len()].copy_from_slice(&part);
        }
        hist
    }

    /// Scan every feature's histogram for the best split. Tie semantics
    /// match the historical per-feature scan + `max_by`: within a feature
    /// the earliest maximal bin wins, across features the latest maximal
    /// feature wins.
    fn best_split(&self, hist_all: &[HistCell], grad_sum: f64, count: usize) -> Option<BestSplit> {
        let lambda = self.params.lambda;
        let parent_score = grad_sum * grad_sum / (count as f64 + lambda);
        let mut best: Option<BestSplit> = None;
        for (fi, &f) in self.features.iter().enumerate() {
            let nbins = self.data.mappers[f as usize].num_bins();
            if nbins < 2 {
                continue;
            }
            let hist = &hist_all[fi * self.stride..fi * self.stride + nbins];
            let mut gl = 0.0;
            let mut nl = 0u64;
            let mut feature_best: Option<(u8, f64, u64)> = None;
            for (b, cell) in hist[..nbins - 1].iter().enumerate() {
                gl += cell.g;
                nl += cell.n;
                let nr = count as u64 - nl;
                if (nl as usize) < self.params.min_leaf || (nr as usize) < self.params.min_leaf {
                    continue;
                }
                let gr = grad_sum - gl;
                let gain =
                    gl * gl / (nl as f64 + lambda) + gr * gr / (nr as f64 + lambda) - parent_score;
                if gain > self.params.min_gain && feature_best.is_none_or(|(_, fg, _)| gain > fg) {
                    feature_best = Some((b as u8, gain, nl));
                }
            }
            if let Some((bin, gain, nl)) = feature_best {
                if best.as_ref().is_none_or(|s| gain >= s.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        bin,
                        gain,
                        left_count: nl as usize,
                    });
                }
            }
        }
        best
    }

    /// Stable in-place partition of `idx[lo..hi]` (and the aligned
    /// gradients) by the split predicate; returns the start of the right
    /// child. Order within each side matches `Vec::partition`, so every
    /// node's rows stay in ascending dataset order.
    fn partition(&mut self, lo: usize, hi: usize, feature: u16, bin: u8) -> usize {
        let mut write = lo;
        let mut spill = 0usize;
        for k in lo..hi {
            let r = self.idx[k];
            if self.data.bin(feature as usize, r as usize) <= bin {
                self.idx[write] = r;
                self.grads[write] = self.grads[k];
                write += 1;
            } else {
                self.ws.idx_scratch[spill] = r;
                self.ws.grad_scratch[spill] = self.grads[k];
                spill += 1;
            }
        }
        self.idx[write..hi].copy_from_slice(&self.ws.idx_scratch[..spill]);
        self.grads[write..hi].copy_from_slice(&self.ws.grad_scratch[..spill]);
        write
    }

    /// A zeroed histogram buffer from the pool.
    fn take_hist(&mut self) -> Vec<HistCell> {
        let len = self.features.len() * self.stride;
        match self.ws.hist_pool.pop() {
            Some(mut h) => {
                h.fill(HistCell::default());
                h.resize(len, HistCell::default());
                h
            }
            None => vec![HistCell::default(); len],
        }
    }
}

fn leaf_value(grad_sum: f64, count: usize, lambda: f64) -> f64 {
    -grad_sum / (count as f64 + lambda)
}

/// Add one row's bins into a histogram set.
///
/// # Safety
/// `bins` must point at `data.num_features()` valid bytes, every feature id
/// in `features` must be below that count, and `hist` must hold
/// `features.len() * stride` cells with every stored bin below `stride`.
#[inline(always)]
unsafe fn accum_row(
    hist: &mut [HistCell],
    stride: usize,
    features: &[u16],
    bins: *const u8,
    g: f64,
) {
    for (fi, &f) in features.iter().enumerate() {
        let b = unsafe { *bins.add(f as usize) } as usize;
        let cell = unsafe { hist.get_unchecked_mut(fi * stride + b) };
        cell.g += g;
        cell.n += 1;
    }
}

/// The histogram hot loop: for every node row, add its gradient into the
/// bin cell of each candidate feature. Per feature the adds run in node-row
/// order, so the per-bin sums are identical to a per-feature pass.
///
/// Uses unchecked indexing — the bounds are structural: `r < num_rows`
/// (rows come from `0..num_rows`), `f < num_features` (feature ids come
/// from the same dataset), and `bin < stride` (`stride` is the maximum
/// `num_bins` over the candidate features, and every stored bin is below
/// its mapper's `num_bins`).
#[inline]
fn sweep(
    hist: &mut [HistCell],
    stride: usize,
    rows: &[u32],
    grads: &[f64],
    data: &BinnedDataset,
    features: &[u16],
) {
    let nf = data.num_features();
    let raw = data.raw();
    debug_assert!(hist.len() >= features.len() * stride);
    debug_assert!(features
        .iter()
        .all(|&f| (f as usize) < nf && data.mappers[f as usize].num_bins() <= stride));
    for (&r, &g) in rows.iter().zip(grads) {
        let base = r as usize * nf;
        debug_assert!(base + nf <= raw.len());
        unsafe {
            accum_row(hist, stride, features, raw.as_ptr().add(base), g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinnedDataset;

    /// Build a tree fitting targets directly (gradients = -targets, so the
    /// leaf means approximate the targets).
    fn fit_targets(cols: &[Vec<f64>], y: &[f64], params: &TreeParams) -> (Tree, BinnedDataset) {
        let data = BinnedDataset::from_columns(cols, 64);
        let grads: Vec<f64> = y.iter().map(|v| -v).collect();
        let rows: Vec<u32> = (0..y.len() as u32).collect();
        let features: Vec<u16> = (0..cols.len() as u16).collect();
        (build_tree(&data, &grads, rows, &features, params), data)
    }

    #[test]
    fn splits_a_step_function() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 100.0 { -1.0 } else { 1.0 })
            .collect();
        let params = TreeParams {
            max_depth: 2,
            min_leaf: 5,
            lambda: 0.0,
            min_gain: 1e-9,
        };
        let (tree, _) = fit_targets(std::slice::from_ref(&x), &y, &params);
        assert!(tree.num_leaves() >= 2);
        assert!(tree.predict_row(&[50.0]) < -0.8);
        assert!(tree.predict_row(&[150.0]) > 0.8);
    }

    #[test]
    fn respects_max_depth_zero() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = x.clone();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let (tree, _) = fit_targets(&[x], &y, &params);
        assert_eq!(tree.num_nodes(), 1);
        // Root leaf = mean of y (lambda small relative to n).
        let v = tree.predict_row(&[0.0]);
        assert!((v - 49.5).abs() < 1.0, "{v}");
    }

    #[test]
    fn min_leaf_respected() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 2.0 { 100.0 } else { 0.0 })
            .collect();
        let params = TreeParams {
            max_depth: 4,
            min_leaf: 10,
            lambda: 0.0,
            min_gain: 1e-9,
        };
        let (tree, _) = fit_targets(&[x], &y, &params);
        // The natural split at x<2 has only 2 rows on the left — forbidden.
        // The tree may still split elsewhere, but predictions at x=0 and
        // x=5 must then be equal-ish (same side) or the left side has >= 10.
        let p0 = tree.predict_row(&[0.0]);
        let p5 = tree.predict_row(&[5.0]);
        assert!((p0 - p5).abs() < 30.0, "p0={p0} p5={p5}");
    }

    #[test]
    fn binned_and_raw_predictions_agree() {
        let x1: Vec<f64> = (0..300).map(|i| (i % 17) as f64).collect();
        let x2: Vec<f64> = (0..300).map(|i| ((i * 7) % 23) as f64).collect();
        let y: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a * 2.0 - b * 0.5).collect();
        let (tree, data) = fit_targets(&[x1.clone(), x2.clone()], &y, &TreeParams::default());
        for r in (0..300).step_by(13) {
            let raw = tree.predict_row(&[x1[r], x2[r]]);
            let binned = tree.predict_binned(&data, r);
            assert!((raw - binned).abs() < 1e-12, "row {r}: {raw} vs {binned}");
        }
    }

    #[test]
    fn leaf_callback_covers_every_row_once() {
        let x1: Vec<f64> = (0..500).map(|i| (i % 31) as f64).collect();
        let x2: Vec<f64> = (0..500).map(|i| ((i * 13) % 11) as f64).collect();
        let y: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a - b).collect();
        let data = BinnedDataset::from_columns(&[x1.clone(), x2.clone()], 64);
        let grads: Vec<f64> = y.iter().map(|v| -v).collect();
        let rows: Vec<u32> = (0..500u32).collect();
        let features = [0u16, 1u16];
        let mut ws = TreeWorkspace::default();
        let mut seen = vec![0u32; 500];
        let mut leaf_of = vec![f64::NAN; 500];
        let tree = build_tree_in(
            &mut ws,
            &data,
            rows.clone(),
            rows.iter().map(|&r| grads[r as usize]).collect(),
            &features,
            &TreeParams::default(),
            |value, leaf_rows| {
                for &r in leaf_rows {
                    seen[r as usize] += 1;
                    leaf_of[r as usize] = value;
                }
            },
        );
        assert!(seen.iter().all(|&c| c == 1), "each row in exactly one leaf");
        // The callback's leaf value must equal the traversal's.
        for r in (0..500).step_by(17) {
            assert_eq!(leaf_of[r], tree.predict_binned(&data, r));
        }
    }

    #[test]
    fn deeper_trees_fit_better() {
        let x: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| (v * 12.0).sin()).collect();
        let sse = |depth: usize| -> f64 {
            let params = TreeParams {
                max_depth: depth,
                min_leaf: 5,
                lambda: 0.0,
                min_gain: 1e-12,
            };
            let (tree, _) = fit_targets(std::slice::from_ref(&x), &y, &params);
            x.iter()
                .zip(&y)
                .map(|(&xi, &yi)| (tree.predict_row(&[xi]) - yi).powi(2))
                .sum()
        };
        assert!(sse(4) < sse(1));
        assert!(sse(6) < sse(2));
    }
}
