//! Histogram-based regression trees — the weak learners of the GBDT
//! (§4.2.2 / §4.3.2 use a LightGBM-style GBDT \[42\]).

use crate::binning::BinnedDataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Tree-growing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: usize,
    /// Minimum rows on each side of a split.
    pub min_leaf: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum gain for a split to be accepted.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_leaf: 20,
            lambda: 1.0,
            min_gain: 1e-6,
        }
    }
}

/// A tree node: either an internal split or a leaf with an output value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    Split {
        feature: u16,
        /// Split on binned data: go left if `bin <= bin_threshold`.
        bin_threshold: u8,
        /// Equivalent raw-value threshold: go left if `value <= threshold`.
        threshold: f64,
        left: u32,
        right: u32,
    },
    Leaf(f64),
}

/// A trained regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Predict from a raw feature row (feature order as in training).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predict for a row of the *binned* training set (fast path used
    /// during boosting).
    pub fn predict_binned(&self, data: &BinnedDataset, row: usize) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    bin_threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if data.bins[*feature as usize][row] <= *bin_threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf(_)))
            .count()
    }

    /// Accumulate split counts per feature into `counts` (split-frequency
    /// feature importance).
    pub fn accumulate_split_counts(&self, counts: &mut [u64]) {
        for n in &self.nodes {
            if let Node::Split { feature, .. } = n {
                counts[*feature as usize] += 1;
            }
        }
    }
}

struct BestSplit {
    feature: u16,
    bin: u8,
    gain: f64,
}

/// Build one regression tree on the gradient targets (squared loss: the
/// hessian is 1 per row, so leaf value = -sum(grad) / (count + lambda)).
///
/// `rows` selects the (possibly subsampled) training rows; `features`
/// selects the (possibly column-subsampled) features.
pub fn build_tree(
    data: &BinnedDataset,
    grads: &[f64],
    rows: Vec<u32>,
    features: &[u16],
    params: &TreeParams,
) -> Tree {
    let mut nodes = Vec::new();
    grow(data, grads, rows, features, params, 0, &mut nodes);
    Tree { nodes }
}

fn leaf_value(grad_sum: f64, count: usize, lambda: f64) -> f64 {
    -grad_sum / (count as f64 + lambda)
}

fn grow(
    data: &BinnedDataset,
    grads: &[f64],
    rows: Vec<u32>,
    features: &[u16],
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let grad_sum: f64 = rows.iter().map(|&r| grads[r as usize]).sum();
    let count = rows.len();
    let node_idx = nodes.len() as u32;
    if depth >= params.max_depth || count < 2 * params.min_leaf {
        nodes.push(Node::Leaf(leaf_value(grad_sum, count, params.lambda)));
        return node_idx;
    }

    // Per-feature histograms, in parallel.
    let best = features
        .par_iter()
        .filter_map(|&f| {
            let col = &data.bins[f as usize];
            let nbins = data.mappers[f as usize].num_bins();
            if nbins < 2 {
                return None;
            }
            let mut hist_g = vec![0.0f64; nbins];
            let mut hist_n = vec![0u32; nbins];
            for &r in &rows {
                let b = col[r as usize] as usize;
                hist_g[b] += grads[r as usize];
                hist_n[b] += 1;
            }
            // Scan split points left to right.
            let lambda = params.lambda;
            let parent_score = grad_sum * grad_sum / (count as f64 + lambda);
            let mut gl = 0.0;
            let mut nl = 0u32;
            let mut best: Option<BestSplit> = None;
            for b in 0..nbins - 1 {
                gl += hist_g[b];
                nl += hist_n[b];
                let nr = count as u32 - nl;
                if (nl as usize) < params.min_leaf || (nr as usize) < params.min_leaf {
                    continue;
                }
                let gr = grad_sum - gl;
                let gain =
                    gl * gl / (nl as f64 + lambda) + gr * gr / (nr as f64 + lambda) - parent_score;
                if gain > params.min_gain && best.as_ref().is_none_or(|s| gain > s.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        bin: b as u8,
                        gain,
                    });
                }
            }
            best
        })
        .max_by(|a, b| a.gain.partial_cmp(&b.gain).unwrap());

    let Some(split) = best else {
        nodes.push(Node::Leaf(leaf_value(grad_sum, count, params.lambda)));
        return node_idx;
    };

    // Partition rows.
    let col = &data.bins[split.feature as usize];
    let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
        .into_iter()
        .partition(|&r| col[r as usize] <= split.bin);

    // Reserve this node, then grow children.
    nodes.push(Node::Leaf(0.0)); // placeholder
    let left = grow(data, grads, left_rows, features, params, depth + 1, nodes);
    let right = grow(data, grads, right_rows, features, params, depth + 1, nodes);
    nodes[node_idx as usize] = Node::Split {
        feature: split.feature,
        bin_threshold: split.bin,
        threshold: data.mappers[split.feature as usize].threshold(split.bin),
        left,
        right,
    };
    node_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinnedDataset;

    /// Build a tree fitting targets directly (gradients = -targets, so the
    /// leaf means approximate the targets).
    fn fit_targets(cols: &[Vec<f64>], y: &[f64], params: &TreeParams) -> (Tree, BinnedDataset) {
        let data = BinnedDataset::from_columns(cols, 64);
        let grads: Vec<f64> = y.iter().map(|v| -v).collect();
        let rows: Vec<u32> = (0..y.len() as u32).collect();
        let features: Vec<u16> = (0..cols.len() as u16).collect();
        (build_tree(&data, &grads, rows, &features, params), data)
    }

    #[test]
    fn splits_a_step_function() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 100.0 { -1.0 } else { 1.0 })
            .collect();
        let params = TreeParams {
            max_depth: 2,
            min_leaf: 5,
            lambda: 0.0,
            min_gain: 1e-9,
        };
        let (tree, _) = fit_targets(std::slice::from_ref(&x), &y, &params);
        assert!(tree.num_leaves() >= 2);
        assert!(tree.predict_row(&[50.0]) < -0.8);
        assert!(tree.predict_row(&[150.0]) > 0.8);
    }

    #[test]
    fn respects_max_depth_zero() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = x.clone();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let (tree, _) = fit_targets(&[x], &y, &params);
        assert_eq!(tree.num_nodes(), 1);
        // Root leaf = mean of y (lambda small relative to n).
        let v = tree.predict_row(&[0.0]);
        assert!((v - 49.5).abs() < 1.0, "{v}");
    }

    #[test]
    fn min_leaf_respected() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 2.0 { 100.0 } else { 0.0 })
            .collect();
        let params = TreeParams {
            max_depth: 4,
            min_leaf: 10,
            lambda: 0.0,
            min_gain: 1e-9,
        };
        let (tree, _) = fit_targets(&[x], &y, &params);
        // The natural split at x<2 has only 2 rows on the left — forbidden.
        // The tree may still split elsewhere, but predictions at x=0 and
        // x=5 must then be equal-ish (same side) or the left side has >= 10.
        let p0 = tree.predict_row(&[0.0]);
        let p5 = tree.predict_row(&[5.0]);
        assert!((p0 - p5).abs() < 30.0, "p0={p0} p5={p5}");
    }

    #[test]
    fn binned_and_raw_predictions_agree() {
        let x1: Vec<f64> = (0..300).map(|i| (i % 17) as f64).collect();
        let x2: Vec<f64> = (0..300).map(|i| ((i * 7) % 23) as f64).collect();
        let y: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a * 2.0 - b * 0.5).collect();
        let (tree, data) = fit_targets(&[x1.clone(), x2.clone()], &y, &TreeParams::default());
        for r in (0..300).step_by(13) {
            let raw = tree.predict_row(&[x1[r], x2[r]]);
            let binned = tree.predict_binned(&data, r);
            assert!((raw - binned).abs() < 1e-12, "row {r}: {raw} vs {binned}");
        }
    }

    #[test]
    fn deeper_trees_fit_better() {
        let x: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| (v * 12.0).sin()).collect();
        let sse = |depth: usize| -> f64 {
            let params = TreeParams {
                max_depth: depth,
                min_leaf: 5,
                lambda: 0.0,
                min_gain: 1e-12,
            };
            let (tree, _) = fit_targets(std::slice::from_ref(&x), &y, &params);
            x.iter()
                .zip(&y)
                .map(|(&xi, &yi)| (tree.predict_row(&[xi]) - yi).powi(2))
                .sum()
        };
        assert!(sse(4) < sse(1));
        assert!(sse(6) < sse(2));
    }
}
