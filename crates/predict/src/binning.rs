//! Histogram binning for GBDT training (the LightGBM-style discretization
//! the paper's GBDT \[42\] uses).

use serde::{Deserialize, Serialize};

/// Maps raw feature values to at most 256 quantile bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinMapper {
    /// Upper edge of each bin except the last: value `v` lands in the first
    /// bin `b` with `v <= edges[b]`, or in the last bin.
    edges: Vec<f64>,
}

impl BinMapper {
    /// Fit quantile bins over `values` (at most `max_bins`, deduplicated).
    pub fn fit(values: &[f64], max_bins: usize) -> Self {
        assert!((2..=256).contains(&max_bins));
        assert!(!values.is_empty());
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_unstable_by(f64::total_cmp);
        let mut edges = Vec::with_capacity(max_bins - 1);
        for b in 1..max_bins {
            let idx = (b * sorted.len()) / max_bins;
            let e = sorted[idx.min(sorted.len() - 1)];
            if edges.last().is_none_or(|&last| e > last) {
                edges.push(e);
            }
        }
        BinMapper { edges }
    }

    /// Number of bins (edges + 1 overflow bin).
    pub fn num_bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Bin index for a value.
    pub fn bin(&self, v: f64) -> u8 {
        self.edges.partition_point(|&e| e < v) as u8
    }

    /// The raw-value threshold corresponding to "bin <= b". Returns
    /// `f64::INFINITY` for the last bin (everything goes left).
    pub fn threshold(&self, b: u8) -> f64 {
        self.edges.get(b as usize).copied().unwrap_or(f64::INFINITY)
    }
}

/// A fully binned training set, stored **row-major**: all feature bins of
/// one row sit in `num_features` consecutive bytes. The tree grower's
/// histogram pass walks a node's rows once and reads every feature of a
/// row from a single cache line, instead of one strided pass per feature.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    /// `data[row * num_features + feature]`.
    data: Vec<u8>,
    pub mappers: Vec<BinMapper>,
    pub num_rows: usize,
    num_features: usize,
}

impl BinnedDataset {
    /// Bin a column-major feature matrix (`features[feature][row]`).
    pub fn from_columns(features: &[Vec<f64>], max_bins: usize) -> Self {
        assert!(!features.is_empty());
        let num_rows = features[0].len();
        assert!(features.iter().all(|c| c.len() == num_rows));
        let num_features = features.len();
        let mappers: Vec<BinMapper> = features
            .iter()
            .map(|col| BinMapper::fit(col, max_bins))
            .collect();
        let mut data = vec![0u8; num_rows * num_features];
        for (f, (col, m)) in features.iter().zip(&mappers).enumerate() {
            for (r, &v) in col.iter().enumerate() {
                data[r * num_features + f] = m.bin(v);
            }
        }
        BinnedDataset {
            data,
            mappers,
            num_rows,
            num_features,
        }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Bin of one (feature, row) cell.
    #[inline]
    pub fn bin(&self, feature: usize, row: usize) -> u8 {
        self.data[row * self.num_features + feature]
    }

    /// All feature bins of one row (length `num_features`).
    #[inline]
    pub fn row(&self, row: usize) -> &[u8] {
        &self.data[row * self.num_features..(row + 1) * self.num_features]
    }

    /// The full row-major bin matrix (`num_rows * num_features` bytes) —
    /// the tree grower's histogram sweep indexes it directly.
    #[inline]
    pub(crate) fn raw(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_monotone_in_value() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let m = BinMapper::fit(&values, 16);
        let mut last = 0;
        for v in [0.0, 1.0, 5.0, 10.0, 20.0, 31.0] {
            let b = m.bin(v);
            assert!(b >= last);
            last = b;
        }
        assert!(m.num_bins() <= 16);
    }

    #[test]
    fn threshold_respects_bin_assignment() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = BinMapper::fit(&values, 8);
        for v in values {
            let b = m.bin(v);
            // v <= threshold(b) must hold (that's the split semantics).
            assert!(v <= m.threshold(b), "v={v} b={b} thr={}", m.threshold(b));
            if b > 0 {
                assert!(v > m.threshold(b - 1));
            }
        }
    }

    #[test]
    fn constant_feature_collapses() {
        let m = BinMapper::fit(&[5.0; 50], 32);
        // One real bin plus at most one (empty) overflow bin.
        assert!(m.num_bins() <= 2);
        assert_eq!(m.bin(5.0), 0);
    }

    #[test]
    fn categorical_like_feature_keeps_distinct_bins() {
        let mut values = Vec::new();
        for c in 0..5 {
            values.extend(std::iter::repeat_n(c as f64, 20));
        }
        let m = BinMapper::fit(&values, 64);
        let bins: Vec<u8> = (0..5).map(|c| m.bin(c as f64)).collect();
        let mut dedup = bins.clone();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            5,
            "each category must keep its own bin: {bins:?}"
        );
    }

    #[test]
    fn binned_dataset_shape() {
        let cols = vec![
            (0..50).map(|i| i as f64).collect::<Vec<f64>>(),
            (0..50).map(|i| (i % 3) as f64).collect(),
        ];
        let d = BinnedDataset::from_columns(&cols, 16);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_rows, 50);
        assert_eq!(d.row(0).len(), 2);
        assert!(d.mappers[1].num_bins() <= 4);
    }

    #[test]
    fn row_major_cells_match_mappers() {
        let cols = vec![
            (0..200).map(|i| (i as f64).sin()).collect::<Vec<f64>>(),
            (0..200).map(|i| (i % 7) as f64).collect(),
            (0..200).map(|i| (i * i) as f64).collect(),
        ];
        let d = BinnedDataset::from_columns(&cols, 32);
        for r in (0..200).step_by(11) {
            for (f, col) in cols.iter().enumerate() {
                assert_eq!(d.bin(f, r), d.mappers[f].bin(col[r]));
                assert_eq!(d.row(r)[f], d.bin(f, r));
            }
        }
    }
}
