//! Prophet-style forecasting baseline (§4.3.2 compares GBDT against
//! Prophet \[67\]): additive model with a linear trend, daily + weekly
//! Fourier seasonality and a holiday indicator, fitted by ridge regression.

use crate::linalg::{dot, ridge_solve};
use helios_trace::{Calendar, SECS_PER_DAY, SECS_PER_WEEK};
use serde::{Deserialize, Serialize};

/// Harmonic orders of the seasonal blocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FourierParams {
    pub daily_harmonics: usize,
    pub weekly_harmonics: usize,
    pub ridge_lambda: f64,
}

impl Default for FourierParams {
    fn default() -> Self {
        FourierParams {
            daily_harmonics: 4,
            weekly_harmonics: 3,
            ridge_lambda: 1.0,
        }
    }
}

/// A fitted Prophet-like model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FourierForecaster {
    params: FourierParams,
    weights: Vec<f64>,
    /// Time normalization (trend feature = (t - t_mid) / t_scale).
    t_mid: f64,
    t_scale: f64,
}

fn num_cols(params: &FourierParams) -> usize {
    2 + 2 * (params.daily_harmonics + params.weekly_harmonics) + 2
}

/// Append one design row onto a flat row-major matrix buffer.
fn design_into(
    out: &mut Vec<f64>,
    t: i64,
    t_mid: f64,
    t_scale: f64,
    cal: &Calendar,
    params: &FourierParams,
) {
    out.push(1.0);
    out.push((t as f64 - t_mid) / t_scale);
    let day_phase = t.rem_euclid(SECS_PER_DAY) as f64 / SECS_PER_DAY as f64;
    for k in 1..=params.daily_harmonics {
        let a = std::f64::consts::TAU * k as f64 * day_phase;
        out.push(a.sin());
        out.push(a.cos());
    }
    let week_phase = t.rem_euclid(SECS_PER_WEEK) as f64 / SECS_PER_WEEK as f64;
    for k in 1..=params.weekly_harmonics {
        let a = std::f64::consts::TAU * k as f64 * week_phase;
        out.push(a.sin());
        out.push(a.cos());
    }
    out.push(f64::from(cal.is_holiday(t)));
    out.push(f64::from(cal.weekday(t).is_weekend()));
}

impl FourierForecaster {
    /// Fit on a binned series: `values[i]` observed at `t0 + i * bin`.
    pub fn fit(
        values: &[f64],
        t0: i64,
        bin: i64,
        cal: &Calendar,
        params: FourierParams,
    ) -> FourierForecaster {
        assert!(values.len() >= 8, "series too short");
        let n = values.len();
        let t_lo = t0;
        let t_hi = t0 + bin * (n - 1) as i64;
        let t_mid = (t_lo + t_hi) as f64 / 2.0;
        let t_scale = ((t_hi - t_lo) as f64 / 2.0).max(1.0);
        let p = num_cols(&params);
        let mut x = Vec::with_capacity(n * p);
        for i in 0..n {
            design_into(&mut x, t0 + bin * i as i64, t_mid, t_scale, cal, &params);
        }
        let weights = ridge_solve(&x, p, values, params.ridge_lambda);
        FourierForecaster {
            params,
            weights,
            t_mid,
            t_scale,
        }
    }

    /// Predict the series value at timestamp `t`.
    pub fn predict_at(&self, t: i64, cal: &Calendar) -> f64 {
        let mut row = Vec::with_capacity(num_cols(&self.params));
        design_into(&mut row, t, self.t_mid, self.t_scale, cal, &self.params);
        dot(&row, &self.weights)
    }

    /// Predict a range of future bins (one reused row buffer).
    pub fn forecast(&self, t_start: i64, bin: i64, horizon: usize, cal: &Calendar) -> Vec<f64> {
        let mut row = Vec::with_capacity(num_cols(&self.params));
        (0..horizon)
            .map(|h| {
                row.clear();
                design_into(
                    &mut row,
                    t_start + bin * h as i64,
                    self.t_mid,
                    self.t_scale,
                    cal,
                    &self.params,
                );
                dot(&row, &self.weights)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::SECS_PER_HOUR;

    fn daily_series(days: usize) -> (Vec<f64>, i64) {
        // value = 50 + 10 sin(daily) + small trend
        let bin = SECS_PER_HOUR;
        let n = days * 24;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                50.0 + 10.0 * (std::f64::consts::TAU * t / 24.0).sin() + 0.01 * t
            })
            .collect();
        (values, bin)
    }

    #[test]
    fn fits_daily_seasonality() {
        let cal = Calendar::helios_2020();
        let (values, bin) = daily_series(30);
        let model = FourierForecaster::fit(&values, 0, bin, &cal, FourierParams::default());
        // In-sample accuracy.
        let preds: Vec<f64> = (0..values.len())
            .map(|i| model.predict_at(bin * i as i64, &cal))
            .collect();
        let err = crate::metrics::rmse(&values, &preds);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn extrapolates_forward() {
        let cal = Calendar::helios_2020();
        let (values, bin) = daily_series(30);
        let model = FourierForecaster::fit(&values, 0, bin, &cal, FourierParams::default());
        let t_start = bin * values.len() as i64;
        let f = model.forecast(t_start, bin, 48, &cal);
        let expect: Vec<f64> = (values.len()..values.len() + 48)
            .map(|i| {
                let t = i as f64;
                50.0 + 10.0 * (std::f64::consts::TAU * t / 24.0).sin() + 0.01 * t
            })
            .collect();
        let err = crate::metrics::rmse(&expect, &f);
        assert!(err < 1.5, "rmse {err}");
    }

    #[test]
    fn constant_series_predicts_constant() {
        let cal = Calendar::helios_2020();
        let values = vec![42.0; 300];
        let model =
            FourierForecaster::fit(&values, 0, SECS_PER_HOUR, &cal, FourierParams::default());
        let p = model.predict_at(301 * SECS_PER_HOUR, &cal);
        assert!((p - 42.0).abs() < 1.5, "{p}");
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn short_series_rejected() {
        let cal = Calendar::helios_2020();
        FourierForecaster::fit(&[1.0; 4], 0, 600, &cal, FourierParams::default());
    }
}
