//! Job-name similarity: Levenshtein distance \[53\] and the bucketization the
//! QSSF feature pipeline uses to turn "extremely sparse and high-dimensional"
//! job names into dense numeric categories (§4.2.2).

use std::collections::HashMap;

/// Levenshtein edit distance (two-row DP, O(min(a,b)) memory).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner loop.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein distance normalized by the longer length, in \[0, 1\].
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

/// Strip trailing run/sweep decorations (`_12`, `_run3`, `_lr5`) so
/// resubmissions of the same experiment normalize to a common stem.
pub fn strip_run_suffix(name: &str) -> &str {
    let mut s = name;
    loop {
        let Some(pos) = s.rfind('_') else {
            return s;
        };
        let tail = &s[pos + 1..];
        let is_decoration = !tail.is_empty()
            && (tail.chars().all(|c| c.is_ascii_digit())
                || (tail.starts_with("run") && tail[3..].chars().all(|c| c.is_ascii_digit()))
                || (tail.starts_with("lr") && tail[2..].chars().all(|c| c.is_ascii_digit())));
        if is_decoration {
            s = &s[..pos];
        } else {
            return s;
        }
    }
}

/// Incremental name bucketizer: names whose stems are within
/// `max_distance` (normalized Levenshtein) of a bucket representative share
/// that bucket id.
#[derive(Debug, Clone)]
pub struct NameBuckets {
    max_distance: f64,
    representatives: Vec<String>,
    cache: HashMap<String, u32>,
}

impl NameBuckets {
    /// Create a bucketizer with the given normalized-distance threshold
    /// (the paper clusters "similar" names; 0.25 works well for
    /// sweep-style suffixes).
    pub fn new(max_distance: f64) -> Self {
        assert!((0.0..=1.0).contains(&max_distance));
        NameBuckets {
            max_distance,
            representatives: Vec::new(),
            cache: HashMap::new(),
        }
    }

    /// Bucket id for a job name (creates a new bucket when nothing is
    /// similar enough). Deterministic in insertion order. Cache hits are
    /// allocation-free.
    pub fn bucket(&mut self, name: &str) -> u32 {
        let stem = strip_run_suffix(name);
        if let Some(&id) = self.cache.get(stem) {
            return id;
        }
        let stem = stem.to_string();
        // Linear scan over representatives; short-circuit on length bounds
        // (|len(a) - len(b)| <= d * max_len is necessary for a match).
        let stem_len = stem.chars().count();
        let mut found = None;
        for (id, rep) in self.representatives.iter().enumerate() {
            let rep_len = rep.chars().count();
            let max_len = rep_len.max(stem_len);
            if (rep_len as i64 - stem_len as i64).unsigned_abs() as f64
                > self.max_distance * max_len as f64
            {
                continue;
            }
            if normalized_distance(&stem, rep) <= self.max_distance {
                found = Some(id as u32);
                break;
            }
        }
        let id = found.unwrap_or_else(|| {
            self.representatives.push(stem.clone());
            (self.representatives.len() - 1) as u32
        });
        self.cache.insert(stem, id);
        id
    }

    /// Number of buckets created so far.
    pub fn num_buckets(&self) -> usize {
        self.representatives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn distance_properties() {
        let words = ["train_resnet50", "train_resnet18", "eval_bert", ""];
        for a in words {
            for b in words {
                // Symmetry.
                assert_eq!(levenshtein(a, b), levenshtein(b, a));
                // Identity.
                if a == b {
                    assert_eq!(levenshtein(a, b), 0);
                }
                // Triangle inequality against every third word.
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_distance("", ""), 0.0);
        assert_eq!(normalized_distance("abc", "abc"), 0.0);
        assert_eq!(normalized_distance("abc", "xyz"), 1.0);
        let d = normalized_distance("train_resnet50_run1", "train_resnet50_run2");
        assert!(d < 0.1);
    }

    #[test]
    fn strips_run_decorations() {
        assert_eq!(strip_run_suffix("train_resnet50_3"), "train_resnet50");
        assert_eq!(strip_run_suffix("train_resnet50_run12"), "train_resnet50");
        assert_eq!(strip_run_suffix("train_resnet50_lr5_7"), "train_resnet50");
        assert_eq!(strip_run_suffix("train_resnet50"), "train_resnet50");
        assert_eq!(strip_run_suffix("noxunderscore"), "noxunderscore");
    }

    #[test]
    fn buckets_group_resubmissions() {
        let mut b = NameBuckets::new(0.25);
        let a1 = b.bucket("train_resnet50_imagenet_1");
        let a2 = b.bucket("train_resnet50_imagenet_412");
        let a3 = b.bucket("train_resnet50_imagenet_lr3_9");
        assert_eq!(a1, a2);
        assert_eq!(a1, a3);
        let other = b.bucket("extract_frames_kinetics400_2");
        assert_ne!(a1, other);
        assert_eq!(b.num_buckets(), 2);
    }

    #[test]
    fn near_names_share_buckets() {
        let mut b = NameBuckets::new(0.25);
        let x = b.bucket("train_resnet50_imagenet");
        let y = b.bucket("train_resnet56_imagenet"); // 1 edit of 22 chars
        assert_eq!(x, y);
    }

    #[test]
    fn cache_is_consistent() {
        let mut b = NameBuckets::new(0.2);
        let first = b.bucket("eval_bert_base_wmt14_5");
        for _ in 0..10 {
            assert_eq!(b.bucket("eval_bert_base_wmt14_5"), first);
        }
    }
}
