//! Forecast/regression accuracy metrics. The paper reports SMAPE (Symmetric
//! Mean Absolute Percentage Error, \[35\]) for the CES node forecaster
//! (~3.6% on Earth, §4.3.2).

/// Symmetric Mean Absolute Percentage Error, in percent (0..200).
///
/// `SMAPE = 100/n * Σ |f - a| / ((|a| + |f|) / 2)`; terms with a zero
/// denominator (both actual and forecast zero) contribute 0.
pub fn smape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len());
    assert!(!actual.is_empty());
    let mut acc = 0.0;
    for (&a, &f) in actual.iter().zip(forecast) {
        let denom = (a.abs() + f.abs()) / 2.0;
        if denom > 0.0 {
            acc += (f - a).abs() / denom;
        }
    }
    100.0 * acc / actual.len() as f64
}

/// Mean Absolute Error.
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len());
    assert!(!actual.is_empty());
    actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root Mean Squared Error.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len());
    assert!(!actual.is_empty());
    (actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).powi(2))
        .sum::<f64>()
        / actual.len() as f64)
        .sqrt()
}

/// Coefficient of determination R².
pub fn r2(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len());
    assert!(!actual.is_empty());
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(smape(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(r2(&a, &a), 1.0);
    }

    #[test]
    fn smape_is_symmetric_and_bounded() {
        let a = [10.0, 20.0];
        let f = [20.0, 10.0];
        assert!((smape(&a, &f) - smape(&f, &a)).abs() < 1e-12);
        // Max SMAPE is 200% (completely opposite signs / zero overlap).
        let z = [0.0, 0.0];
        let o = [1.0, 1.0];
        assert!((smape(&z, &o) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn smape_known_value() {
        // |f-a| = 10, (|a|+|f|)/2 = 105 -> 100 * 10/105 ≈ 9.5238
        let v = smape(&[100.0], &[110.0]);
        assert!((v - 100.0 * 10.0 / 105.0).abs() < 1e-9);
    }

    #[test]
    fn mae_rmse_relationship() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let f = [1.0, -1.0, 3.0, -3.0];
        assert_eq!(mae(&a, &f), 2.0);
        assert!(rmse(&a, &f) > mae(&a, &f)); // RMSE penalizes outliers
        assert!((rmse(&a, &f) - (5.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let f = [2.0, 2.0, 2.0];
        assert!(r2(&a, &f).abs() < 1e-12);
    }
}
