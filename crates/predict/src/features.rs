//! Feature pipelines.
//!
//! `job`: the QSSF feature extraction of §4.2.2 — encoded categories
//! (user, VC, Levenshtein name bucket), resource demands, parsed
//! submission-time attributes (month, day, weekday, hour, minute), plus
//! causal rolling statistics of the user's / bucket's past durations.
//!
//! `series`: the CES feature extraction of §4.3.2 — lags, rolling
//! means/stds under several window sizes, calendar encodings and holiday
//! indicators over a node-count time series.

pub mod job {
    use crate::text::NameBuckets;
    use helios_trace::{Calendar, JobRecord, NameId, NamePool, Trace, UserId};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};

    /// Number of features produced per job.
    pub const NUM_FEATURES: usize = 16;

    /// Feature names, index-aligned with the extracted vectors.
    pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
        "user",
        "vc",
        "gpus",
        "cpus",
        "log2_gpus",
        "name_bucket",
        "run_index",
        "month",
        "day_of_month",
        "weekday",
        "hour",
        "minute",
        "is_offday",
        "user_mean_logdur",
        "bucket_mean_logdur",
        "bucket_count",
    ];

    #[derive(Debug, Clone, Copy, Default)]
    struct Avg {
        sum: f64,
        n: u64,
    }

    impl Avg {
        fn push(&mut self, v: f64) {
            self.sum += v;
            self.n += 1;
        }
        fn get_or(&self, default: f64) -> f64 {
            if self.n > 0 {
                self.sum / self.n as f64
            } else {
                default
            }
        }
    }

    /// Stateful, causal feature extractor. Call [`FeatureExtractor::extract`]
    /// at submission time and [`FeatureExtractor::observe`] at termination
    /// time; the rolling statistics never see the future.
    #[derive(Debug, Clone)]
    pub struct FeatureExtractor {
        buckets: NameBuckets,
        /// Bucket per interned name id. The bucket depends only on the
        /// name's stem (the run suffix is stripped), so it is resolved once
        /// per template instead of once per job — the Levenshtein scan and
        /// the per-job display-string allocation both disappear from the
        /// hot path.
        bucket_by_name: HashMap<NameId, u32>,
        user_logdur: HashMap<UserId, Avg>,
        bucket_logdur: HashMap<u32, Avg>,
        /// Global mean log-duration (cold-start default).
        global: Avg,
    }

    impl Default for FeatureExtractor {
        fn default() -> Self {
            Self::new()
        }
    }

    impl FeatureExtractor {
        /// Fresh extractor with the paper-style name bucketizer.
        pub fn new() -> Self {
            FeatureExtractor {
                buckets: NameBuckets::new(0.25),
                bucket_by_name: HashMap::new(),
                user_logdur: HashMap::new(),
                bucket_logdur: HashMap::new(),
                global: Avg::default(),
            }
        }

        /// Name bucket for a job, cached per interned name id (a display
        /// name is `base_run`, whose run suffix the bucketizer strips, so
        /// every job of a template shares one bucket).
        fn bucket_of(&mut self, job: &JobRecord, names: &NamePool) -> u32 {
            if let Some(&b) = self.bucket_by_name.get(&job.name) {
                return b;
            }
            let display = names.display_name(job);
            let b = self.buckets.bucket(&display);
            self.bucket_by_name.insert(job.name, b);
            b
        }

        /// The full feature row as a stack array (no allocation).
        fn features(
            &mut self,
            job: &JobRecord,
            names: &NamePool,
            cal: &Calendar,
        ) -> [f64; NUM_FEATURES] {
            let bucket = self.bucket_of(job, names);
            let g = self.global.get_or(6.0); // ~exp(6) = 400 s prior
            [
                job.user as f64,
                job.vc as f64,
                job.gpus as f64,
                job.cpus as f64,
                (job.gpus.max(1) as f64).log2(),
                bucket as f64,
                job.run as f64,
                cal.month_index(job.submit) as f64,
                cal.day_of_month(job.submit) as f64,
                cal.weekday(job.submit).index() as f64,
                cal.hour_of_day(job.submit) as f64,
                cal.minute_of_hour(job.submit) as f64,
                f64::from(cal.is_offday(job.submit)),
                self.user_logdur.get(&job.user).map_or(g, |a| a.get_or(g)),
                self.bucket_logdur.get(&bucket).map_or(g, |a| a.get_or(g)),
                self.bucket_logdur.get(&bucket).map_or(0.0, |a| a.n as f64),
            ]
        }

        /// Feature vector for a job at submission time.
        pub fn extract(&mut self, job: &JobRecord, names: &NamePool, cal: &Calendar) -> Vec<f64> {
            self.features(job, names, cal).to_vec()
        }

        /// Append a job's features directly onto a columnar matrix
        /// (`cols[feature]`), skipping the per-job row allocation.
        pub fn extract_into(
            &mut self,
            job: &JobRecord,
            names: &NamePool,
            cal: &Calendar,
            cols: &mut [Vec<f64>],
        ) {
            debug_assert_eq!(cols.len(), NUM_FEATURES);
            let row = self.features(job, names, cal);
            for (c, v) in cols.iter_mut().zip(row) {
                c.push(v);
            }
        }

        /// Record a finished job's duration (log-space).
        pub fn observe(&mut self, job: &JobRecord, names: &NamePool) {
            let bucket = self.bucket_of(job, names);
            let logdur = (job.duration.max(1) as f64).ln();
            self.global.push(logdur);
            self.user_logdur.entry(job.user).or_default().push(logdur);
            self.bucket_logdur.entry(bucket).or_default().push(logdur);
        }

        /// Number of name buckets discovered so far.
        pub fn num_buckets(&self) -> usize {
            self.buckets.num_buckets()
        }
    }

    /// Build a supervised training matrix from the GPU jobs of `trace`
    /// submitted in `[t_lo, t_hi)`. Returns `(columns, targets)` where
    /// targets are `ln(duration)`, plus the extractor state (to keep
    /// extracting consistently at inference time).
    ///
    /// The pass is causal: a job's features are extracted before any job
    /// that ends later is observed.
    pub fn build_training_matrix(
        trace: &Trace,
        t_lo: i64,
        t_hi: i64,
    ) -> (Vec<Vec<f64>>, Vec<f64>, FeatureExtractor) {
        let mut extractor = FeatureExtractor::new();
        let mut cols = vec![Vec::new(); NUM_FEATURES];
        let mut targets = Vec::new();
        // Min-heap of (end_time, index into trace.jobs) for pending
        // observations.
        let mut pending: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        for (idx, job) in trace.jobs.iter().enumerate() {
            if !job.is_gpu() {
                continue;
            }
            if job.submit >= t_hi {
                break;
            }
            // Observe everything that finished before this submission.
            while let Some(&Reverse((end, j))) = pending.peek() {
                if end > job.submit {
                    break;
                }
                pending.pop();
                extractor.observe(&trace.jobs[j], &trace.names);
            }
            if job.submit >= t_lo {
                extractor.extract_into(job, &trace.names, &trace.calendar, &mut cols);
                targets.push((job.duration.max(1) as f64).ln());
            }
            pending.push(Reverse((job.end(), idx)));
        }
        (cols, targets, extractor)
    }
}

pub mod series {
    use helios_trace::Calendar;
    use serde::{Deserialize, Serialize};

    /// Configuration of the node-series feature extraction.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct SeriesFeatureConfig {
        /// Lag offsets, in bins.
        pub lags: Vec<usize>,
        /// Rolling-window sizes, in bins (mean and std each).
        pub windows: Vec<usize>,
        /// Forecast horizon, in bins (direct h-step-ahead target).
        pub horizon: usize,
    }

    impl SeriesFeatureConfig {
        /// Defaults for 10-minute bins and a 3-hour horizon (the paper's
        /// `PeriodicCheck` looks ~3 h ahead, §4.3.2).
        pub fn default_10min() -> Self {
            SeriesFeatureConfig {
                lags: vec![1, 2, 3, 6, 12, 36, 72, 144],
                windows: vec![6, 36, 144],
                horizon: 18,
            }
        }

        /// Number of features produced.
        pub fn num_features(&self) -> usize {
            self.lags.len() + 2 * self.windows.len() + 6
        }

        /// Earliest index with full feature support.
        pub fn min_index(&self) -> usize {
            self.lags
                .iter()
                .chain(self.windows.iter())
                .copied()
                .max()
                .unwrap_or(1)
        }
    }

    /// Feature vector describing the series at index `idx` (uses only
    /// values `<= idx`): lags, rolling means/stds, and calendar encodings
    /// of the bin timestamp.
    pub fn features_at(
        values: &[f64],
        idx: usize,
        t0: i64,
        bin: i64,
        cal: &Calendar,
        cfg: &SeriesFeatureConfig,
    ) -> Vec<f64> {
        assert!(idx >= cfg.min_index(), "insufficient history at {idx}");
        let mut row = Vec::with_capacity(cfg.num_features());
        for &lag in &cfg.lags {
            row.push(values[idx - lag]);
        }
        for &w in &cfg.windows {
            let slice = &values[idx + 1 - w..=idx];
            let mean = slice.iter().sum::<f64>() / w as f64;
            let var = slice.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / w as f64;
            row.push(mean);
            row.push(var.sqrt());
        }
        let t = t0 + bin * idx as i64;
        row.push(cal.hour_of_day(t) as f64);
        row.push(cal.weekday(t).index() as f64);
        row.push(f64::from(cal.is_offday(t)));
        row.push(cal.day_of_trace(t) as f64);
        row.push(cal.month_index(t) as f64);
        row.push(((t.rem_euclid(86_400)) / bin.max(1)) as f64); // bin-of-day
        row
    }

    /// Build the supervised (columns, targets, indices) set for direct
    /// h-step-ahead forecasting: target at feature index `i` is
    /// `values[i + horizon]`.
    pub fn build_series_dataset(
        values: &[f64],
        t0: i64,
        bin: i64,
        cal: &Calendar,
        cfg: &SeriesFeatureConfig,
    ) -> (Vec<Vec<f64>>, Vec<f64>, Vec<usize>) {
        let start = cfg.min_index();
        let end = values.len().saturating_sub(cfg.horizon);
        let mut cols = vec![Vec::new(); cfg.num_features()];
        let mut targets = Vec::new();
        let mut indices = Vec::new();
        for i in start..end {
            let row = features_at(values, i, t0, bin, cal, cfg);
            for (c, v) in cols.iter_mut().zip(row) {
                c.push(v);
            }
            targets.push(values[i + cfg.horizon]);
            indices.push(i);
        }
        (cols, targets, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::job::{build_training_matrix, FeatureExtractor, FEATURE_NAMES, NUM_FEATURES};
    use super::series::{build_series_dataset, features_at, SeriesFeatureConfig};
    use helios_trace::{generate, venus_profile, Calendar, GeneratorConfig};

    #[test]
    fn job_matrix_is_rectangular_and_causal() {
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.03,
                seed: 5,
            },
        )
        .unwrap();
        let hi = t.calendar.month_end(1);
        let (cols, y, _) = build_training_matrix(&t, 0, hi);
        assert_eq!(cols.len(), NUM_FEATURES);
        assert!(!y.is_empty());
        for c in &cols {
            assert_eq!(c.len(), y.len());
        }
        // Targets are log-durations of real jobs: positive and bounded.
        assert!(y.iter().all(|&v| (0.0..=16.0).contains(&v)));
    }

    #[test]
    fn feature_names_align() {
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.03,
                seed: 5,
            },
        )
        .unwrap();
        let mut ex = FeatureExtractor::new();
        let job = t.gpu_jobs().next().unwrap();
        let row = ex.extract(job, &t.names, &t.calendar);
        assert_eq!(row.len(), NUM_FEATURES);
        assert_eq!(row[2], job.gpus as f64);
    }

    #[test]
    fn rolling_stats_update_on_observe() {
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.03,
                seed: 5,
            },
        )
        .unwrap();
        let mut ex = FeatureExtractor::new();
        let job = *t.gpu_jobs().next().unwrap();
        let before = ex.extract(&job, &t.names, &t.calendar);
        ex.observe(&job, &t.names);
        let after = ex.extract(&job, &t.names, &t.calendar);
        // user_mean_logdur reflects the observed duration now.
        let expect = (job.duration as f64).ln();
        assert!((after[13] - expect).abs() < 1e-9);
        // bucket count incremented.
        assert_eq!(after[15], before[15] + 1.0);
    }

    #[test]
    fn series_features_shape() {
        let cal = Calendar::helios_2020();
        let cfg = SeriesFeatureConfig::default_10min();
        let values: Vec<f64> = (0..1_000)
            .map(|i| (i as f64 / 20.0).sin() * 10.0 + 50.0)
            .collect();
        let row = features_at(&values, 200, 0, 600, &cal, &cfg);
        assert_eq!(row.len(), cfg.num_features());
        // First lag feature equals values[idx-1].
        assert_eq!(row[0], values[199]);
    }

    #[test]
    fn series_dataset_targets_are_shifted() {
        let cal = Calendar::helios_2020();
        let cfg = SeriesFeatureConfig {
            lags: vec![1, 2],
            windows: vec![3],
            horizon: 5,
        };
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let (cols, y, idx) = build_series_dataset(&values, 0, 600, &cal, &cfg);
        assert_eq!(cols.len(), cfg.num_features());
        assert_eq!(y.len(), idx.len());
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(y[k], values[i + 5]);
        }
        // Last target uses the final value.
        assert_eq!(*y.last().unwrap(), 49.0);
    }

    #[test]
    #[should_panic(expected = "insufficient history")]
    fn series_features_guard_history() {
        let cal = Calendar::helios_2020();
        let cfg = SeriesFeatureConfig::default_10min();
        let values = vec![1.0; 500];
        features_at(&values, 3, 0, 600, &cal, &cfg);
    }
}
