//! Gradient-Boosted Decision Trees for regression (squared loss), built
//! from scratch in the style of LightGBM \[42\]: quantile-binned histograms,
//! shrinkage, row/feature subsampling and validation-based early stopping.
//!
//! This is the model behind both paper services: QSSF's job-GPU-time
//! estimator P_M (§4.2.2) and CES's node-demand forecaster (§4.3.2).

use crate::binning::BinnedDataset;
use crate::tree::{build_tree_in, Tree, TreeParams, TreeWorkspace};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Maximum boosting rounds.
    pub num_trees: usize,
    pub learning_rate: f64,
    pub max_depth: usize,
    pub min_leaf: usize,
    pub lambda: f64,
    /// Row subsample fraction per tree.
    pub subsample: f64,
    /// Feature subsample fraction per tree.
    pub colsample: f64,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
    /// Stop when the validation RMSE has not improved for this many
    /// consecutive checks (0 disables early stopping).
    pub early_stopping: usize,
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            num_trees: 200,
            learning_rate: 0.1,
            max_depth: 6,
            min_leaf: 20,
            lambda: 1.0,
            subsample: 0.8,
            colsample: 0.8,
            max_bins: 128,
            early_stopping: 10,
            seed: 7,
        }
    }
}

/// A trained GBDT regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
}

impl Gbdt {
    /// Fit on a column-major feature matrix (`features[feature][row]`).
    /// If `valid` is provided (same layout), early stopping monitors its
    /// RMSE.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        params: &GbdtParams,
        valid: Option<(&[Vec<f64>], &[f64])>,
    ) -> Gbdt {
        assert!(!features.is_empty());
        let n = targets.len();
        assert!(features.iter().all(|c| c.len() == n));
        assert!(n > 0, "empty training set");

        let data = BinnedDataset::from_columns(features, params.max_bins);
        let base = targets.iter().sum::<f64>() / n as f64;
        let mut preds = vec![base; n];
        let mut rng = ChaCha12Rng::seed_from_u64(params.seed);

        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_leaf: params.min_leaf,
            lambda: params.lambda,
            min_gain: 1e-9,
        };

        // Validation rows (row-major) for early stopping.
        let valid_rows: Option<(Vec<Vec<f64>>, &[f64])> = valid.map(|(cols, y)| {
            let m = y.len();
            let rows = (0..m)
                .map(|r| cols.iter().map(|c| c[r]).collect())
                .collect();
            (rows, y)
        });

        let mut model = Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees: Vec::with_capacity(params.num_trees),
        };
        let mut best_rmse = f64::INFINITY;
        let mut best_len = 0;
        let mut stale_checks = 0;
        let mut ws = TreeWorkspace::default();

        let num_features = features.len() as u16;
        for round in 0..params.num_trees {
            // Row subsample.
            let rows: Vec<u32> = if params.subsample < 1.0 {
                (0..n as u32)
                    .filter(|_| rng.gen::<f64>() < params.subsample)
                    .collect()
            } else {
                (0..n as u32).collect()
            };
            if rows.len() < 2 * params.min_leaf {
                break;
            }
            // Out-of-sample complement (`rows` is ascending): these rows
            // miss the grower's leaf partitions and are routed through a
            // tree traversal below instead.
            let out_rows: Vec<u32> = if rows.len() < n {
                let mut out = Vec::with_capacity(n - rows.len());
                let mut it = rows.iter().copied().peekable();
                for r in 0..n as u32 {
                    if it.peek() == Some(&r) {
                        it.next();
                    } else {
                        out.push(r);
                    }
                }
                out
            } else {
                Vec::new()
            };
            // Gradients of 1/2 (pred - y)^2, gathered straight into node
            // order — the full-length gradient vector is never built.
            let grads: Vec<f64> = rows
                .iter()
                .map(|&r| preds[r as usize] - targets[r as usize])
                .collect();
            // Feature subsample.
            let cols: Vec<u16> = if params.colsample < 1.0 {
                let mut chosen: Vec<u16> = (0..num_features)
                    .filter(|_| rng.gen::<f64>() < params.colsample)
                    .collect();
                if chosen.is_empty() {
                    chosen.push(rng.gen_range(0..num_features));
                }
                chosen
            } else {
                (0..num_features).collect()
            };

            // In-sample predictions update for free as leaves form.
            let lr = params.learning_rate;
            let tree = build_tree_in(
                &mut ws,
                &data,
                rows,
                grads,
                &cols,
                &tree_params,
                |value, leaf_rows| {
                    for &r in leaf_rows {
                        preds[r as usize] += lr * value;
                    }
                },
            );
            // Out-of-sample rows take the traversal path.
            for &r in &out_rows {
                preds[r as usize] += lr * tree.predict_binned(&data, r as usize);
            }
            model.trees.push(tree);

            // Early stopping on validation RMSE every 5 rounds.
            if params.early_stopping > 0 && (round + 1) % 5 == 0 {
                if let Some((ref vrows, vy)) = valid_rows {
                    let rmse = {
                        let mut acc = 0.0;
                        for (row, &y) in vrows.iter().zip(vy.iter()) {
                            let p = model.predict_row(row);
                            acc += (p - y) * (p - y);
                        }
                        (acc / vy.len() as f64).sqrt()
                    };
                    if rmse < best_rmse - 1e-9 {
                        best_rmse = rmse;
                        best_len = model.trees.len();
                        stale_checks = 0;
                    } else {
                        stale_checks += 1;
                        if stale_checks >= params.early_stopping {
                            model.trees.truncate(best_len);
                            break;
                        }
                    }
                }
            }
        }
        // If early stopping tracked a best prefix, honor it.
        if best_len > 0 && best_len < model.trees.len() {
            model.trees.truncate(best_len);
        }
        model
    }

    /// Predict one raw feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut p = self.base;
        for t in &self.trees {
            p += self.learning_rate * t.predict_row(row);
        }
        p
    }

    /// Predict many rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Number of trees kept after fitting.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The constant base prediction (training-target mean).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Split-frequency feature importance: how often each of the
    /// `num_features` features was chosen as a split across the ensemble,
    /// normalized to sum to 1. (The paper's feature analysis — e.g. "job
    /// name and user dominate duration prediction" — is read off this.)
    pub fn feature_importance(&self, num_features: usize) -> Vec<f64> {
        let mut counts = vec![0u64; num_features];
        for t in &self.trees {
            t.accumulate_split_counts(&mut counts);
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; num_features];
        }
        counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns_from_rows(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let p = rows[0].len();
        (0..p)
            .map(|f| rows.iter().map(|r| r[f]).collect())
            .collect()
    }

    #[test]
    fn fits_linear_function() {
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 20) as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let cols = columns_from_rows(&rows);
        let model = Gbdt::fit(
            &cols,
            &y,
            &GbdtParams {
                num_trees: 150,
                early_stopping: 0,
                ..Default::default()
            },
            None,
        );
        let preds = model.predict(&rows);
        let rmse = crate::metrics::rmse(&y, &preds);
        let spread =
            y.iter().cloned().fold(f64::MIN, f64::max) - y.iter().cloned().fold(f64::MAX, f64::min);
        assert!(rmse < 0.05 * spread, "rmse {rmse} vs spread {spread}");
    }

    #[test]
    fn fits_nonlinear_interaction() {
        // Asymmetric XOR-ish interaction that a linear model cannot fit
        // (a perfectly symmetric XOR has zero first-split gain for any
        // greedy tree learner, LightGBM included).
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| match (r[0] > 0.5, r[1] > 0.5) {
                (false, true) => 1.0,
                (true, false) => 0.8,
                _ => 0.0,
            })
            .collect();
        let cols = columns_from_rows(&rows);
        let model = Gbdt::fit(
            &cols,
            &y,
            &GbdtParams {
                num_trees: 60,
                max_depth: 3,
                min_leaf: 5,
                subsample: 1.0,
                colsample: 1.0,
                early_stopping: 0,
                ..Default::default()
            },
            None,
        );
        assert!(model.predict_row(&[0.0, 1.0]) > 0.8);
        assert!(model.predict_row(&[1.0, 1.0]) < 0.2);
    }

    #[test]
    fn early_stopping_caps_trees() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 10) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let cols = columns_from_rows(&rows);
        // Validation = same distribution; the model converges quickly, so
        // early stopping should cut well below 500 trees.
        let model = Gbdt::fit(
            &cols,
            &y,
            &GbdtParams {
                num_trees: 500,
                early_stopping: 3,
                ..Default::default()
            },
            Some((&cols, &y)),
        );
        assert!(model.num_trees() < 500, "kept {}", model.num_trees());
    }

    #[test]
    fn constant_target_predicts_constant() {
        let cols = vec![(0..50).map(|i| i as f64).collect::<Vec<f64>>()];
        let y = vec![7.5; 50];
        let model = Gbdt::fit(&cols, &y, &GbdtParams::default(), None);
        assert!((model.predict_row(&[3.0]) - 7.5).abs() < 1e-6);
        assert_eq!(model.base(), 7.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![(i % 30) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 0.3).sin()).collect();
        let cols = columns_from_rows(&rows);
        let p = GbdtParams {
            num_trees: 30,
            ..Default::default()
        };
        let a = Gbdt::fit(&cols, &y, &p, None);
        let b = Gbdt::fit(&cols, &y, &p, None);
        assert_eq!(a.predict_row(&[5.0]), b.predict_row(&[5.0]));
    }

    #[test]
    fn feature_importance_identifies_the_signal() {
        // y depends only on feature 0; feature 1 is pure noise.
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| vec![(i % 25) as f64, ((i * 31) % 17) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let cols = columns_from_rows(&rows);
        let model = Gbdt::fit(
            &cols,
            &y,
            &GbdtParams {
                num_trees: 40,
                subsample: 1.0,
                colsample: 1.0,
                early_stopping: 0,
                ..Default::default()
            },
            None,
        );
        let imp = model.feature_importance(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "importance {imp:?}");
    }

    #[test]
    fn generalizes_to_heldout_rows() {
        // Train on even x, test on odd x of a smooth function.
        let train_rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(2 * i) as f64]).collect();
        let test_rows: Vec<Vec<f64>> = (0..199).map(|i| vec![(2 * i + 1) as f64]).collect();
        let f = |x: f64| (x / 40.0).sin() * 10.0;
        let y: Vec<f64> = train_rows.iter().map(|r| f(r[0])).collect();
        let cols = columns_from_rows(&train_rows);
        let model = Gbdt::fit(
            &cols,
            &y,
            &GbdtParams {
                num_trees: 120,
                early_stopping: 0,
                ..Default::default()
            },
            None,
        );
        let expect: Vec<f64> = test_rows.iter().map(|r| f(r[0])).collect();
        let preds = model.predict(&test_rows);
        assert!(crate::metrics::rmse(&expect, &preds) < 1.5);
    }
}
