//! LSTM forecasting baseline (§4.3.2 compares GBDT against an LSTM \[11\]).
//!
//! A deliberately small but real implementation: single-layer univariate
//! LSTM with a linear head, trained by truncated BPTT with Adam, predicting
//! the series value `horizon` bins ahead of the input window (direct
//! forecasting, matching how the GBDT forecaster is evaluated).

// Index-based loops mirror the textbook gate equations.
#![allow(clippy::needless_range_loop)]

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LstmParams {
    pub hidden: usize,
    /// Input window length (bins).
    pub seq_len: usize,
    /// Forecast horizon (bins ahead of the window end).
    pub horizon: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    /// Cap on training windows per epoch (random subsample).
    pub max_windows: usize,
    pub seed: u64,
}

impl Default for LstmParams {
    fn default() -> Self {
        LstmParams {
            hidden: 16,
            seq_len: 48,
            horizon: 18,
            epochs: 30,
            learning_rate: 0.01,
            max_windows: 2_000,
            seed: 11,
        }
    }
}

/// Flat parameter vector with Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamVec {
    w: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamVec {
    fn new(n: usize, rng: &mut ChaCha12Rng, scale: f64) -> Self {
        AdamVec {
            w: (0..n)
                .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
                .collect(),
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn step(&mut self, grads: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A trained LSTM forecaster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmForecaster {
    params: LstmParams,
    /// Input weights, gate-major: [4H] (univariate input).
    wx: AdamVec,
    /// Recurrent weights [4H x H], row-major by gate unit.
    wh: AdamVec,
    /// Gate biases [4H].
    b: AdamVec,
    /// Output head [H] + bias.
    wy: AdamVec,
    by: AdamVec,
    /// Normalization (z-score) of the training series.
    mean: f64,
    std: f64,
    steps: usize,
}

struct StepCache {
    x: f64,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    h: Vec<f64>,
    c_prev: Vec<f64>,
    h_prev: Vec<f64>,
}

impl LstmForecaster {
    /// Train on `series` (raw scale).
    pub fn fit(series: &[f64], params: LstmParams) -> LstmForecaster {
        let need = params.seq_len + params.horizon + 1;
        assert!(
            series.len() >= need,
            "series too short: {} < {need}",
            series.len()
        );
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / series.len() as f64;
        let std = var.sqrt().max(1e-9);
        let norm: Vec<f64> = series.iter().map(|v| (v - mean) / std).collect();

        let h = params.hidden;
        let mut rng = ChaCha12Rng::seed_from_u64(params.seed);
        let scale = (1.0 / h as f64).sqrt();
        let mut model = LstmForecaster {
            params,
            wx: AdamVec::new(4 * h, &mut rng, scale),
            wh: AdamVec::new(4 * h * h, &mut rng, scale),
            b: AdamVec::new(4 * h, &mut rng, 0.0),
            wy: AdamVec::new(h, &mut rng, scale),
            by: AdamVec::new(1, &mut rng, 0.0),
            mean,
            std,
            steps: 0,
        };
        // Forget-gate bias init at 1.0 (standard trick for gradient flow).
        for i in h..2 * h {
            model.b.w[i] = 1.0;
        }

        let num_windows = norm.len() - model.params.seq_len - model.params.horizon;
        let mut order: Vec<usize> = (0..num_windows).collect();
        for _ in 0..model.params.epochs {
            // Shuffle and subsample windows.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let take = order.len().min(model.params.max_windows);
            for &start in order.iter().take(take) {
                let window = &norm[start..start + model.params.seq_len];
                let target = norm[start + model.params.seq_len - 1 + model.params.horizon];
                model.train_window(window, target);
            }
        }
        model
    }

    fn forward(&self, window: &[f64]) -> (Vec<StepCache>, f64) {
        let h = self.params.hidden;
        let mut hs = vec![0.0; h];
        let mut cs = vec![0.0; h];
        let mut caches = Vec::with_capacity(window.len());
        for &x in window {
            let mut i_g = vec![0.0; h];
            let mut f_g = vec![0.0; h];
            let mut g_g = vec![0.0; h];
            let mut o_g = vec![0.0; h];
            let c_prev = cs.clone();
            let h_prev = hs.clone();
            for u in 0..h {
                let mut zi = self.wx.w[u] * x + self.b.w[u];
                let mut zf = self.wx.w[h + u] * x + self.b.w[h + u];
                let mut zg = self.wx.w[2 * h + u] * x + self.b.w[2 * h + u];
                let mut zo = self.wx.w[3 * h + u] * x + self.b.w[3 * h + u];
                for k in 0..h {
                    let hk = h_prev[k];
                    zi += self.wh.w[u * h + k] * hk;
                    zf += self.wh.w[(h + u) * h + k] * hk;
                    zg += self.wh.w[(2 * h + u) * h + k] * hk;
                    zo += self.wh.w[(3 * h + u) * h + k] * hk;
                }
                i_g[u] = sigmoid(zi);
                f_g[u] = sigmoid(zf);
                g_g[u] = zg.tanh();
                o_g[u] = sigmoid(zo);
                cs[u] = f_g[u] * c_prev[u] + i_g[u] * g_g[u];
                hs[u] = o_g[u] * cs[u].tanh();
            }
            caches.push(StepCache {
                x,
                i: i_g,
                f: f_g,
                g: g_g,
                o: o_g,
                c: cs.clone(),
                h: hs.clone(),
                c_prev,
                h_prev,
            });
        }
        let y: f64 = hs.iter().zip(&self.wy.w).map(|(a, b)| a * b).sum::<f64>() + self.by.w[0];
        (caches, y)
    }

    fn train_window(&mut self, window: &[f64], target: f64) {
        let h = self.params.hidden;
        let (caches, y) = self.forward(window);
        let dy = y - target; // d(0.5 (y - t)^2)/dy

        let mut g_wx = vec![0.0; 4 * h];
        let mut g_wh = vec![0.0; 4 * h * h];
        let mut g_b = vec![0.0; 4 * h];
        let last_h = &caches.last().unwrap().h;
        let g_wy: Vec<f64> = last_h.iter().map(|&hh| dy * hh).collect();
        let g_by = vec![dy];

        let mut dh: Vec<f64> = self.wy.w.iter().map(|w| dy * w).collect();
        let mut dc = vec![0.0; h];
        for cache in caches.iter().rev() {
            let mut dh_prev = vec![0.0; h];
            for u in 0..h {
                let tanh_c = cache.c[u].tanh();
                let do_u = dh[u] * tanh_c;
                let dcu = dc[u] + dh[u] * cache.o[u] * (1.0 - tanh_c * tanh_c);
                let di = dcu * cache.g[u];
                let dg = dcu * cache.i[u];
                let df = dcu * cache.c_prev[u];
                dc[u] = dcu * cache.f[u];

                let dzi = di * cache.i[u] * (1.0 - cache.i[u]);
                let dzf = df * cache.f[u] * (1.0 - cache.f[u]);
                let dzg = dg * (1.0 - cache.g[u] * cache.g[u]);
                let dzo = do_u * cache.o[u] * (1.0 - cache.o[u]);

                g_wx[u] += dzi * cache.x;
                g_wx[h + u] += dzf * cache.x;
                g_wx[2 * h + u] += dzg * cache.x;
                g_wx[3 * h + u] += dzo * cache.x;
                g_b[u] += dzi;
                g_b[h + u] += dzf;
                g_b[2 * h + u] += dzg;
                g_b[3 * h + u] += dzo;
                for k in 0..h {
                    let hp = cache.h_prev[k];
                    g_wh[u * h + k] += dzi * hp;
                    g_wh[(h + u) * h + k] += dzf * hp;
                    g_wh[(2 * h + u) * h + k] += dzg * hp;
                    g_wh[(3 * h + u) * h + k] += dzo * hp;
                    dh_prev[k] += dzi * self.wh.w[u * h + k]
                        + dzf * self.wh.w[(h + u) * h + k]
                        + dzg * self.wh.w[(2 * h + u) * h + k]
                        + dzo * self.wh.w[(3 * h + u) * h + k];
                }
            }
            dh = dh_prev;
        }

        // Gradient clipping for stability.
        let clip = |g: &mut Vec<f64>| {
            let norm: f64 = g.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 5.0 {
                let s = 5.0 / norm;
                for x in g.iter_mut() {
                    *x *= s;
                }
            }
        };
        let (mut g_wy, mut g_wx, mut g_wh, mut g_b) = (g_wy, g_wx, g_wh, g_b);
        clip(&mut g_wx);
        clip(&mut g_wh);
        clip(&mut g_b);
        clip(&mut g_wy);

        self.steps += 1;
        let lr = self.params.learning_rate;
        let t = self.steps;
        self.wx.step(&g_wx, lr, t);
        self.wh.step(&g_wh, lr, t);
        self.b.step(&g_b, lr, t);
        self.wy.step(&g_wy, lr, t);
        self.by.step(&g_by, lr, t);
    }

    /// Predict the value `horizon` bins ahead of the window's last element.
    /// `window` must have length `seq_len` (raw scale).
    pub fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.params.seq_len, "window length mismatch");
        let norm: Vec<f64> = window.iter().map(|v| (v - self.mean) / self.std).collect();
        let (_, y) = self.forward(&norm);
        y * self.std + self.mean
    }

    /// Direct h-ahead forecasts for each index in `indices` of `series`
    /// (each index is the window *end*; requires `idx + 1 >= seq_len`).
    pub fn forecast_at(&self, series: &[f64], indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&idx| {
                assert!(idx + 1 >= self.params.seq_len);
                self.predict(&series[idx + 1 - self.params.seq_len..=idx])
            })
            .collect()
    }

    /// The forecast horizon this model was trained for.
    pub fn horizon(&self) -> usize {
        self.params.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    fn small_params() -> LstmParams {
        LstmParams {
            hidden: 8,
            seq_len: 24,
            horizon: 3,
            epochs: 16,
            learning_rate: 0.02,
            max_windows: 400,
            seed: 4,
        }
    }

    #[test]
    fn learns_a_sine_wave() {
        let series = sine_series(600);
        let model = LstmForecaster::fit(&series[..480], small_params());
        // Forecast on held-out windows.
        let indices: Vec<usize> = (480..(600 - 3)).step_by(7).collect();
        let preds = model.forecast_at(&series, &indices);
        let actual: Vec<f64> = indices.iter().map(|&i| series[i + 3]).collect();
        let err = crate::metrics::rmse(&actual, &preds);
        // Naive "predict the mean" RMSE would be ~7; the LSTM must beat it
        // clearly.
        assert!(err < 3.5, "rmse {err}");
    }

    #[test]
    fn beats_persistence_on_shifted_signal() {
        let series = sine_series(600);
        let model = LstmForecaster::fit(&series[..480], small_params());
        let indices: Vec<usize> = (480..590).step_by(5).collect();
        let preds = model.forecast_at(&series, &indices);
        let actual: Vec<f64> = indices.iter().map(|&i| series[i + 3]).collect();
        let persistence: Vec<f64> = indices.iter().map(|&i| series[i]).collect();
        let lstm_err = crate::metrics::rmse(&actual, &preds);
        let pers_err = crate::metrics::rmse(&actual, &persistence);
        assert!(
            lstm_err < pers_err,
            "lstm {lstm_err} vs persistence {pers_err}"
        );
    }

    #[test]
    fn constant_series_predicts_constant() {
        let series = vec![42.0; 200];
        let model = LstmForecaster::fit(&series, small_params());
        let p = model.predict(&[42.0; 24]);
        assert!((p - 42.0).abs() < 2.0, "{p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let series = sine_series(300);
        let a = LstmForecaster::fit(&series, small_params());
        let b = LstmForecaster::fit(&series, small_params());
        let w = &series[100..124];
        assert_eq!(a.predict(w), b.predict(w));
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn wrong_window_length_rejected() {
        let series = sine_series(300);
        let model = LstmForecaster::fit(&series, small_params());
        model.predict(&series[..10]);
    }
}
