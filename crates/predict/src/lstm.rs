//! LSTM forecasting baseline (§4.3.2 compares GBDT against an LSTM \[11\]).
//!
//! A deliberately small but real implementation: single-layer univariate
//! LSTM with a linear head, trained by truncated BPTT with Adam, predicting
//! the series value `horizon` bins ahead of the input window (direct
//! forecasting, matching how the GBDT forecaster is evaluated).

// Index-based loops mirror the textbook gate equations.
#![allow(clippy::needless_range_loop)]

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LstmParams {
    pub hidden: usize,
    /// Input window length (bins).
    pub seq_len: usize,
    /// Forecast horizon (bins ahead of the window end).
    pub horizon: usize,
    pub epochs: usize,
    pub learning_rate: f64,
    /// Cap on training windows per epoch (random subsample).
    pub max_windows: usize,
    pub seed: u64,
}

impl Default for LstmParams {
    fn default() -> Self {
        LstmParams {
            hidden: 16,
            seq_len: 48,
            horizon: 18,
            epochs: 30,
            learning_rate: 0.01,
            max_windows: 2_000,
            seed: 11,
        }
    }
}

/// Flat parameter vector with Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamVec {
    w: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamVec {
    fn new(n: usize, rng: &mut ChaCha12Rng, scale: f64) -> Self {
        AdamVec {
            w: (0..n)
                .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * scale)
                .collect(),
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn step(&mut self, grads: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.w[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A trained LSTM forecaster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmForecaster {
    params: LstmParams,
    /// Input weights, gate-major: [4H] (univariate input).
    wx: AdamVec,
    /// Recurrent weights [4H x H], row-major by gate unit.
    wh: AdamVec,
    /// Gate biases [4H].
    b: AdamVec,
    /// Output head [H] + bias.
    wy: AdamVec,
    by: AdamVec,
    /// Normalization (z-score) of the training series.
    mean: f64,
    std: f64,
    steps: usize,
}

/// Preallocated forward/backward buffers, reused across every training
/// window: per-step gate activations and states live in flat
/// `[seq_len x hidden]` matrices (step `t`'s values in row `t`, the
/// previous step's state read from row `t - 1`), so the loops allocate
/// nothing — no per-timestep `clone()`s, no per-gate fresh `Vec`s.
#[derive(Debug, Default)]
struct Workspace {
    /// Gate activations, `[seq_len x h]` each.
    ig: Vec<f64>,
    fg: Vec<f64>,
    gg: Vec<f64>,
    og: Vec<f64>,
    /// Cell / hidden states per step, `[seq_len x h]`.
    cs: Vec<f64>,
    hs: Vec<f64>,
    /// Inputs per step.
    xs: Vec<f64>,
    /// Gradient accumulators.
    g_wx: Vec<f64>,
    g_wh: Vec<f64>,
    g_b: Vec<f64>,
    g_wy: Vec<f64>,
    /// BPTT carries.
    dh: Vec<f64>,
    dh_prev: Vec<f64>,
    dc: Vec<f64>,
}

impl Workspace {
    /// Buffers the forward pass touches (all inference needs).
    fn ensure_forward(&mut self, seq_len: usize, h: usize) {
        self.ig.resize(seq_len * h, 0.0);
        self.fg.resize(seq_len * h, 0.0);
        self.gg.resize(seq_len * h, 0.0);
        self.og.resize(seq_len * h, 0.0);
        self.cs.resize(seq_len * h, 0.0);
        self.hs.resize(seq_len * h, 0.0);
        self.xs.resize(seq_len, 0.0);
    }

    /// Additionally the backward/gradient buffers (training only — the
    /// `4h²` recurrent-gradient buffer in particular is dead weight for
    /// inference).
    fn ensure_backward(&mut self, h: usize) {
        self.g_wx.resize(4 * h, 0.0);
        self.g_wh.resize(4 * h * h, 0.0);
        self.g_b.resize(4 * h, 0.0);
        self.g_wy.resize(h, 0.0);
        self.dh.resize(h, 0.0);
        self.dh_prev.resize(h, 0.0);
        self.dc.resize(h, 0.0);
    }
}

/// In-place L2 gradient clipping (no per-call closures).
fn clip(g: &mut [f64]) {
    let norm: f64 = g.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 5.0 {
        let s = 5.0 / norm;
        for x in g.iter_mut() {
            *x *= s;
        }
    }
}

impl LstmForecaster {
    /// Train on `series` (raw scale).
    pub fn fit(series: &[f64], params: LstmParams) -> LstmForecaster {
        let need = params.seq_len + params.horizon + 1;
        assert!(
            series.len() >= need,
            "series too short: {} < {need}",
            series.len()
        );
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / series.len() as f64;
        let std = var.sqrt().max(1e-9);
        let norm: Vec<f64> = series.iter().map(|v| (v - mean) / std).collect();

        let h = params.hidden;
        let mut rng = ChaCha12Rng::seed_from_u64(params.seed);
        let scale = (1.0 / h as f64).sqrt();
        let mut model = LstmForecaster {
            params,
            wx: AdamVec::new(4 * h, &mut rng, scale),
            wh: AdamVec::new(4 * h * h, &mut rng, scale),
            b: AdamVec::new(4 * h, &mut rng, 0.0),
            wy: AdamVec::new(h, &mut rng, scale),
            by: AdamVec::new(1, &mut rng, 0.0),
            mean,
            std,
            steps: 0,
        };
        // Forget-gate bias init at 1.0 (standard trick for gradient flow).
        for i in h..2 * h {
            model.b.w[i] = 1.0;
        }

        let num_windows = norm.len() - model.params.seq_len - model.params.horizon;
        let mut order: Vec<usize> = (0..num_windows).collect();
        let mut ws = Workspace::default();
        for _ in 0..model.params.epochs {
            // Shuffle and subsample windows.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let take = order.len().min(model.params.max_windows);
            for &start in order.iter().take(take) {
                let window = &norm[start..start + model.params.seq_len];
                let target = norm[start + model.params.seq_len - 1 + model.params.horizon];
                model.train_window(window, target, &mut ws);
            }
        }
        model
    }

    /// Forward pass over one window, filling the workspace's step caches.
    /// Step `t` reads the previous state from cache row `t - 1` (zeros at
    /// `t = 0`) — no per-step state clones.
    fn forward(&self, window: &[f64], ws: &mut Workspace) -> f64 {
        let h = self.params.hidden;
        ws.ensure_forward(window.len(), h);
        for (t, &x) in window.iter().enumerate() {
            ws.xs[t] = x;
            let row = t * h;
            let prev = row.wrapping_sub(h);
            for u in 0..h {
                let mut zi = self.wx.w[u] * x + self.b.w[u];
                let mut zf = self.wx.w[h + u] * x + self.b.w[h + u];
                let mut zg = self.wx.w[2 * h + u] * x + self.b.w[2 * h + u];
                let mut zo = self.wx.w[3 * h + u] * x + self.b.w[3 * h + u];
                if t > 0 {
                    let h_prev = &ws.hs[prev..prev + h];
                    for (k, &hk) in h_prev.iter().enumerate() {
                        zi += self.wh.w[u * h + k] * hk;
                        zf += self.wh.w[(h + u) * h + k] * hk;
                        zg += self.wh.w[(2 * h + u) * h + k] * hk;
                        zo += self.wh.w[(3 * h + u) * h + k] * hk;
                    }
                }
                let ig = sigmoid(zi);
                let fg = sigmoid(zf);
                let gg = zg.tanh();
                let og = sigmoid(zo);
                let c_prev = if t > 0 { ws.cs[prev + u] } else { 0.0 };
                let c = fg * c_prev + ig * gg;
                ws.ig[row + u] = ig;
                ws.fg[row + u] = fg;
                ws.gg[row + u] = gg;
                ws.og[row + u] = og;
                ws.cs[row + u] = c;
                ws.hs[row + u] = og * c.tanh();
            }
        }
        let last = (window.len() - 1) * h;
        ws.hs[last..last + h]
            .iter()
            .zip(&self.wy.w)
            .map(|(a, b)| a * b)
            .sum::<f64>()
            + self.by.w[0]
    }

    fn train_window(&mut self, window: &[f64], target: f64, ws: &mut Workspace) {
        let h = self.params.hidden;
        ws.ensure_backward(h);
        let y = self.forward(window, ws);
        let dy = y - target; // d(0.5 (y - t)^2)/dy

        ws.g_wx.fill(0.0);
        ws.g_wh.fill(0.0);
        ws.g_b.fill(0.0);
        let last = (window.len() - 1) * h;
        for (gw, &hh) in ws.g_wy.iter_mut().zip(&ws.hs[last..last + h]) {
            *gw = dy * hh;
        }
        let g_by = [dy];

        for (d, w) in ws.dh.iter_mut().zip(&self.wy.w) {
            *d = dy * w;
        }
        ws.dc.fill(0.0);
        for t in (0..window.len()).rev() {
            let row = t * h;
            let prev = row.wrapping_sub(h);
            let x = ws.xs[t];
            ws.dh_prev.fill(0.0);
            for u in 0..h {
                let ig = ws.ig[row + u];
                let fg = ws.fg[row + u];
                let gg = ws.gg[row + u];
                let og = ws.og[row + u];
                let tanh_c = ws.cs[row + u].tanh();
                let do_u = ws.dh[u] * tanh_c;
                let dcu = ws.dc[u] + ws.dh[u] * og * (1.0 - tanh_c * tanh_c);
                let di = dcu * gg;
                let dg = dcu * ig;
                let c_prev = if t > 0 { ws.cs[prev + u] } else { 0.0 };
                let df = dcu * c_prev;
                ws.dc[u] = dcu * fg;

                let dzi = di * ig * (1.0 - ig);
                let dzf = df * fg * (1.0 - fg);
                let dzg = dg * (1.0 - gg * gg);
                let dzo = do_u * og * (1.0 - og);

                ws.g_wx[u] += dzi * x;
                ws.g_wx[h + u] += dzf * x;
                ws.g_wx[2 * h + u] += dzg * x;
                ws.g_wx[3 * h + u] += dzo * x;
                ws.g_b[u] += dzi;
                ws.g_b[h + u] += dzf;
                ws.g_b[2 * h + u] += dzg;
                ws.g_b[3 * h + u] += dzo;
                if t > 0 {
                    for k in 0..h {
                        let hp = ws.hs[prev + k];
                        ws.g_wh[u * h + k] += dzi * hp;
                        ws.g_wh[(h + u) * h + k] += dzf * hp;
                        ws.g_wh[(2 * h + u) * h + k] += dzg * hp;
                        ws.g_wh[(3 * h + u) * h + k] += dzo * hp;
                        ws.dh_prev[k] += dzi * self.wh.w[u * h + k]
                            + dzf * self.wh.w[(h + u) * h + k]
                            + dzg * self.wh.w[(2 * h + u) * h + k]
                            + dzo * self.wh.w[(3 * h + u) * h + k];
                    }
                } else {
                    for k in 0..h {
                        ws.dh_prev[k] += dzi * self.wh.w[u * h + k]
                            + dzf * self.wh.w[(h + u) * h + k]
                            + dzg * self.wh.w[(2 * h + u) * h + k]
                            + dzo * self.wh.w[(3 * h + u) * h + k];
                    }
                }
            }
            std::mem::swap(&mut ws.dh, &mut ws.dh_prev);
        }

        // Gradient clipping for stability.
        clip(&mut ws.g_wx);
        clip(&mut ws.g_wh);
        clip(&mut ws.g_b);
        clip(&mut ws.g_wy);

        self.steps += 1;
        let lr = self.params.learning_rate;
        let t = self.steps;
        self.wx.step(&ws.g_wx, lr, t);
        self.wh.step(&ws.g_wh, lr, t);
        self.b.step(&ws.g_b, lr, t);
        self.wy.step(&ws.g_wy, lr, t);
        self.by.step(&g_by, lr, t);
    }

    /// Predict the value `horizon` bins ahead of the window's last element.
    /// `window` must have length `seq_len` (raw scale).
    pub fn predict(&self, window: &[f64]) -> f64 {
        self.predict_in(window, &mut Workspace::default(), &mut Vec::new())
    }

    fn predict_in(&self, window: &[f64], ws: &mut Workspace, norm: &mut Vec<f64>) -> f64 {
        assert_eq!(window.len(), self.params.seq_len, "window length mismatch");
        norm.clear();
        norm.extend(window.iter().map(|v| (v - self.mean) / self.std));
        let y = self.forward(norm, ws);
        y * self.std + self.mean
    }

    /// Direct h-ahead forecasts for each index in `indices` of `series`
    /// (each index is the window *end*; requires `idx + 1 >= seq_len`).
    /// One reused workspace serves every window.
    pub fn forecast_at(&self, series: &[f64], indices: &[usize]) -> Vec<f64> {
        let mut ws = Workspace::default();
        let mut norm = Vec::new();
        indices
            .iter()
            .map(|&idx| {
                assert!(idx + 1 >= self.params.seq_len);
                self.predict_in(
                    &series[idx + 1 - self.params.seq_len..=idx],
                    &mut ws,
                    &mut norm,
                )
            })
            .collect()
    }

    /// The forecast horizon this model was trained for.
    pub fn horizon(&self) -> usize {
        self.params.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| 50.0 + 10.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect()
    }

    fn small_params() -> LstmParams {
        LstmParams {
            hidden: 8,
            seq_len: 24,
            horizon: 3,
            epochs: 16,
            learning_rate: 0.02,
            max_windows: 400,
            seed: 4,
        }
    }

    #[test]
    fn learns_a_sine_wave() {
        let series = sine_series(600);
        let model = LstmForecaster::fit(&series[..480], small_params());
        // Forecast on held-out windows.
        let indices: Vec<usize> = (480..(600 - 3)).step_by(7).collect();
        let preds = model.forecast_at(&series, &indices);
        let actual: Vec<f64> = indices.iter().map(|&i| series[i + 3]).collect();
        let err = crate::metrics::rmse(&actual, &preds);
        // Naive "predict the mean" RMSE would be ~7; the LSTM must beat it
        // clearly.
        assert!(err < 3.5, "rmse {err}");
    }

    #[test]
    fn beats_persistence_on_shifted_signal() {
        let series = sine_series(600);
        let model = LstmForecaster::fit(&series[..480], small_params());
        let indices: Vec<usize> = (480..590).step_by(5).collect();
        let preds = model.forecast_at(&series, &indices);
        let actual: Vec<f64> = indices.iter().map(|&i| series[i + 3]).collect();
        let persistence: Vec<f64> = indices.iter().map(|&i| series[i]).collect();
        let lstm_err = crate::metrics::rmse(&actual, &preds);
        let pers_err = crate::metrics::rmse(&actual, &persistence);
        assert!(
            lstm_err < pers_err,
            "lstm {lstm_err} vs persistence {pers_err}"
        );
    }

    #[test]
    fn constant_series_predicts_constant() {
        let series = vec![42.0; 200];
        let model = LstmForecaster::fit(&series, small_params());
        let p = model.predict(&[42.0; 24]);
        assert!((p - 42.0).abs() < 2.0, "{p}");
    }

    #[test]
    fn deterministic_given_seed() {
        let series = sine_series(300);
        let a = LstmForecaster::fit(&series, small_params());
        let b = LstmForecaster::fit(&series, small_params());
        let w = &series[100..124];
        assert_eq!(a.predict(w), b.predict(w));
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn wrong_window_length_rejected() {
        let series = sine_series(300);
        let model = LstmForecaster::fit(&series, small_params());
        model.predict(&series[..10]);
    }
}
