//! Property tests: the bucketed, index-maintained `NodePool` must be
//! observably identical to the naive O(nodes) scan pool it replaced —
//! same allocations (including tie-breaks), same aggregates, same
//! feasibility verdicts — across seeded random place/release sequences,
//! for both placement policies, 3 seeds × 2 cluster presets. Plus: the
//! undo-log trial must restore the pool byte-for-byte.

use helios_sim::{Allocation, NodePool, Placement};
use helios_trace::{saturn, venus};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Verbatim reimplementation of the pre-bucketing scan pool: linear
/// best-/worst-fit scans over a per-node free vector. This is the
/// reference semantics the indexed pool must reproduce exactly.
struct NaivePool {
    gpus_per_node: u32,
    free: Vec<u32>,
}

impl NaivePool {
    fn new(nodes: u32, gpus_per_node: u32) -> Self {
        NaivePool {
            gpus_per_node,
            free: vec![gpus_per_node; nodes as usize],
        }
    }

    fn free_gpus(&self) -> u32 {
        self.free.iter().sum()
    }

    fn busy_nodes(&self) -> u32 {
        self.free
            .iter()
            .filter(|&&f| f < self.gpus_per_node)
            .count() as u32
    }

    fn try_place(&mut self, g: u32, placement: Placement) -> Option<Vec<(u32, u32)>> {
        assert!(g >= 1);
        if g < self.gpus_per_node {
            let candidate = match placement {
                Placement::Consolidate => self
                    .free
                    .iter()
                    .enumerate()
                    .filter(|(_, &f)| f >= g)
                    .min_by_key(|(_, &f)| f),
                Placement::Scatter => self
                    .free
                    .iter()
                    .enumerate()
                    .filter(|(_, &f)| f >= g)
                    .max_by_key(|(_, &f)| f),
            };
            let (idx, _) = candidate?;
            self.free[idx] -= g;
            return Some(vec![(idx as u32, g)]);
        }
        let full_nodes = (g / self.gpus_per_node) as usize;
        let rem = g % self.gpus_per_node;
        let empty: Vec<usize> = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f == self.gpus_per_node)
            .map(|(i, _)| i)
            .collect();
        if empty.len() < full_nodes {
            return None;
        }
        let mut slices: Vec<(u32, u32)> = empty[..full_nodes]
            .iter()
            .map(|&i| (i as u32, self.gpus_per_node))
            .collect();
        if rem > 0 {
            let chosen: Vec<usize> = empty[..full_nodes].to_vec();
            let candidate = self
                .free
                .iter()
                .enumerate()
                .filter(|(i, &f)| f >= rem && !chosen.contains(i))
                .min_by_key(|(_, &f)| f);
            let (idx, _) = candidate?;
            slices.push((idx as u32, rem));
        }
        for &(i, g) in &slices {
            self.free[i as usize] -= g;
        }
        Some(slices)
    }

    fn release(&mut self, slices: &[(u32, u32)]) {
        for &(i, g) in slices {
            self.free[i as usize] += g;
            assert!(self.free[i as usize] <= self.gpus_per_node);
        }
    }
}

/// Drive both pools through an identical random op sequence and compare
/// every observable after every op.
fn drive(nodes: u32, gpus_per_node: u32, placement: Placement, seed: u64, ops: usize) {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut indexed = NodePool::new(nodes, gpus_per_node);
    let mut naive = NaivePool::new(nodes, gpus_per_node);
    let mut live: Vec<Allocation> = Vec::new();
    let max_g = 4 * gpus_per_node;
    for step in 0..ops {
        let place = live.is_empty() || rng.gen_range(0..100) < 55;
        if place {
            let g = match rng.gen_range(0..6) {
                0 => 1,
                1 => rng.gen_range(1..=gpus_per_node.max(2) - 1).max(1),
                2 => gpus_per_node,
                _ => rng.gen_range(1..=max_g),
            };
            let fits_before = indexed.fits(g);
            let a = indexed.try_place(g, placement);
            let b = naive.try_place(g, placement);
            assert_eq!(
                a.as_ref().map(|x| x.slices().to_vec()),
                b,
                "seed {seed} step {step}: placement of {g} GPUs diverged"
            );
            assert_eq!(
                fits_before,
                a.is_some(),
                "seed {seed} step {step}: fits({g}) must predict try_place"
            );
            if let Some(a) = a {
                live.push(a);
            }
        } else {
            let i = rng.gen_range(0..live.len());
            let a = live.swap_remove(i);
            naive.release(a.slices());
            indexed.release(&a);
        }
        assert_eq!(
            indexed.free_gpus(),
            naive.free_gpus(),
            "seed {seed} step {step}"
        );
        assert_eq!(
            indexed.busy_nodes(),
            naive.busy_nodes(),
            "seed {seed} step {step}"
        );
    }
}

#[test]
fn bucketed_pool_matches_naive_scan_pool() {
    // "Presets": the Venus and Saturn node counts with the DGX-1 8-GPU
    // layout the paper's clusters share (Table 1).
    let presets = [(venus().nodes, 8u32), (saturn().nodes, 8u32)];
    for (nodes, gpn) in presets {
        for seed in [1u64, 7, 42] {
            for placement in [Placement::Consolidate, Placement::Scatter] {
                drive(nodes, gpn, placement, seed, 2_000);
            }
        }
    }
}

#[test]
fn odd_gpu_layouts_match_too() {
    // Non-power-of-two and tiny layouts exercise the bucket edge cases.
    for (nodes, gpn) in [(7u32, 3u32), (64, 5), (129, 8), (2, 1)] {
        for placement in [Placement::Consolidate, Placement::Scatter] {
            drive(nodes, gpn, placement, 1234, 1_000);
        }
    }
}

#[test]
fn trial_restores_the_pool_exactly_under_random_ops() {
    let mut rng = ChaCha12Rng::seed_from_u64(99);
    let mut pool = NodePool::new(saturn().nodes, 8);
    let mut live: Vec<Allocation> = Vec::new();
    // Fill to a fragmented mid-load state.
    for _ in 0..300 {
        let g = rng.gen_range(1..=16);
        if let Some(a) = pool.try_place(g, Placement::Consolidate) {
            live.push(a);
        }
    }
    for round in 0..200 {
        let snapshot = pool.clone();
        {
            let mut trial = pool.trial();
            // Random interleaving of trial releases (each live allocation
            // at most once) and trial placements.
            let mut released: Vec<usize> = Vec::new();
            for _ in 0..rng.gen_range(1..8) {
                if rng.gen_bool(0.5) && released.len() < live.len() {
                    let i = loop {
                        let i = rng.gen_range(0..live.len());
                        if !released.contains(&i) {
                            break i;
                        }
                    };
                    released.push(i);
                    trial.release(&live[i]);
                } else {
                    let g = rng.gen_range(1..=24);
                    let _ = trial.try_place(g, Placement::Scatter);
                }
            }
        }
        assert_eq!(pool, snapshot, "round {round}: trial must roll back");
        assert_eq!(pool.free_gpus(), snapshot.free_gpus());
        assert_eq!(pool.busy_nodes(), snapshot.busy_nodes());
    }
}
