//! Property tests for the pluggable kernel: the incremental
//! `Simulator` + policy-object path must produce byte-identical
//! `JobOutcome` vectors to the one-shot `simulate()` wrapper, for every
//! built-in policy, across random workloads (seeded ChaCha), batch-fed
//! arrivals, and two cluster presets. Plus: observer event-stream
//! ordering invariants.

use helios_sim::{
    simulate, simulate_with, ClusterView, JobOutcome, KernelConfig, Policy, SimConfig, SimEvent,
    SimJob, SimObserver, Simulator,
};
use helios_trace::{saturn, venus, ClusterSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::HashMap;

/// Random but valid workload: every job fits its VC.
fn random_jobs(spec: &ClusterSpec, n: u64, rng: &mut ChaCha12Rng) -> Vec<SimJob> {
    let mut jobs: Vec<SimJob> = (0..n)
        .map(|id| {
            let vc = rng.gen_range(0..spec.num_vcs()) as u16;
            let cap = spec.vc_gpus(vc);
            let choices: Vec<u32> = [1u32, 1, 2, 4, 8, 16, 32]
                .into_iter()
                .filter(|&g| g <= cap)
                .collect();
            SimJob {
                id,
                vc,
                gpus: choices[rng.gen_range(0..choices.len())],
                submit: rng.gen_range(0..200_000i64),
                duration: 1 + rng.gen_range(0..30_000i64),
                priority: rng.gen_range(0..1_000_000i64) as f64,
            }
        })
        .collect();
    jobs.sort_by_key(|j| (j.submit, j.id));
    jobs
}

fn by_id(outcomes: &[JobOutcome]) -> HashMap<u64, JobOutcome> {
    outcomes.iter().map(|o| (o.id, *o)).collect()
}

#[test]
fn incremental_batches_match_one_shot_across_seeds_policies_presets() {
    for preset in [venus(), saturn()] {
        for seed in [1u64, 7, 42] {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let jobs = random_jobs(&preset, 400, &mut rng);
            for policy in [Policy::Fifo, Policy::Sjf, Policy::Srtf] {
                let one_shot = simulate(&preset, &jobs, &SimConfig::new(policy))
                    .expect("valid workload")
                    .outcomes;
                assert_eq!(one_shot.len(), jobs.len());

                // Feed arrivals in 5 time-ordered batches, advancing the
                // kernel between pushes and draining as we go.
                let mut sim = Simulator::new(&preset, policy.build());
                let batch = jobs.len().div_ceil(5);
                let mut drained: Vec<JobOutcome> = Vec::new();
                for chunk in jobs.chunks(batch) {
                    // Run up to just before this chunk's first arrival,
                    // then admit it.
                    sim.run_until(chunk[0].submit - 1);
                    sim.push_jobs(chunk).expect("arrivals respect horizon");
                    drained.extend(sim.drain_outcomes());
                }
                sim.run_to_completion();
                drained.extend(sim.drain_outcomes());
                assert_eq!(
                    drained.len(),
                    one_shot.len(),
                    "{policy:?} seed {seed}: every job finishes exactly once"
                );

                // Byte-identical outcome per job id.
                let a = by_id(&one_shot);
                let b = by_id(&drained);
                assert_eq!(a, b, "{policy:?} seed {seed}: outcomes must match");
            }
        }
    }
}

#[test]
fn policy_object_path_is_identical_to_enum_path() {
    // simulate() is defined over Policy::build(); drive simulate_with
    // directly with explicitly-constructed policy objects and compare.
    use helios_sim::{FifoPolicy, PriorityPolicy, SjfPolicy, SrtfPolicy};
    let spec = venus();
    let mut rng = ChaCha12Rng::seed_from_u64(99);
    let jobs = random_jobs(&spec, 300, &mut rng);
    let cases: Vec<(Policy, Box<dyn helios_sim::SchedulingPolicy>)> = vec![
        (Policy::Fifo, Box::new(FifoPolicy)),
        (Policy::Sjf, Box::new(SjfPolicy)),
        (Policy::Srtf, Box::new(SrtfPolicy)),
        (Policy::Priority, Box::new(PriorityPolicy::default())),
    ];
    for (policy, object) in cases {
        let via_enum = simulate(&spec, &jobs, &SimConfig::new(policy)).unwrap();
        let via_object = simulate_with(&spec, &jobs, object, &KernelConfig::default()).unwrap();
        assert_eq!(via_enum.outcomes, via_object.outcomes, "{policy:?}");
    }
}

#[test]
fn blocked_head_memo_is_outcome_invisible() {
    // The kernel memoizes failed blocked-head decisions (skipping victim
    // re-scans) whenever the policy grants rank-stability horizons. The
    // memo must be a pure optimization: outcomes with it enabled are
    // byte-identical to exhaustive per-event re-scanning, for preemptive
    // policies with stable ranks (Tiresias), drifting ranks (SRTF), and
    // non-preemptive policies (FIFO/SJF) alike.
    use helios_sim::{FifoPolicy, SjfPolicy, SrtfPolicy, TiresiasPolicy};
    type Ctor = fn() -> Box<dyn helios_sim::SchedulingPolicy>;
    let ctors: [Ctor; 5] = [
        || Box::new(TiresiasPolicy::default()),
        || {
            Box::new(TiresiasPolicy {
                quantum: 500.0, // frequent level crossings: short horizons
                levels: 6,
            })
        },
        || Box::new(SrtfPolicy),
        || Box::new(FifoPolicy),
        || Box::new(SjfPolicy),
    ];
    for preset in [venus(), saturn()] {
        for seed in [11u64, 23, 47] {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let jobs = random_jobs(&preset, 400, &mut rng);
            for ctor in &ctors {
                let run = |memo: bool| {
                    let mut sim = Simulator::new(&preset, ctor());
                    sim.set_blocked_memo(memo);
                    sim.push_jobs(&jobs).expect("valid workload");
                    sim.run_to_completion();
                    sim.drain_outcomes()
                };
                let with_memo = run(true);
                let without = run(false);
                assert_eq!(
                    with_memo, without,
                    "seed {seed}: memoized and exhaustive scans must agree"
                );
            }
        }
    }
}

/// Records the raw event stream for ordering assertions.
#[derive(Default)]
struct EventLog {
    events: Vec<(i64, String, u64)>,
}

impl SimObserver for EventLog {
    fn on_event(&mut self, event: &SimEvent, _cluster: &ClusterView<'_>) {
        let kind = match event {
            SimEvent::Submit { .. } => "submit",
            SimEvent::Start { .. } => "start",
            SimEvent::Finish { .. } => "finish",
            SimEvent::Preempt { .. } => "preempt",
            SimEvent::NodeFail { .. } | SimEvent::NodeRepair { .. } => return,
        };
        let job = event.job().expect("job events carry a job");
        self.events.push((event.time(), kind.into(), job.id));
    }
}

#[test]
fn observer_event_stream_is_ordered_and_complete() {
    let spec = venus();
    let mut rng = ChaCha12Rng::seed_from_u64(3);
    let jobs = random_jobs(&spec, 200, &mut rng);
    let mut log = EventLog::default();
    let mut sim = Simulator::new(&spec, Policy::Srtf.build());
    sim.observe(Box::new(&mut log));
    sim.push_jobs(&jobs).unwrap();
    sim.run_to_completion();
    drop(sim);

    // Times never go backwards.
    for w in log.events.windows(2) {
        assert!(w[0].0 <= w[1].0, "event times must be non-decreasing");
    }
    // Per job: exactly one submit and one finish; starts = preempts + 1;
    // lifecycle order submit -> start -> ... -> finish.
    let mut per_job: HashMap<u64, Vec<(i64, String)>> = HashMap::new();
    for (t, kind, id) in &log.events {
        per_job.entry(*id).or_default().push((*t, kind.clone()));
    }
    assert_eq!(per_job.len(), jobs.len(), "every job produced events");
    for (id, evs) in per_job {
        assert_eq!(evs.first().unwrap().1, "submit", "job {id}");
        assert_eq!(evs.last().unwrap().1, "finish", "job {id}");
        let count = |k: &str| evs.iter().filter(|(_, kind)| kind == k).count();
        assert_eq!(count("submit"), 1, "job {id}");
        assert_eq!(count("finish"), 1, "job {id}");
        assert_eq!(
            count("start"),
            count("preempt") + 1,
            "job {id}: one (re)start per preemption plus the first"
        );
    }
}
