//! # helios-sim
//!
//! Trace-driven discrete-event simulator for a multi-VC GPU cluster — the
//! evaluation substrate of the paper's QSSF service (§4.2.3): gang
//! scheduling, exclusive allocation, ConsolidateAllocate placement, strict
//! per-VC queues, and optional EASY backfill (the paper's stated future
//! work).
//!
//! The scheduling layer is **pluggable**: every queue decision goes
//! through a [`SchedulingPolicy`] trait object (the four Fig. 11 policies
//! — FIFO, oracle SJF, oracle preemptive SRTF, externally-scored Priority
//! for QSSF — ship as policy objects, plus a Tiresias-style discretized
//! least-attained-service policy), metrics stream through [`SimObserver`]s
//! (occupancy, queue length, per-VC utilization), and the [`Simulator`]
//! kernel is incremental: push jobs online, advance to a horizon, drain
//! outcomes.
//!
//! ```
//! use helios_sim::{simulate, SimConfig, Policy, SimJob};
//! use helios_trace::venus;
//!
//! let spec = venus();
//! let jobs = vec![SimJob { id: 0, vc: 0, gpus: 8, submit: 0, duration: 60, priority: 1.0 }];
//! let result = simulate(&spec, &jobs, &SimConfig::new(Policy::Fifo))?;
//! assert_eq!(result.outcomes[0].start, 0);
//!
//! // Unplaceable jobs are rejected up front instead of hanging the queue.
//! let giant = vec![SimJob { id: 1, vc: 0, gpus: u32::MAX, submit: 0, duration: 60, priority: 1.0 }];
//! assert!(simulate(&spec, &giant, &SimConfig::new(Policy::Fifo)).is_err());
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```
//!
//! Incremental use — jobs arrive in batches, outcomes leave in batches:
//!
//! ```
//! use helios_sim::{Simulator, SimJob, FifoPolicy};
//! use helios_trace::venus;
//!
//! let mut sim = Simulator::new(&venus(), Box::new(FifoPolicy));
//! sim.push_jobs(&[SimJob { id: 0, vc: 0, gpus: 8, submit: 0, duration: 60, priority: 0.0 }])?;
//! sim.run_until(30);                     // job still running
//! assert!(sim.drain_outcomes().is_empty());
//! sim.push_jobs(&[SimJob { id: 1, vc: 0, gpus: 8, submit: 40, duration: 5, priority: 0.0 }])?;
//! sim.run_to_completion();
//! assert_eq!(sim.drain_outcomes().len(), 2);
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod engine;
pub mod fault;
mod heap;
pub mod job;
pub mod metrics;
pub mod observer;
pub mod policy;
pub mod pool;
pub mod snapshot;

pub use engine::{
    simulate, simulate_with, validate_job, KernelConfig, Policy, SimConfig, SimResult, Simulator,
};
pub use fault::{
    DrainDirective, FaultConfig, FaultSemantics, FaultSnap, FaultState, FaultStats,
    FAULT_CODEC_VERSION, NODE_FEATURES, NODE_FEATURE_NAMES,
};
pub use job::{jobs_from_trace, JobOutcome, SimJob};
pub use metrics::{
    group_delay_ratios, jct_samples, per_vc_queue_delay, queue_delay_by_group, schedule_stats,
    ScheduleStats, DURATION_GROUPS, QUEUED_THRESHOLD_SECS,
};
pub use observer::{
    ClusterView, OccupancyObserver, QueueLengthObserver, SimEvent, SimObserver,
    VcUtilizationObserver,
};
pub use policy::{
    FifoPolicy, JobView, PriorityPolicy, SchedulingPolicy, SjfPolicy, SrtfPolicy, TiresiasPolicy,
};
pub use pool::{Allocation, NodePool, Placement};
pub use snapshot::{
    spec_fingerprint, ByteReader, ByteWriter, JobStateSnap, SimSnapshot, VcSnap, JOB_WIRE_BYTES,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SNAPSHOT_VERSION_FAULTS,
};
