//! # helios-sim
//!
//! Trace-driven discrete-event simulator for a multi-VC GPU cluster — the
//! evaluation substrate of the paper's QSSF service (§4.2.3): gang
//! scheduling, exclusive allocation, ConsolidateAllocate placement, strict
//! per-VC queues, and the four policies of Fig. 11 (FIFO, oracle SJF,
//! oracle preemptive SRTF, and externally-scored Priority for QSSF), plus
//! optional EASY backfill (the paper's stated future work).
//!
//! ```
//! use helios_sim::{simulate, SimConfig, Policy, SimJob};
//! use helios_trace::venus;
//!
//! let spec = venus();
//! let jobs = vec![SimJob { id: 0, vc: 0, gpus: 8, submit: 0, duration: 60, priority: 1.0 }];
//! let result = simulate(&spec, &jobs, &SimConfig::new(Policy::Fifo))?;
//! assert_eq!(result.outcomes[0].start, 0);
//!
//! // Unplaceable jobs are rejected up front instead of hanging the queue.
//! let giant = vec![SimJob { id: 1, vc: 0, gpus: u32::MAX, submit: 0, duration: 60, priority: 1.0 }];
//! assert!(simulate(&spec, &giant, &SimConfig::new(Policy::Fifo)).is_err());
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

pub mod engine;
pub mod job;
pub mod metrics;
pub mod pool;

pub use engine::{simulate, Policy, SimConfig, SimResult};
pub use job::{jobs_from_trace, JobOutcome, SimJob};
pub use metrics::{
    group_delay_ratios, jct_samples, per_vc_queue_delay, queue_delay_by_group, schedule_stats,
    ScheduleStats, DURATION_GROUPS, QUEUED_THRESHOLD_SECS,
};
pub use pool::{Allocation, NodePool, Placement};
