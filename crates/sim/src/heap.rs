//! The kernel's hot priority queues run on the workspace-shared 4-ary
//! min-heap, hosted in `helios-trace` so the trace generator's k-way
//! stream merge uses the identical structure (see
//! [`helios_trace::heap`]).

pub(crate) use helios_trace::heap::MinHeap;
