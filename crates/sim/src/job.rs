//! Simulator job descriptions and per-job outcomes.

use helios_trace::{JobId, JobRecord, Trace, VcId};
use serde::{Deserialize, Serialize};

/// A job as the simulator sees it: arrival, demand, ground-truth runtime
/// (how long it *will* occupy its GPUs, whatever its final status), and a
/// scheduling priority (lower = runs first under the `Priority` policy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    pub id: JobId,
    pub vc: VcId,
    pub gpus: u32,
    pub submit: i64,
    /// Ground-truth occupancy time (seconds, >= 1).
    pub duration: i64,
    /// Priority score for the `Priority` policy (QSSF: predicted GPU time).
    pub priority: f64,
}

/// What happened to a job in one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    pub id: JobId,
    pub vc: VcId,
    pub gpus: u32,
    pub submit: i64,
    /// First execution start.
    pub start: i64,
    /// Final completion time.
    pub end: i64,
    /// Ground-truth execution time.
    pub duration: i64,
    /// Times the job was preempted (SRTF only).
    pub preemptions: u32,
}

impl JobOutcome {
    /// Job completion time (queueing + execution + any preemption gaps).
    pub fn jct(&self) -> i64 {
        self.end - self.submit
    }

    /// Total non-running time before completion.
    pub fn queue_delay(&self) -> i64 {
        self.jct() - self.duration
    }
}

/// Convert the GPU jobs of a trace submitted in `[t_lo, t_hi)` into
/// simulator jobs. Jobs whose demand exceeds their VC capacity (the
/// 2 048-GPU artifacts) are dropped — they can never be scheduled under a
/// static partition. Priorities default to the submission time (FIFO-like)
/// and are overwritten by the caller for priority policies.
pub fn jobs_from_trace(trace: &Trace, t_lo: i64, t_hi: i64) -> Vec<SimJob> {
    trace
        .gpu_jobs()
        .filter(|j| j.submit >= t_lo && j.submit < t_hi)
        .filter(|j| j.gpus <= trace.spec.vc_gpus(j.vc))
        .map(|j| SimJob {
            id: j.id,
            vc: j.vc,
            gpus: j.gpus,
            submit: j.submit,
            duration: j.duration.max(1),
            priority: j.submit as f64,
        })
        .collect()
}

/// Look up the original trace record for a sim job (by id).
pub fn record_of<'a>(trace: &'a Trace, job: &SimJob) -> &'a JobRecord {
    &trace.jobs[job.id as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{generate, venus_profile, GeneratorConfig};

    #[test]
    fn outcome_metrics() {
        let o = JobOutcome {
            id: 0,
            vc: 0,
            gpus: 8,
            submit: 100,
            start: 400,
            end: 1_000,
            duration: 600,
            preemptions: 0,
        };
        assert_eq!(o.jct(), 900);
        assert_eq!(o.queue_delay(), 300);
    }

    #[test]
    fn trace_conversion_filters_and_windows() {
        let t = generate(
            &venus_profile(),
            &GeneratorConfig {
                scale: 0.05,
                seed: 3,
            },
        )
        .unwrap();
        let (lo, hi) = t.calendar.month_range(2);
        let jobs = jobs_from_trace(&t, lo, hi);
        assert!(!jobs.is_empty());
        for j in &jobs {
            assert!(j.submit >= lo && j.submit < hi);
            assert!(j.gpus >= 1 && j.gpus <= t.spec.vc_gpus(j.vc));
            assert!(j.duration >= 1);
            let rec = record_of(&t, j);
            assert_eq!(rec.id, j.id);
        }
    }
}
