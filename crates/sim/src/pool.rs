//! Node pools and gang placement.
//!
//! Helios allocates exclusively and gang-schedules: a job takes all its
//! GPUs at once or waits (§1). Placement follows the ConsolidateAllocate
//! policy (§4.2.2): pack each job into as few nodes as possible; multi-node
//! jobs take whole nodes ("a 16-GPU job needs to wait for two compute nodes
//! with 8 idle GPUs"). A `Scatter` variant (spread across emptiest nodes)
//! models Philly-style relaxed locality for the energy experiments.
//!
//! The pool is **index-maintained** rather than scan-computed: nodes are
//! bucketed by free-GPU count (`gpus_per_node + 1` buckets, each a
//! two-level bitset over node ids), and the aggregates the scheduler polls
//! every event (total free GPUs, busy nodes, fully-free nodes) are kept
//! up to date on every placement. [`NodePool::try_place`] therefore
//! rejects in O(1) and picks the best-/worst-fit node in
//! O(gpus_per_node) — constant in the node count — while preserving the
//! historical scan semantics exactly: best fit takes the *lowest* node id
//! among equally-full candidates, worst fit the *highest*.
//!
//! What-if placement (preemption dry-runs, backfill shadow times) goes
//! through [`NodePool::trial`], an undo-log scratch view that rolls its
//! mutations back on drop — no more whole-pool clones per blocked-head
//! decision.

use serde::{Deserialize, Serialize};

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Paper default: best-fit, fewest nodes (reduces fragmentation and
    /// communication overhead).
    Consolidate,
    /// Worst-fit: single-node jobs go to the emptiest node (Philly-style
    /// relaxed locality; raises node occupancy).
    Scatter,
}

/// GPUs assigned across nodes: a list of `(node index, GPUs taken)`
/// slices.
///
/// Single-node jobs and "full node + remainder" placements (the two
/// overwhelmingly common shapes) are stored inline — no heap allocation
/// on the simulator's start/finish hot path; wider multi-node gangs spill
/// to a `Vec`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Allocation {
    inline: [(u32, u32); 2],
    len: u32,
    spill: Vec<(u32, u32)>,
}

impl Allocation {
    fn empty() -> Self {
        Allocation {
            inline: [(0, 0); 2],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// A one-slice allocation.
    fn single(node: u32, gpus: u32) -> Self {
        Allocation {
            inline: [(node, gpus), (0, 0)],
            len: 1,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, slice: (u32, u32)) {
        let n = self.len as usize;
        if n < 2 {
            self.inline[n] = slice;
        } else {
            if n == 2 {
                self.spill.reserve(4);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(slice);
        }
        self.len += 1;
    }

    /// The `(node index, GPUs taken)` pairs of this allocation.
    pub fn slices(&self) -> &[(u32, u32)] {
        if self.len <= 2 {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Total GPUs in this allocation.
    pub fn gpus(&self) -> u32 {
        self.slices().iter().map(|s| s.1).sum()
    }
}

impl PartialEq for Allocation {
    fn eq(&self, other: &Self) -> bool {
        self.slices() == other.slices()
    }
}

impl FromIterator<(u32, u32)> for Allocation {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        let mut a = Allocation::empty();
        for s in iter {
            a.push(s);
        }
        a
    }
}

/// Set of node indices with O(1) insert/remove and O(1) min/max queries:
/// a bitset over node ids plus a one-bit-per-word summary level, so
/// min/max resolve with two trailing/leading-zero scans (the summary
/// level covers 4096 nodes per word — effectively constant for any
/// realistic VC).
#[derive(Debug, Clone, Default)]
struct NodeSet {
    words: Vec<u64>,
    summary: Vec<u64>,
    len: u32,
}

impl NodeSet {
    fn for_nodes(n: usize) -> Self {
        let words = n.div_ceil(64);
        NodeSet {
            words: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            len: 0,
        }
    }

    fn insert(&mut self, i: u32) {
        let (w, b) = ((i / 64) as usize, i % 64);
        debug_assert_eq!(self.words[w] >> b & 1, 0, "node {i} already present");
        self.words[w] |= 1 << b;
        self.summary[w / 64] |= 1 << (w % 64);
        self.len += 1;
    }

    fn remove(&mut self, i: u32) {
        let (w, b) = ((i / 64) as usize, i % 64);
        debug_assert_eq!(self.words[w] >> b & 1, 1, "node {i} not present");
        self.words[w] &= !(1 << b);
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1 << (w % 64));
        }
        self.len -= 1;
    }

    /// Smallest node id in the set.
    fn min(&self) -> Option<u32> {
        let (sw, s) = self
            .summary
            .iter()
            .enumerate()
            .find(|(_, &s)| s != 0)
            .map(|(i, &s)| (i, s))?;
        let w = sw * 64 + s.trailing_zeros() as usize;
        Some((w * 64) as u32 + self.words[w].trailing_zeros())
    }

    /// Largest node id in the set.
    fn max(&self) -> Option<u32> {
        let (sw, s) = self
            .summary
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &s)| s != 0)
            .map(|(i, &s)| (i, s))?;
        let w = sw * 64 + (63 - s.leading_zeros() as usize);
        Some((w * 64 + 63) as u32 - self.words[w].leading_zeros())
    }

    /// Node ids in ascending order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some((w * 64) as u32 + b)
            })
        })
    }
}

/// One VC's nodes, bucketed by free-GPU count.
///
/// Equality and the (marker) serde derives are defined over the logical
/// state — `gpus_per_node` plus the per-node free counts; the buckets are
/// derived indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodePool {
    gpus_per_node: u32,
    free: Vec<u32>,
    /// `buckets[f]` holds exactly the nodes with `f` free GPUs —
    /// **online nodes only**; offline nodes are masked out of every
    /// bucket (and of `nonempty` / `total_free`) so the placement paths
    /// never see them, while `free` keeps their true counts.
    buckets: Vec<NodeSet>,
    /// Bit `f` set iff `buckets[f]` is non-empty (for `gpus_per_node`
    /// ≤ 63 — every real cluster; larger values fall back to scanning).
    /// Powers the O(1) [`NodePool::fits`] feasibility probe.
    nonempty: u64,
    total_free: u32,
    /// Out-of-service flags (failed or draining nodes); see
    /// [`NodePool::set_offline`].
    offline: Vec<bool>,
    offline_count: u32,
    /// Offline nodes whose GPUs are all free (keeps `busy_nodes` O(1)).
    offline_idle: u32,
}

impl PartialEq for NodePool {
    fn eq(&self, other: &Self) -> bool {
        self.gpus_per_node == other.gpus_per_node
            && self.free == other.free
            && self.offline == other.offline
    }
}

impl NodePool {
    /// A pool of `nodes` identical nodes.
    pub fn new(nodes: u32, gpus_per_node: u32) -> Self {
        assert!(gpus_per_node > 0);
        let mut buckets: Vec<NodeSet> = (0..=gpus_per_node)
            .map(|_| NodeSet::for_nodes(nodes as usize))
            .collect();
        for i in 0..nodes {
            buckets[gpus_per_node as usize].insert(i);
        }
        NodePool {
            gpus_per_node,
            free: vec![gpus_per_node; nodes as usize],
            buckets,
            nonempty: if nodes > 0 && gpus_per_node <= 63 {
                1u64 << gpus_per_node
            } else {
                0
            },
            total_free: nodes * gpus_per_node,
            offline: vec![false; nodes as usize],
            offline_count: 0,
            offline_idle: 0,
        }
    }

    /// Total free GPUs (maintained aggregate, O(1)).
    pub fn free_gpus(&self) -> u32 {
        self.total_free
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.gpus_per_node * self.free.len() as u32
    }

    /// Number of nodes with at least one busy GPU (maintained, O(1)).
    pub fn busy_nodes(&self) -> u32 {
        self.free.len() as u32 - self.fully_free_nodes()
    }

    /// Number of nodes with every GPU free (maintained, O(1)); counts
    /// idle offline nodes too, so `busy_nodes` stays "has a busy GPU".
    pub fn fully_free_nodes(&self) -> u32 {
        self.buckets[self.gpus_per_node as usize].len + self.offline_idle
    }

    /// Largest per-node free count (0 on an empty or fully-busy pool).
    pub fn max_free(&self) -> u32 {
        (0..=self.gpus_per_node)
            .rev()
            .find(|&f| self.buckets[f as usize].len > 0)
            .unwrap_or(0)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.free.len() as u32
    }

    /// Per-node free-GPU counts — the pool's complete logical state
    /// (equality is defined over exactly this plus `gpus_per_node`).
    /// Snapshot hook: persist these and rebuild with
    /// [`NodePool::from_free_counts`].
    pub fn free_counts(&self) -> &[u32] {
        &self.free
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    /// Rebuild a pool from per-node free counts previously obtained via
    /// [`NodePool::free_counts`]. The buckets, non-empty mask, and free
    /// aggregate are derived indices, so reconstructing them from the
    /// counts restores the pool exactly.
    pub fn from_free_counts(
        gpus_per_node: u32,
        free: &[u32],
    ) -> Result<Self, helios_trace::HeliosError> {
        if gpus_per_node == 0 {
            return Err(helios_trace::HeliosError::snapshot(
                "restoring node pool",
                "gpus_per_node must be positive",
            ));
        }
        if let Some(&bad) = free.iter().find(|&&f| f > gpus_per_node) {
            return Err(helios_trace::HeliosError::snapshot(
                "restoring node pool",
                format!("free count {bad} exceeds gpus_per_node {gpus_per_node}"),
            ));
        }
        let mut pool = NodePool::new(free.len() as u32, gpus_per_node);
        for (i, &f) in free.iter().enumerate() {
            pool.set_free(i as u32, f);
        }
        Ok(pool)
    }

    /// Take node `i` out of placement service (failure or drain). Its
    /// true free count stays in `free`, but the node leaves the bucket
    /// index, the `nonempty` mask, and `total_free`, so `fits` /
    /// `try_place` can never choose it. GPUs still held by running jobs
    /// on the node release back into `free` without re-entering service.
    /// Idempotent.
    pub fn set_offline(&mut self, i: u32) {
        if self.offline[i as usize] {
            return;
        }
        let f = self.free[i as usize];
        let bucket = &mut self.buckets[f as usize];
        bucket.remove(i);
        if bucket.len == 0 && f <= 63 {
            self.nonempty &= !(1u64 << f);
        }
        self.total_free -= f;
        self.offline[i as usize] = true;
        self.offline_count += 1;
        if f == self.gpus_per_node {
            self.offline_idle += 1;
        }
    }

    /// Return node `i` (and its free GPUs) to placement service — the
    /// inverse of [`NodePool::set_offline`]. Idempotent.
    pub fn set_online(&mut self, i: u32) {
        if !self.offline[i as usize] {
            return;
        }
        let f = self.free[i as usize];
        self.buckets[f as usize].insert(i);
        if f <= 63 {
            self.nonempty |= 1u64 << f;
        }
        self.total_free += f;
        self.offline[i as usize] = false;
        self.offline_count -= 1;
        if f == self.gpus_per_node {
            self.offline_idle -= 1;
        }
    }

    /// Whether node `i` is out of placement service.
    pub fn is_offline(&self, i: u32) -> bool {
        self.offline[i as usize]
    }

    /// Number of out-of-service nodes (maintained, O(1)).
    pub fn offline_nodes(&self) -> u32 {
        self.offline_count
    }

    /// Move node `i` to free count `new`, maintaining buckets + aggregates.
    fn set_free(&mut self, i: u32, new: u32) {
        let old = self.free[i as usize];
        debug_assert!(new <= self.gpus_per_node);
        if old == new {
            return;
        }
        if self.offline[i as usize] {
            // Masked out of the index: only the logical count (and the
            // idle-offline aggregate) moves.
            if new == self.gpus_per_node {
                self.offline_idle += 1;
            } else if old == self.gpus_per_node {
                self.offline_idle -= 1;
            }
            self.free[i as usize] = new;
            return;
        }
        let from = &mut self.buckets[old as usize];
        from.remove(i);
        if from.len == 0 && old <= 63 {
            self.nonempty &= !(1u64 << old);
        }
        let to = &mut self.buckets[new as usize];
        to.insert(i);
        if new <= 63 {
            self.nonempty |= 1u64 << new;
        }
        self.free[i as usize] = new;
        self.total_free = self.total_free + new - old;
    }

    /// O(1) feasibility probe: would [`NodePool::try_place`] succeed for a
    /// `g`-GPU job? Placement choice differs between `Consolidate` and
    /// `Scatter` but feasibility does not, so no placement argument.
    pub fn fits(&self, g: u32) -> bool {
        debug_assert!(g >= 1);
        let gpn = self.gpus_per_node;
        if g > self.total_free {
            return false;
        }
        if g < gpn {
            // Some node must have at least `g` GPUs free.
            return if gpn <= 63 {
                self.nonempty >> g != 0
            } else {
                (g..=gpn).any(|f| self.buckets[f as usize].len > 0)
            };
        }
        let full_nodes = g / gpn;
        let rem = g % gpn;
        let full_avail = self.buckets[gpn as usize].len;
        if full_avail < full_nodes {
            return false;
        }
        if rem == 0 {
            return true;
        }
        // A remainder slice needs one more node: either a partially-free
        // node with >= rem GPUs, or a spare fully-free node.
        let partial = if gpn <= 63 {
            // Buckets in [rem, gpn): bits rem..gpn of the non-empty mask.
            self.nonempty & ((1u64 << gpn) - (1u64 << rem)) != 0
        } else {
            (rem..gpn).any(|f| self.buckets[f as usize].len > 0)
        };
        partial || full_avail > full_nodes
    }

    /// Try to place a `g`-GPU job; returns the allocation or `None` if it
    /// does not fit under gang semantics. O(1) in the node count.
    pub fn try_place(&mut self, g: u32, placement: Placement) -> Option<Allocation> {
        assert!(g >= 1);
        if g > self.total_free {
            return None;
        }
        let gpn = self.gpus_per_node;
        if g < gpn {
            // Single-node job: best fit takes the fullest node that still
            // fits (lowest id on ties), worst fit the emptiest (highest id
            // on ties) — the historical scan semantics.
            let idx = match placement {
                Placement::Consolidate => (g..=gpn).find_map(|f| self.buckets[f as usize].min())?,
                Placement::Scatter => (g..=gpn)
                    .rev()
                    .find_map(|f| self.buckets[f as usize].max())?,
            };
            self.set_free(idx, self.free[idx as usize] - g);
            return Some(Allocation::single(idx, g));
        }
        // Multi-node (or exactly one full node): whole nodes + remainder.
        let full_nodes = g / gpn;
        let rem = g % gpn;
        let full_bucket = &self.buckets[gpn as usize];
        if full_bucket.len < full_nodes {
            return None;
        }
        let mut it = full_bucket.iter();
        let mut alloc: Allocation = (&mut it)
            .take(full_nodes as usize)
            .map(|i| (i, gpn))
            .collect();
        if rem > 0 {
            // Remainder slice on a non-chosen node: fullest fit first
            // (lowest id on ties); a spare fully-free node only if no
            // partially-free node can hold the remainder.
            let spare = (rem..gpn)
                .find_map(|f| self.buckets[f as usize].min())
                .or_else(|| it.next());
            drop(it);
            alloc.push((spare?, rem));
        } else {
            drop(it);
        }
        for &(i, take) in alloc.slices() {
            self.set_free(i, self.free[i as usize] - take);
        }
        Some(alloc)
    }

    /// Release a previous allocation.
    pub fn release(&mut self, alloc: &Allocation) {
        for &(i, g) in alloc.slices() {
            let new = self.free[i as usize] + g;
            assert!(new <= self.gpus_per_node, "double release on node {i}");
            self.set_free(i, new);
        }
    }

    /// Open an undo-log scratch view: place/release on the trial mutate
    /// this pool but are rolled back (in reverse) when the trial drops.
    /// Replaces whole-pool clones in preemption dry-runs and backfill
    /// shadow-time computation.
    pub fn trial(&mut self) -> PoolTrial<'_, '_> {
        PoolTrial {
            pool: self,
            log: LogStore::Owned(Vec::new()),
        }
    }

    /// [`NodePool::trial`] with a caller-provided (reusable) log buffer —
    /// the hot-path variant that avoids an allocation per dry-run. The
    /// buffer is cleared on entry and again once the trial rolls back.
    pub fn trial_in<'p, 'l>(&'p mut self, log: &'l mut Vec<(u32, i64)>) -> PoolTrial<'p, 'l> {
        log.clear();
        PoolTrial {
            pool: self,
            log: LogStore::Borrowed(log),
        }
    }
}

enum LogStore<'l> {
    Owned(Vec<(u32, i64)>),
    Borrowed(&'l mut Vec<(u32, i64)>),
}

impl LogStore<'_> {
    fn as_mut(&mut self) -> &mut Vec<(u32, i64)> {
        match self {
            LogStore::Owned(v) => v,
            LogStore::Borrowed(v) => v,
        }
    }
}

/// What-if placement handle returned by [`NodePool::trial`] /
/// [`NodePool::trial_in`]. Every mutation is recorded and undone,
/// last-in-first-out, when the trial is dropped, restoring the pool
/// byte-for-byte.
pub struct PoolTrial<'p, 'l> {
    pool: &'p mut NodePool,
    /// `(node, delta)` where `delta` is the signed change applied to the
    /// node's free count.
    log: LogStore<'l>,
}

impl PoolTrial<'_, '_> {
    /// [`NodePool::try_place`] against the trial state.
    pub fn try_place(&mut self, g: u32, placement: Placement) -> Option<Allocation> {
        let alloc = self.pool.try_place(g, placement)?;
        let log = self.log.as_mut();
        for &(i, take) in alloc.slices() {
            log.push((i, -(take as i64)));
        }
        Some(alloc)
    }

    /// [`NodePool::release`] against the trial state.
    pub fn release(&mut self, alloc: &Allocation) {
        self.pool.release(alloc);
        let log = self.log.as_mut();
        for &(i, g) in alloc.slices() {
            log.push((i, g as i64));
        }
    }

    /// Free GPUs under the trial state.
    pub fn free_gpus(&self) -> u32 {
        self.pool.free_gpus()
    }

    /// O(1) read-only feasibility probe against the trial state — see
    /// [`NodePool::fits`]. Nothing to roll back.
    pub fn fits(&self, g: u32) -> bool {
        self.pool.fits(g)
    }
}

impl Drop for PoolTrial<'_, '_> {
    fn drop(&mut self) {
        while let Some((i, delta)) = self.log.as_mut().pop() {
            let restored = self.pool.free[i as usize] as i64 - delta;
            self.pool.set_free(i, restored as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidate_prefers_fullest_node() {
        let mut p = NodePool::new(2, 8);
        // Occupy 6 GPUs on node 0.
        let a = p.try_place(6, Placement::Consolidate).unwrap();
        assert_eq!(a.slices(), vec![(0, 6)]);
        // A 2-GPU job should pack into node 0 (2 free), not node 1.
        let b = p.try_place(2, Placement::Consolidate).unwrap();
        assert_eq!(b.slices(), vec![(0, 2)]);
        assert_eq!(p.free_gpus(), 8);
    }

    #[test]
    fn scatter_prefers_emptiest_node() {
        let mut p = NodePool::new(2, 8);
        let _ = p.try_place(6, Placement::Consolidate).unwrap();
        let b = p.try_place(2, Placement::Scatter).unwrap();
        assert_eq!(b.slices(), vec![(1, 2)]);
    }

    #[test]
    fn tie_breaks_match_the_historical_scan() {
        // Equally-full candidates: best fit takes the lowest node id,
        // worst fit the highest.
        let mut p = NodePool::new(3, 8);
        let a = p.try_place(2, Placement::Consolidate).unwrap();
        assert_eq!(a.slices(), vec![(0, 2)]);
        let mut q = NodePool::new(3, 8);
        let b = q.try_place(2, Placement::Scatter).unwrap();
        assert_eq!(b.slices(), vec![(2, 2)]);
    }

    #[test]
    fn multi_node_needs_full_nodes() {
        let mut p = NodePool::new(3, 8);
        // Fragment node 0.
        let _ = p.try_place(1, Placement::Consolidate).unwrap();
        // 16 GPUs need two fully-free nodes: nodes 1 and 2.
        let a = p.try_place(16, Placement::Consolidate).unwrap();
        assert_eq!(a.gpus(), 16);
        assert!(a.slices().iter().all(|&(n, g)| g == 8 && n != 0));
        // Another 16-GPU job cannot fit even though 7 GPUs are free.
        assert!(p.try_place(16, Placement::Consolidate).is_none());
    }

    #[test]
    fn multi_node_with_remainder() {
        let mut p = NodePool::new(3, 8);
        let a = p.try_place(12, Placement::Consolidate).unwrap();
        assert_eq!(a.gpus(), 12);
        // One full node + a 4-GPU slice elsewhere.
        let full: Vec<_> = a.slices().iter().filter(|s| s.1 == 8).collect();
        let rem: Vec<_> = a.slices().iter().filter(|s| s.1 == 4).collect();
        assert_eq!(full.len(), 1);
        assert_eq!(rem.len(), 1);
        assert_ne!(full[0].0, rem[0].0);
    }

    #[test]
    fn remainder_prefers_partially_free_nodes() {
        let mut p = NodePool::new(3, 8);
        // Node 0: 4 free. Placing 12 = one full node (1) + 4-GPU remainder,
        // which must land on node 0 (fullest fit), not node 2.
        let _ = p.try_place(4, Placement::Consolidate).unwrap();
        let a = p.try_place(12, Placement::Consolidate).unwrap();
        let rem: Vec<_> = a.slices().iter().filter(|s| s.1 == 4).collect();
        assert_eq!(rem, vec![&(0, 4)]);
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = NodePool::new(2, 8);
        let a = p.try_place(16, Placement::Consolidate).unwrap();
        assert_eq!(p.free_gpus(), 0);
        assert_eq!(p.busy_nodes(), 2);
        p.release(&a);
        assert_eq!(p.free_gpus(), 16);
        assert_eq!(p.busy_nodes(), 0);
    }

    #[test]
    fn exact_full_node_takes_whole_node() {
        let mut p = NodePool::new(2, 8);
        let _ = p.try_place(3, Placement::Consolidate).unwrap(); // node 0: 5 free
        let a = p.try_place(8, Placement::Consolidate).unwrap();
        assert_eq!(a.slices(), vec![(1, 8)]);
        // No more full nodes.
        assert!(p.try_place(8, Placement::Consolidate).is_none());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_detected() {
        let mut p = NodePool::new(1, 8);
        let a = p.try_place(4, Placement::Consolidate).unwrap();
        p.release(&a);
        p.release(&a);
    }

    #[test]
    fn aggregates_stay_consistent() {
        let mut p = NodePool::new(5, 8);
        let a = p.try_place(3, Placement::Consolidate).unwrap();
        let b = p.try_place(17, Placement::Consolidate).unwrap();
        assert_eq!(p.free_gpus(), 40 - 20);
        // 17 = two full nodes + a 1-GPU remainder that best-fits onto the
        // already-fragmented node 0.
        assert_eq!(p.busy_nodes(), 3);
        assert_eq!(p.fully_free_nodes(), 2);
        assert_eq!(p.max_free(), 8);
        p.release(&b);
        p.release(&a);
        assert_eq!(p.free_gpus(), 40);
        assert_eq!(p.fully_free_nodes(), 5);
    }

    #[test]
    fn trial_rolls_back_on_drop() {
        let mut p = NodePool::new(3, 8);
        let held = p.try_place(6, Placement::Consolidate).unwrap();
        let snapshot = p.clone();
        {
            let mut t = p.trial();
            t.release(&held);
            let a = t.try_place(16, Placement::Consolidate);
            assert!(a.is_some());
            let b = t.try_place(8, Placement::Consolidate);
            assert!(b.is_some());
            assert_eq!(t.free_gpus(), 0);
        }
        assert_eq!(p, snapshot, "trial must restore the pool exactly");
        assert_eq!(p.free_gpus(), 18);
        // The real pool still honors the held allocation.
        p.release(&held);
        assert_eq!(p.free_gpus(), 24);
    }

    #[test]
    fn offline_nodes_leave_placement_but_keep_their_books() {
        let mut p = NodePool::new(3, 8);
        let held = p.try_place(6, Placement::Consolidate).unwrap();
        assert_eq!(held.slices(), vec![(0, 6)]);
        p.set_offline(0);
        p.set_offline(2);
        assert_eq!(p.offline_nodes(), 2);
        assert!(p.is_offline(0) && !p.is_offline(1));
        // Only node 1's GPUs are placeable.
        assert_eq!(p.free_gpus(), 8);
        assert!(p.fits(8));
        assert!(!p.fits(9));
        let a = p.try_place(8, Placement::Consolidate).unwrap();
        assert_eq!(a.slices(), vec![(1, 8)]);
        // Releasing onto the offline node keeps its GPUs out of service.
        p.release(&held);
        assert_eq!(p.free_gpus(), 0);
        assert_eq!(p.free_counts()[0], 8, "true count restored");
        // busy_nodes counts busy GPUs only: node 1 busy, 0 and 2 idle.
        assert_eq!(p.busy_nodes(), 1);
        // Back online: the idle node's capacity returns at its true count.
        p.set_online(0);
        assert_eq!(p.free_gpus(), 8);
        assert!(p.fits(8));
        p.set_online(2);
        assert_eq!(p.free_gpus(), 16);
        // Idempotence both ways.
        p.set_online(2);
        p.set_offline(2);
        p.set_offline(2);
        assert_eq!(p.free_gpus(), 8);
        p.set_online(2);
    }

    #[test]
    fn offline_round_trips_through_free_counts() {
        let mut p = NodePool::new(4, 8);
        let _ = p.try_place(5, Placement::Consolidate).unwrap();
        p.set_offline(0);
        p.set_offline(3);
        let mut q = NodePool::from_free_counts(8, p.free_counts()).unwrap();
        q.set_offline(0);
        q.set_offline(3);
        assert_eq!(p, q);
        assert_eq!(p.free_gpus(), q.free_gpus());
        assert_eq!(p.busy_nodes(), q.busy_nodes());
    }

    #[test]
    fn nodeset_min_max_across_words() {
        let mut s = NodeSet::for_nodes(200);
        for i in [3u32, 64, 130, 199] {
            s.insert(i);
        }
        assert_eq!(s.min(), Some(3));
        assert_eq!(s.max(), Some(199));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 130, 199]);
        s.remove(3);
        s.remove(199);
        assert_eq!(s.min(), Some(64));
        assert_eq!(s.max(), Some(130));
        assert_eq!(s.len, 2);
    }
}
