//! Node pools and gang placement.
//!
//! Helios allocates exclusively and gang-schedules: a job takes all its
//! GPUs at once or waits (§1). Placement follows the ConsolidateAllocate
//! policy (§4.2.2): pack each job into as few nodes as possible; multi-node
//! jobs take whole nodes ("a 16-GPU job needs to wait for two compute nodes
//! with 8 idle GPUs"). A `Scatter` variant (spread across emptiest nodes)
//! models Philly-style relaxed locality for the energy experiments.

use serde::{Deserialize, Serialize};

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Paper default: best-fit, fewest nodes (reduces fragmentation and
    /// communication overhead).
    Consolidate,
    /// Worst-fit: single-node jobs go to the emptiest node (Philly-style
    /// relaxed locality; raises node occupancy).
    Scatter,
}

/// GPUs assigned on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// (node index, GPUs taken) pairs.
    pub slices: Vec<(u32, u32)>,
}

impl Allocation {
    /// Total GPUs in this allocation.
    pub fn gpus(&self) -> u32 {
        self.slices.iter().map(|s| s.1).sum()
    }
}

/// One VC's nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePool {
    gpus_per_node: u32,
    free: Vec<u32>,
}

impl NodePool {
    /// A pool of `nodes` identical nodes.
    pub fn new(nodes: u32, gpus_per_node: u32) -> Self {
        assert!(gpus_per_node > 0);
        NodePool {
            gpus_per_node,
            free: vec![gpus_per_node; nodes as usize],
        }
    }

    /// Total free GPUs.
    pub fn free_gpus(&self) -> u32 {
        self.free.iter().sum()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u32 {
        self.gpus_per_node * self.free.len() as u32
    }

    /// Number of nodes with at least one busy GPU.
    pub fn busy_nodes(&self) -> u32 {
        self.free
            .iter()
            .filter(|&&f| f < self.gpus_per_node)
            .count() as u32
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.free.len() as u32
    }

    /// Try to place a `g`-GPU job; returns the allocation or `None` if it
    /// does not fit under gang semantics.
    pub fn try_place(&mut self, g: u32, placement: Placement) -> Option<Allocation> {
        assert!(g >= 1);
        if g < self.gpus_per_node {
            // Single-node job.
            let candidate = match placement {
                Placement::Consolidate => self
                    .free
                    .iter()
                    .enumerate()
                    .filter(|(_, &f)| f >= g)
                    .min_by_key(|(_, &f)| f),
                Placement::Scatter => self
                    .free
                    .iter()
                    .enumerate()
                    .filter(|(_, &f)| f >= g)
                    .max_by_key(|(_, &f)| f),
            };
            let (idx, _) = candidate?;
            self.free[idx] -= g;
            return Some(Allocation {
                slices: vec![(idx as u32, g)],
            });
        }
        // Multi-node (or exactly one full node): whole nodes + remainder.
        let full_nodes = (g / self.gpus_per_node) as usize;
        let rem = g % self.gpus_per_node;
        let empty: Vec<usize> = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f == self.gpus_per_node)
            .map(|(i, _)| i)
            .collect();
        if empty.len() < full_nodes {
            return None;
        }
        let mut slices: Vec<(u32, u32)> = empty[..full_nodes]
            .iter()
            .map(|&i| (i as u32, self.gpus_per_node))
            .collect();
        if rem > 0 {
            // Remainder slice on a non-chosen node (best fit).
            let chosen: Vec<usize> = empty[..full_nodes].to_vec();
            let candidate = self
                .free
                .iter()
                .enumerate()
                .filter(|(i, &f)| f >= rem && !chosen.contains(i))
                .min_by_key(|(_, &f)| f);
            let (idx, _) = candidate?;
            slices.push((idx as u32, rem));
        }
        for &(i, g) in &slices {
            self.free[i as usize] -= g;
        }
        Some(Allocation { slices })
    }

    /// Release a previous allocation.
    pub fn release(&mut self, alloc: &Allocation) {
        for &(i, g) in &alloc.slices {
            self.free[i as usize] += g;
            assert!(
                self.free[i as usize] <= self.gpus_per_node,
                "double release on node {i}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidate_prefers_fullest_node() {
        let mut p = NodePool::new(2, 8);
        // Occupy 6 GPUs on node 0.
        let a = p.try_place(6, Placement::Consolidate).unwrap();
        assert_eq!(a.slices, vec![(0, 6)]);
        // A 2-GPU job should pack into node 0 (2 free), not node 1.
        let b = p.try_place(2, Placement::Consolidate).unwrap();
        assert_eq!(b.slices, vec![(0, 2)]);
        assert_eq!(p.free_gpus(), 8);
    }

    #[test]
    fn scatter_prefers_emptiest_node() {
        let mut p = NodePool::new(2, 8);
        let _ = p.try_place(6, Placement::Consolidate).unwrap();
        let b = p.try_place(2, Placement::Scatter).unwrap();
        assert_eq!(b.slices, vec![(1, 2)]);
    }

    #[test]
    fn multi_node_needs_full_nodes() {
        let mut p = NodePool::new(3, 8);
        // Fragment node 0.
        let _ = p.try_place(1, Placement::Consolidate).unwrap();
        // 16 GPUs need two fully-free nodes: nodes 1 and 2.
        let a = p.try_place(16, Placement::Consolidate).unwrap();
        assert_eq!(a.gpus(), 16);
        assert!(a.slices.iter().all(|&(n, g)| g == 8 && n != 0));
        // Another 16-GPU job cannot fit even though 7 GPUs are free.
        assert!(p.try_place(16, Placement::Consolidate).is_none());
    }

    #[test]
    fn multi_node_with_remainder() {
        let mut p = NodePool::new(3, 8);
        let a = p.try_place(12, Placement::Consolidate).unwrap();
        assert_eq!(a.gpus(), 12);
        // One full node + a 4-GPU slice elsewhere.
        let full: Vec<_> = a.slices.iter().filter(|s| s.1 == 8).collect();
        let rem: Vec<_> = a.slices.iter().filter(|s| s.1 == 4).collect();
        assert_eq!(full.len(), 1);
        assert_eq!(rem.len(), 1);
        assert_ne!(full[0].0, rem[0].0);
    }

    #[test]
    fn release_restores_capacity() {
        let mut p = NodePool::new(2, 8);
        let a = p.try_place(16, Placement::Consolidate).unwrap();
        assert_eq!(p.free_gpus(), 0);
        assert_eq!(p.busy_nodes(), 2);
        p.release(&a);
        assert_eq!(p.free_gpus(), 16);
        assert_eq!(p.busy_nodes(), 0);
    }

    #[test]
    fn exact_full_node_takes_whole_node() {
        let mut p = NodePool::new(2, 8);
        let _ = p.try_place(3, Placement::Consolidate).unwrap(); // node 0: 5 free
        let a = p.try_place(8, Placement::Consolidate).unwrap();
        assert_eq!(a.slices, vec![(1, 8)]);
        // No more full nodes.
        assert!(p.try_place(8, Placement::Consolidate).is_none());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_detected() {
        let mut p = NodePool::new(1, 8);
        let a = p.try_place(4, Placement::Consolidate).unwrap();
        p.release(&a);
        p.release(&a);
    }
}
