//! Streaming simulation observers.
//!
//! Instead of baking metrics into the engine (the old `occupancy_bin`
//! field), callers register [`SimObserver`] objects on a
//! [`Simulator`](crate::Simulator). The kernel streams every lifecycle
//! event through them together with a live [`ClusterView`], so occupancy,
//! queue-length, and utilization series are computed on the fly — no
//! post-hoc pass over the outcome vector, no outcome vector resident at
//! all.
//!
//! ```
//! use helios_sim::{OccupancyObserver, SimJob, Simulator, SrtfPolicy};
//! use helios_trace::venus;
//!
//! let mut occ = OccupancyObserver::new(60)?;
//! let mut sim = Simulator::new(&venus(), Box::new(SrtfPolicy));
//! sim.observe(Box::new(&mut occ));
//! sim.push_jobs(&[SimJob { id: 0, vc: 0, gpus: 8, submit: 0, duration: 120, priority: 0.0 }])?;
//! sim.run_to_completion();
//! drop(sim);
//! assert_eq!(occ.series().len(), 2); // two one-minute bins, one node busy
//! # Ok::<(), helios_trace::HeliosError>(())
//! ```

use crate::engine::{ClusterStats, VcState};
use crate::fault::{FaultState, FaultStats, NODE_FEATURES};
use crate::job::{JobOutcome, SimJob};
use helios_trace::{HeliosError, HeliosResult};

/// Read-only window onto the live cluster state, handed to policies and
/// observers at every event.
///
/// Every query is O(1): the cluster-wide counts come from incrementally
/// maintained kernel aggregates (no per-event re-summation over VCs or
/// nodes), the per-VC counts from the pools' maintained aggregates.
pub struct ClusterView<'a> {
    vcs: &'a [VcState],
    stats: &'a ClusterStats,
    fault: Option<&'a FaultState>,
}

impl<'a> ClusterView<'a> {
    pub(crate) fn new(
        vcs: &'a [VcState],
        stats: &'a ClusterStats,
        fault: Option<&'a FaultState>,
    ) -> Self {
        ClusterView { vcs, stats, fault }
    }

    /// Number of virtual clusters.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Cluster-wide count of nodes with at least one busy GPU.
    pub fn busy_nodes(&self) -> u32 {
        self.stats.busy_nodes
    }

    /// Cluster-wide node count.
    pub fn total_nodes(&self) -> u32 {
        self.stats.total_nodes
    }

    /// Cluster-wide busy GPUs.
    pub fn busy_gpus(&self) -> u32 {
        self.stats.busy_gpus
    }

    /// Cluster-wide GPU capacity.
    pub fn capacity_gpus(&self) -> u32 {
        self.stats.capacity_gpus
    }

    /// Cluster-wide GPU utilization in `\[0, 1\]` (0 on an empty cluster).
    pub fn utilization(&self) -> f64 {
        if self.stats.capacity_gpus == 0 {
            0.0
        } else {
            self.stats.busy_gpus as f64 / self.stats.capacity_gpus as f64
        }
    }

    /// Busy GPUs in one VC.
    pub fn vc_busy_gpus(&self, vc: usize) -> u32 {
        let pool = &self.vcs[vc].pool;
        pool.capacity() - pool.free_gpus()
    }

    /// GPU capacity of one VC.
    pub fn vc_capacity_gpus(&self, vc: usize) -> u32 {
        self.vcs[vc].pool.capacity()
    }

    /// Queued (not running) jobs in one VC. A blocked head briefly held
    /// aside during a preemption apply still counts as queued.
    pub fn vc_queue_len(&self, vc: usize) -> usize {
        self.vcs[vc].queue.len() + usize::from(self.vcs[vc].held_head)
    }

    /// Queued jobs across all VCs.
    pub fn queue_len(&self) -> usize {
        self.stats.queued_jobs
    }

    /// Running jobs across all VCs.
    pub fn running_jobs(&self) -> usize {
        self.stats.running_jobs
    }

    /// Whether failure injection is active on this kernel.
    pub fn fault_active(&self) -> bool {
        self.fault.is_some()
    }

    /// Nodes under failure tracking (0 when injection is off). Global
    /// node indices `0..fault_nodes()` are valid arguments to
    /// [`ClusterView::node_features`] and `DrainDirective::node`.
    pub fn fault_nodes(&self) -> usize {
        self.fault.map_or(0, |f| f.nodes())
    }

    /// Running totals of the failure process (`None` when injection is
    /// off).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.map(|f| f.stats())
    }

    /// The failure-predictor feature row of one global node at `now` —
    /// see `helios_sim::NODE_FEATURE_NAMES` for the column meanings.
    /// `None` when injection is off or the node is out of range.
    pub fn node_features(&self, node: u32, now: i64) -> Option<[f64; NODE_FEATURES]> {
        self.fault?.features(node, now)
    }

    /// Whether a global node is currently up (`None` when injection is
    /// off or out of range).
    pub fn node_is_up(&self, node: u32) -> Option<bool> {
        self.fault?.node_up(node)
    }

    /// Whether a global node is currently draining (`None` when
    /// injection is off or out of range).
    pub fn node_is_draining(&self, node: u32) -> Option<bool> {
        self.fault?.node_draining(node)
    }

    /// Nodes currently out of placement service (failed or draining),
    /// summed over all VC pools.
    pub fn offline_nodes(&self) -> u32 {
        self.vcs.iter().map(|vc| vc.pool.offline_nodes()).sum()
    }
}

/// One kernel lifecycle event, streamed to observers as it happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A job entered its VC queue.
    Submit { job: SimJob, now: i64 },
    /// A job started (or resumed after preemption).
    Start { job: SimJob, now: i64 },
    /// A job finished; its full outcome is attached.
    Finish { job: SimJob, outcome: JobOutcome },
    /// A running job was preempted and re-queued (by a preemptive policy
    /// or by a node failure killing its gang).
    Preempt { job: SimJob, now: i64 },
    /// A node failed and left the pool (failure injection only). Gangs it
    /// hosted are reported through separate `Preempt` events.
    NodeFail { vc: u16, node: u32, now: i64 },
    /// A failed node was repaired and returned to the pool.
    NodeRepair { vc: u16, node: u32, now: i64 },
}

impl SimEvent {
    /// The job this event concerns (`None` for node-lifecycle events).
    pub fn job(&self) -> Option<&SimJob> {
        match self {
            SimEvent::Submit { job, .. }
            | SimEvent::Start { job, .. }
            | SimEvent::Finish { job, .. }
            | SimEvent::Preempt { job, .. } => Some(job),
            SimEvent::NodeFail { .. } | SimEvent::NodeRepair { .. } => None,
        }
    }

    /// Simulation time of the event.
    pub fn time(&self) -> i64 {
        match self {
            SimEvent::Submit { now, .. }
            | SimEvent::Start { now, .. }
            | SimEvent::Preempt { now, .. }
            | SimEvent::NodeFail { now, .. }
            | SimEvent::NodeRepair { now, .. } => *now,
            SimEvent::Finish { outcome, .. } => outcome.end,
        }
    }
}

/// Streaming metrics hook.
///
/// [`on_clock`](SimObserver::on_clock) fires once per kernel event *before*
/// the event mutates state (so time-integrated metrics see the state that
/// held over the elapsed interval); [`on_event`](SimObserver::on_event)
/// fires after each semantic event has been applied.
pub trait SimObserver {
    /// The simulation clock reached `now`; `cluster` is the state as of
    /// just before the event at `now` is applied. Called with
    /// non-decreasing `now` values.
    fn on_clock(&mut self, _now: i64, _cluster: &ClusterView<'_>) {}

    /// A lifecycle event was applied.
    fn on_event(&mut self, _event: &SimEvent, _cluster: &ClusterView<'_>) {}
}

/// Forwarding impl so a caller can lend an observer to the kernel
/// (`sim.observe(Box::new(&mut occ))`) and read its series afterwards.
impl<T: SimObserver + ?Sized> SimObserver for &mut T {
    fn on_clock(&mut self, now: i64, cluster: &ClusterView<'_>) {
        (**self).on_clock(now, cluster)
    }
    fn on_event(&mut self, event: &SimEvent, cluster: &ClusterView<'_>) {
        (**self).on_event(event, cluster)
    }
}

/// Piecewise-exact busy-node series, binned at a fixed width — the signal
/// behind the CES experiments (Figs. 14–15). Replaces the old
/// `SimConfig::occupancy_bin` engine knob.
#[derive(Debug, Clone)]
pub struct OccupancyObserver {
    bin: i64,
    t0: Option<i64>,
    last_t: i64,
    acc: Vec<f64>,
}

impl OccupancyObserver {
    /// A tracker with `bin`-second bins; the series origin is the first
    /// event time the kernel reports. Non-positive bins are a config error.
    pub fn new(bin: i64) -> HeliosResult<Self> {
        if bin <= 0 {
            return Err(HeliosError::invalid_config(
                "occupancy bin",
                format!("must be > 0 seconds, got {bin}"),
            ));
        }
        Ok(OccupancyObserver {
            bin,
            t0: None,
            last_t: 0,
            acc: Vec::new(),
        })
    }

    /// Start of the series (first observed event time); 0 before any event.
    pub fn t0(&self) -> i64 {
        self.t0.unwrap_or(0)
    }

    /// Bin width (seconds).
    pub fn bin(&self) -> i64 {
        self.bin
    }

    /// Average busy nodes per bin, up to the last observed event.
    pub fn series(&self) -> Vec<f64> {
        self.acc.iter().map(|a| a / self.bin as f64).collect()
    }
}

impl SimObserver for OccupancyObserver {
    fn on_clock(&mut self, now: i64, cluster: &ClusterView<'_>) {
        let t0 = *self.t0.get_or_insert_with(|| {
            self.last_t = now;
            now
        });
        let busy = cluster.busy_nodes() as f64;
        let mut cur = self.last_t;
        while cur < now {
            let bin_idx = ((cur - t0) / self.bin) as usize;
            if self.acc.len() <= bin_idx {
                self.acc.resize(bin_idx + 1, 0.0);
            }
            let bin_end = t0 + (bin_idx as i64 + 1) * self.bin;
            let upto = bin_end.min(now);
            self.acc[bin_idx] += busy * (upto - cur) as f64;
            cur = upto;
        }
        self.last_t = now;
    }
}

/// Timeline of cluster-wide queue length, sampled after every event.
/// Consecutive samples at the same instant collapse to the last value.
#[derive(Debug, Clone, Default)]
pub struct QueueLengthObserver {
    samples: Vec<(i64, usize)>,
}

impl QueueLengthObserver {
    pub fn new() -> Self {
        Self::default()
    }

    /// `(time, queued jobs)` samples in event order.
    pub fn timeline(&self) -> &[(i64, usize)] {
        &self.samples
    }

    /// Largest queue length ever observed.
    pub fn peak(&self) -> usize {
        self.samples.iter().map(|&(_, q)| q).max().unwrap_or(0)
    }
}

impl SimObserver for QueueLengthObserver {
    fn on_event(&mut self, event: &SimEvent, cluster: &ClusterView<'_>) {
        let now = event.time();
        let q = cluster.queue_len();
        match self.samples.last_mut() {
            Some(last) if last.0 == now => last.1 = q,
            _ => self.samples.push((now, q)),
        }
    }
}

/// Time-integrated per-VC GPU utilization (busy GPU·seconds over capacity
/// GPU·seconds), streamed — the per-VC slice of Fig. 2a computed without
/// retaining outcomes.
#[derive(Debug, Clone, Default)]
pub struct VcUtilizationObserver {
    t0: Option<i64>,
    last_t: i64,
    busy_gpu_secs: Vec<f64>,
    capacities: Vec<u32>,
}

impl VcUtilizationObserver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Busy GPU·seconds accumulated per VC.
    pub fn busy_gpu_seconds(&self) -> &[f64] {
        &self.busy_gpu_secs
    }

    /// Utilization in `\[0, 1\]` per VC over the observed window.
    pub fn utilization(&self) -> Vec<f64> {
        let window = (self.last_t - self.t0.unwrap_or(self.last_t)) as f64;
        self.busy_gpu_secs
            .iter()
            .zip(&self.capacities)
            .map(|(&busy, &cap)| {
                if window > 0.0 && cap > 0 {
                    busy / (window * cap as f64)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

impl SimObserver for VcUtilizationObserver {
    fn on_clock(&mut self, now: i64, cluster: &ClusterView<'_>) {
        if self.t0.is_none() {
            self.t0 = Some(now);
            self.last_t = now;
            self.busy_gpu_secs = vec![0.0; cluster.num_vcs()];
            self.capacities = (0..cluster.num_vcs())
                .map(|vc| cluster.vc_capacity_gpus(vc))
                .collect();
        }
        // `on_clock` sees the state that held over `[last_t, now)`, so the
        // pre-event busy counts integrate the elapsed interval exactly.
        let dt = (now - self.last_t) as f64;
        if dt > 0.0 {
            for (vc, acc) in self.busy_gpu_secs.iter_mut().enumerate() {
                *acc += cluster.vc_busy_gpus(vc) as f64 * dt;
            }
        }
        self.last_t = now;
    }
}
