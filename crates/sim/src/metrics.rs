//! Scheduling metrics: the aggregates behind Tables 3–4 and Figs. 11–13.

use crate::job::JobOutcome;
use helios_trace::VcId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Jobs are "queued" when they waited at least this long (1 minute; the
/// paper counts jobs that observably queued).
pub const QUEUED_THRESHOLD_SECS: i64 = 60;

/// Table 3 row: cluster-wide scheduling aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    pub jobs: u64,
    pub avg_jct: f64,
    pub avg_queue_delay: f64,
    /// Jobs with queue delay >= [`QUEUED_THRESHOLD_SECS`].
    pub queued_jobs: u64,
    pub total_preemptions: u64,
}

/// Aggregate outcomes cluster-wide.
pub fn schedule_stats(outcomes: &[JobOutcome]) -> ScheduleStats {
    let n = outcomes.len() as f64;
    let mut jct = 0.0;
    let mut qd = 0.0;
    let mut queued = 0;
    let mut preempt = 0;
    for o in outcomes {
        jct += o.jct() as f64;
        qd += o.queue_delay() as f64;
        if o.queue_delay() >= QUEUED_THRESHOLD_SECS {
            queued += 1;
        }
        preempt += o.preemptions as u64;
    }
    ScheduleStats {
        jobs: outcomes.len() as u64,
        avg_jct: jct / n.max(1.0),
        avg_queue_delay: qd / n.max(1.0),
        queued_jobs: queued,
        total_preemptions: preempt,
    }
}

/// Per-VC average queue delay (Figs. 12–13).
///
/// Returns a `BTreeMap` so iteration order is the VC id order — this
/// feeds report digests, and `HashMap`'s seed-dependent order would
/// make byte-identical reports impossible.
pub fn per_vc_queue_delay(outcomes: &[JobOutcome]) -> BTreeMap<VcId, f64> {
    let mut sums: BTreeMap<VcId, (f64, u64)> = BTreeMap::new();
    for o in outcomes {
        let e = sums.entry(o.vc).or_insert((0.0, 0));
        e.0 += o.queue_delay() as f64;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(vc, (s, n))| (vc, s / n as f64))
        .collect()
}

/// Duration groups of Table 4.
pub const DURATION_GROUPS: [&str; 3] = ["short (<15m)", "middle (15m-6h)", "long (>6h)"];

/// Table 4 group index for a ground-truth duration.
pub fn duration_group(duration: i64) -> usize {
    if duration < 15 * 60 {
        0
    } else if duration <= 6 * 3_600 {
        1
    } else {
        2
    }
}

/// Average queue delay per duration group.
pub fn queue_delay_by_group(outcomes: &[JobOutcome]) -> [f64; 3] {
    let mut sums = [0.0f64; 3];
    let mut counts = [0u64; 3];
    for o in outcomes {
        let g = duration_group(o.duration);
        sums[g] += o.queue_delay() as f64;
        counts[g] += 1;
    }
    let mut out = [0.0; 3];
    for g in 0..3 {
        out[g] = if counts[g] > 0 {
            sums[g] / counts[g] as f64
        } else {
            0.0
        };
    }
    out
}

/// Table 4: per-group ratio of `baseline` avg queue delay over `improved`
/// avg queue delay (higher = better for `improved`). Groups without jobs
/// yield 0.
pub fn group_delay_ratios(baseline: &[JobOutcome], improved: &[JobOutcome]) -> [f64; 3] {
    let b = queue_delay_by_group(baseline);
    let i = queue_delay_by_group(improved);
    let mut out = [0.0; 3];
    for g in 0..3 {
        out[g] = if i[g] > 0.0 { b[g] / i[g] } else { 0.0 };
    }
    out
}

/// JCT samples for CDF plots (Fig. 11).
pub fn jct_samples(outcomes: &[JobOutcome]) -> Vec<f64> {
    outcomes.iter().map(|o| o.jct().max(1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(vc: VcId, submit: i64, start: i64, duration: i64) -> JobOutcome {
        JobOutcome {
            id: 0,
            vc,
            gpus: 1,
            submit,
            start,
            end: start + duration,
            duration,
            preemptions: 0,
        }
    }

    #[test]
    fn stats_aggregation() {
        let o = vec![
            outcome(0, 0, 0, 100),   // no wait
            outcome(0, 0, 300, 100), // 300 wait
        ];
        let s = schedule_stats(&o);
        assert_eq!(s.jobs, 2);
        assert!((s.avg_queue_delay - 150.0).abs() < 1e-9);
        assert!((s.avg_jct - (100.0 + 400.0) / 2.0).abs() < 1e-9);
        assert_eq!(s.queued_jobs, 1);
    }

    #[test]
    fn per_vc_breakdown() {
        let o = vec![
            outcome(0, 0, 100, 10),
            outcome(0, 0, 300, 10),
            outcome(1, 0, 0, 10),
        ];
        let m = per_vc_queue_delay(&o);
        assert!((m[&0] - 200.0).abs() < 1e-9);
        assert!((m[&1] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn per_vc_iteration_order_is_vc_order() {
        // Insert VCs out of order; the breakdown must iterate sorted by
        // VC id regardless, because report digests consume it in
        // iteration order.
        let o = vec![
            outcome(7, 0, 10, 10),
            outcome(2, 0, 20, 10),
            outcome(5, 0, 30, 10),
            outcome(2, 0, 40, 10),
        ];
        let m = per_vc_queue_delay(&o);
        let vcs: Vec<VcId> = m.keys().copied().collect();
        assert_eq!(vcs, vec![2, 5, 7]);
        assert!((m[&2] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn duration_groups_boundaries() {
        assert_eq!(duration_group(1), 0);
        assert_eq!(duration_group(15 * 60 - 1), 0);
        assert_eq!(duration_group(15 * 60), 1);
        assert_eq!(duration_group(6 * 3_600), 1);
        assert_eq!(duration_group(6 * 3_600 + 1), 2);
    }

    #[test]
    fn group_ratios() {
        let fifo = vec![outcome(0, 0, 1_000, 60), outcome(0, 0, 5_000, 100_000)];
        let qssf = vec![outcome(0, 0, 100, 60), outcome(0, 0, 2_500, 100_000)];
        let r = group_delay_ratios(&fifo, &qssf);
        assert!((r[0] - 10.0).abs() < 1e-9);
        assert!((r[2] - 2.0).abs() < 1e-9);
        assert_eq!(r[1], 0.0, "empty group yields 0");
    }

    #[test]
    fn jct_samples_positive() {
        let o = vec![outcome(0, 5, 5, 1)];
        assert_eq!(jct_samples(&o), vec![1.0]);
    }
}
