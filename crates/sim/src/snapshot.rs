//! Versioned binary snapshot/restore of full kernel state.
//!
//! [`SimSnapshot`] captures everything a [`Simulator`](crate::Simulator)
//! needs to resume with **byte-identical downstream outcomes**: job
//! execution state, per-VC pool occupancy, the policy-ordered queues and
//! finish heap verbatim (backing arrays, so pop order is reproduced bit
//! for bit), the arrival cursor, the simulated horizon, undrained
//! completions, and opaque policy state
//! ([`SchedulingPolicy::save_state`](crate::SchedulingPolicy::save_state)).
//!
//! Deliberately *not* captured — state the equivalence test suite pins as
//! outcome-neutral: the blocked-head memo (a pure performance cache),
//! the scratch buffers, and registered observers (restore starts with
//! none; re-attach as needed).
//!
//! The wire format is a little-endian byte stream behind an 8-byte magic
//! and a `u32` version ([`SNAPSHOT_VERSION`]). The no-op vendored serde
//! cannot serialize, so the codec is hand-written via [`ByteWriter`] /
//! [`ByteReader`] — both public so higher layers (the fleet service)
//! frame their own envelopes around per-cluster payloads. Decoding never
//! panics: every malformed input surfaces as
//! [`HeliosError::Snapshot`].

use crate::fault::FaultSnap;
use crate::job::SimJob;
use crate::pool::Placement;
use helios_trace::{ClusterSpec, HeliosError, HeliosResult};

/// Magic prefix of a serialized [`SimSnapshot`].
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"HSIMSNAP";
/// Current kernel snapshot format version (no failure state). Snapshots
/// of fault-enabled kernels are written as [`SNAPSHOT_VERSION_FAULTS`]
/// instead, so failure-free blobs stay byte-identical to the legacy
/// format.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Snapshot format version carrying a trailing failure-state section
/// (see [`crate::fault::FaultSnap`] and `FAULT_CODEC_VERSION`).
pub const SNAPSHOT_VERSION_FAULTS: u32 = 2;

/// Complete resumable state of one [`Simulator`](crate::Simulator); see
/// the module docs for what is (and is not) captured. Produce with
/// [`Simulator::snapshot`](crate::Simulator::snapshot), serialize with
/// [`SimSnapshot::to_bytes`], and rehydrate through
/// [`Simulator::restore`](crate::Simulator::restore).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Kernel placement knob at snapshot time.
    pub placement: Placement,
    /// Kernel backfill knob at snapshot time.
    pub backfill: bool,
    /// Blocked-head memoization toggle (outcome-neutral, preserved so a
    /// resumed run keeps the same performance profile).
    pub memo_enabled: bool,
    /// `policy.name()` at snapshot time; restore refuses a different
    /// discipline rather than silently diverging.
    pub policy_name: String,
    /// Fingerprint of the cluster spec the snapshot was taken against.
    pub spec_fingerprint: u64,
    /// Simulated horizon (`i64::MIN` before any activity).
    pub horizon: i64,
    /// Jobs finished so far.
    pub finished: u64,
    /// Every admitted job's execution state, in admission order (state
    /// indices elsewhere in the snapshot point into this array).
    pub jobs: Vec<JobStateSnap>,
    /// Per-VC pool/queue/running state, in VC order.
    pub vcs: Vec<VcSnap>,
    /// Unconsumed arrival cursor tail (state indices, submit-sorted).
    pub pending_arrivals: Vec<u64>,
    /// The finish heap's backing array verbatim: `(time, state index,
    /// epoch)`.
    pub finishes: Vec<(i64, u64, u32)>,
    /// Finished but not yet drained (state indices).
    pub completed: Vec<u64>,
    /// Opaque policy payload from `SchedulingPolicy::save_state`.
    pub policy_state: Vec<u8>,
    /// Failure-injection state (`None` when injection is disabled; its
    /// presence alone decides whether the blob is written as
    /// [`SNAPSHOT_VERSION`] or [`SNAPSHOT_VERSION_FAULTS`]).
    pub fault: Option<FaultSnap>,
}

/// One job's execution state inside a [`SimSnapshot`]. Field semantics
/// mirror the kernel's internal per-job record; `i64::MIN` is the "not
/// set" sentinel for the timestamp fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobStateSnap {
    /// The job as submitted.
    pub job: SimJob,
    /// Remaining execution time.
    pub remaining: i64,
    /// Current-run start time (sentinel when not running).
    pub started_at: i64,
    /// First-ever start time (sentinel before first start).
    pub first_start: i64,
    /// Finish time (sentinel while unfinished).
    pub end: i64,
    /// Scheduling epoch (bumped on every start; stale-finish filter).
    pub epoch: u32,
    /// Times preempted so far.
    pub preemptions: u32,
    /// Slot in the VC's running vectors while running.
    pub run_slot: u32,
}

/// One VC's state inside a [`SimSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct VcSnap {
    /// Per-node free-GPU counts — the pool's complete logical state.
    pub free: Vec<u32>,
    /// The policy queue's backing heap array verbatim: `(key, job id,
    /// state index)`. The `(key, job id)` pair is the kernel's total
    /// queue order.
    pub queue: Vec<(f64, u64, u64)>,
    /// Running jobs (state indices), slot order.
    pub running: Vec<u64>,
    /// `running_allocs[i]` is the `(node, gpus)` slice list of
    /// `running[i]`'s live allocation.
    pub running_allocs: Vec<Vec<(u32, u32)>>,
}

/// Order-sensitive FNV-1a fingerprint of the spec facts the kernel state
/// depends on: cluster name, node counts, and the VC layout. Restore
/// validates it so a snapshot cannot be applied to a different cluster.
pub fn spec_fingerprint(spec: &ClusterSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &b in spec.id.name().as_bytes() {
        mix(b as u64);
    }
    mix(spec.nodes as u64);
    mix(spec.gpus_per_node as u64);
    mix(spec.vcs.len() as u64);
    for vc in &spec.vcs {
        mix(vc.id as u64);
        mix(vc.nodes as u64);
    }
    h
}

/// Little-endian byte-stream writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Exact bit pattern (`to_bits`), so keys survive byte-identically.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Raw bytes with no length prefix — for fixed-size framing such as
    /// magic numbers.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// One [`SimJob`] in the fixed [`JOB_WIRE_BYTES`]-byte layout shared
    /// by the kernel codec and the fleet's admission-journal frames.
    pub fn job(&mut self, job: &SimJob) {
        self.u64(job.id);
        self.u32(job.vc as u32);
        self.u32(job.gpus);
        self.i64(job.submit);
        self.i64(job.duration);
        self.f64(job.priority);
    }
}

/// Wire size of one [`SimJob`] as written by [`ByteWriter::job`].
pub const JOB_WIRE_BYTES: usize = 40;

/// The first `N` bytes of `bytes` as a fixed array, zero-padded when
/// shorter — a panic-free stand-in for `try_into().unwrap()` on
/// length-checked reads (callers verify the length; this never trusts
/// it, honoring the "decoding never panics" contract).
fn le_bytes<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut buf = [0u8; N];
    for (dst, src) in buf.iter_mut().zip(bytes) {
        *dst = *src;
    }
    buf
}

/// Little-endian byte-stream reader; every method returns a typed
/// [`HeliosError::Snapshot`] on truncation instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`; `context` names the payload being decoded in
    /// error messages ("decoding kernel snapshot", ...).
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error constructor carrying this reader's context.
    pub fn err(&self, detail: impl Into<String>) -> HeliosError {
        HeliosError::snapshot(self.context, detail)
    }

    /// Exactly `n` raw bytes with no length prefix — the reading twin of
    /// [`ByteWriter::raw`].
    pub fn raw(&mut self, n: usize) -> HeliosResult<&'a [u8]> {
        self.take(n)
    }

    fn take(&mut self, n: usize) -> HeliosResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        // guard: allow(panic, reason = "the remaining() check above guarantees pos+n <= buf.len()")
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> HeliosResult<u8> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    pub fn u32(&mut self) -> HeliosResult<u32> {
        Ok(u32::from_le_bytes(le_bytes(self.take(4)?)))
    }

    pub fn u64(&mut self) -> HeliosResult<u64> {
        Ok(u64::from_le_bytes(le_bytes(self.take(8)?)))
    }

    pub fn i64(&mut self) -> HeliosResult<i64> {
        Ok(i64::from_le_bytes(le_bytes(self.take(8)?)))
    }

    pub fn f64(&mut self) -> HeliosResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix that must also be plausible for the bytes left —
    /// rejects corrupt lengths before any multi-gigabyte allocation.
    pub fn len(&mut self, elem_size: usize) -> HeliosResult<usize> {
        let n = self.u64()?;
        let max = (self.remaining() / elem_size.max(1)) as u64;
        if n > max {
            return Err(self.err(format!(
                "corrupt length {n} at offset {}: only {} bytes remain",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> HeliosResult<Vec<u8>> {
        let n = self.len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> HeliosResult<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|e| self.err(format!("invalid UTF-8 string: {e}")))
    }

    /// One [`SimJob`] — the reading twin of [`ByteWriter::job`].
    pub fn job(&mut self) -> HeliosResult<SimJob> {
        let id = self.u64()?;
        let vc_raw = self.u32()?;
        let vc = u16::try_from(vc_raw)
            .map_err(|_| self.err(format!("job {id}: VC id {vc_raw} out of range")))?;
        Ok(SimJob {
            id,
            vc,
            gpus: self.u32()?,
            submit: self.i64()?,
            duration: self.i64()?,
            priority: self.f64()?,
        })
    }
}

fn placement_code(p: Placement) -> u8 {
    match p {
        Placement::Consolidate => 0,
        Placement::Scatter => 1,
    }
}

fn placement_from(code: u8, r: &ByteReader<'_>) -> HeliosResult<Placement> {
    match code {
        0 => Ok(Placement::Consolidate),
        1 => Ok(Placement::Scatter),
        other => Err(r.err(format!("unknown placement code {other}"))),
    }
}

impl SimSnapshot {
    /// Serialize to the versioned binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u32(if self.fault.is_some() {
            SNAPSHOT_VERSION_FAULTS
        } else {
            SNAPSHOT_VERSION
        });
        w.u8(placement_code(self.placement));
        w.u8(self.backfill as u8);
        w.u8(self.memo_enabled as u8);
        w.str(&self.policy_name);
        w.u64(self.spec_fingerprint);
        w.i64(self.horizon);
        w.u64(self.finished);
        w.u64(self.jobs.len() as u64);
        for j in &self.jobs {
            w.job(&j.job);
            w.i64(j.remaining);
            w.i64(j.started_at);
            w.i64(j.first_start);
            w.i64(j.end);
            w.u32(j.epoch);
            w.u32(j.preemptions);
            w.u32(j.run_slot);
        }
        w.u64(self.vcs.len() as u64);
        for vc in &self.vcs {
            w.u64(vc.free.len() as u64);
            for &f in &vc.free {
                w.u32(f);
            }
            w.u64(vc.queue.len() as u64);
            for &(key, id, idx) in &vc.queue {
                w.f64(key);
                w.u64(id);
                w.u64(idx);
            }
            w.u64(vc.running.len() as u64);
            for &idx in &vc.running {
                w.u64(idx);
            }
            w.u64(vc.running_allocs.len() as u64);
            for alloc in &vc.running_allocs {
                w.u64(alloc.len() as u64);
                for &(node, gpus) in alloc {
                    w.u32(node);
                    w.u32(gpus);
                }
            }
        }
        w.u64(self.pending_arrivals.len() as u64);
        for &idx in &self.pending_arrivals {
            w.u64(idx);
        }
        w.u64(self.finishes.len() as u64);
        for &(t, idx, epoch) in &self.finishes {
            w.i64(t);
            w.u64(idx);
            w.u32(epoch);
        }
        w.u64(self.completed.len() as u64);
        for &idx in &self.completed {
            w.u64(idx);
        }
        w.bytes(&self.policy_state);
        if let Some(fault) = &self.fault {
            fault.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Decode from the versioned binary wire format. Trailing garbage,
    /// truncation, or a magic/version mismatch all surface as typed
    /// errors.
    pub fn from_bytes(bytes: &[u8]) -> HeliosResult<SimSnapshot> {
        let mut r = ByteReader::new(bytes, "decoding kernel snapshot");
        let magic = r.take(SNAPSHOT_MAGIC.len())?;
        if magic != SNAPSHOT_MAGIC {
            return Err(r.err("bad magic: not a kernel snapshot"));
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_FAULTS {
            return Err(r.err(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION} and {SNAPSHOT_VERSION_FAULTS})"
            )));
        }
        let placement = placement_from(r.u8()?, &r)?;
        let backfill = r.u8()? != 0;
        let memo_enabled = r.u8()? != 0;
        let policy_name = r.str()?;
        let spec_fingerprint = r.u64()?;
        let horizon = r.i64()?;
        let finished = r.u64()?;
        let n_jobs = r.len(JOB_WIRE_BYTES + 44)?;
        let mut jobs = Vec::with_capacity(n_jobs);
        for _ in 0..n_jobs {
            jobs.push(JobStateSnap {
                job: r.job()?,
                remaining: r.i64()?,
                started_at: r.i64()?,
                first_start: r.i64()?,
                end: r.i64()?,
                epoch: r.u32()?,
                preemptions: r.u32()?,
                run_slot: r.u32()?,
            });
        }
        let n_vcs = r.len(32)?;
        let mut vcs = Vec::with_capacity(n_vcs);
        for _ in 0..n_vcs {
            let n_free = r.len(4)?;
            let mut free = Vec::with_capacity(n_free);
            for _ in 0..n_free {
                free.push(r.u32()?);
            }
            let n_queue = r.len(24)?;
            let mut queue = Vec::with_capacity(n_queue);
            for _ in 0..n_queue {
                queue.push((r.f64()?, r.u64()?, r.u64()?));
            }
            let n_running = r.len(8)?;
            let mut running = Vec::with_capacity(n_running);
            for _ in 0..n_running {
                running.push(r.u64()?);
            }
            let n_allocs = r.len(8)?;
            let mut running_allocs = Vec::with_capacity(n_allocs);
            for _ in 0..n_allocs {
                let n_slices = r.len(8)?;
                let mut slices = Vec::with_capacity(n_slices);
                for _ in 0..n_slices {
                    slices.push((r.u32()?, r.u32()?));
                }
                running_allocs.push(slices);
            }
            vcs.push(VcSnap {
                free,
                queue,
                running,
                running_allocs,
            });
        }
        let n_arr = r.len(8)?;
        let mut pending_arrivals = Vec::with_capacity(n_arr);
        for _ in 0..n_arr {
            pending_arrivals.push(r.u64()?);
        }
        let n_fin = r.len(20)?;
        let mut finishes = Vec::with_capacity(n_fin);
        for _ in 0..n_fin {
            finishes.push((r.i64()?, r.u64()?, r.u32()?));
        }
        let n_done = r.len(8)?;
        let mut completed = Vec::with_capacity(n_done);
        for _ in 0..n_done {
            completed.push(r.u64()?);
        }
        let policy_state = r.bytes()?;
        let fault = if version == SNAPSHOT_VERSION_FAULTS {
            Some(FaultSnap::decode(&mut r)?)
        } else {
            None
        };
        if r.remaining() != 0 {
            return Err(r.err(format!(
                "{} trailing bytes after the snapshot payload",
                r.remaining()
            )));
        }
        Ok(SimSnapshot {
            placement,
            backfill,
            memo_enabled,
            policy_name,
            spec_fingerprint,
            horizon,
            finished,
            jobs,
            vcs,
            pending_arrivals,
            finishes,
            completed,
            policy_state,
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_trace::{philly, venus};

    fn sample() -> SimSnapshot {
        SimSnapshot {
            placement: Placement::Scatter,
            backfill: true,
            memo_enabled: false,
            policy_name: "FIFO".into(),
            spec_fingerprint: spec_fingerprint(&venus()),
            horizon: 12_345,
            finished: 1,
            jobs: vec![JobStateSnap {
                job: SimJob {
                    id: 7,
                    vc: 3,
                    gpus: 8,
                    submit: 100,
                    duration: 600,
                    priority: 2.5,
                },
                remaining: 400,
                started_at: 300,
                first_start: 200,
                end: i64::MIN,
                epoch: 2,
                preemptions: 1,
                run_slot: 0,
            }],
            vcs: vec![VcSnap {
                free: vec![0, 8, 3],
                queue: vec![(100.0, 7, 0), (101.5, 9, 0)],
                running: vec![0],
                running_allocs: vec![vec![(0, 8)]],
            }],
            pending_arrivals: vec![0],
            finishes: vec![(700, 0, 2)],
            completed: vec![0],
            policy_state: vec![1, 2, 3],
            fault: None,
        }
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Re-encoding is byte-stable.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn fault_section_round_trips_as_version_two() {
        use crate::fault::{FaultConfig, FaultNodeSnap, FaultStats};
        let mut snap = sample();
        // Version byte stays 1 (legacy) without a fault section...
        assert_eq!(snap.to_bytes()[8], SNAPSHOT_VERSION as u8);
        // ...and becomes 2 with one, round-tripping exactly.
        snap.fault = Some(FaultSnap {
            cfg: FaultConfig::with_mtbf_hours(48.0),
            seeded: true,
            t0: 99,
            nodes: vec![FaultNodeSnap {
                up: false,
                draining: true,
                epoch: 3,
                fail_seq: 2,
                up_since: 50,
                fail_count: 1,
                alloc_events: 7,
                busy: 0,
                busy_integral: 123.5,
                last_t: 80,
                drain_since: 60,
            }],
            events: vec![(1_000, 0, 1, 3)],
            stats: FaultStats {
                failures: 1,
                killed_jobs: 2,
                lost_gpu_secs: 64.0,
                ..Default::default()
            },
        });
        let bytes = snap.to_bytes();
        assert_eq!(bytes[8], SNAPSHOT_VERSION_FAULTS as u8);
        let back = SimSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = SimSnapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, HeliosError::Snapshot { .. }),
                "cut at {cut}: {err}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0xFF);
        assert!(SimSnapshot::from_bytes(&trailing).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(SimSnapshot::from_bytes(&wrong_magic).is_err());
        let mut wrong_version = bytes;
        wrong_version[8] = 0xEE;
        assert!(SimSnapshot::from_bytes(&wrong_version).is_err());
    }

    #[test]
    fn fingerprints_distinguish_clusters() {
        assert_ne!(spec_fingerprint(&venus()), spec_fingerprint(&philly()));
        let mut shrunk = venus();
        shrunk.vcs.pop();
        assert_ne!(spec_fingerprint(&venus()), spec_fingerprint(&shrunk));
    }
}
